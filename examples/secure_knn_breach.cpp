// Scenario: a location-based service outsources a user-position database to
// the cloud with ASPE Scheme 2 (the Wong et al. secure-kNN design), and the
// cloud answers "nearest drivers" queries on ciphertexts.
//
// The example walks the full kill chain of §III: the curious server
// correlates a handful of sign-ups it can observe out-of-band with fresh
// ciphertexts (the paper's "someone joins a club" leak), runs Algorithm 1,
// and reads off every user's location and every query ever made.
//
//   $ ./secure_knn_breach
#include <cstdio>

#include "core/lep.hpp"
#include "linalg/vector_ops.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main() {
  const std::size_t d = 2;  // (latitude, longitude), city-grid units
  scheme::Scheme2Options options;
  options.record_dim = d;
  options.padding_dims = 4;
  sse::SecureKnnSystem service(options, /*seed=*/20170605);
  rng::Rng rng(99);

  // 40 drivers scattered over the grid.
  std::vector<Vec> drivers;
  for (int i = 0; i < 40; ++i) {
    drivers.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  service.upload_records(drivers);
  std::printf("service online: %zu encrypted driver positions\n",
              drivers.size());

  // Riders issue pickup queries over the day.
  std::vector<Vec> pickups;
  for (int j = 0; j < 8; ++j) {
    pickups.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    const auto nearest = service.knn_query(pickups.back(), 1);
    std::printf("pickup at (%5.1f,%5.1f) -> dispatched driver #%zu\n",
                pickups.back()[0], pickups.back()[1], nearest[0]);
  }

  // The breach: the server links 3 (= d+1) driver sign-ups to ciphertexts.
  std::printf("\n[server] correlating 3 new sign-ups with ciphertexts...\n");
  const auto view = sse::leak_known_records(service, {0, 1, 2});
  const auto attack = core::run_lep_attack(view);

  std::printf("[server] database recovered. Sample:\n");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  driver #%zu: true (%5.1f,%5.1f)  recovered (%5.1f,%5.1f)\n",
                i, drivers[i][0], drivers[i][1], attack.records[i][0],
                attack.records[i][1]);
  }
  std::printf("[server] every pickup location recovered too:\n");
  for (std::size_t j = 0; j < pickups.size(); ++j) {
    std::printf("  pickup #%zu: true (%5.1f,%5.1f)  recovered (%5.1f,%5.1f)\n",
                j, pickups[j][0], pickups[j][1], attack.queries[j][0],
                attack.queries[j][1]);
  }

  double max_err = 0.0;
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    max_err = std::max(max_err, linalg::max_abs(linalg::sub(
                                    attack.records[i], drivers[i])));
  }
  std::printf(
      "\nmax reconstruction error over all %zu drivers: %.2e\n"
      "Theorem 6 of [25] claimed this could not happen (Security Risk 1).\n",
      drivers.size(), max_err);
  return 0;
}
