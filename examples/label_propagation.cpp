// Scenario: the paper's P_365 / P_380 anecdote (§VI-B2), end to end.
//
// A COA adversary reconstructs MKFSE indexes with the SNMF attack, notices
// that two ciphertexts have (near-)identical reconstructed indexes, learns
// the content of ONE of them out-of-band ("application approved"), and
// labels the other — correctly. Also shows saving/loading the encrypted
// database and the owner's key through the io module.
//
//   $ ./label_propagation
#include <cstdio>
#include <sstream>

#include "core/similarity_inference.hpp"
#include "core/snmf_attack.hpp"
#include "io/codec.hpp"
#include "io/key_io.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main() {
  rng::Rng rng(2017);
  scheme::MkfseOptions options;
  options.bloom_bits = 14;
  const scheme::Mkfse mkfse(options, rng);

  // A small corpus; documents 1 and 4 are copies of the same form letter.
  const std::vector<std::vector<std::string>> docs = {
      {"meeting", "agenda", "budget"},
      {"application", "approved", "congratulations"},
      {"incident", "report", "outage"},
      {"travel", "reimbursement", "policy"},
      {"application", "approved", "congratulations"},  // duplicate of #1
      {"holiday", "schedule", "december"},
  };

  // Owner side: encrypt and "persist" the database + key (round-tripped
  // through the io module as a real deployment would).
  std::vector<scheme::CipherPair> db;
  for (int copy = 0; copy < 6; ++copy) {
    for (const auto& d : docs) {
      db.push_back(mkfse.encrypt_index(mkfse.build_index(d), rng));
    }
  }
  std::stringstream db_file, key_file;
  {
    auto w = io::open_writer(db_file, io::Format::Binary);
    w->write_cipher_database(db);
    w->finish();
  }
  io::write_split_encryptor(key_file, mkfse.encryptor());
  std::printf("persisted %zu ciphertexts (%zu bytes) and the owner key\n",
              db.size(), db_file.str().size());

  // Server side: load the ciphertexts (no key!) and serve queries. The
  // reader sniffs the io::v2 magic, so the same line would load a text db.
  sse::CloudServer server;
  for (auto& c : io::open_reader(db_file)->read_cipher_database()) {
    server.upload_index(std::move(c));
  }
  for (int j = 0; j < 36; ++j) {
    const auto& d = docs[static_cast<std::size_t>(j) % docs.size()];
    server.process_query(
        mkfse.encrypt_trapdoor(mkfse.build_trapdoor({d[0], d[1]}), rng), 3);
  }

  // Adversary: ciphertexts only -> SNMF reconstruction.
  core::SnmfAttackOptions aopt;
  aopt.rank = options.bloom_bits;
  aopt.restarts = 4;
  aopt.nmf.max_iterations = 300;
  const auto recon = core::run_snmf_attack(sse::observe(server), aopt,
                                           core::ExecContext{.seed = 7});

  // Step 1: spot identical reconstructed indexes.
  const auto pairs = core::find_similar_pairs(recon.indexes, 0.99);
  std::printf("\n%zu ciphertext pairs with (near-)identical reconstructed "
              "indexes\n", pairs.size());

  // Step 2: the adversary learns document #1's content out-of-band and
  // propagates the label through the reconstruction.
  const auto labels = core::propagate_labels(
      recon.indexes, {{1, "application approved"}}, 0.95);
  std::printf("labeled ciphertexts (source: knowledge of doc #1 only):\n");
  std::size_t correct = 0, labeled = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i].label.empty() || i == 1) continue;
    ++labeled;
    const bool is_dup = (i % docs.size() == 1) || (i % docs.size() == 4);
    correct += is_dup;
    std::printf("  ciphertext #%2zu -> \"%s\" (confidence %.2f) %s\n", i,
                labels[i].label.c_str(), labels[i].confidence,
                is_dup ? "[correct]" : "[wrong]");
  }
  std::printf(
      "\n%zu/%zu propagated labels are correct — knowing one form letter\n"
      "exposed every copy of it, from ciphertexts alone (Security Risk 3).\n",
      correct, labeled);
  return 0;
}
