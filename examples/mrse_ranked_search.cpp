// Scenario: multi-keyword ranked search over encrypted documents with MRSE
// (Cao et al. [5]) — and the §IV MIP attack that recovers a user's query
// keywords from ciphertexts plus leaked document plaintexts.
//
//   $ ./mrse_ranked_search
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"
#include "text/tokenizer.hpp"

using namespace aspe;

namespace {

/// Tiny document collection with a fixed vocabulary.
const std::vector<std::string> kDocuments = {
    "quarterly revenue forecast exceeds expectations strong growth",
    "merger negotiation confidential acquisition target valuation",
    "employee compensation review salary bonus adjustment",
    "server outage incident postmortem database failover",
    "marketing campaign launch social engagement metrics",
    "legal compliance audit regulatory filing deadline",
    "product roadmap feature prioritization customer feedback",
    "security vulnerability patch encryption protocol upgrade",
    "board meeting agenda strategic investment decision",
    "supply chain disruption vendor contract renewal",
    "revenue growth acquisition strategic valuation",
    "database encryption security audit compliance",
};

}  // namespace

int main() {
  // Build the vocabulary (the d keyword dimensions of MRSE).
  std::vector<std::string> vocab;
  std::unordered_map<std::string, std::size_t> word_id;
  for (const auto& doc : kDocuments) {
    for (const auto& w : text::extract_keywords(doc)) {
      if (word_id.emplace(w, vocab.size()).second) vocab.push_back(w);
    }
  }
  const std::size_t d = vocab.size();
  std::printf("vocabulary: %zu keywords over %zu documents\n", d,
              kDocuments.size());

  auto to_bits = [&](const std::vector<std::string>& words) {
    BitVec v(d, 0);
    for (const auto& w : words) {
      const auto it = word_id.find(w);
      if (it != word_id.end()) v[it->second] = 1;
    }
    return v;
  };

  // Data owner uploads noisy encrypted indexes. Extra copies of the corpus
  // give the KPA adversary enough pairs later.
  scheme::MrseOptions options;
  options.vocab_dim = d;
  options.sigma = 0.5;
  sse::RankedSearchSystem system(options, /*seed=*/77);
  std::vector<BitVec> records;
  for (int copy = 0; copy < 4; ++copy) {
    for (const auto& doc : kDocuments) {
      records.push_back(to_bits(text::extract_keywords(doc)));
    }
  }
  system.upload_records(records);

  // A user searches for "encryption security audit".
  const std::vector<std::string> wanted = {"encryption", "security", "audit"};
  const BitVec query = to_bits(wanted);
  const auto top = system.ranked_query(query, 3);
  std::printf("\ntop-3 for {encryption, security, audit} (noisy ranking):\n");
  for (auto id : top) {
    std::printf("  doc #%zu: \"%s\"\n", id % kDocuments.size(),
                kDocuments[id % kDocuments.size()].c_str());
  }

  // The KPA adversary: it has the ciphertext trapdoor and acquires the
  // plaintext of every stored record (public corpus). Algorithm 2 then
  // reconstructs the user's query keywords.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < records.size(); ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);
  const auto attack =
      core::run_mip_attack(view, 0, options.mu, options.sigma);

  if (!attack.found) {
    std::printf("\nMIP attack found no solution within limits.\n");
    return 0;
  }
  std::printf("\nMIP attack reconstructed the query in %.2fs:\n  {",
              attack.telemetry.wall_seconds);
  for (std::size_t k = 0; k < d; ++k) {
    if (attack.query[k] != 0) std::printf(" %s", vocab[k].c_str());
  }
  std::printf(" }\n");
  const auto pr = core::binary_precision_recall(query, attack.query);
  std::printf("precision %.2f, recall %.2f (Security Risk 2)\n", pr.precision,
              pr.recall);
  return 0;
}
