// Scenario: the Table-IV statistical attack as a story. A mailing list sends
// the same announcement to many employees; the duplicates survive MKFSE's
// deterministic camouflage, survive encryption, and survive the SNMF
// reconstruction — so a ciphertext-only adversary with background knowledge
// ("the most common email is the weekly all-hands reminder") labels
// plaintexts by frequency alone.
//
//   $ ./frequency_analysis
#include <cstdio>

#include "core/metrics.hpp"
#include "core/snmf_attack.hpp"
#include "data/email_corpus.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main() {
  rng::Rng rng(31);

  // A corpus where a few emails repeat many times (mailing-list copies).
  data::EmailCorpusOptions copt;
  copt.num_emails = 120;
  copt.vocabulary_size = 500;
  copt.min_keywords = 3;
  copt.max_keywords = 7;
  copt.duplicate_fraction = 0.25;
  const auto emails = data::EmailCorpusGenerator(copt, rng.child(1)).generate();

  scheme::MkfseOptions options;
  options.bloom_bits = 16;
  sse::FuzzySearchSystem system(options, /*seed=*/8);
  std::vector<std::vector<std::string>> docs;
  for (const auto& e : emails) docs.push_back(e.keywords);
  system.upload_documents(docs);
  for (int j = 0; j < 120; ++j) {
    const auto& doc = docs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(docs.size()) - 1))];
    system.fuzzy_query({doc[0], doc[1 % doc.size()]}, 3);
  }

  // Ground truth frequency of plaintext indexes.
  const auto truth_top = core::top_frequencies(system.plaintext_indexes(), 5);

  // Ciphertext-only reconstruction.
  core::SnmfAttackOptions aopt;
  aopt.rank = options.bloom_bits;
  aopt.restarts = 4;
  aopt.nmf.max_iterations = 300;
  const auto attack = core::run_snmf_attack(sse::observe(system.server()),
                                            aopt, core::ExecContext{.seed = 9});
  const auto recon_top = core::top_frequencies(attack.indexes, 5);

  std::printf("five most frequent emails (plaintext vs ciphertext-only):\n");
  std::printf("%-8s%-14s%-14s\n", "rank", "I freq", "I* freq");
  for (std::size_t r = 0; r < 5; ++r) {
    std::printf("%-8zu%-14zu%-14zu\n", r + 1,
                r < truth_top.size() ? truth_top[r].second : 0,
                r < recon_top.size() ? recon_top[r].second : 0);
  }

  // With background knowledge, frequency labels plaintexts.
  const auto& most_frequent = emails[truth_top[0].first];
  std::printf(
      "\nadversary: \"the #1 email repeats %zu times; company folklore says\n"
      "that's the all-hands reminder\" -> content of %zu ciphertexts labeled.\n"
      "Its actual keywords were:",
      truth_top[0].second, truth_top[0].second);
  for (const auto& k : most_frequent.keywords) std::printf(" %s", k.c_str());
  std::printf("\n");
  return 0;
}
