// Quickstart: encrypt a small database with ASPE Scheme 2, run a secure kNN
// query on the cloud server, then break the whole deployment with the LEP
// attack — all through the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "core/lep.hpp"
#include "data/queries.hpp"
#include "linalg/vector_ops.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main() {
  // --- 1. The data owner sets up a secure kNN system (Figure 1). ---
  const std::size_t d = 4;  // feature dimension
  scheme::Scheme2Options options;
  options.record_dim = d;
  options.padding_dims = 3;  // w artificial attributes
  sse::SecureKnnSystem system(options, /*seed=*/42);

  rng::Rng rng(7);
  const auto records = data::real_records(/*count=*/12, d, 0.0, 10.0, rng);
  system.upload_records(records);
  std::printf("uploaded %zu encrypted records (d = %zu, d' = %zu)\n",
              records.size(), d, system.scheme().cipher_dim());

  // --- 2. An authorized user runs an encrypted 3-NN query. ---
  const Vec query = {5.0, 5.0, 5.0, 5.0};
  const auto top = system.knn_query(query, 3);
  std::printf("secure 3-NN of (5,5,5,5): records");
  for (auto id : top) std::printf(" #%zu", id);
  std::printf("\n");
  const auto expected = system.plaintext_knn(query, 3);
  std::printf("plaintext 3-NN matches: %s\n",
              top == expected ? "yes" : "NO (bug!)");

  // --- 3. The honest-but-curious server turns adversary (KPA). ---
  // Suppose it learns the plaintext of the first d+1 = 5 records...
  for (std::size_t j = 0; j < d + 2; ++j) {  // a few more processed queries
    system.knn_query(rng.uniform_vec(d, 0.0, 10.0), 3);
  }
  const auto view = sse::leak_known_records(system, {0, 1, 2, 3, 4});
  const auto attack = core::run_lep_attack(view);

  // ...and recovers *everything*: the full database and every query.
  double max_err = 0.0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    max_err = std::max(max_err, linalg::max_abs(linalg::sub(
                                    attack.records[i], records[i])));
  }
  std::printf(
      "\nLEP attack with 5 leaked records recovered %zu records and %zu\n"
      "queries; max reconstruction error %.2e (Security Risk 1).\n",
      attack.records.size(), attack.queries.size(), max_err);
  std::printf("recovered query #0: (");
  for (double x : attack.queries[0]) std::printf(" %.3f", x);
  std::printf(" )\n");
  return 0;
}
