// Scenario: multi-keyword *fuzzy* search with MKFSE (Wang et al. [22]) —
// typo-tolerant encrypted search via bigram vectors + LSH + bloom filters —
// and the §V ciphertext-only SNMF attack that reconstructs the camouflaged
// index bits without any plaintext knowledge.
//
//   $ ./mkfse_fuzzy_search
#include <cstdio>

#include "core/metrics.hpp"
#include "core/snmf_attack.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main() {
  scheme::MkfseOptions options;
  options.bloom_bits = 16;  // miniature filter so the demo runs in seconds
  options.lsh_functions = 2;
  sse::FuzzySearchSystem system(options, /*seed=*/5);

  const std::vector<std::vector<std::string>> documents = {
      {"wireless", "network", "protocol"},
      {"database", "indexing", "btree"},
      {"machine", "learning", "gradient"},
      {"quantum", "entanglement", "qubit"},
      {"compiler", "optimization", "register"},
      {"network", "security", "firewall"},
  };
  // Upload several re-encryptions of the corpus (fresh ciphertexts, same
  // deterministic camouflaged indexes) to give the COA adversary material.
  std::vector<std::vector<std::string>> uploads;
  for (int copy = 0; copy < 8; ++copy) {
    for (const auto& doc : documents) uploads.push_back(doc);
  }
  system.upload_documents(uploads);
  std::printf("uploaded %zu encrypted document indexes (d = %zu bits)\n",
              uploads.size(), options.bloom_bits);

  // Fuzzy search tolerates typos: "netwerk" still finds network documents.
  const auto hits = system.fuzzy_query({"netwerk"}, 2);
  std::printf("\nfuzzy query \"netwerk\" top-2: docs #%zu, #%zu\n",
              hits[0] % documents.size(), hits[1] % documents.size());

  // More observed queries...
  rng::Rng rng(6);
  for (int j = 0; j < 47; ++j) {
    const auto& doc = documents[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(documents.size()) - 1))];
    system.fuzzy_query({doc[0], doc[1]}, 2);
  }

  // The COA adversary: nothing but the ciphertexts the server stores.
  core::SnmfAttackOptions aopt;
  aopt.rank = options.bloom_bits;
  aopt.restarts = 4;
  aopt.nmf.max_iterations = 300;
  const auto attack = core::run_snmf_attack(sse::observe(system.server()),
                                            aopt, core::ExecContext{.seed = 7});

  const auto perm = core::align_latent_dimensions(
      system.plaintext_indexes(), system.plaintext_trapdoors(), attack.indexes,
      attack.trapdoors);
  std::vector<core::PrecisionRecall> prs;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    prs.push_back(core::binary_precision_recall(
        system.plaintext_indexes()[i],
        core::apply_permutation(attack.indexes[i], perm)));
  }
  const auto avg = core::average(prs);
  std::printf(
      "\nSNMF ciphertext-only reconstruction: precision %.2f, recall %.2f\n",
      avg.precision, avg.recall);

  // The similarity structure leaks: identical documents have identical I*.
  std::size_t identical = 0;
  for (std::size_t i = 0; i < documents.size(); ++i) {
    identical += attack.indexes[i] ==
                 attack.indexes[i + documents.size()];  // copy of same doc
  }
  std::printf(
      "identical-document detection from ciphertexts alone: %zu/%zu\n"
      "(the camouflage is deterministic -> similarity and frequency leak;\n"
      "Security Risk 3)\n",
      identical, documents.size());
  return 0;
}
