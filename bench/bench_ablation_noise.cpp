// Ablation: MRSE's security/utility trade-off (§IV + §VI-A discussion).
//
// "While injecting more noises can deter this attack, it also distorts the
// relative rank of answers, making the noisy top-k answers less useful."
// This bench quantifies both sides of that sentence: as sigma grows, the MIP
// attack's precision/recall falls — and so does the top-k overlap between
// the noisy ranking and the true ranking.
//
// Usage: bench_ablation_noise [--d=60] [--sigmas=0.25,0.5,1,2] [--queries=N]
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "data/quest.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto d = static_cast<std::size_t>(flags.get_int("d", 60));
  const std::vector<double> sigmas =
      flags.get_double_list("sigmas", {0.25, 0.5, 1.0, 2.0});
  const auto num_queries =
      static_cast<std::size_t>(flags.get_int("queries", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  const std::size_t k = 10;

  bench::print_banner(
      "Ablation: noise level sigma vs attack accuracy AND search utility",
      "the trade-off argued in §IV / §VI-A (more noise deters MIP but breaks "
      "top-k)");
  std::printf("d = m = %zu, rho = 0.25, top-%zu utility, %zu queries\n\n", d,
              k, num_queries);

  bench::TablePrinter table(
      {"sigma", "P@query", "R@query", "topk_util", "solved"}, 12);
  table.print_header();

  for (double sigma : sigmas) {
    scheme::MrseOptions opt;
    opt.vocab_dim = d;
    opt.sigma = sigma;
    opt.mu = 1.0;
    sse::RankedSearchSystem system(opt, seed + std::size_t(sigma * 100));
    rng::Rng rng(seed ^ std::size_t(sigma * 1000));

    data::QuestOptions qopt;
    qopt.num_items = d;
    qopt.density = 0.25;
    qopt.num_transactions = d;
    system.upload_records(data::QuestGenerator(qopt, rng.child(1)).generate());

    std::vector<BitVec> queries;
    double utility = 0.0;
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      queries.push_back(rng.binary_with_k_ones(d, 10));
      const auto noisy = system.ranked_query(queries.back(), k);
      utility +=
          core::top_k_overlap(system.plaintext_top_k(queries.back(), k), noisy);
    }
    utility /= static_cast<double>(num_queries);

    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < d; ++i) ids.push_back(i);
    const auto view = sse::leak_known_records(system, ids);

    int solved = 0;
    std::vector<core::PrecisionRecall> prs;
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      const auto res = core::run_mip_attack(view, qi, opt.mu, sigma);
      if (!res.found) continue;
      ++solved;
      prs.push_back(core::binary_precision_recall(queries[qi], res.query));
    }
    const auto avg = core::average(prs);
    table.print_row({bench::fmt(sigma, 2),
                     avg.precision_valid ? bench::fmt(avg.precision) : "-",
                     avg.recall_valid ? bench::fmt(avg.recall) : "-",
                     bench::fmt(utility),
                     std::to_string(solved) + "/" +
                         std::to_string(num_queries)});
  }

  std::printf(
      "\nReading: there is no sigma that defeats the attack while keeping\n"
      "the ranking useful — by the time P/R degrade, topk_util has already\n"
      "collapsed. This is the paper's argument for why noise injection does\n"
      "not rescue MRSE.\n");
  return 0;
}
