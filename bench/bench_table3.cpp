// Table III (§VI-B1): SNMF attack precision/recall/runtime on synthetic
// data (random binary indexes/trapdoors encrypted with the Scheme-2
// apparatus).
//
// Paper grid: d in {100, 500, 1000}, m = n = 2d, rho in {5%, 20%, 35%}
// (their runs took up to 2.3 CPU-days). Default here: d in {20, 40} with
// ANLS; --full uses d in {100, 250} with multiplicative updates.
// Precision/recall are computed after the optimal latent relabeling
// (DESIGN.md §4.5).
//
// Usage: bench_table3 [--full] [--dims=20,40] [--rhos=0.05,0.2,0.35]
//                     [--restarts=L] [--iters=N] [--seed=S]
//                     [--trace-json=PATH] [--metrics-json=PATH]
#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/metrics.hpp"
#include "core/snmf_attack.hpp"
#include "scheme/split_encryptor.hpp"

using namespace aspe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const std::vector<int> dims = flags.get_int_list(
      "dims", full ? std::vector<int>{100, 250} : std::vector<int>{20, 40});
  const std::vector<double> rhos =
      flags.get_double_list("rhos", {0.05, 0.20, 0.35});
  const auto restarts =
      static_cast<std::size_t>(flags.get_int("restarts", 3));
  const auto iters = static_cast<std::size_t>(
      flags.get_int("iters", full ? 300 : 250));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  bench::ObsFlags obs_flags(flags);

  bench::print_banner(
      "Table III: SNMF attack on MKFSE-style ciphertexts, synthetic data",
      "P/R of reconstructed indexes (I*) and trapdoors (T*), m = n = 2d");
  std::printf("restarts L = %zu, nmf iterations <= %zu, theta = 0.5\n\n",
              restarts, iters);

  bench::TablePrinter table({"d", "m=n", "rho", "P@data", "R@data", "P@query",
                             "R@query", "Time(s)"},
                            10);
  table.print_header();

  for (int d_int : dims) {
    const auto d = static_cast<std::size_t>(d_int);
    const std::size_t m = 2 * d;
    for (double rho : rhos) {
      rng::Rng rng(seed + d * 13 + std::size_t(rho * 100));
      scheme::SplitEncryptor enc(d, rng);

      std::vector<BitVec> truth_idx, truth_trap;
      sse::CoaView view;
      for (std::size_t i = 0; i < m; ++i) {
        truth_idx.push_back(rng.binary_bernoulli(d, rho));
        view.cipher_indexes.push_back(
            enc.encrypt_index(to_real(truth_idx.back()), rng));
      }
      // Trapdoors: 15/d query density as in the paper's generator, but at
      // least 2 keywords at reduced scale.
      const std::size_t q_ones =
          std::max<std::size_t>(2, std::min<std::size_t>(15, d / 4));
      for (std::size_t j = 0; j < m; ++j) {
        truth_trap.push_back(rng.binary_with_k_ones(d, q_ones));
        view.cipher_trapdoors.push_back(
            enc.encrypt_trapdoor(to_real(truth_trap.back()), rng));
      }

      core::SnmfAttackOptions aopt;
      aopt.rank = d;
      aopt.restarts = restarts;
      aopt.nmf.max_iterations = iters;
      aopt.nmf.rel_tol = 1e-7;
      aopt.nmf.algorithm = full ? nmf::Algorithm::MultiplicativeUpdate
                                : nmf::Algorithm::Anls;
      const core::ExecContext actx{.seed = seed * 7 + d +
                                           std::size_t(rho * 1000),
                                   .sink = obs_flags.sink()};
      const auto res = core::run_snmf_attack(view, aopt, actx);
      const double seconds = res.telemetry.wall_seconds;

      const auto perm = core::align_latent_dimensions(truth_idx, truth_trap,
                                                      res.indexes,
                                                      res.trapdoors);
      std::vector<core::PrecisionRecall> pr_data, pr_query;
      for (std::size_t i = 0; i < m; ++i) {
        pr_data.push_back(core::binary_precision_recall(
            truth_idx[i], core::apply_permutation(res.indexes[i], perm)));
        pr_query.push_back(core::binary_precision_recall(
            truth_trap[i], core::apply_permutation(res.trapdoors[i], perm)));
      }
      const auto avg_d = core::average(pr_data);
      const auto avg_q = core::average(pr_query);
      table.print_row(
          {std::to_string(d), std::to_string(m), bench::fmt(rho, 2),
           avg_d.precision_valid ? bench::fmt(avg_d.precision) : "-",
           bench::fmt(avg_d.recall),
           avg_q.precision_valid ? bench::fmt(avg_q.precision) : "-",
           bench::fmt(avg_q.recall), bench::fmt(seconds, 1)});
    }
  }

  std::printf(
      "\nShape to compare with the paper's Table III: high accuracy at\n"
      "rho in {20%%, 35%%}, collapse at rho = 5%% (sparse data admits many\n"
      "factorizations); runtime grows steeply with d.\n");
  obs_flags.finish();
  return 0;
}
