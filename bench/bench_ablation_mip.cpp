// Ablation: components of the MIP attack solver (DESIGN.md §4.1).
//
// The paper used Gurobi as a black box; our substitute stacks a primal
// heuristic (LP/correlation prefix scan -> exact 2-variable refit -> grow ->
// maximum-likelihood polish) on branch-and-bound. Two tables:
//
// 1. Attack-level variants (which stage answers Algorithm 2):
//      bnb_cold    : pure branch and bound, every node LP solved from scratch
//      bnb_warm    : pure branch and bound, dual-simplex warm starts only
//      bnb_prop    : warm B&B plus the propagation stack (root cuts,
//                    reduced-cost fixing, pseudo-cost branching) — the
//                    default solver configuration
//      heuristic   : full primal heuristic (the attack default)
//      lp_root     : heuristic with LP-relaxation ordering forced
//      corr_root   : heuristic with correlation ordering forced
//
// 2. Solver-level ablation on minimum-support band models (minimize sum(q)
//    subject to the Eq. (14) noise bands — the sparsest consistent query,
//    which exercises bounding, not just feasibility): each propagation
//    technique toggled alone and together, same node/time budget. The
//    headline scalars merged into BENCH_opt.json are
//      mip_ablation_node_reduction_all_over_warm  (acceptance: >= 2)
//      mip_ablation_nodelimit_rescued             (a budget-bound instance
//                                                  that plain warm DFS cannot
//                                                  finish now proves Optimal)
//
// Usage: bench_ablation_mip [--d=60] [--queries=N] [--seed=S]
//                           [--budget-nodes=20000] [--json=BENCH_opt.json]
#include <cctype>
#include <sstream>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "data/quest.hpp"
#include "opt/mip.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

namespace {

struct Variant {
  const char* name;
  core::MipAttackOptions options;
};

opt::MipOptions plain_warm_solver() {
  opt::MipOptions s;
  s.first_feasible = true;
  s.time_limit_seconds = 5.0;
  return s;  // techniques default off
}

// ------------------------------------------------- solver-level ablation

/// Minimum-support variant of the Eq. (14) band model: binary q, continuous
/// rhat/that, one GE/LE noise-band pair per known record, objective
/// minimize sum(q). Feasible by construction (planted query).
opt::Model min_support_band_model(std::size_t d, std::size_t m, double sigma,
                                  rng::Rng& rng) {
  const double rhat_true = 1.3, that_true = 0.7;
  std::vector<BitVec> records;
  BitVec q = rng.binary_bernoulli(d, 0.3);
  q[0] = 1;  // at least one keyword
  for (std::size_t i = 0; i < m; ++i) {
    records.push_back(rng.binary_bernoulli(d, 0.4));
  }
  opt::Model model;
  const auto rhat = model.add_variable(1e-4, 1e4);
  const auto that = model.add_variable(1e-6, 1e4);
  std::vector<std::size_t> qv(d);
  for (std::size_t k = 0; k < d; ++k) qv[k] = model.add_binary();
  opt::LinExpr card, support;
  for (std::size_t k = 0; k < d; ++k) {
    card.push_back({qv[k], 1.0});
    support.push_back({qv[k], 1.0});
  }
  model.add_constraint(std::move(card), opt::Sense::GreaterEqual, 1.0);
  model.set_objective(std::move(support));
  for (std::size_t i = 0; i < m; ++i) {
    double a = 0.0;
    for (std::size_t k = 0; k < d; ++k) a += (records[i][k] & q[k]) ? 1.0 : 0.0;
    const double noise = rng.uniform(-2.5 * sigma, 2.5 * sigma);
    const double c = (a + that_true + noise) / rhat_true;
    opt::LinExpr e;
    e.push_back({rhat, c});
    e.push_back({that, -1.0});
    for (std::size_t k = 0; k < d; ++k) {
      if (records[i][k] != 0) e.push_back({qv[k], -1.0});
    }
    model.add_constraint(e, opt::Sense::GreaterEqual, -3.0 * sigma);
    model.add_constraint(std::move(e), opt::Sense::LessEqual, 3.0 * sigma);
  }
  return model;
}

struct SolverVariant {
  const char* name;
  opt::MipOptions options;
};

struct SolverTally {
  std::string name;
  std::size_t nodes = 0;
  std::size_t iterations = 0;
  std::size_t cuts = 0;
  std::size_t rc_fixings = 0;
  std::size_t strong_branches = 0;
  std::size_t optimal = 0;  // instances proved Optimal within budget
  double seconds = 0.0;
};

std::vector<SolverVariant> solver_variants(std::size_t budget_nodes) {
  opt::MipOptions base;
  base.time_limit_seconds = 10.0;
  base.max_nodes = budget_nodes;

  std::vector<SolverVariant> variants;
  variants.push_back({"bnb_warm", base});
  {
    opt::MipOptions o = base;
    o.gomory_cuts = true;
    o.cover_cuts = true;
    variants.push_back({"cuts", o});
  }
  {
    opt::MipOptions o = base;
    o.reduced_cost_fixing = true;
    variants.push_back({"rcfix", o});
  }
  {
    opt::MipOptions o = base;
    o.pseudo_cost_branching = true;
    variants.push_back({"pseudocost", o});
  }
  {
    opt::MipOptions o = base;
    o.node_selection = opt::NodeSelection::BestFirst;
    variants.push_back({"bestfirst", o});
  }
  {
    opt::MipOptions o = base;
    o.gomory_cuts = true;
    o.cover_cuts = true;
    o.reduced_cost_fixing = true;
    o.pseudo_cost_branching = true;
    variants.push_back({"all", o});
  }
  {
    opt::MipOptions o = base;
    o.gomory_cuts = true;
    o.cover_cuts = true;
    o.reduced_cost_fixing = true;
    o.pseudo_cost_branching = true;
    o.node_selection = opt::NodeSelection::BestFirst;
    o.restarts = true;
    variants.push_back({"all_restart", o});
  }
  return variants;
}

const char* status_name(opt::MipStatus s) {
  switch (s) {
    case opt::MipStatus::Optimal: return "Optimal";
    case opt::MipStatus::Feasible: return "Feasible";
    case opt::MipStatus::Infeasible: return "Infeasible";
    case opt::MipStatus::NodeLimit: return "NodeLimit";
    case opt::MipStatus::TimeLimit: return "TimeLimit";
    case opt::MipStatus::Heuristic: return "Heuristic";
    case opt::MipStatus::NotRun: return "NotRun";
  }
  return "?";
}

/// Merge the ablation block into an existing bench_micro-written
/// BENCH_opt.json (idempotent: an earlier ablation block is replaced).
void merge_opt_json(const std::string& path,
                    const std::vector<SolverTally>& tallies,
                    double node_reduction, bool rescued) {
  std::string base;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      base = ss.str();
    }
  }
  const auto marker = base.find("\"ablation_results\"");
  if (marker != std::string::npos) {
    const auto comma = base.rfind(',', marker);
    base.resize(comma == std::string::npos ? 0 : comma);
  } else {
    const auto brace = base.rfind('}');
    if (brace != std::string::npos) base.resize(brace);
  }
  while (!base.empty() &&
         std::isspace(static_cast<unsigned char>(base.back()))) {
    base.pop_back();
  }
  if (base.empty()) base = "{\n  \"benchmark\": \"opt_warm_start_sweep\"";

  std::ofstream out(path);
  out << base << ",\n  \"ablation_results\": [\n";
  for (std::size_t i = 0; i < tallies.size(); ++i) {
    const auto& t = tallies[i];
    out << "    {\"variant\": \"" << t.name << "\", \"nodes\": " << t.nodes
        << ", \"iterations\": " << t.iterations << ", \"cuts\": " << t.cuts
        << ", \"rc_fixings\": " << t.rc_fixings
        << ", \"strong_branches\": " << t.strong_branches
        << ", \"optimal\": " << t.optimal << ", \"seconds\": " << t.seconds
        << "}" << (i + 1 < tallies.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"mip_ablation_node_reduction_all_over_warm\": "
      << node_reduction << ",\n  \"mip_ablation_nodelimit_rescued\": "
      << (rescued ? "true" : "false") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto d = static_cast<std::size_t>(flags.get_int("d", 60));
  const auto num_queries =
      static_cast<std::size_t>(flags.get_int("queries", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  const auto budget_nodes =
      static_cast<std::size_t>(flags.get_int("budget-nodes", 20000));
  const std::string json_path = flags.get_string("json", "BENCH_opt.json");

  bench::print_banner("Ablation: MIP attack solver components",
                      "Gurobi-substitute design choices (DESIGN.md §4.1)");
  std::printf("d = m = %zu, rho = 0.25, sigma = 0.5, %zu queries\n\n", d,
              num_queries);

  std::vector<Variant> variants;
  {
    Variant v{"bnb_cold", {}};
    v.options.use_heuristic = false;
    v.options.solver = plain_warm_solver();
    v.options.solver.warm_start = false;
    variants.push_back(v);
  }
  {
    Variant v{"bnb_warm", {}};
    v.options.use_heuristic = false;
    v.options.solver = plain_warm_solver();
    variants.push_back(v);
  }
  {
    // Warm B&B plus the propagation stack — MipAttackOptions::default_solver
    // with only the time budget aligned to the other B&B rows.
    Variant v{"bnb_prop", {}};
    v.options.use_heuristic = false;
    v.options.solver.time_limit_seconds = 5.0;
    variants.push_back(v);
  }
  {
    Variant v{"heuristic", {}};
    variants.push_back(v);
  }
  {
    Variant v{"lp_root", {}};
    v.options.root_ordering = core::RootOrdering::LpRelaxation;
    variants.push_back(v);
  }
  {
    Variant v{"corr_root", {}};
    v.options.root_ordering = core::RootOrdering::Correlation;
    variants.push_back(v);
  }

  // One shared scenario so variants are comparable.
  scheme::MrseOptions opt;
  opt.vocab_dim = d;
  opt.sigma = 0.5;
  sse::RankedSearchSystem system(opt, seed);
  rng::Rng rng(seed ^ 0xabc);
  data::QuestOptions qopt;
  qopt.num_items = d;
  qopt.density = 0.25;
  qopt.num_transactions = d;
  system.upload_records(data::QuestGenerator(qopt, rng.child(1)).generate());
  std::vector<BitVec> queries;
  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    queries.push_back(rng.binary_with_k_ones(d, 10));
    system.ranked_query(queries.back(), 10);
  }
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < d; ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);

  bench::TablePrinter table({"variant", "P@query", "R@query", "Time(s)",
                             "nodes", "LPiters", "solved"},
                            12);
  table.print_header();
  for (const auto& variant : variants) {
    int solved = 0;
    double seconds = 0.0;
    std::size_t nodes = 0;
    std::size_t lp_iters = 0;
    std::vector<core::PrecisionRecall> prs;
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      const auto res =
          core::run_mip_attack(view, qi, opt.mu, opt.sigma, variant.options);
      nodes += static_cast<std::size_t>(res.telemetry.counter("mip.bnb.nodes"));
      lp_iters += static_cast<std::size_t>(
          res.telemetry.counter("mip.bnb.simplex_iterations"));
      if (!res.found) continue;
      ++solved;
      seconds += res.telemetry.wall_seconds;
      prs.push_back(core::binary_precision_recall(queries[qi], res.query));
    }
    const auto avg = core::average(prs);
    table.print_row({variant.name,
                     avg.precision_valid ? bench::fmt(avg.precision) : "-",
                     avg.recall_valid ? bench::fmt(avg.recall) : "-",
                     bench::fmt(solved > 0 ? seconds / solved : 0.0, 3),
                     std::to_string(nodes), std::to_string(lp_iters),
                     std::to_string(solved) + "/" +
                         std::to_string(num_queries)});
  }

  // ------------------------------------------------ solver-level ablation
  std::printf(
      "\nSolver ablation: minimum-support objective (min sum q) on the\n"
      "Eq. (14) band models, solved to optimality under a %zu-node budget.\n\n",
      budget_nodes);

  struct Instance {
    std::size_t d, m;
    double sigma;
    std::uint64_t seed;
  };
  const std::vector<Instance> instances = {
      {20, 30, 0.10, 101}, {30, 45, 0.10, 202}, {40, 60, 0.10, 303}};

  std::vector<SolverTally> tallies;
  bench::TablePrinter ab_table({"variant", "nodes", "LPiters", "cuts",
                                "rcfix", "probes", "optimal", "Time(s)"},
                               11);
  ab_table.print_header();
  for (const auto& sv : solver_variants(budget_nodes)) {
    SolverTally t;
    t.name = sv.name;
    for (const auto& inst : instances) {
      rng::Rng mrng(33 + inst.seed);
      const opt::Model model =
          min_support_band_model(inst.d, inst.m, inst.sigma, mrng);
      Stopwatch watch;
      const opt::MipResult r = opt::solve_mip(model, sv.options);
      t.seconds += watch.seconds();
      t.nodes += r.nodes_explored;
      t.iterations += r.simplex_iterations;
      t.cuts += r.cuts_added;
      t.rc_fixings += r.rc_fixings;
      t.strong_branches += r.strong_branches;
      if (r.status == opt::MipStatus::Optimal) ++t.optimal;
    }
    ab_table.print_row(
        {t.name, std::to_string(t.nodes), std::to_string(t.iterations),
         std::to_string(t.cuts), std::to_string(t.rc_fixings),
         std::to_string(t.strong_branches),
         std::to_string(t.optimal) + "/" + std::to_string(instances.size()),
         bench::fmt(t.seconds, 3)});
    tallies.push_back(std::move(t));
  }

  double warm_nodes = 0.0, all_nodes = 0.0;
  for (const auto& t : tallies) {
    if (t.name == "bnb_warm") warm_nodes = static_cast<double>(t.nodes);
    if (t.name == "all") all_nodes = static_cast<double>(t.nodes);
  }
  const double node_reduction =
      all_nodes > 0.0 ? warm_nodes / all_nodes : 0.0;

  // ------------------------------------------------ NodeLimit rescue
  // A budget-bound minimum-support instance: under the same small node
  // budget, plain warm DFS runs out of nodes before proving optimality while
  // the propagation stack closes the instance.
  const auto rescue_d = static_cast<std::size_t>(flags.get_int("rescue-d", 40));
  const auto rescue_m =
      static_cast<std::size_t>(flags.get_int("rescue-m", 60));
  const auto rescue_nodes =
      static_cast<std::size_t>(flags.get_int("rescue-nodes", 12));
  const auto rescue_seed =
      static_cast<std::uint64_t>(flags.get_int("rescue-seed", 606));
  opt::MipStatus warm_status, all_status;
  std::size_t warm_used = 0, all_used = 0;
  {
    opt::MipOptions warm_opts;
    warm_opts.time_limit_seconds = 10.0;
    warm_opts.max_nodes = rescue_nodes;
    opt::MipOptions all_opts = warm_opts;
    all_opts.gomory_cuts = true;
    all_opts.cover_cuts = true;
    all_opts.reduced_cost_fixing = true;
    all_opts.pseudo_cost_branching = true;

    rng::Rng r1(33 + rescue_seed);
    const opt::Model m1 =
        min_support_band_model(rescue_d, rescue_m, 0.10, r1);
    const opt::MipResult warm_res = opt::solve_mip(m1, warm_opts);
    const opt::MipResult all_res = opt::solve_mip(m1, all_opts);
    warm_status = warm_res.status;
    all_status = all_res.status;
    warm_used = warm_res.nodes_explored;
    all_used = all_res.nodes_explored;
  }
  const bool rescued = warm_status == opt::MipStatus::NodeLimit &&
                       all_status == opt::MipStatus::Optimal;
  std::printf(
      "\nRescue instance (d=%zu, m=%zu, %zu-node budget): bnb_warm %s after\n"
      "%zu nodes; cuts+rcfix+pseudocost %s after %zu nodes.\n",
      rescue_d, rescue_m, rescue_nodes, status_name(warm_status), warm_used,
      status_name(all_status), all_used);

  std::printf(
      "\nReading: the root cut loop and strong-branching probes shrink the\n"
      "tree (nodes) rather than just the per-node cost (the warm-start\n"
      "ratio); node reduction all-over-warm = %.2fx across the sweep.\n",
      node_reduction);

  merge_opt_json(json_path, tallies, node_reduction, rescued);
  std::printf("\nmerged ablation results into %s\n", json_path.c_str());
  return 0;
}
