// Ablation: components of the MIP attack solver (DESIGN.md §4.1).
//
// The paper used Gurobi as a black box; our substitute stacks a primal
// heuristic (LP/correlation prefix scan -> exact 2-variable refit -> grow ->
// maximum-likelihood polish) on branch-and-bound. This bench isolates the
// contribution of each stage:
//
//   bnb_cold    : pure branch and bound, every node LP solved from scratch
//   bnb_warm    : pure branch and bound, nodes warm-started from the parent
//                 basis via the dual simplex (the default solver mode)
//   heuristic   : full primal heuristic (the default)
//   lp_root     : heuristic with LP-relaxation ordering forced
//   corr_root   : heuristic with correlation ordering forced
//
// Usage: bench_ablation_mip [--d=60] [--queries=N] [--seed=S]
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "data/quest.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

namespace {

struct Variant {
  const char* name;
  core::MipAttackOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto d = static_cast<std::size_t>(flags.get_int("d", 60));
  const auto num_queries =
      static_cast<std::size_t>(flags.get_int("queries", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner("Ablation: MIP attack solver components",
                      "Gurobi-substitute design choices (DESIGN.md §4.1)");
  std::printf("d = m = %zu, rho = 0.25, sigma = 0.5, %zu queries\n\n", d,
              num_queries);

  std::vector<Variant> variants;
  {
    Variant v{"bnb_cold", {}};
    v.options.use_heuristic = false;
    v.options.solver.time_limit_seconds = 5.0;
    v.options.solver.warm_start = false;
    variants.push_back(v);
  }
  {
    Variant v{"bnb_warm", {}};
    v.options.use_heuristic = false;
    v.options.solver.time_limit_seconds = 5.0;
    variants.push_back(v);
  }
  {
    Variant v{"heuristic", {}};
    variants.push_back(v);
  }
  {
    Variant v{"lp_root", {}};
    v.options.root_ordering = core::RootOrdering::LpRelaxation;
    variants.push_back(v);
  }
  {
    Variant v{"corr_root", {}};
    v.options.root_ordering = core::RootOrdering::Correlation;
    variants.push_back(v);
  }

  // One shared scenario so variants are comparable.
  scheme::MrseOptions opt;
  opt.vocab_dim = d;
  opt.sigma = 0.5;
  sse::RankedSearchSystem system(opt, seed);
  rng::Rng rng(seed ^ 0xabc);
  data::QuestOptions qopt;
  qopt.num_items = d;
  qopt.density = 0.25;
  qopt.num_transactions = d;
  system.upload_records(data::QuestGenerator(qopt, rng.child(1)).generate());
  std::vector<BitVec> queries;
  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    queries.push_back(rng.binary_with_k_ones(d, 10));
    system.ranked_query(queries.back(), 10);
  }
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < d; ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);

  bench::TablePrinter table({"variant", "P@query", "R@query", "Time(s)",
                             "nodes", "LPiters", "solved"},
                            12);
  table.print_header();
  for (const auto& variant : variants) {
    int solved = 0;
    double seconds = 0.0;
    std::size_t nodes = 0;
    std::size_t lp_iters = 0;
    std::vector<core::PrecisionRecall> prs;
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      const auto res =
          core::run_mip_attack(view, qi, opt.mu, opt.sigma, variant.options);
      nodes += static_cast<std::size_t>(res.telemetry.counter("mip.bnb.nodes"));
      lp_iters += static_cast<std::size_t>(
          res.telemetry.counter("mip.bnb.simplex_iterations"));
      if (!res.found) continue;
      ++solved;
      seconds += res.telemetry.wall_seconds;
      prs.push_back(core::binary_precision_recall(queries[qi], res.query));
    }
    const auto avg = core::average(prs);
    table.print_row({variant.name,
                     avg.precision_valid ? bench::fmt(avg.precision) : "-",
                     avg.recall_valid ? bench::fmt(avg.recall) : "-",
                     bench::fmt(solved > 0 ? seconds / solved : 0.0, 3),
                     std::to_string(nodes), std::to_string(lp_iters),
                     std::to_string(solved) + "/" +
                         std::to_string(num_queries)});
  }

  std::printf(
      "\nReading: warm-started B&B explores the same tree as the cold solver\n"
      "for a fraction of the simplex pivots (dual re-solves from the parent\n"
      "basis); the primal heuristic still solves every instance in\n"
      "milliseconds with higher accuracy. LP and correlation orderings are\n"
      "interchangeable at this scale (correlation scales to d = 1000).\n");
  return 0;
}
