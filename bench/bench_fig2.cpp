// Figure 2 (§VI-A2): MIP attack precision/recall vs the number of observed
// plaintext-ciphertext pairs m, on Enron-style data.
//
// Paper setting: d = 500 bloom filters, m in {125, 250, 500, 1000, 2000},
// records filtered to density in [5%, 35%], 100 queries of 15 keywords.
// Default here: m in {125, 250, 500} with 3 queries per point (~1 minute);
// --full runs the paper's m grid with 10 queries.
//
// Usage: bench_fig2 [--full] [--d=500] [--ms=125,250,500] [--queries=N]
//                   [--seed=S] [--trace-json=PATH] [--metrics-json=PATH]
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "data/email_corpus.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const auto d = static_cast<std::size_t>(flags.get_int("d", 500));
  const std::vector<int> ms = flags.get_int_list(
      "ms", full ? std::vector<int>{125, 250, 500, 1000, 2000}
                 : std::vector<int>{125, 250, 500});
  const auto num_queries =
      static_cast<std::size_t>(flags.get_int("queries", full ? 10 : 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  bench::ObsFlags obs_flags(flags);
  core::ExecContext actx;
  actx.sink = obs_flags.sink();

  bench::print_banner(
      "Figure 2: MIP attack accuracy vs observed pairs m (Enron-style)",
      "d = 500 bloom filters, density filtered to [5%, 35%], sigma = 0.5");
  std::printf("d = %zu, queries per point: %zu\n\n", d, num_queries);

  bench::TablePrinter table({"m", "P@query", "R@query", "Time(s)", "solved"},
                            11);
  table.print_header();

  for (int m_int : ms) {
    const auto m = static_cast<std::size_t>(m_int);
    rng::Rng rng(seed + m);

    // Synthetic Enron substitute: Zipfian email corpus -> bloom filters ->
    // density filter (DESIGN.md §4.4).
    data::EmailCorpusOptions copt;
    copt.num_emails = m * 3;
    copt.vocabulary_size = 3000;
    const auto emails =
        data::EmailCorpusGenerator(copt, rng.child(1)).generate();
    const auto rows = data::encode_corpus(emails, d, 3, seed * 13 + 7);
    const auto keep = data::filter_by_density(rows, 0.05, 0.35);
    if (keep.size() < m) {
      std::printf("m=%zu: corpus yielded only %zu records in band, skipping\n",
                  m, keep.size());
      continue;
    }

    scheme::MrseOptions opt;
    opt.vocab_dim = d;
    opt.sigma = 0.5;
    opt.mu = 1.0;
    sse::RankedSearchSystem system(opt, seed * 3 + m);
    std::vector<BitVec> records;
    for (std::size_t i = 0; i < m; ++i) records.push_back(rows[keep[i]]);
    system.upload_records(records);

    std::vector<BitVec> queries;
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      queries.push_back(rng.binary_with_k_ones(d, 15));
      system.ranked_query(queries.back(), 10);
    }
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < m; ++i) ids.push_back(i);
    const auto view = sse::leak_known_records(system, ids);

    int solved = 0;
    double seconds = 0.0;
    std::vector<core::PrecisionRecall> prs;
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      core::MipAttackOptions aopt;
      aopt.solver.time_limit_seconds = 60.0;
      const auto res =
          core::run_mip_attack(view, qi, opt.mu, opt.sigma, aopt, actx);
      if (!res.found) continue;
      ++solved;
      seconds += res.telemetry.wall_seconds;
      prs.push_back(core::binary_precision_recall(queries[qi], res.query));
    }
    const auto avg = core::average(prs);
    table.print_row(
        {std::to_string(m), bench::fmt(avg.precision), bench::fmt(avg.recall),
         bench::fmt(solved > 0 ? seconds / solved : 0.0, 3),
         std::to_string(solved) + "/" + std::to_string(num_queries)});
  }

  std::printf(
      "\nShape to compare with the paper's Figure 2: precision and recall\n"
      "rise with m; by m >= 500 the reconstruction is close to exact.\n");
  obs_flags.finish();
  return 0;
}
