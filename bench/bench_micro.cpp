// Micro-benchmarks (google-benchmark) for the substrates: linear algebra,
// simplex, NNLS/NMF, text pipeline, encryption throughput and the LEP attack
// kernel. These are ablation-style numbers, not paper reproductions.
#include <benchmark/benchmark.h>

#include "core/lep.hpp"
#include "data/queries.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "nmf/nmf.hpp"
#include "nmf/nnls.hpp"
#include "opt/simplex.hpp"
#include "scheme/mkfse.hpp"
#include "scheme/scheme2.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"
#include "text/bloom_filter.hpp"

using namespace aspe;

namespace {

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(1);
  const auto a = linalg::random_invertible(n, rng);
  const Vec b = rng.uniform_vec(n, -1.0, 1.0);
  for (auto _ : state) {
    linalg::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LuSolve)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(2);
  const auto a = linalg::random_matrix(n, rng);
  const auto b = linalg::random_matrix(n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(64)->Arg(128)->Arg(256);

void BM_SimplexLp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(3);
  opt::Model m;
  for (std::size_t j = 0; j < n; ++j) m.add_variable(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    opt::LinExpr e;
    for (std::size_t j = 0; j < n; ++j) e.push_back({j, rng.uniform(0.0, 1.0)});
    m.add_constraint(std::move(e), opt::Sense::LessEqual,
                     0.3 * static_cast<double>(n));
  }
  opt::LinExpr obj;
  for (std::size_t j = 0; j < n; ++j) obj.push_back({j, -rng.uniform(0.0, 1.0)});
  m.set_objective(std::move(obj));
  for (auto _ : state) benchmark::DoNotOptimize(opt::solve_lp(m));
}
BENCHMARK(BM_SimplexLp)->Arg(20)->Arg(50)->Arg(100);

void BM_Nnls(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(4);
  linalg::Matrix a(2 * n, n);
  for (auto& x : a.data()) x = rng.uniform(0.0, 1.0);
  const Vec b = rng.uniform_vec(2 * n, 0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(nmf::nnls(a, b));
}
BENCHMARK(BM_Nnls)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseNmfIteration(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(5);
  linalg::Matrix w(d, 2 * d), h(d, 2 * d);
  for (auto& x : w.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  for (auto& x : h.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  const linalg::Matrix r = w.transpose() * h;
  nmf::SparseNmfOptions opt;
  opt.max_iterations = 1;
  opt.rel_tol = 0.0;
  opt.algorithm = nmf::Algorithm::MultiplicativeUpdate;
  for (auto _ : state) {
    rng::Rng run_rng(6);
    benchmark::DoNotOptimize(nmf::sparse_nmf(r, d, opt, run_rng));
  }
}
BENCHMARK(BM_SparseNmfIteration)->Arg(16)->Arg(32)->Arg(64);

void BM_BloomEncode(benchmark::State& state) {
  std::vector<std::string> keywords;
  for (int i = 0; i < 30; ++i) keywords.push_back("keyword" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::encode_keywords(keywords, 500, 3, 42));
  }
}
BENCHMARK(BM_BloomEncode);

void BM_Scheme2EncryptRecord(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(7);
  scheme::Scheme2Options opt;
  opt.record_dim = d;
  const scheme::AspeScheme2 scheme(opt, rng);
  const Vec p = rng.uniform_vec(d, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.encrypt_record(p, rng));
  }
}
BENCHMARK(BM_Scheme2EncryptRecord)->Arg(32)->Arg(128)->Arg(512);

void BM_CipherScore(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(8);
  scheme::Scheme2Options opt;
  opt.record_dim = d;
  const scheme::AspeScheme2 scheme(opt, rng);
  const auto ci = scheme.encrypt_record(rng.uniform_vec(d, -1.0, 1.0), rng);
  const auto ct = scheme.encrypt_query(rng.uniform_vec(d, -1.0, 1.0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme::cipher_score(ci, ct));
  }
}
BENCHMARK(BM_CipherScore)->Arg(128)->Arg(512);

void BM_MkfseIndex(benchmark::State& state) {
  rng::Rng rng(9);
  scheme::MkfseOptions opt;
  const scheme::Mkfse scheme(opt, rng);
  std::vector<std::string> keywords;
  for (int i = 0; i < 10; ++i) keywords.push_back("word" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.build_index(keywords));
  }
}
BENCHMARK(BM_MkfseIndex);

void BM_LepAttack(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  scheme::Scheme2Options opt;
  opt.record_dim = d;
  sse::SecureKnnSystem system(opt, 10);
  rng::Rng rng(11);
  system.upload_records(data::real_records(d + 5, d, -1.0, 1.0, rng));
  for (std::size_t j = 0; j < d + 3; ++j) {
    system.knn_query(rng.uniform_vec(d, -1.0, 1.0), 3);
  }
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i <= d; ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_lep_attack(view));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LepAttack)->Arg(16)->Arg(32)->Arg(64)->Complexity();

}  // namespace

BENCHMARK_MAIN();
