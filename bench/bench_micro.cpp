// Micro-benchmarks (google-benchmark) for the substrates: linear algebra,
// simplex, NNLS/NMF, text pipeline, encryption throughput and the LEP attack
// kernel. These are ablation-style numbers, not paper reproductions.
#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/lep.hpp"
#include "core/mip_attack.hpp"
#include "core/snmf_attack.hpp"
#include "data/queries.hpp"
#include "data/quest.hpp"
#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/svd.hpp"
#include "nmf/nmf.hpp"
#include "nmf/nnls.hpp"
#include "obs/sinks.hpp"
#include "opt/mip.hpp"
#include "opt/simplex.hpp"
#include "par/thread_pool.hpp"
#include "scheme/mkfse.hpp"
#include "scheme/scheme2.hpp"
#include "scheme/split_encryptor.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"
#include "text/bloom_filter.hpp"

using namespace aspe;

namespace {

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(1);
  const auto a = linalg::random_invertible(n, rng);
  const Vec b = rng.uniform_vec(n, -1.0, 1.0);
  for (auto _ : state) {
    linalg::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LuSolve)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(2);
  const auto a = linalg::random_matrix(n, rng);
  const auto b = linalg::random_matrix(n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(64)->Arg(128)->Arg(256);

void BM_SimplexLp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(3);
  opt::Model m;
  for (std::size_t j = 0; j < n; ++j) m.add_variable(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    opt::LinExpr e;
    for (std::size_t j = 0; j < n; ++j) e.push_back({j, rng.uniform(0.0, 1.0)});
    m.add_constraint(std::move(e), opt::Sense::LessEqual,
                     0.3 * static_cast<double>(n));
  }
  opt::LinExpr obj;
  for (std::size_t j = 0; j < n; ++j) obj.push_back({j, -rng.uniform(0.0, 1.0)});
  m.set_objective(std::move(obj));
  for (auto _ : state) benchmark::DoNotOptimize(opt::solve_lp(m));
}
BENCHMARK(BM_SimplexLp)->Arg(20)->Arg(50)->Arg(100);

void BM_Nnls(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(4);
  linalg::Matrix a(2 * n, n);
  for (auto& x : a.data()) x = rng.uniform(0.0, 1.0);
  const Vec b = rng.uniform_vec(2 * n, 0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(nmf::nnls(a, b));
}
BENCHMARK(BM_Nnls)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseNmfIteration(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(5);
  linalg::Matrix w(d, 2 * d), h(d, 2 * d);
  for (auto& x : w.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  for (auto& x : h.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  const linalg::Matrix r = w.transpose() * h;
  nmf::SparseNmfOptions opt;
  opt.max_iterations = 1;
  opt.rel_tol = 0.0;
  opt.algorithm = nmf::Algorithm::MultiplicativeUpdate;
  for (auto _ : state) {
    rng::Rng run_rng(6);
    benchmark::DoNotOptimize(nmf::sparse_nmf(r, d, opt, run_rng));
  }
}
BENCHMARK(BM_SparseNmfIteration)->Arg(16)->Arg(32)->Arg(64);

void BM_BloomEncode(benchmark::State& state) {
  std::vector<std::string> keywords;
  for (int i = 0; i < 30; ++i) keywords.push_back("keyword" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::encode_keywords(keywords, 500, 3, 42));
  }
}
BENCHMARK(BM_BloomEncode);

void BM_Scheme2EncryptRecord(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(7);
  scheme::Scheme2Options opt;
  opt.record_dim = d;
  const scheme::AspeScheme2 scheme(opt, rng);
  const Vec p = rng.uniform_vec(d, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.encrypt_record(p, rng));
  }
}
BENCHMARK(BM_Scheme2EncryptRecord)->Arg(32)->Arg(128)->Arg(512);

void BM_CipherScore(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(8);
  scheme::Scheme2Options opt;
  opt.record_dim = d;
  const scheme::AspeScheme2 scheme(opt, rng);
  const auto ci = scheme.encrypt_record(rng.uniform_vec(d, -1.0, 1.0), rng);
  const auto ct = scheme.encrypt_query(rng.uniform_vec(d, -1.0, 1.0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme::cipher_score(ci, ct));
  }
}
BENCHMARK(BM_CipherScore)->Arg(128)->Arg(512);

void BM_MkfseIndex(benchmark::State& state) {
  rng::Rng rng(9);
  scheme::MkfseOptions opt;
  const scheme::Mkfse scheme(opt, rng);
  std::vector<std::string> keywords;
  for (int i = 0; i < 10; ++i) keywords.push_back("word" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.build_index(keywords));
  }
}
BENCHMARK(BM_MkfseIndex);

// ------------------------------------------------------ thread-count sweeps
//
// Each sweep runs the same kernel at 1/2/4/8 threads and reports the speedup
// relative to its own single-thread run (registration order guarantees the
// t=1 baseline runs first). Results are bit-identical across the sweep —
// only the wall clock moves.

/// Remember the t=1 average seconds per kernel and report baseline/current.
double record_speedup(const std::string& kernel, std::size_t threads,
                      double avg_seconds) {
  static std::map<std::string, double> baseline;
  if (threads == 1) baseline[kernel] = avg_seconds;
  const auto it = baseline.find(kernel);
  if (it == baseline.end() || avg_seconds <= 0.0) return 0.0;
  return it->second / avg_seconds;
}

void BM_MatrixMultiplyThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(12);
  const auto a = linalg::random_matrix(192, rng);
  const auto b = linalg::random_matrix(192, rng);
  par::set_default_threads(threads);
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
    ++iters;
  }
  const double avg = watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  par::set_default_threads(0);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["speedup"] = record_speedup("matmul", threads, avg);
}
BENCHMARK(BM_MatrixMultiplyThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BuildScoreMatrixThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 24, m = 96, n = 96;
  rng::Rng rng(13);
  scheme::SplitEncryptor enc(d, rng);
  std::vector<scheme::CipherPair> indexes, trapdoors;
  for (std::size_t i = 0; i < m; ++i) {
    indexes.push_back(
        enc.encrypt_index(to_real(rng.binary_bernoulli(d, 0.3)), rng));
  }
  for (std::size_t j = 0; j < n; ++j) {
    trapdoors.push_back(
        enc.encrypt_trapdoor(to_real(rng.binary_bernoulli(d, 0.25)), rng));
  }
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_score_matrix(indexes, trapdoors, threads));
    ++iters;
  }
  const double avg = watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["speedup"] = record_speedup("score_matrix", threads, avg);
}
BENCHMARK(BM_BuildScoreMatrixThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SnmfRestartsThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 12;
  rng::Rng rng(14);
  linalg::Matrix w(d, 3 * d), h(d, 3 * d);
  for (auto& x : w.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  for (auto& x : h.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  const linalg::Matrix scores = w.transpose() * h;
  core::SnmfAttackOptions opt;
  opt.rank = d;
  opt.restarts = 8;
  opt.nmf.max_iterations = 60;
  core::ExecContext ctx;
  ctx.threads = threads;
  ctx.seed = 15;
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_snmf_attack(scores, opt, ctx));
    ++iters;
  }
  const double avg = watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["speedup"] = record_speedup("snmf_restarts", threads, avg);
}
BENCHMARK(BM_SnmfRestartsThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// -------------------------------------------------- GEMM GFLOP/s sweep
//
// Blocked packed kernel throughput across sizes and thread counts, plus a
// seed-style naive triple-loop reference at 512 for the speedup headline.
// Every run is appended to a registry that main() dumps to
// BENCH_linalg.json next to the binary's working directory.

struct LinalgRecord {
  std::string kernel;
  std::size_t n = 0;
  std::size_t threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;
};

std::vector<LinalgRecord>& linalg_records() {
  static std::vector<LinalgRecord> records;
  return records;
}

void BM_GemmGflops(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  rng::Rng rng(21);
  const auto a = linalg::random_matrix(n, rng);
  const auto b = linalg::random_matrix(n, rng);
  linalg::Matrix c(n, n);
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    linalg::gemm(1.0, a.cview(), linalg::Op::None, b.cview(),
                 linalg::Op::None, 0.0, c.view(), threads);
    benchmark::DoNotOptimize(c.data().data());
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const double gflops = avg > 0.0 ? flops / avg / 1e9 : 0.0;
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["GFLOPs"] = gflops;
  linalg_records().push_back({"gemm_blocked", n, threads, avg, gflops});
}
BENCHMARK(BM_GemmGflops)
    ->Args({128, 1})
    ->Args({128, 4})
    ->Args({128, 8})
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 8})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({1024, 8});

void BM_GemmNaiveReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(21);
  const auto a = linalg::random_matrix(n, rng);
  const auto b = linalg::random_matrix(n, rng);
  linalg::Matrix c(n, n);
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    // Seed-era operator*: serial i-k-j triple loop with a zero skip.
    for (auto& x : c.data()) x = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double* ci = c.row_ptr(i);
      for (std::size_t k = 0; k < n; ++k) {
        const double av = a(i, k);
        if (av == 0.0) continue;
        const double* bk = b.row_ptr(k);
        for (std::size_t j = 0; j < n; ++j) ci[j] += av * bk[j];
      }
    }
    benchmark::DoNotOptimize(c.data().data());
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const double gflops = avg > 0.0 ? flops / avg / 1e9 : 0.0;
  state.counters["GFLOPs"] = gflops;
  linalg_records().push_back({"gemm_naive", n, 1, avg, gflops});
}
BENCHMARK(BM_GemmNaiveReference)->Arg(512);

/// BENCH_linalg.json: the sweep records plus the blocked-vs-naive headline
/// ratio at 512 single-thread (the PR's acceptance number).
void write_linalg_json(const std::string& path) {
  if (linalg_records().empty()) return;  // sweep filtered out on this run
  // google-benchmark re-invokes each case while calibrating iteration
  // counts; keep only the last (fully measured) record per configuration.
  std::vector<LinalgRecord> records;
  for (const auto& r : linalg_records()) {
    bool replaced = false;
    for (auto& kept : records) {
      if (kept.kernel == r.kernel && kept.n == r.n &&
          kept.threads == r.threads) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) records.push_back(r);
  }
  double naive512 = 0.0;
  double blocked512_t1 = 0.0;
  for (const auto& r : records) {
    if (r.kernel == "gemm_naive" && r.n == 512) naive512 = r.seconds;
    if (r.kernel == "gemm_blocked" && r.n == 512 && r.threads == 1) {
      blocked512_t1 = r.seconds;
    }
  }
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"linalg_gemm_sweep\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"n\": " << r.n
        << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
        << ", \"gflops\": " << r.gflops << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup_blocked_vs_naive_512_t1\": "
      << (blocked512_t1 > 0.0 ? naive512 / blocked512_t1 : 0.0) << "\n}\n";
}

// ------------------------------------------- warm-start LP / MIP sweep
//
// Cold vs warm-started node throughput for the optimizer, on the same
// band-constraint models the §IV MIP attack produces (rhat/that continuous +
// binary keywords, one GE/LE noise-band pair per known record). Results go
// to BENCH_opt.json; the headline is the cold/warm ratio of total simplex
// iterations across the branch-and-bound sweep.

struct OptRecord {
  std::string bench;  // "lp_resolve" | "mip_bnb"
  std::string mode;   // "cold" | "warm"
  std::size_t d = 0;  // keywords (binaries) or LP variables
  std::size_t m = 0;  // known records (band pairs) or LP rows
  std::size_t nodes = 0;
  std::size_t iterations = 0;
  double seconds = 0.0;
};

std::vector<OptRecord>& opt_records() {
  static std::vector<OptRecord> records;
  return records;
}

/// Attack-shaped feasibility model: find (rhat, that, q) with every noise
/// term rhat*c_i - that - P_i.q inside [mu - 3s, mu + 3s]. Feasible by
/// construction (c_i is derived from a planted query).
opt::Model band_model(std::size_t d, std::size_t m, rng::Rng& rng) {
  const double rhat_true = 1.3, that_true = 0.7, sigma = 0.05;
  std::vector<BitVec> records;
  BitVec q = rng.binary_bernoulli(d, 0.3);
  q[0] = 1;  // at least one keyword
  for (std::size_t i = 0; i < m; ++i) {
    records.push_back(rng.binary_bernoulli(d, 0.4));
  }
  opt::Model model;
  const auto rhat = model.add_variable(1e-4, 1e4);
  const auto that = model.add_variable(1e-6, 1e4);
  std::vector<std::size_t> qv(d);
  for (std::size_t k = 0; k < d; ++k) qv[k] = model.add_binary();
  opt::LinExpr card;
  for (std::size_t k = 0; k < d; ++k) card.push_back({qv[k], 1.0});
  model.add_constraint(std::move(card), opt::Sense::GreaterEqual, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    double a = 0.0;
    for (std::size_t k = 0; k < d; ++k) a += (records[i][k] & q[k]) ? 1.0 : 0.0;
    const double noise = rng.uniform(-2.5 * sigma, 2.5 * sigma);
    const double c = (a + that_true + noise) / rhat_true;
    opt::LinExpr e;
    e.push_back({rhat, c});
    e.push_back({that, -1.0});
    for (std::size_t k = 0; k < d; ++k) {
      if (records[i][k] != 0) e.push_back({qv[k], -1.0});
    }
    model.add_constraint(e, opt::Sense::GreaterEqual, -3.0 * sigma);
    model.add_constraint(std::move(e), opt::Sense::LessEqual, 3.0 * sigma);
  }
  return model;
}

void BM_MipBandModelBnB(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const bool warm = state.range(2) != 0;
  rng::Rng rng(33 + d + m);
  const opt::Model model = band_model(d, m, rng);
  opt::MipOptions opts;
  opts.first_feasible = true;  // Algorithm 2's mode
  opts.warm_start = warm;
  opts.time_limit_seconds = 10.0;
  opt::MipResult last;
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    last = opt::solve_mip(model, opts);
    benchmark::DoNotOptimize(last.nodes_explored);
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  state.counters["nodes"] = static_cast<double>(last.nodes_explored);
  state.counters["lp_iters"] = static_cast<double>(last.simplex_iterations);
  opt_records().push_back({"mip_bnb", warm ? "warm" : "cold", d, m,
                           last.nodes_explored, last.simplex_iterations, avg});
}
BENCHMARK(BM_MipBandModelBnB)
    ->Args({20, 30, 0})
    ->Args({20, 30, 1})
    ->Args({30, 50, 0})
    ->Args({30, 50, 1})
    ->Args({40, 60, 0})
    ->Args({40, 60, 1});

void BM_LpWarmResolve(benchmark::State& state) {
  // One bound tightening + re-solve, the B&B node kernel: cold re-solves
  // from the artificial basis, warm restores the root basis and runs the
  // dual simplex.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  rng::Rng rng(3);  // same generator as BM_SimplexLp
  opt::Model m;
  for (std::size_t j = 0; j < n; ++j) m.add_variable(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    opt::LinExpr e;
    for (std::size_t j = 0; j < n; ++j) e.push_back({j, rng.uniform(0.0, 1.0)});
    m.add_constraint(std::move(e), opt::Sense::LessEqual,
                     0.3 * static_cast<double>(n));
  }
  opt::LinExpr obj;
  for (std::size_t j = 0; j < n; ++j) obj.push_back({j, -rng.uniform(0.0, 1.0)});
  m.set_objective(std::move(obj));

  opt::SimplexSolver solver(m);
  const opt::LpResult root = solver.solve();
  const opt::BasisState root_basis = solver.basis();
  std::size_t var = 0;
  std::size_t total_iters = 0, resolves = 0;
  Stopwatch watch;
  for (auto _ : state) {
    solver.set_bounds(var, 0.0, 0.5);  // branch-like tightening
    opt::LpResult r;
    if (warm) {
      solver.restore(root_basis);
      r = solver.solve_warm();
    } else {
      r = solver.solve();
    }
    benchmark::DoNotOptimize(r.objective);
    total_iters += r.iterations;
    ++resolves;
    solver.set_bounds(var, 0.0, 1.0);
    var = (var + 1) % n;
  }
  benchmark::DoNotOptimize(root.objective);
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(resolves, 1));
  const double avg_iters = static_cast<double>(total_iters) /
                           static_cast<double>(std::max<std::size_t>(resolves, 1));
  state.counters["iters_per_resolve"] = avg_iters;
  opt_records().push_back({"lp_resolve", warm ? "warm" : "cold", n, n, resolves,
                           static_cast<std::size_t>(avg_iters + 0.5), avg});
}
BENCHMARK(BM_LpWarmResolve)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({100, 0})
    ->Args({100, 1});

/// BENCH_opt.json: the sweep records plus the headline cold/warm iteration
/// ratio summed over the branch-and-bound configurations (the PR's
/// acceptance number).
void write_opt_json(const std::string& path) {
  if (opt_records().empty()) return;  // sweep filtered out on this run
  // Keep only the last (fully measured) record per configuration; benchmark
  // re-invokes each case while calibrating.
  std::vector<OptRecord> records;
  for (const auto& r : opt_records()) {
    bool replaced = false;
    for (auto& kept : records) {
      if (kept.bench == r.bench && kept.mode == r.mode && kept.d == r.d &&
          kept.m == r.m) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) records.push_back(r);
  }
  double cold_iters = 0.0, warm_iters = 0.0;
  double cold_seconds = 0.0, warm_seconds = 0.0;
  for (const auto& r : records) {
    if (r.bench != "mip_bnb") continue;
    if (r.mode == "cold") {
      cold_iters += static_cast<double>(r.iterations);
      cold_seconds += r.seconds;
    } else {
      warm_iters += static_cast<double>(r.iterations);
      warm_seconds += r.seconds;
    }
  }
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"opt_warm_start_sweep\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"bench\": \"" << r.bench << "\", \"mode\": \"" << r.mode
        << "\", \"d\": " << r.d << ", \"m\": " << r.m
        << ", \"nodes\": " << r.nodes << ", \"iterations\": " << r.iterations
        << ", \"seconds\": " << r.seconds << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"mip_iteration_reduction_cold_over_warm\": "
      << (warm_iters > 0.0 ? cold_iters / warm_iters : 0.0)
      << ",\n  \"mip_wallclock_speedup_cold_over_warm\": "
      << (warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0) << "\n}\n";
}

// ----------------------------------------------------- obs overhead sweep
//
// Each attack runs three ways — no sink (the instrumented code's inert
// branch), NullSink (full record/merge, output discarded) and MemorySink
// (record + accumulate) — and the ratios land in BENCH_obs.json. The
// acceptance bar is the "none" mode: attaching nothing must cost < 1%
// relative to the pre-instrumentation drivers, which the inert-branch times
// recorded here document against the PR 3 baselines.

struct ObsRecord {
  std::string kernel;
  std::string sink;  // "none" | "null" | "memory"
  double seconds = 0.0;
};

std::vector<ObsRecord>& obs_records() {
  static std::vector<ObsRecord> records;
  return records;
}

const char* obs_mode_name(std::int64_t mode) {
  return mode == 0 ? "none" : mode == 1 ? "null" : "memory";
}

/// Sink for the given sweep mode. The sinks live for the whole process; the
/// MemorySink is cleared per benchmark so accumulation stays bounded.
obs::Sink* obs_mode_sink(std::int64_t mode) {
  static obs::NullSink null_sink;
  static obs::MemorySink memory_sink;
  if (mode == 1) return &null_sink;
  if (mode == 2) {
    memory_sink.clear();
    return &memory_sink;
  }
  return nullptr;
}

void BM_LepAttackObs(benchmark::State& state) {
  const std::size_t d = 32;
  scheme::Scheme2Options opt;
  opt.record_dim = d;
  sse::SecureKnnSystem system(opt, 10);
  rng::Rng rng(11);
  system.upload_records(data::real_records(d + 5, d, -1.0, 1.0, rng));
  for (std::size_t j = 0; j < d + 3; ++j) {
    system.knn_query(rng.uniform_vec(d, -1.0, 1.0), 3);
  }
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i <= d; ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);
  core::ExecContext ctx;
  ctx.sink = obs_mode_sink(state.range(0));
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_lep_attack(view, {}, ctx));
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  obs_records().push_back({"lep_attack_d32", obs_mode_name(state.range(0)), avg});
}
BENCHMARK(BM_LepAttackObs)->Arg(0)->Arg(1)->Arg(2);

void BM_SnmfAttackObs(benchmark::State& state) {
  const std::size_t d = 12;
  rng::Rng rng(14);
  linalg::Matrix w(d, 3 * d), h(d, 3 * d);
  for (auto& x : w.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  for (auto& x : h.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  const linalg::Matrix scores = w.transpose() * h;
  core::SnmfAttackOptions opt;
  opt.rank = d;
  opt.restarts = 4;
  opt.nmf.max_iterations = 40;
  core::ExecContext ctx;
  ctx.seed = 15;
  ctx.sink = obs_mode_sink(state.range(0));
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_snmf_attack(scores, opt, ctx));
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  obs_records().push_back({"snmf_attack_d12", obs_mode_name(state.range(0)), avg});
}
BENCHMARK(BM_SnmfAttackObs)->Arg(0)->Arg(1)->Arg(2);

void BM_MipAttackObs(benchmark::State& state) {
  const std::size_t d = 16, m = 16;
  scheme::MrseOptions opt;
  opt.vocab_dim = d;
  sse::RankedSearchSystem system(opt, 41);
  rng::Rng rng(42);
  data::QuestOptions qopt;
  qopt.num_items = d;
  qopt.density = 0.3;
  qopt.num_transactions = m;
  system.upload_records(data::QuestGenerator(qopt, rng.child(1)).generate());
  system.ranked_query(rng.binary_with_k_ones(d, 3), 5);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < m; ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);
  core::MipAttackOptions aopt;
  aopt.solver.time_limit_seconds = 10.0;
  core::ExecContext ctx;
  ctx.sink = obs_mode_sink(state.range(0));
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_mip_attack(view, 0, opt.mu, opt.sigma, aopt, ctx));
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  obs_records().push_back({"mip_attack_d16", obs_mode_name(state.range(0)), avg});
}
BENCHMARK(BM_MipAttackObs)->Arg(0)->Arg(1)->Arg(2);

/// BENCH_obs.json: per-attack wall times under the three sink modes plus
/// the sink-over-none overhead ratios (the PR's acceptance numbers).
void write_obs_json(const std::string& path) {
  if (obs_records().empty()) return;  // sweep filtered out on this run
  // Keep only the last (fully measured) record per configuration; benchmark
  // re-invokes each case while calibrating.
  std::vector<ObsRecord> records;
  for (const auto& r : obs_records()) {
    bool replaced = false;
    for (auto& kept : records) {
      if (kept.kernel == r.kernel && kept.sink == r.sink) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) records.push_back(r);
  }
  const auto seconds_of = [&](const std::string& kernel,
                              const std::string& sink) {
    for (const auto& r : records) {
      if (r.kernel == kernel && r.sink == sink) return r.seconds;
    }
    return 0.0;
  };
  std::vector<std::string> kernels;
  for (const auto& r : records) {
    bool seen = false;
    for (const auto& k : kernels) seen = seen || k == r.kernel;
    if (!seen) kernels.push_back(r.kernel);
  }
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"obs_sink_overhead_sweep\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"sink\": \"" << r.sink
        << "\", \"seconds\": " << r.seconds << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"overheads\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const double none = seconds_of(kernels[i], "none");
    const double null_s = seconds_of(kernels[i], "null");
    const double mem = seconds_of(kernels[i], "memory");
    out << "    {\"kernel\": \"" << kernels[i]
        << "\", \"null_over_none\": " << (none > 0.0 ? null_s / none : 0.0)
        << ", \"memory_over_none\": " << (none > 0.0 ? mem / none : 0.0) << "}"
        << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// ------------------------------------------- truncated SVD / warm ANLS sweep
//
// The PR 5 acceptance numbers: latent-dimension estimation through the
// randomized truncated SVD vs the full Jacobi SVD, and the end-to-end SNMF
// attack with cold vs warm-started NNLS columns, at Table 4 scale. Results
// land in BENCH_snmf.json; the attack outputs must be bit-identical across
// the modes (warm starting and the truncated rank path are optimizations,
// not approximations).

struct SnmfRecord {
  std::string bench;  // "latent_dim" | "attack"
  std::string mode;   // "full" | "truncated" | "cold" | "warm"
  std::size_t n = 0;  // score matrix side (indexes == trapdoors == n)
  std::size_t d = 0;  // latent dimension (bloom-filter length)
  double seconds = 0.0;
  std::size_t value = 0;  // estimated rank / selected restart
};

std::vector<SnmfRecord>& snmf_records() {
  static std::vector<SnmfRecord> records;
  return records;
}

/// Table-4-shaped score matrix: R = W^T H from sparse binary factors, the
/// exact-rank-d structure Algorithm 3 consumes. Deterministic per (n, d).
linalg::Matrix make_scores(std::size_t n, std::size_t d) {
  rng::Rng rng(17 + n + d);
  linalg::Matrix w(d, n), h(d, n);
  for (auto& x : w.data()) x = rng.bernoulli(0.3) ? 1.0 : 0.0;
  for (auto& x : h.data()) x = rng.bernoulli(0.25) ? 1.0 : 0.0;
  return w.transpose() * h;
}

void BM_LatentDimEstimate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool truncated = state.range(1) != 0;
  const std::size_t d = 24;
  const linalg::Matrix scores = make_scores(n, d);
  core::ExecContext ctx;
  ctx.seed = 19;
  std::size_t estimate = 0;
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    if (truncated) {
      estimate = core::estimate_latent_dimension(scores, 1e-8, ctx);
    } else {
      // The pre-truncation path: full Jacobi SVD, count above rel_tol.
      estimate = linalg::Svd(scores).rank(1e-8);
    }
    benchmark::DoNotOptimize(estimate);
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  state.counters["estimate"] = static_cast<double>(estimate);
  snmf_records().push_back(
      {"latent_dim", truncated ? "truncated" : "full", n, d, avg, estimate});
}
BENCHMARK(BM_LatentDimEstimate)
    ->Args({192, 0})
    ->Args({192, 1})
    ->Args({288, 0})
    ->Args({288, 1})
    ->Args({384, 0})
    ->Args({384, 1});

/// Last fully-measured attack result per mode, for the bit-identical check
/// at JSON-write time.
core::SnmfAttackResult& snmf_attack_result(bool warm) {
  static core::SnmfAttackResult cold, warmed;
  return warm ? warmed : cold;
}

void BM_SnmfAttackWarmStart(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const std::size_t n = 300, d = 24;
  const linalg::Matrix scores = make_scores(n, d);
  core::SnmfAttackOptions opt;
  opt.rank = d;
  opt.restarts = 3;
  opt.nmf.max_iterations = 60;
  opt.nmf.warm_start = warm;
  core::ExecContext ctx;
  ctx.seed = 15;
  Stopwatch watch;
  std::size_t iters = 0;
  for (auto _ : state) {
    snmf_attack_result(warm) = core::run_snmf_attack(scores, opt, ctx);
    benchmark::DoNotOptimize(snmf_attack_result(warm).best_fit_error);
    ++iters;
  }
  const double avg =
      watch.seconds() / static_cast<double>(std::max<std::size_t>(iters, 1));
  const auto selected = static_cast<std::size_t>(
      snmf_attack_result(warm).telemetry.counter("snmf.selected_restart", 0.0));
  snmf_records().push_back(
      {"attack", warm ? "warm" : "cold", n, d, avg, selected});
}
BENCHMARK(BM_SnmfAttackWarmStart)->Arg(0)->Arg(1);

/// BENCH_snmf.json: the sweep records plus the two headline speedups (the
/// PR's acceptance numbers) and the cross-mode equality flags.
void write_snmf_json(const std::string& path) {
  if (snmf_records().empty()) return;  // sweep filtered out on this run
  // Keep only the last (fully measured) record per configuration; benchmark
  // re-invokes each case while calibrating.
  std::vector<SnmfRecord> records;
  for (const auto& r : snmf_records()) {
    bool replaced = false;
    for (auto& kept : records) {
      if (kept.bench == r.bench && kept.mode == r.mode && kept.n == r.n) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) records.push_back(r);
  }
  // Headlines: latent-dim speedup at the largest measured n; attack
  // wall-clock cold over warm.
  std::size_t n_max = 0;
  for (const auto& r : records) {
    if (r.bench == "latent_dim") n_max = std::max(n_max, r.n);
  }
  double full_s = 0.0, trunc_s = 0.0, cold_s = 0.0, warm_s = 0.0;
  bool estimates_agree = true;
  for (const auto& r : records) {
    if (r.bench == "latent_dim") {
      estimates_agree = estimates_agree && r.value == r.d;
      if (r.n == n_max && r.mode == "full") full_s = r.seconds;
      if (r.n == n_max && r.mode == "truncated") trunc_s = r.seconds;
    } else if (r.bench == "attack") {
      if (r.mode == "cold") cold_s = r.seconds;
      if (r.mode == "warm") warm_s = r.seconds;
    }
  }
  const auto& cold = snmf_attack_result(false);
  const auto& warm = snmf_attack_result(true);
  const bool bit_identical = cold.indexes == warm.indexes &&
                             cold.trapdoors == warm.trapdoors &&
                             cold.best_fit_error == warm.best_fit_error &&
                             cold.telemetry.counter("snmf.selected_restart",
                                                    -1.0) ==
                                 warm.telemetry.counter("snmf.selected_restart",
                                                        -2.0);
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"snmf_truncated_warm_sweep\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"bench\": \"" << r.bench << "\", \"mode\": \"" << r.mode
        << "\", \"n\": " << r.n << ", \"d\": " << r.d
        << ", \"seconds\": " << r.seconds << ", \"value\": " << r.value << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"latent_dim_speedup_full_over_truncated\": "
      << (trunc_s > 0.0 ? full_s / trunc_s : 0.0)
      << ",\n  \"latent_estimates_correct\": "
      << (estimates_agree ? "true" : "false")
      << ",\n  \"attack_wallclock_speedup_cold_over_warm\": "
      << (warm_s > 0.0 ? cold_s / warm_s : 0.0)
      << ",\n  \"attack_outputs_bit_identical\": "
      << (bit_identical ? "true" : "false") << "\n}\n";
}

void BM_LepAttack(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  scheme::Scheme2Options opt;
  opt.record_dim = d;
  sse::SecureKnnSystem system(opt, 10);
  rng::Rng rng(11);
  system.upload_records(data::real_records(d + 5, d, -1.0, 1.0, rng));
  for (std::size_t j = 0; j < d + 3; ++j) {
    system.knn_query(rng.uniform_vec(d, -1.0, 1.0), 3);
  }
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i <= d; ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_lep_attack(view));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LepAttack)->Arg(16)->Arg(32)->Arg(64)->Complexity();

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): identical behaviour, plus the
// BENCH_linalg.json / BENCH_opt.json / BENCH_obs.json / BENCH_snmf.json
// dumps after the runs.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_linalg_json("BENCH_linalg.json");
  write_opt_json("BENCH_opt.json");
  write_obs_json("BENCH_obs.json");
  write_snmf_json("BENCH_snmf.json");
  return 0;
}
