// Figure 3 (§VI-B2): SNMF attack precision/recall vs the number of
// ciphertexts m (= n), on Enron-style data.
//
// Paper setting: d = 500 bloom filters, m = n in {125, ..., 2000}, density
// in [5%, 35%]. Default here: d = 24 with m = n in {24, 48, 96} so the bench
// finishes in ~a minute; --full raises d to 100 and m up to 400.
//
// Usage: bench_fig3 [--full] [--d=24] [--ms=24,48,96] [--seed=S]
//                   [--trace-json=PATH] [--metrics-json=PATH]
#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/metrics.hpp"
#include "core/snmf_attack.hpp"
#include "data/email_corpus.hpp"
#include "sse/system.hpp"
#include "sse/adversary_view.hpp"

using namespace aspe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const auto d = static_cast<std::size_t>(flags.get_int("d", full ? 100 : 24));
  const std::vector<int> ms = flags.get_int_list(
      "ms", full ? std::vector<int>{100, 200, 400}
                 : std::vector<int>{24, 48, 96});
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  bench::ObsFlags obs_flags(flags);

  bench::print_banner(
      "Figure 3: SNMF attack accuracy vs number of ciphertexts m = n",
      "Enron-style corpus -> MKFSE pipeline -> COA reconstruction");
  std::printf("bloom bits d = %zu (paper: 500; see EXPERIMENTS.md scaling)\n\n",
              d);

  bench::TablePrinter table(
      {"m=n", "P@data", "R@data", "P@query", "R@query", "Time(s)"}, 11);
  table.print_header();

  for (int m_int : ms) {
    const auto m = static_cast<std::size_t>(m_int);
    rng::Rng rng(seed + m);

    scheme::MkfseOptions mopt;
    mopt.bloom_bits = d;
    mopt.lsh_functions = 2;
    sse::FuzzySearchSystem system(mopt, seed * 5 + m);

    data::EmailCorpusOptions copt;
    copt.num_emails = m;
    copt.vocabulary_size = 2000;
    copt.min_keywords = 3;
    copt.max_keywords = 10;
    copt.duplicate_fraction = 0.05;
    const auto emails =
        data::EmailCorpusGenerator(copt, rng.child(1)).generate();
    std::vector<std::vector<std::string>> docs;
    for (const auto& e : emails) docs.push_back(e.keywords);
    system.upload_documents(docs);

    // m processed queries, 2-3 keywords each, drawn from real documents.
    for (std::size_t j = 0; j < m; ++j) {
      const auto& doc = docs[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(docs.size()) - 1))];
      std::vector<std::string> q = {doc[0], doc[1 % doc.size()]};
      if (doc.size() > 2 && rng.bernoulli(0.5)) q.push_back(doc[2]);
      system.fuzzy_query(q, 5);
    }

    core::SnmfAttackOptions aopt;
    aopt.rank = d;
    aopt.restarts = 3;
    aopt.nmf.max_iterations = 250;
    aopt.nmf.rel_tol = 1e-7;
    aopt.nmf.algorithm =
        full ? nmf::Algorithm::MultiplicativeUpdate : nmf::Algorithm::Anls;
    const core::ExecContext actx{.seed = seed * 11 + m,
                                 .sink = obs_flags.sink()};
    const auto res =
        core::run_snmf_attack(sse::observe(system.server()), aopt, actx);
    const double seconds = res.telemetry.wall_seconds;

    const auto perm = core::align_latent_dimensions(
        system.plaintext_indexes(), system.plaintext_trapdoors(), res.indexes,
        res.trapdoors);
    std::vector<core::PrecisionRecall> pr_data, pr_query;
    for (std::size_t i = 0; i < m; ++i) {
      pr_data.push_back(core::binary_precision_recall(
          system.plaintext_indexes()[i],
          core::apply_permutation(res.indexes[i], perm)));
      pr_query.push_back(core::binary_precision_recall(
          system.plaintext_trapdoors()[i],
          core::apply_permutation(res.trapdoors[i], perm)));
    }
    const auto avg_d = core::average(pr_data);
    const auto avg_q = core::average(pr_query);
    table.print_row({std::to_string(m),
                     avg_d.precision_valid ? bench::fmt(avg_d.precision) : "-",
                     bench::fmt(avg_d.recall),
                     avg_q.precision_valid ? bench::fmt(avg_q.precision) : "-",
                     bench::fmt(avg_q.recall), bench::fmt(seconds, 1)});
  }

  std::printf(
      "\nShape to compare with the paper's Figure 3: accuracy improves as\n"
      "more ciphertexts are observed — and ciphertexts are free for a COA\n"
      "adversary.\n");
  obs_flags.finish();
  return 0;
}
