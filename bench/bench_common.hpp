// Shared scaffolding for the per-table/figure bench binaries.
//
// Every binary runs with no arguments at a laptop-friendly scale and accepts
// --full for the paper-scale configuration plus fine-grained overrides
// (--dims, --queries, --seed, ...). Output is a plain-text table mirroring
// the corresponding table/figure of the paper.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/sinks.hpp"

namespace aspe::bench {

/// Telemetry flags shared by the paper-reproduction binaries:
/// `--trace-json=PATH` streams chrome://tracing events for every attack run,
/// `--metrics-json=PATH` aggregates counters/gauges across all runs and
/// writes one metrics document at exit. `sink()` is null when neither flag
/// was passed, so benches stay zero-overhead by default; attaching a sink
/// never changes attack output (telemetry is observational only).
class ObsFlags {
 public:
  explicit ObsFlags(const CliFlags& flags)
      : metrics_path_(flags.get_string("metrics-json", "")) {
    const std::string trace_path = flags.get_string("trace-json", "");
    if (!trace_path.empty()) {
      trace_.emplace(trace_path);
      if (!trace_->ok()) {
        std::fprintf(stderr, "cannot open --trace-json path: %s\n",
                     trace_path.c_str());
        std::exit(2);
      }
      tee_.add(&*trace_);
    }
    if (!metrics_path_.empty()) tee_.add(&memory_);
  }

  /// Sink to install in `core::ExecContext`, or nullptr when telemetry is off.
  [[nodiscard]] obs::Sink* sink() {
    return (trace_.has_value() || !metrics_path_.empty()) ? &tee_ : nullptr;
  }

  /// Flush files and report where they went. Call once after the last run.
  void finish() {
    if (trace_.has_value()) {
      trace_->close();
      std::printf("\nwrote trace events (chrome://tracing) via --trace-json\n");
    }
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      memory_.write_metrics_json(out);
      std::printf("\nwrote aggregated metrics to %s\n", metrics_path_.c_str());
    }
  }

 private:
  std::string metrics_path_;
  std::optional<obs::JsonLinesSink> trace_;
  obs::MemorySink memory_;
  obs::TeeSink tee_;
};

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::size_t col_width = 12)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%-*s", int(width_), h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size() * width_; ++i)
      std::printf("-");
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", int(width_), c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::size_t width_;
};

inline std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double v) { return fmt(v, 4); }

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

inline void print_banner(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace aspe::bench
