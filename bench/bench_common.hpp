// Shared scaffolding for the per-table/figure bench binaries.
//
// Every binary runs with no arguments at a laptop-friendly scale and accepts
// --full for the paper-scale configuration plus fine-grained overrides
// (--dims, --queries, --seed, ...). Output is a plain-text table mirroring
// the corresponding table/figure of the paper.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace aspe::bench {

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::size_t col_width = 12)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%-*s", int(width_), h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size() * width_; ++i)
      std::printf("-");
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", int(width_), c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::size_t width_;
};

inline std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double v) { return fmt(v, 4); }

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

inline void print_banner(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace aspe::bench
