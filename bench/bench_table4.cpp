// Table IV (§VI-B2): the frequency distribution of the most frequent
// documents is completely preserved through the plaintext indexes I_i and
// the SNMF-reconstructed indexes I*_i — the statistical-analysis risk.
//
// Paper setting: O_2000 (2000 Enron emails with duplicates), d = 500.
// Default here: 300 emails, d = 24; --full: 2000 emails, d = 100.
//
// Usage: bench_table4 [--full] [--emails=N] [--d=BITS] [--seed=S]
//                     [--trace-json=PATH] [--metrics-json=PATH]
#include <map>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/metrics.hpp"
#include "core/snmf_attack.hpp"
#include "data/email_corpus.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const auto num_emails =
      static_cast<std::size_t>(flags.get_int("emails", full ? 2000 : 300));
  const auto d = static_cast<std::size_t>(flags.get_int("d", full ? 100 : 24));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  bench::ObsFlags obs_flags(flags);

  bench::print_banner(
      "Table IV: frequency distribution of the most frequent documents",
      "preserved through P_i -> I_i -> reconstructed I*_i");
  std::printf("emails: %zu, bloom bits d = %zu\n\n", num_emails, d);

  rng::Rng rng(seed);
  data::EmailCorpusOptions copt;
  copt.num_emails = num_emails;
  copt.vocabulary_size = 2000;
  copt.min_keywords = 3;
  copt.max_keywords = 10;
  copt.duplicate_fraction = 0.08;  // heavy duplicate tail, as in Enron
  const auto emails = data::EmailCorpusGenerator(copt, rng.child(1)).generate();

  scheme::MkfseOptions mopt;
  mopt.bloom_bits = d;
  sse::FuzzySearchSystem system(mopt, seed * 3 + 1);
  std::vector<std::vector<std::string>> docs;
  for (const auto& e : emails) docs.push_back(e.keywords);
  system.upload_documents(docs);
  // Enough observed queries for the factorization to pin down the indexes.
  for (std::size_t j = 0; j < num_emails; ++j) {
    const auto& doc = docs[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(docs.size()) - 1))];
    system.fuzzy_query({doc[0], doc[1 % doc.size()]}, 5);
  }

  // Frequency of plaintext documents (group identical keyword sets).
  std::map<std::vector<std::string>, std::pair<std::size_t, std::size_t>>
      doc_groups;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    auto it = doc_groups.find(docs[i]);
    if (it == doc_groups.end()) {
      doc_groups.emplace(docs[i], std::make_pair(i, std::size_t{1}));
    } else {
      ++it->second.second;
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> doc_freq;  // (idx, count)
  for (const auto& [k, v] : doc_groups) doc_freq.push_back(v);
  std::sort(doc_freq.begin(), doc_freq.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (doc_freq.size() > 5) doc_freq.resize(5);

  // Frequency through the plaintext indexes I_i.
  const auto index_freq = core::top_frequencies(system.plaintext_indexes(), 5);

  // Frequency through the SNMF reconstruction I*_i (COA adversary).
  core::SnmfAttackOptions aopt;
  aopt.rank = d;
  aopt.restarts = 3;
  aopt.nmf.max_iterations = 250;
  aopt.nmf.rel_tol = 1e-7;
  aopt.nmf.algorithm =
      full ? nmf::Algorithm::MultiplicativeUpdate : nmf::Algorithm::Anls;
  const auto res =
      core::run_snmf_attack(
          sse::observe(system.server()), aopt,
          core::ExecContext{.seed = seed * 17 + 3, .sink = obs_flags.sink()});
  const auto recon_freq = core::top_frequencies(res.indexes, 5);
  std::printf("SNMF reconstruction took %.1f s\n\n",
              res.telemetry.wall_seconds);

  bench::TablePrinter table({"rank", "P_i freq", "I_i freq", "I*_i freq"}, 12);
  table.print_header();
  for (std::size_t r = 0; r < 5; ++r) {
    table.print_row(
        {std::to_string(r + 1),
         r < doc_freq.size() ? std::to_string(doc_freq[r].second) : "-",
         r < index_freq.size() ? std::to_string(index_freq[r].second) : "-",
         r < recon_freq.size() ? std::to_string(recon_freq[r].second) : "-"});
  }

  std::printf(
      "\nShape to compare with the paper's Table IV: the three columns\n"
      "match — duplicate documents stay duplicates through the (fully\n"
      "deterministic) bloom-filter pipeline AND through the ciphertext-only\n"
      "reconstruction, enabling classic frequency analysis.\n");
  obs_flags.finish();
  return 0;
}
