// Ablation: LSH family choice inside MKFSE (DESIGN.md substrate choice).
//
// MKFSE needs an LSH family over keyword bigram vectors. We compare the
// MinHash family (collision probability = Jaccard of the bigram sets; our
// default) against the 2-stable Gaussian family, on the two properties that
// matter:
//   * fuzziness  — a typo'd keyword should still hit the index;
//   * distinctness — unrelated keywords should not collide (the property
//     the Table-IV frequency analysis and ranked retrieval rely on).
//
// Usage: bench_ablation_lsh [--words=N] [--trials=N] [--seed=S]
#include <set>

#include "bench_common.hpp"
#include "data/email_corpus.hpp"
#include "text/bigram.hpp"
#include "text/lsh.hpp"

using namespace aspe;
using text::LshFamilyKind;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto num_words =
      static_cast<std::size_t>(flags.get_int("words", 300));
  const auto trials = static_cast<std::size_t>(flags.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner("Ablation: LSH family for the MKFSE pipeline",
                      "MinHash vs 2-stable Gaussian on bigram vectors");
  std::printf("%zu vocabulary words, %zu independent families, l = 3\n\n",
              num_words, trials);

  struct Config {
    std::string name;
    LshFamilyKind kind;
    double width;
  };
  const std::vector<Config> configs = {
      {"minhash", LshFamilyKind::MinHash, 0.0},
      {"pstable_w0.5", LshFamilyKind::PStable, 0.5},
      {"pstable_w2", LshFamilyKind::PStable, 2.0},
      {"pstable_w4", LshFamilyKind::PStable, 4.0},
  };

  const std::vector<std::pair<std::string, std::string>> typo_pairs = {
      {"signature", "signatura"}, {"network", "netwerk"},
      {"database", "databose"},   {"encryption", "encryptoin"},
      {"protocol", "protocul"},
  };

  bench::TablePrinter table(
      {"family", "typo_hit", "uniq_patterns", "distinct_pos"}, 15);
  table.print_header();

  for (const auto& config : configs) {
    double typo_hits = 0.0, typo_total = 0.0;
    double uniq_sum = 0.0;
    double pos_sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      rng::Rng rng(seed + t * 977);
      text::LshOptions opt;
      opt.num_functions = 3;
      opt.family = config.kind;
      if (config.width > 0.0) opt.bucket_width = config.width;
      const text::LshFamily fam(text::kBigramDim, 500, opt, rng);

      for (const auto& [word, typo] : typo_pairs) {
        const auto p1 = fam.positions(text::bigram_vector(word));
        const auto p2 = fam.positions(text::bigram_vector(typo));
        for (std::size_t f = 0; f < 3; ++f) {
          typo_hits += p1[f] == p2[f];
          typo_total += 1.0;
        }
      }

      std::set<std::vector<std::size_t>> patterns;
      std::set<std::size_t> positions;
      for (std::size_t w = 0; w < num_words; ++w) {
        const auto pos = fam.positions(text::bigram_vector(
            data::EmailCorpusGenerator::word_for(w)));
        patterns.insert(pos);
        positions.insert(pos.begin(), pos.end());
      }
      uniq_sum += static_cast<double>(patterns.size()) /
                  static_cast<double>(num_words);
      pos_sum += static_cast<double>(positions.size());
    }
    table.print_row({config.name, bench::fmt(typo_hits / typo_total),
                     bench::fmt(uniq_sum / trials),
                     bench::fmt(pos_sum / trials, 0)});
  }

  std::printf(
      "\nReading: MinHash delivers both a high typo collision rate AND near\n"
      "perfect pattern distinctness; the Gaussian family trades one against\n"
      "the other through its bucket width and achieves neither at once on\n"
      "bigram sets. That is why MinHash is the default family here.\n");
  return 0;
}
