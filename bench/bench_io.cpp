// I/O formats head-to-head: loading a ciphertext corpus from the text
// format, from the io::v2 binary container, and through the zero-copy
// mmap path (io::MappedCorpus), plus the out-of-core sharded SNMF attack
// against the in-core run — same output, bounded working set.
//
// Writes BENCH_io.json (gated by tools/check_bench.py against
// bench/baselines/). Headlines: corpus_load_speedup_text_over_binary_n10k,
// corpus_load_speedup_text_over_mmap_n10k (the PR's >=10x acceptance
// number), mmap_speedup_at_least_10x, sharded_outputs_bit_identical.
//
// Usage: bench_io [--full] [--seed=S]
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/snmf_attack.hpp"
#include "io/codec.hpp"
#include "io/mmap_file.hpp"
#include "rng/rng.hpp"

using namespace aspe;

namespace {

namespace fs = std::filesystem;

struct LoadRecord {
  std::string bench;
  std::string mode;
  std::size_t n = 0;
  double seconds = 0.0;
  double value = 0.0;  // checksum / shard count, mode-dependent
};

std::vector<scheme::CipherPair> make_corpus(std::size_t n, std::size_t da,
                                            std::size_t db,
                                            std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<scheme::CipherPair> db_out(n);
  for (auto& c : db_out) {
    c.a = rng.uniform_vec(da, -4.0, 4.0);
    c.b = rng.uniform_vec(db, -4.0, 4.0);
  }
  return db_out;
}

double checksum(const std::vector<scheme::CipherPair>& db) {
  double s = 0.0;
  for (const auto& c : db) {
    for (double x : c.a) s += x;
    for (double x : c.b) s += x;
  }
  return s;
}

/// Sum the mapped halves in record order (a_i then b_i), matching the
/// summation order of checksum() so the verification is exact.
double mapped_checksum(linalg::ConstMatrixView a, linalg::ConstMatrixView b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ra = a.row_ptr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) s += ra[j];
    const double* rb = b.row_ptr(i);
    for (std::size_t j = 0; j < b.cols(); ++j) s += rb[j];
  }
  return s;
}

/// Best-of-`reps` wall time for one load path (min damps scheduler noise —
/// these are milliseconds-scale file reads).
template <typename F>
double time_load(int reps, F&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    body();
    best = std::min(best, watch.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  const std::size_t da = 33, db = 33;  // scheme2 halves at record_dim 32

  std::vector<std::size_t> sizes = {1000, 10000};
  if (full) sizes.push_back(100000);

  bench::print_banner(
      "I/O format benchmark: text vs io::v2 binary vs mmap; sharded attack",
      "infrastructure for Table IV-scale corpora (docs/io.md)");

  const fs::path dir =
      fs::temp_directory_path() / ("aspe_bench_io_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  std::vector<LoadRecord> records;
  double text10k = 0.0, bin10k = 0.0, mmap10k = 0.0;

  bench::TablePrinter table({"n", "text_s", "binary_s", "mmap_s",
                             "text/bin", "text/mmap"});
  table.print_header();

  for (const std::size_t n : sizes) {
    const auto corpus = make_corpus(n, da, db, seed + n);
    const double expect = checksum(corpus);
    const std::string text_path = (dir / (std::to_string(n) + ".txt")).string();
    const std::string bin_path = (dir / (std::to_string(n) + ".bin")).string();
    {
      auto w = io::open_writer(text_path, io::Format::Text);
      w->write_cipher_database(corpus);
      w->finish();
    }
    {
      auto w = io::open_writer(bin_path, io::Format::Binary);
      w->write_cipher_database(corpus);
      w->finish();
    }

    const int reps = n >= 100000 ? 3 : 5;
    double sum = 0.0;
    const double text_s = time_load(reps, [&] {
      sum = checksum(io::open_reader(text_path)->read_cipher_database());
    });
    if (sum != expect) std::fprintf(stderr, "text checksum mismatch!\n");
    const double bin_s = time_load(reps, [&] {
      sum = checksum(io::open_reader(bin_path)->read_cipher_database());
    });
    if (sum != expect) std::fprintf(stderr, "binary checksum mismatch!\n");
    // The mmap "load" includes touching every mapped page through the
    // zero-copy views — the honest comparison point (no deferred work).
    const double mmap_s = time_load(reps, [&] {
      const io::MappedCorpus mapped(bin_path);
      sum = mapped_checksum(mapped.a_half(), mapped.b_half());
    });
    if (sum != expect) std::fprintf(stderr, "mmap checksum mismatch!\n");

    records.push_back({"corpus_load", "text", n, text_s, expect});
    records.push_back({"corpus_load", "binary", n, bin_s, expect});
    records.push_back({"corpus_load", "mmap", n, mmap_s, expect});
    if (n == 10000) {
      text10k = text_s;
      bin10k = bin_s;
      mmap10k = mmap_s;
    }
    table.print_row({std::to_string(n), bench::fmt_sci(text_s),
                     bench::fmt_sci(bin_s), bench::fmt_sci(mmap_s),
                     bench::fmt(text_s / bin_s, 1),
                     bench::fmt(text_s / mmap_s, 1)});
  }

  // ---- sharded vs in-core SNMF attack over the mapped corpus -------------
  //
  // Same mapped views, two budgets: unbounded (one tile, one restart group)
  // vs a budget that forces both stages to shard. Outputs must be bitwise
  // identical; wall-clock parity is the record of interest.
  std::printf("\nsharded vs in-core SNMF attack (mapped corpus):\n");
  bench::TablePrinter atable({"n", "incore_s", "sharded_s", "shards",
                              "identical"});
  atable.print_header();

  bool all_identical = true;
  double ratio_n1k = 0.0;
  for (const std::size_t n : sizes) {
    if (!full && n > 10000) break;
    const std::size_t m = 64;  // trapdoors observed
    const auto trapdoors = make_corpus(m, da, db, seed + 7);
    // Binary plaintexts so scores are exact integers (the attack regime).
    rng::Rng rng(seed + n);
    auto indexes = make_corpus(n, da, db, seed + n);
    for (auto& c : indexes) {
      for (auto& x : c.a) x = x > 0.0 ? 1.0 : 0.0;
      for (auto& x : c.b) x = x > 0.0 ? 1.0 : 0.0;
    }
    auto tr = trapdoors;
    for (auto& c : tr) {
      for (auto& x : c.a) x = x > 0.0 ? 1.0 : 0.0;
      for (auto& x : c.b) x = x > 0.0 ? 1.0 : 0.0;
    }
    const std::string idx_path =
        (dir / ("idx" + std::to_string(n) + ".bin")).string();
    const std::string trap_path =
        (dir / ("trap" + std::to_string(n) + ".bin")).string();
    for (const auto& [p, d] : {std::pair{idx_path, &indexes},
                               std::pair{trap_path, &tr}}) {
      auto w = io::open_writer(p, io::Format::Binary);
      w->write_cipher_database(*d);
      w->finish();
    }
    const io::MappedCorpus icorp(idx_path), tcorp(trap_path);

    core::SnmfAttackOptions options;
    options.rank = 8;
    options.restarts = 2;
    options.nmf.max_iterations = 25;

    auto run_once = [&](std::size_t budget, double* shards_out) {
      core::ExecContext ctx;
      ctx.seed = seed;
      ctx.memory_budget_bytes = budget;
      obs::MemorySink sink;
      core::SnmfAttackResult res;
      {
        obs::ScopedRecording rec(&sink);
        const linalg::Matrix scores = core::build_score_matrix(
            icorp.a_half(), icorp.b_half(), tcorp.a_half(), tcorp.b_half(),
            ctx);
        res = core::run_snmf_attack(scores, options, ctx);
      }
      if (shards_out != nullptr) *shards_out = sink.counter("shard.count");
      return res;
    };

    Stopwatch in_watch;
    const auto incore = run_once(0, nullptr);
    const double incore_s = in_watch.seconds();

    // Budget ~ an eighth of the score matrix: several score tiles and
    // single-restart groups.
    const std::size_t budget = n * m * sizeof(double) / 8;
    double shards = 0.0;
    Stopwatch sh_watch;
    const auto sharded = run_once(budget, &shards);
    const double sharded_s = sh_watch.seconds();

    const bool identical = sharded.indexes == incore.indexes &&
                           sharded.trapdoors == incore.trapdoors &&
                           sharded.best_fit_error == incore.best_fit_error;
    all_identical = all_identical && identical;
    if (n == 1000) ratio_n1k = incore_s > 0.0 ? sharded_s / incore_s : 0.0;
    records.push_back({"attack", "incore", n, incore_s, 1.0});
    records.push_back({"attack", "sharded", n, sharded_s, shards});
    atable.print_row({std::to_string(n), bench::fmt_sci(incore_s),
                      bench::fmt_sci(sharded_s),
                      bench::fmt(shards, 0), identical ? "yes" : "NO"});
  }

  fs::remove_all(dir);

  const double speedup_bin = bin10k > 0.0 ? text10k / bin10k : 0.0;
  const double speedup_mmap = mmap10k > 0.0 ? text10k / mmap10k : 0.0;
  std::printf("\ntext-over-binary load speedup (n=10k):  %.1fx\n", speedup_bin);
  std::printf("text-over-mmap load speedup (n=10k):    %.1fx\n", speedup_mmap);
  std::printf("sharded outputs bit-identical:          %s\n",
              all_identical ? "yes" : "NO");

  std::ofstream out("BENCH_io.json");
  out << "{\n  \"benchmark\": \"io_format_sweep\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"bench\": \"" << r.bench << "\", \"mode\": \"" << r.mode
        << "\", \"n\": " << r.n << ", \"seconds\": " << r.seconds
        << ", \"value\": " << r.value << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"corpus_load_speedup_text_over_binary_n10k\": " << speedup_bin
      << ",\n";
  out << "  \"corpus_load_speedup_text_over_mmap_n10k\": " << speedup_mmap
      << ",\n";
  out << "  \"mmap_speedup_at_least_10x\": "
      << (speedup_mmap >= 10.0 ? "true" : "false") << ",\n";
  out << "  \"sharded_over_incore_wallclock_ratio_n1k\": " << ratio_n1k
      << ",\n";
  out << "  \"sharded_outputs_bit_identical\": "
      << (all_identical ? "true" : "false") << "\n";
  out << "}\n";
  std::printf("\nwrote BENCH_io.json\n");
  return 0;
}
