// Security Risk 1 (§III): the LEP attack achieves *complete disclosure* of an
// ASPE-Scheme-2 database from d+1 leaked plaintext-ciphertext pairs.
//
// The paper states this result analytically (Algorithm 1 + Remark 1: always
// exact, O((d+1)^3) Gaussian elimination); this bench verifies exactness and
// measures the claimed cubic runtime across dimensions.
//
// Usage: bench_lep [--full] [--dims=10,25,50] [--records=N] [--queries=N]
//                  [--seed=S]
#include <cmath>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/lep.hpp"
#include "data/queries.hpp"
#include "linalg/vector_ops.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const std::vector<int> dims = flags.get_int_list(
      "dims", full ? std::vector<int>{10, 25, 50, 100, 200, 400}
                   : std::vector<int>{10, 25, 50, 100});
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner(
      "LEP attack: complete disclosure of ASPE (Scheme 2) under KPA",
      "Security Risk 1, Algorithm 1, Remark 1 (no table; exactness claim)");

  bench::TablePrinter table({"d", "leaked", "records", "queries", "max_err_P",
                             "max_err_Q", "attack_s"},
                            11);
  table.print_header();

  for (int d_int : dims) {
    const auto d = static_cast<std::size_t>(d_int);
    const std::size_t num_records =
        static_cast<std::size_t>(flags.get_int("records", int(d + 20)));
    const std::size_t num_queries =
        static_cast<std::size_t>(flags.get_int("queries", int(d + 5)));

    scheme::Scheme2Options opt;
    opt.record_dim = d;
    opt.padding_dims = 4;
    sse::SecureKnnSystem system(opt, seed + d);
    rng::Rng rng(seed * 31 + d);

    const auto records = data::real_records(num_records, d, -5.0, 5.0, rng);
    system.upload_records(records);
    std::vector<Vec> queries;
    for (std::size_t j = 0; j < num_queries; ++j) {
      queries.push_back(rng.uniform_vec(d, -5.0, 5.0));
      system.knn_query(queries.back(), 5);
    }

    std::vector<std::size_t> leak_ids;
    for (std::size_t i = 0; i <= d; ++i) leak_ids.push_back(i);
    const auto view = sse::leak_known_records(system, leak_ids);

    Stopwatch watch;
    const auto result = core::run_lep_attack(view);
    const double seconds = watch.seconds();

    double max_err_p = 0.0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      max_err_p = std::max(
          max_err_p,
          linalg::max_abs(linalg::sub(result.records[i], records[i])));
    }
    double max_err_q = 0.0;
    for (std::size_t j = 0; j < queries.size(); ++j) {
      max_err_q = std::max(
          max_err_q,
          linalg::max_abs(linalg::sub(result.queries[j], queries[j])));
    }

    table.print_row({std::to_string(d), std::to_string(d + 1),
                     std::to_string(num_records), std::to_string(num_queries),
                     bench::fmt_sci(max_err_p), bench::fmt_sci(max_err_q),
                     bench::fmt(seconds, 4)});
  }

  std::printf(
      "\nInterpretation: every record and every processed query is recovered\n"
      "to numerical precision (max_err ~ 1e-6 or below), refuting Theorem 6\n"
      "of Wong et al. [25]. Runtime grows ~cubically with d, matching the\n"
      "O((d+1)^3) bound of Remark 1.\n");
  return 0;
}
