// Incremental attack pipeline vs batch recomputation over a growing corpus.
//
// The paper evaluates every attack on a fixed corpus; a deployed adversary
// instead watches the ciphertext stream grow and re-attacks after each batch
// of observations. This bench measures what core::CoaSession / LepSession
// buy over re-running the batch pipeline from scratch:
//
//   SNMF (Algorithm 3, §V.B): a session warmed at n ciphertexts absorbs a
//     delta (score-matrix band gemms + incremental truncated-SVD rank update
//     + sparse-NMF resume) vs the batch pipeline at n+delta (full score
//     build + fresh rank estimate + cold restart sweep). The grown score
//     matrix must be bit-identical to the batch build and the rank
//     estimates must agree.
//
//   LEP (Algorithm 1, §III.B): a session holding both LU bases absorbs one
//     new trapdoor + one new index (two warm back-substitutions) vs
//     run_lep_attack on the full view. Outputs must be bit-identical.
//
// Usage: bench_incremental [--sizes=256,512,1024,2048] [--delta=64]
//                          [--restarts=3] [--iters=200] [--lep-dim=200]
//                          [--reps=5] [--threads=N] [--seed=S]
// Writes BENCH_incremental.json (bench_summary / tools/check_bench.py).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "common/types.hpp"
#include "core/lep.hpp"
#include "core/session.hpp"
#include "core/snmf_attack.hpp"
#include "data/queries.hpp"
#include "rng/rng.hpp"
#include "scheme/split_encryptor.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

namespace {

/// Bloom-filter-style binary corpus encrypted under one MKFSE key — the
/// same construction the SNMF tests and tables use.
sse::CoaView make_coa_corpus(std::size_t d, std::size_t count,
                             std::uint64_t seed) {
  rng::Rng rng(seed);
  scheme::SplitEncryptor enc(d, rng);
  sse::CoaView v;
  for (std::size_t i = 0; i < count; ++i) {
    v.cipher_indexes.push_back(
        enc.encrypt_index(to_real(rng.binary_bernoulli(d, 0.3)), rng));
  }
  for (std::size_t j = 0; j < count; ++j) {
    v.cipher_trapdoors.push_back(
        enc.encrypt_trapdoor(to_real(rng.binary_bernoulli(d, 0.25)), rng));
  }
  return v;
}

sse::CoaView slice_view(const sse::CoaView& v, std::size_t i0, std::size_t i1,
                        std::size_t j0, std::size_t j1) {
  sse::CoaView out;
  out.cipher_indexes.assign(v.cipher_indexes.begin() + long(i0),
                            v.cipher_indexes.begin() + long(i1));
  out.cipher_trapdoors.assign(v.cipher_trapdoors.begin() + long(j0),
                              v.cipher_trapdoors.begin() + long(j1));
  return out;
}

struct SnmfPoint {
  std::size_t n = 0;
  double batch_seconds = 0.0;
  double incremental_seconds = 0.0;
  double append_seconds = 0.0;  // score-band gemms
  double rank_seconds = 0.0;    // incremental SVD re-certification
  double speedup = 0.0;
  bool scores_bitwise = false;
  bool ranks_agree = false;
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::vector<int> sizes = flags.get_int_list(
      "sizes", std::vector<int>{256, 512, 1024, 2048});
  const auto delta = static_cast<std::size_t>(flags.get_int("delta", 64));
  // Both pipelines run the library defaults to convergence: L=3 restarts
  // (the paper's choice) against one warm resume, each ANLS stopping at
  // SparseNmfOptions::rel_tol.
  const auto restarts = static_cast<std::size_t>(flags.get_int("restarts", 3));
  const auto iters = static_cast<std::size_t>(flags.get_int("iters", 200));
  const auto resume_iters =
      static_cast<std::size_t>(flags.get_int("resume-iters", 40));
  const auto rank_d = static_cast<std::size_t>(flags.get_int("rank", 32));
  const auto lep_d = static_cast<std::size_t>(flags.get_int("lep-dim", 200));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  core::ExecContext ctx;
  ctx.threads = static_cast<std::size_t>(flags.get_int("threads", 1));
  ctx.seed = seed;

  bench::print_banner(
      "Incremental sessions: online score/SVD/SNMF and LEP updates",
      "amortized-cost view of Algorithms 1 and 3 (Tables IV-V scale)");

  // ------------------------------------------------------------ SNMF sweep
  std::printf("\nSNMF pipeline, corpus n -> n+%zu (rank %zu, %zu restarts, "
              "<=%zu iterations):\n\n",
              delta, rank_d, restarts, iters);
  bench::TablePrinter table({"n", "batch_s", "incr_s", "speedup", "b_iters",
                             "i_iters", "bitwise", "rank=", "fit_gap"},
                            10);
  table.print_header();

  core::SnmfAttackOptions aopt;
  aopt.restarts = restarts;
  aopt.nmf.max_iterations = iters;
  aopt.resume_iterations = resume_iters;

  std::vector<SnmfPoint> points;
  for (int n_int : sizes) {
    const auto n = static_cast<std::size_t>(n_int);
    const sse::CoaView full = make_coa_corpus(rank_d, n + delta, seed + n);

    // Warm a session at n ciphertexts (untimed: this is the state an online
    // adversary already holds when the delta arrives).
    core::CoaSession session(aopt, ctx);
    session.append_ciphertexts(slice_view(full, 0, n, 0, n));
    session.set_rank(session.estimate_rank());
    const auto warm = session.attack();

    // Timed: absorb the delta and re-attack incrementally.
    const sse::CoaView tail = slice_view(full, n, n + delta, n, n + delta);
    Stopwatch inc_watch;
    session.append_ciphertexts(tail);
    const double append_seconds = inc_watch.seconds();
    const std::size_t inc_rank = session.estimate_rank();
    session.set_rank(inc_rank);
    const double rank_seconds = inc_watch.seconds() - append_seconds;
    const auto inc = session.attack();
    const double inc_seconds = inc_watch.seconds();

    // Timed: the batch pipeline from scratch at n+delta.
    Stopwatch batch_watch;
    const linalg::Matrix scores = core::build_score_matrix(
        full.cipher_indexes, full.cipher_trapdoors, ctx.threads);
    const std::size_t batch_rank =
        core::estimate_latent_dimension(scores, 1e-8, ctx);
    core::SnmfAttackOptions bopt = aopt;
    bopt.rank = batch_rank;
    const auto batch = core::run_snmf_attack(scores, bopt, ctx);
    const double batch_seconds = batch_watch.seconds();

    SnmfPoint p;
    p.n = n;
    p.batch_seconds = batch_seconds;
    p.incremental_seconds = inc_seconds;
    p.append_seconds = append_seconds;
    p.rank_seconds = rank_seconds;
    p.speedup = inc_seconds > 0.0 ? batch_seconds / inc_seconds : 0.0;
    p.scores_bitwise = (session.scores() == scores);
    p.ranks_agree = (inc_rank == batch_rank);
    points.push_back(p);

    const double fit_gap =
        std::abs(inc.best_fit_error - batch.best_fit_error) /
        std::max(1.0, batch.best_fit_error);
    (void)warm;
    const double b_iters = batch.telemetry.counter("snmf.nmf_iterations", 0.0);
    const double i_iters = inc.telemetry.counter("snmf.nmf_iterations", 0.0);
    table.print_row({std::to_string(n), bench::fmt(batch_seconds, 3),
                     bench::fmt(inc_seconds, 3), bench::fmt(p.speedup, 2),
                     bench::fmt(b_iters, 0), bench::fmt(i_iters, 0),
                     p.scores_bitwise ? "yes" : "NO",
                     p.ranks_agree ? "yes" : "NO", bench::fmt_sci(fit_gap)});
  }

  // ------------------------------------------------------------- LEP warm
  std::printf("\nLEP warm re-solve, d=%zu (one new trapdoor + one new index "
              "vs full batch re-attack, min over %zu reps):\n\n",
              lep_d, reps);

  scheme::Scheme2Options sopt;
  sopt.record_dim = lep_d;
  sopt.padding_dims = 4;
  sse::SecureKnnSystem system(sopt, seed + lep_d);
  rng::Rng lep_rng(seed * 31 + lep_d);
  const auto records =
      data::real_records(lep_d + 20, lep_d, -5.0, 5.0, lep_rng);
  system.upload_records(records);
  for (std::size_t j = 0; j < lep_d + 5; ++j) {
    system.knn_query(lep_rng.uniform_vec(lep_d, -5.0, 5.0), 5);
  }
  std::vector<std::size_t> leak_ids;
  for (std::size_t i = 0; i <= lep_d; ++i) leak_ids.push_back(i);
  const sse::KpaView view = sse::leak_known_records(system, leak_ids);

  const std::size_t num_t = view.observed.cipher_trapdoors.size();
  const std::size_t num_i = view.observed.cipher_indexes.size();

  // A session that has seen everything but the last trapdoor and index.
  core::LepSession lep_session({}, ctx);
  lep_session.add_known_pairs(view.known_pairs);
  lep_session.append_ciphertexts(
      slice_view(view.observed, 0, num_i - 1, 0, num_t - 1));
  const core::LepSessionSnapshot pre = lep_session.snapshot();
  const sse::CoaView lep_delta =
      slice_view(view.observed, num_i - 1, num_i, num_t - 1, num_t);

  double warm_seconds = -1.0;
  core::LepResult warm_res;
  for (std::size_t r = 0; r < reps; ++r) {
    core::LepSession replay(pre, {}, ctx);
    Stopwatch watch;
    replay.append_ciphertexts(lep_delta);
    warm_res = replay.result();
    const double s = watch.seconds();
    if (warm_seconds < 0.0 || s < warm_seconds) warm_seconds = s;
  }

  double batch_seconds = -1.0;
  core::LepResult batch_res;
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch watch;
    batch_res = core::run_lep_attack(view, {}, ctx);
    const double s = watch.seconds();
    if (batch_seconds < 0.0 || s < batch_seconds) batch_seconds = s;
  }

  const bool lep_bitwise = warm_res.trapdoors == batch_res.trapdoors &&
                           warm_res.queries == batch_res.queries &&
                           warm_res.query_multipliers ==
                               batch_res.query_multipliers &&
                           warm_res.indexes == batch_res.indexes &&
                           warm_res.records == batch_res.records;
  const double lep_speedup =
      warm_seconds > 0.0 ? batch_seconds / warm_seconds : 0.0;

  bench::TablePrinter lep_table(
      {"d", "trapdoors", "indexes", "batch_s", "warm_s", "speedup", "bitwise"},
      11);
  lep_table.print_header();
  lep_table.print_row({std::to_string(lep_d), std::to_string(num_t),
                       std::to_string(num_i), bench::fmt(batch_seconds, 5),
                       bench::fmt(warm_seconds, 5),
                       bench::fmt(lep_speedup, 2),
                       lep_bitwise ? "yes" : "NO"});

  // --------------------------------------------------------------- summary
  bool all_bitwise = true;
  bool all_ranks = true;
  for (const auto& p : points) {
    all_bitwise = all_bitwise && p.scores_bitwise;
    all_ranks = all_ranks && p.ranks_agree;
  }
  const double headline_speedup =
      points.empty() ? 0.0 : points.back().speedup;

  std::printf(
      "\nInterpretation: the incremental session re-attacks the grown corpus\n"
      "%.1fx faster than the batch pipeline at n=%zu while producing the\n"
      "bit-identical score matrix and the same rank estimate; the LEP warm\n"
      "re-solve is %.1fx faster than a full batch re-attack, bit-identical.\n",
      headline_speedup, points.empty() ? 0 : points.back().n, lep_speedup);

  std::ofstream out("BENCH_incremental.json");
  out << "{\n  \"benchmark\": \"incremental\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"attack\": \"snmf\", \"n\": " << p.n
        << ", \"delta\": " << delta
        << ", \"batch_seconds\": " << p.batch_seconds
        << ", \"incremental_seconds\": " << p.incremental_seconds
        << ", \"append_seconds\": " << p.append_seconds
        << ", \"rank_seconds\": " << p.rank_seconds
        << ", \"speedup\": " << p.speedup << ", \"scores_bitwise\": "
        << (p.scores_bitwise ? "true" : "false")
        << ", \"ranks_agree\": " << (p.ranks_agree ? "true" : "false")
        << "},\n";
  }
  out << "    {\"attack\": \"lep\", \"d\": " << lep_d
      << ", \"batch_seconds\": " << batch_seconds
      << ", \"warm_seconds\": " << warm_seconds
      << ", \"speedup\": " << lep_speedup
      << ", \"bitwise\": " << (lep_bitwise ? "true" : "false") << "}\n"
      << "  ],\n";
  out << "  \"incremental_speedup_pipeline_n2048\": " << headline_speedup
      << ",\n";
  out << "  \"lep_warm_resolve_speedup\": " << lep_speedup << ",\n";
  out << "  \"score_matrix_bitwise_equal\": "
      << (all_bitwise ? "true" : "false") << ",\n";
  out << "  \"lep_outputs_bitwise_equal\": "
      << (lep_bitwise ? "true" : "false") << ",\n";
  out << "  \"rank_estimates_agree\": " << (all_ranks ? "true" : "false")
      << "\n}\n";
  std::printf("\nwrote BENCH_incremental.json\n");
  return (all_bitwise && all_ranks && lep_bitwise) ? 0 : 1;
}
