// §III.A quantified: the previous attack of Xiao et al. [26] cannot be
// executed as described, while LEP achieves complete disclosure on the very
// same deployment.
//
// For each dimension d we build one ASPE-Scheme-2 deployment and report:
//   * naive attack under the implicit r = 1 guess: reconstruction error and
//     violation of the quadratic constraint I[d] = -0.5||P||^2;
//   * solution spread across 5 random r-guesses (well-posed would be ~0);
//   * LEP on the same deployment: exact recovery.
//
// Usage: bench_naive [--dims=4,8,16] [--seed=S]
#include "bench_common.hpp"
#include "core/lep.hpp"
#include "core/naive_attack.hpp"
#include "linalg/vector_ops.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::vector<int> dims = flags.get_int_list("dims", {4, 8, 16});
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner(
      "Prior attack [26] vs LEP on identical ASPE deployments",
      "§III.A: the [26] equations have 2d unknowns + a quadratic term");

  bench::TablePrinter table({"d", "naive_err", "quad_gap", "spread",
                             "lep_err"},
                            12);
  table.print_header();

  for (int d_int : dims) {
    const auto d = static_cast<std::size_t>(d_int);
    scheme::Scheme2Options opt;
    opt.record_dim = d;
    sse::SecureKnnSystem system(opt, seed + d);
    rng::Rng rng(seed * 3 + d);

    const Vec target = rng.uniform_vec(d, -2.0, 2.0);
    std::vector<Vec> records = {target};
    for (std::size_t i = 0; i < d + 4; ++i) {
      records.push_back(rng.uniform_vec(d, -2.0, 2.0));
    }
    system.upload_records(records);

    // Queries with plaintext known to the [26]-style adversary.
    core::NaiveAttackInput input;
    rng::Rng enc_rng(seed * 7 + d);
    for (std::size_t j = 0; j < d + 2; ++j) {
      const Vec q = rng.uniform_vec(d, -2.0, 2.0);
      const double r = rng.uniform(0.5, 2.0);
      input.known_queries.push_back(q);
      input.cipher_trapdoors.push_back(
          system.scheme().encrypt_query_with_r(q, r, enc_rng));
      // Also route through the server so LEP sees the trapdoors.
      system.server().process_query(input.cipher_trapdoors.back(), 2);
    }
    input.cipher_index = system.server().indexes()[0];

    const auto naive = core::run_naive_attack(input);
    const double naive_err =
        linalg::norm(linalg::sub(naive.recovered_record, target));

    std::vector<Vec> guesses;
    rng::Rng guess_rng(seed + 99);
    for (int g = 0; g < 5; ++g) {
      guesses.push_back(
          guess_rng.uniform_vec(input.known_queries.size(), 0.5, 2.0));
    }
    const double spread = core::naive_attack_solution_spread(input, guesses);

    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i <= d; ++i) ids.push_back(i);
    const auto lep =
        core::run_lep_attack(sse::leak_known_records(system, ids));
    double lep_err = 0.0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      lep_err = std::max(lep_err, linalg::max_abs(linalg::sub(
                                      lep.records[i], records[i])));
    }

    table.print_row({std::to_string(d), bench::fmt(naive_err, 3),
                     bench::fmt(naive.quadratic_gap, 3),
                     bench::fmt(spread, 3), bench::fmt_sci(lep_err)});
  }

  std::printf(
      "\nReading: the naive attack's output is far from the true record\n"
      "(naive_err), internally inconsistent (quad_gap >> 0) and changes\n"
      "entirely with the unknowable r-guess (spread). LEP, run with the\n"
      "proper KPA knowledge on the same deployment, is exact (lep_err).\n");
  return 0;
}
