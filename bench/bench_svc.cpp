// aspe::svc daemon throughput: jobs/sec through a warm daemon over its Unix
// socket at 1 / 8 / 64 concurrent clients, against the one-shot CLI baseline
// (every job re-parses its corpus and re-estimates the SNMF rank from
// scratch). The daemon amortizes exactly that per-job setup through its
// corpus and rank caches, so the same attack against the same files answers
// faster — and bit-identically, which the bench verifies per run.
//
// Two batched-scheduling series ride along (PR 10): an 8-job SNMF batch
// sharing one corpus coalesced into a single fused restart sweep (one
// corpus parse, one score-matrix build, one rank estimate), and repeated
// identical MIP jobs warm-starting the root LP from the daemon's persistent
// basis cache.
//
// Writes BENCH_svc.json (gated by tools/check_bench.py against
// bench/baselines/). Headlines: svc_daemon_speedup_over_oneshot_c{1,8,64},
// svc_batched_snmf_speedup_over_solo_8job, svc_mip_basis_cache_speedup,
// daemon_outputs_bit_identical, batched_outputs_bit_identical.
//
// Usage: bench_svc [--full] [--seed=S]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cli/commands.hpp"
#include "common/stopwatch.hpp"
#include "core/attack_api.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"

using namespace aspe;

namespace {

namespace fs = std::filesystem;

struct RunRecord {
  std::string mode;  // "oneshot" or "daemon"
  std::size_t clients = 0;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
};

/// Run one aspe_cli command in-process; abort the bench on failure (a bench
/// over failing jobs measures nothing).
void run_cli(std::initializer_list<std::string> args) {
  std::ostringstream out, err;
  const int code = cli::run_command(std::vector<std::string>(args), out, err);
  if (code != 0) {
    std::fprintf(stderr, "bench_svc: cli command failed (%d): %s\n", code,
                 err.str().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner(
      "svc daemon throughput: warm job service vs one-shot CLI",
      "jobs/sec at 1/8/64 concurrent clients (docs/svc.md)");

  // One SNMF job over a text corpus big enough that the per-job setup the
  // daemon caches — text parse + rank(R) estimation — is a real fraction of
  // the job, as it is for real corpora.
  const std::size_t d = 12;
  const std::size_t n = full ? 8000 : 1000;
  // Enough trapdoors that the per-job rank(R) estimate (cost ~ n*m^2) is
  // the dominant setup — the part the daemon's rank cache and the fused
  // batch pay once instead of per job.
  const std::size_t m = 200;

  const fs::path dir = fs::temp_directory_path() /
                       ("aspe_bench_svc_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string key = (dir / "key.txt").string();
  const std::string plain = (dir / "plain.txt").string();
  const std::string queries = (dir / "q.txt").string();
  const std::string db = (dir / "db.txt").string();
  const std::string td = (dir / "td.txt").string();
  const std::string sock = (dir / "svc.sock").string();

  run_cli({"keygen", "--dim=" + std::to_string(d), "--key=" + key,
           "--seed=" + std::to_string(seed)});
  run_cli({"gen-data", "--d=" + std::to_string(d),
           "--count=" + std::to_string(n), "--rho=0.25", "--out=" + plain,
           "--seed=" + std::to_string(seed + 1)});
  run_cli({"gen-data", "--d=" + std::to_string(d),
           "--count=" + std::to_string(m), "--rho=0.25", "--out=" + queries,
           "--seed=" + std::to_string(seed + 2)});
  run_cli({"encrypt", "--key=" + key, "--plain=" + plain, "--out=" + db});
  run_cli({"trapdoor", "--key=" + key, "--plain=" + queries, "--out=" + td});

  const auto job_request = [&] {
    core::AttackRequest req;
    core::SnmfRequest snmf;
    snmf.db = core::CorpusRef::from_path(db);
    snmf.trapdoors = core::CorpusRef::from_path(td);
    snmf.options.rank = 0;  // estimated per job: the cacheable expensive part
    snmf.options.restarts = 1;
    // Few enough sweep iterations that the per-job setup (parse + score
    // build + rank estimate) dominates, as it does for short interactive
    // jobs — the regime the warm daemon and the fused batch are for.
    snmf.options.nmf.max_iterations = 5;
    req.request = snmf;
    return req;
  };
  svc::JobOptions jopts;
  jopts.threads = 1;
  jopts.seed = seed;

  std::vector<RunRecord> records;

  // ---- one-shot baseline: the pre-daemon workflow, one dispatch per job,
  // every job paying corpus parse + rank estimation again.
  const std::size_t baseline_jobs = full ? 12 : 6;
  double baseline_jps = 0.0;
  {
    double best = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      Stopwatch watch;
      for (std::size_t j = 0; j < baseline_jobs; ++j) {
        core::ExecContext ctx;
        ctx.seed = seed;
        const core::AttackResponse resp =
            core::dispatch_attack(job_request(), ctx);
        if (!resp.ok()) {
          std::fprintf(stderr, "bench_svc: baseline job failed: %s\n",
                       resp.message.c_str());
          return 1;
        }
      }
      best = std::min(best, watch.seconds());
    }
    baseline_jps = baseline_jobs / best;
    records.push_back({"oneshot", 1, baseline_jobs, best, baseline_jps});
  }
  std::printf("one-shot baseline: %.1f jobs/sec\n\n", baseline_jps);

  // ---- warm daemon over the socket at increasing client counts ----------
  svc::DaemonOptions dopt;
  dopt.workers =
      std::min<std::size_t>(8, std::max(1u, std::thread::hardware_concurrency()));
  svc::Daemon daemon(dopt);
  svc::ServerOptions sopt;
  sopt.socket_path = sock;
  svc::Server server(daemon, sopt);

  // First, bit-identity: the daemon's answer for this job must equal the
  // one-shot dispatch answer exactly.
  bool bit_identical = false;
  {
    core::ExecContext ctx;
    ctx.seed = seed;
    const core::AttackResponse oneshot =
        core::dispatch_attack(job_request(), ctx);
    svc::Client client(sock);
    const core::AttackResponse served = client.run(job_request(), jopts);
    bit_identical = served.ok() && oneshot.ok() &&
                    served.snmf().indexes == oneshot.snmf().indexes &&
                    served.snmf().trapdoors == oneshot.snmf().trapdoors &&
                    served.snmf().best_fit_error ==
                        oneshot.snmf().best_fit_error;
  }
  std::printf("daemon output bit-identical to one-shot: %s\n\n",
              bit_identical ? "yes" : "NO");

  bench::TablePrinter table(
      {"clients", "jobs", "seconds", "jobs/sec", "speedup"});
  table.print_header();

  double speedup_c1 = 0.0, speedup_c8 = 0.0, speedup_c64 = 0.0;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{8},
                                    std::size_t{64}}) {
    const std::size_t jobs_total = std::max<std::size_t>(clients, full ? 64 : 16);
    // Best of two repetitions: on a small machine, spinning up `clients`
    // threads is scheduler-noise of the same order as the jobs themselves.
    double s = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<std::thread> threads;
      threads.reserve(clients);
      std::atomic<std::size_t> failures{0};
      Stopwatch watch;
      for (std::size_t c = 0; c < clients; ++c) {
        const std::size_t share =
            jobs_total / clients + (c < jobs_total % clients ? 1 : 0);
        threads.emplace_back([&, share] {
          try {
            svc::Client client(sock);
            for (std::size_t j = 0; j < share; ++j) {
              const core::AttackResponse resp =
                  client.run(job_request(), jopts);
              if (!resp.ok()) ++failures;
            }
          } catch (const std::exception&) {
            ++failures;
          }
        });
      }
      for (auto& t : threads) t.join();
      s = std::min(s, watch.seconds());
      if (failures > 0) {
        std::fprintf(stderr, "bench_svc: %zu daemon jobs failed\n",
                     failures.load());
        return 1;
      }
    }
    const double jps = jobs_total / s;
    const double speedup = baseline_jps > 0.0 ? jps / baseline_jps : 0.0;
    if (clients == 1) speedup_c1 = speedup;
    if (clients == 8) speedup_c8 = speedup;
    if (clients == 64) speedup_c64 = speedup;
    records.push_back({"daemon", clients, jobs_total, s, jps});
    table.print_row({std::to_string(clients), std::to_string(jobs_total),
                     bench::fmt_sci(s), bench::fmt(jps, 1),
                     bench::fmt(speedup, 1) + "x"});
  }

  server.stop();
  daemon.stop();
  const svc::DaemonStats st = daemon.stats();
  std::printf("\ndaemon cache hits: %llu corpus, %llu rank\n",
              static_cast<unsigned long long>(st.corpus_cache_hits),
              static_cast<unsigned long long>(st.rank_cache_hits));

  // ---- batched SNMF: 8 jobs sharing one corpus, one SubmitBatch ---------
  // Solo = the one-shot baseline above (every job pays parse + score build
  // + rank estimate). Batched = a cold daemon coalescing the whole batch
  // into one fused restart sweep, so that setup is paid once for 8 jobs.
  const std::size_t batch_jobs = 8;
  double batched_jps = 0.0;
  bool batched_identical = true;
  {
    core::ExecContext ctx;
    ctx.seed = seed;
    const core::AttackResponse ref = core::dispatch_attack(job_request(), ctx);
    if (!ref.ok()) {
      std::fprintf(stderr, "bench_svc: reference job failed: %s\n",
                   ref.message.c_str());
      return 1;
    }
    double best = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      svc::DaemonOptions bopt;
      bopt.workers = 0;  // fused sweep runs on this thread: pure batch cost
      svc::Daemon bdaemon(bopt);
      std::vector<svc::BatchJob> jobs(batch_jobs);
      for (auto& job : jobs) {
        job.request = job_request();
        job.options = jopts;
      }
      std::map<std::uint64_t, core::AttackResponse> got;
      Stopwatch watch;
      bdaemon.submit_batch(std::move(jobs),
                           [&](std::uint64_t id, core::AttackResponse&& r) {
                             got.emplace(id, std::move(r));
                           });
      while (bdaemon.run_scheduled() > 0) {
      }
      best = std::min(best, watch.seconds());
      const svc::DaemonStats bst = bdaemon.stats();
      if (bst.batched_jobs != batch_jobs) {
        std::fprintf(stderr, "bench_svc: batch did not coalesce (%llu/%zu)\n",
                     static_cast<unsigned long long>(bst.batched_jobs),
                     batch_jobs);
        return 1;
      }
      for (const auto& [id, resp] : got) {
        batched_identical =
            batched_identical && resp.ok() &&
            resp.snmf().indexes == ref.snmf().indexes &&
            resp.snmf().trapdoors == ref.snmf().trapdoors &&
            resp.snmf().best_fit_error == ref.snmf().best_fit_error;
      }
    }
    batched_jps = batch_jobs / best;
    records.push_back({"batched_snmf", 0, batch_jobs, best, batched_jps});
  }
  const double batched_speedup =
      baseline_jps > 0.0 ? batched_jps / baseline_jps : 0.0;
  std::printf("\nbatched 8-job SNMF sweep: %.1f jobs/sec (%.1fx over solo, "
              "bit-identical: %s)\n",
              batched_jps, batched_speedup, batched_identical ? "yes" : "NO");

  // ---- persistent MIP basis cache: repeated identical MIP jobs ----------
  // Enough known-plain rows that the root LP dominates the solve; the warm
  // repeats restore the cached root basis + cut pool instead of re-running
  // the full root relaxation.
  const std::size_t mip_rows = full ? 300 : 160;
  const std::string mrecords = (dir / "mrecords.txt").string();
  const std::string mquery = (dir / "mquery.txt").string();
  const std::string mindexes = (dir / "mindexes.txt").string();
  const std::string mtd_plain = (dir / "mtd_plain.txt").string();
  const std::string mkey = (dir / "mkey.txt").string();
  const std::string mdb = (dir / "mdb.txt").string();
  const std::string mtd = (dir / "mtd.txt").string();
  run_cli({"gen-data", "--d=24", "--rho=0.25",
           "--count=" + std::to_string(mip_rows), "--out=" + mrecords,
           "--seed=" + std::to_string(seed + 3)});
  run_cli({"gen-data", "--d=24", "--rho=0.2", "--count=1",
           "--out=" + mquery, "--seed=" + std::to_string(seed + 4)});
  run_cli({"mrse-index", "--plain=" + mrecords, "--out=" + mindexes,
           "--seed=" + std::to_string(seed + 5)});
  run_cli({"mrse-trapdoor", "--plain=" + mquery, "--out=" + mtd_plain,
           "--seed=" + std::to_string(seed + 6)});
  run_cli({"keygen", "--dim=33", "--key=" + mkey,
           "--seed=" + std::to_string(seed + 7)});
  run_cli({"encrypt", "--key=" + mkey, "--plain=" + mindexes,
           "--out=" + mdb, "--seed=" + std::to_string(seed + 8)});
  run_cli({"trapdoor", "--key=" + mkey, "--plain=" + mtd_plain,
           "--out=" + mtd, "--seed=" + std::to_string(seed + 9)});
  const auto mip_request = [&] {
    core::AttackRequest req;
    core::MipRequest mip;
    mip.known_plain = core::CorpusRef::from_path(mrecords);
    mip.db = core::CorpusRef::from_path(mdb);
    mip.trapdoors = core::CorpusRef::from_path(mtd);
    mip.mu = 1.0;
    mip.sigma = 0.5;
    req.request = mip;
    return req;
  };
  double mip_cold_s = 1e300, mip_warm_s = 1e300;
  bool mip_identical = true;
  for (int rep = 0; rep < 2; ++rep) {
    svc::Daemon mdaemon{svc::DaemonOptions{}};
    Stopwatch cold_watch;
    const core::AttackResponse cold = mdaemon.execute(mip_request(), jopts);
    mip_cold_s = std::min(mip_cold_s, cold_watch.seconds());
    if (!cold.ok()) {
      std::fprintf(stderr, "bench_svc: MIP job failed: %s\n",
                   cold.message.c_str());
      return 1;
    }
    for (int k = 0; k < 3; ++k) {
      Stopwatch warm_watch;
      const core::AttackResponse warm = mdaemon.execute(mip_request(), jopts);
      mip_warm_s = std::min(mip_warm_s, warm_watch.seconds());
      mip_identical = mip_identical && warm.ok() &&
                      warm.mip().query == cold.mip().query &&
                      warm.mip().rhat == cold.mip().rhat &&
                      warm.mip().that == cold.mip().that;
    }
    if (mdaemon.stats().basis_cache_hits == 0) {
      std::fprintf(stderr, "bench_svc: MIP repeats never hit the basis cache\n");
      return 1;
    }
  }
  const double mip_speedup = mip_warm_s > 0.0 ? mip_cold_s / mip_warm_s : 0.0;
  records.push_back({"mip_cold", 0, 1, mip_cold_s, 1.0 / mip_cold_s});
  records.push_back({"mip_warm", 0, 1, mip_warm_s, 1.0 / mip_warm_s});
  std::printf("MIP basis cache: cold %.3fs, warm %.3fs (%.1fx, "
              "bit-identical: %s)\n",
              mip_cold_s, mip_warm_s, mip_speedup,
              mip_identical ? "yes" : "NO");

  fs::remove_all(dir);

  std::ofstream out("BENCH_svc.json");
  out << "{\n  \"benchmark\": \"svc_daemon_throughput\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"clients\": " << r.clients
        << ", \"jobs\": " << r.jobs << ", \"seconds\": " << r.seconds
        << ", \"jobs_per_sec\": " << r.jobs_per_sec << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"svc_daemon_speedup_over_oneshot_c1\": " << speedup_c1 << ",\n";
  out << "  \"svc_daemon_speedup_over_oneshot_c8\": " << speedup_c8 << ",\n";
  out << "  \"svc_daemon_speedup_over_oneshot_c64\": " << speedup_c64
      << ",\n";
  out << "  \"svc_batched_snmf_speedup_over_solo_8job\": " << batched_speedup
      << ",\n";
  out << "  \"svc_mip_basis_cache_speedup\": " << mip_speedup << ",\n";
  out << "  \"daemon_outputs_bit_identical\": "
      << (bit_identical ? "true" : "false") << ",\n";
  out << "  \"batched_outputs_bit_identical\": "
      << (batched_identical && mip_identical ? "true" : "false") << "\n";
  out << "}\n";
  std::printf("\nwrote BENCH_svc.json\n");
  return bit_identical && batched_identical && mip_identical ? 0 : 1;
}
