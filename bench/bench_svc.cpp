// aspe::svc daemon throughput: jobs/sec through a warm daemon over its Unix
// socket at 1 / 8 / 64 concurrent clients, against the one-shot CLI baseline
// (every job re-parses its corpus and re-estimates the SNMF rank from
// scratch). The daemon amortizes exactly that per-job setup through its
// corpus and rank caches, so the same attack against the same files answers
// faster — and bit-identically, which the bench verifies per run.
//
// Writes BENCH_svc.json (gated by tools/check_bench.py against
// bench/baselines/). Headlines: svc_daemon_speedup_over_oneshot_c{1,8,64},
// daemon_outputs_bit_identical.
//
// Usage: bench_svc [--full] [--seed=S]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cli/commands.hpp"
#include "common/stopwatch.hpp"
#include "core/attack_api.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"

using namespace aspe;

namespace {

namespace fs = std::filesystem;

struct RunRecord {
  std::string mode;  // "oneshot" or "daemon"
  std::size_t clients = 0;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
};

/// Run one aspe_cli command in-process; abort the bench on failure (a bench
/// over failing jobs measures nothing).
void run_cli(std::initializer_list<std::string> args) {
  std::ostringstream out, err;
  const int code = cli::run_command(std::vector<std::string>(args), out, err);
  if (code != 0) {
    std::fprintf(stderr, "bench_svc: cli command failed (%d): %s\n", code,
                 err.str().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner(
      "svc daemon throughput: warm job service vs one-shot CLI",
      "jobs/sec at 1/8/64 concurrent clients (docs/svc.md)");

  // One SNMF job over a text corpus big enough that the per-job setup the
  // daemon caches — text parse + rank(R) estimation — is a real fraction of
  // the job, as it is for real corpora.
  const std::size_t d = 12;
  const std::size_t n = full ? 8000 : 1000;
  const std::size_t m = 48;

  const fs::path dir = fs::temp_directory_path() /
                       ("aspe_bench_svc_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string key = (dir / "key.txt").string();
  const std::string plain = (dir / "plain.txt").string();
  const std::string queries = (dir / "q.txt").string();
  const std::string db = (dir / "db.txt").string();
  const std::string td = (dir / "td.txt").string();
  const std::string sock = (dir / "svc.sock").string();

  run_cli({"keygen", "--dim=" + std::to_string(d), "--key=" + key,
           "--seed=" + std::to_string(seed)});
  run_cli({"gen-data", "--d=" + std::to_string(d),
           "--count=" + std::to_string(n), "--rho=0.25", "--out=" + plain,
           "--seed=" + std::to_string(seed + 1)});
  run_cli({"gen-data", "--d=" + std::to_string(d),
           "--count=" + std::to_string(m), "--rho=0.25", "--out=" + queries,
           "--seed=" + std::to_string(seed + 2)});
  run_cli({"encrypt", "--key=" + key, "--plain=" + plain, "--out=" + db});
  run_cli({"trapdoor", "--key=" + key, "--plain=" + queries, "--out=" + td});

  const auto job_request = [&] {
    core::AttackRequest req;
    core::SnmfRequest snmf;
    snmf.db = core::CorpusRef::from_path(db);
    snmf.trapdoors = core::CorpusRef::from_path(td);
    snmf.options.rank = 0;  // estimated per job: the cacheable expensive part
    snmf.options.restarts = 1;
    snmf.options.nmf.max_iterations = 20;
    req.request = snmf;
    return req;
  };
  svc::JobOptions jopts;
  jopts.threads = 1;
  jopts.seed = seed;

  std::vector<RunRecord> records;

  // ---- one-shot baseline: the pre-daemon workflow, one dispatch per job,
  // every job paying corpus parse + rank estimation again.
  const std::size_t baseline_jobs = full ? 12 : 6;
  double baseline_jps = 0.0;
  {
    double best = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      Stopwatch watch;
      for (std::size_t j = 0; j < baseline_jobs; ++j) {
        core::ExecContext ctx;
        ctx.seed = seed;
        const core::AttackResponse resp =
            core::dispatch_attack(job_request(), ctx);
        if (!resp.ok()) {
          std::fprintf(stderr, "bench_svc: baseline job failed: %s\n",
                       resp.message.c_str());
          return 1;
        }
      }
      best = std::min(best, watch.seconds());
    }
    baseline_jps = baseline_jobs / best;
    records.push_back({"oneshot", 1, baseline_jobs, best, baseline_jps});
  }
  std::printf("one-shot baseline: %.1f jobs/sec\n\n", baseline_jps);

  // ---- warm daemon over the socket at increasing client counts ----------
  svc::DaemonOptions dopt;
  dopt.workers =
      std::min<std::size_t>(8, std::max(1u, std::thread::hardware_concurrency()));
  svc::Daemon daemon(dopt);
  svc::ServerOptions sopt;
  sopt.socket_path = sock;
  svc::Server server(daemon, sopt);

  // First, bit-identity: the daemon's answer for this job must equal the
  // one-shot dispatch answer exactly.
  bool bit_identical = false;
  {
    core::ExecContext ctx;
    ctx.seed = seed;
    const core::AttackResponse oneshot =
        core::dispatch_attack(job_request(), ctx);
    svc::Client client(sock);
    const core::AttackResponse served = client.run(job_request(), jopts);
    bit_identical = served.ok() && oneshot.ok() &&
                    served.snmf().indexes == oneshot.snmf().indexes &&
                    served.snmf().trapdoors == oneshot.snmf().trapdoors &&
                    served.snmf().best_fit_error ==
                        oneshot.snmf().best_fit_error;
  }
  std::printf("daemon output bit-identical to one-shot: %s\n\n",
              bit_identical ? "yes" : "NO");

  bench::TablePrinter table(
      {"clients", "jobs", "seconds", "jobs/sec", "speedup"});
  table.print_header();

  double speedup_c1 = 0.0, speedup_c8 = 0.0, speedup_c64 = 0.0;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{8},
                                    std::size_t{64}}) {
    const std::size_t jobs_total = std::max<std::size_t>(clients, full ? 64 : 16);
    // Best of two repetitions: on a small machine, spinning up `clients`
    // threads is scheduler-noise of the same order as the jobs themselves.
    double s = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<std::thread> threads;
      threads.reserve(clients);
      std::atomic<std::size_t> failures{0};
      Stopwatch watch;
      for (std::size_t c = 0; c < clients; ++c) {
        const std::size_t share =
            jobs_total / clients + (c < jobs_total % clients ? 1 : 0);
        threads.emplace_back([&, share] {
          try {
            svc::Client client(sock);
            for (std::size_t j = 0; j < share; ++j) {
              const core::AttackResponse resp =
                  client.run(job_request(), jopts);
              if (!resp.ok()) ++failures;
            }
          } catch (const std::exception&) {
            ++failures;
          }
        });
      }
      for (auto& t : threads) t.join();
      s = std::min(s, watch.seconds());
      if (failures > 0) {
        std::fprintf(stderr, "bench_svc: %zu daemon jobs failed\n",
                     failures.load());
        return 1;
      }
    }
    const double jps = jobs_total / s;
    const double speedup = baseline_jps > 0.0 ? jps / baseline_jps : 0.0;
    if (clients == 1) speedup_c1 = speedup;
    if (clients == 8) speedup_c8 = speedup;
    if (clients == 64) speedup_c64 = speedup;
    records.push_back({"daemon", clients, jobs_total, s, jps});
    table.print_row({std::to_string(clients), std::to_string(jobs_total),
                     bench::fmt_sci(s), bench::fmt(jps, 1),
                     bench::fmt(speedup, 1) + "x"});
  }

  server.stop();
  daemon.stop();
  const svc::DaemonStats st = daemon.stats();
  std::printf("\ndaemon cache hits: %llu corpus, %llu rank\n",
              static_cast<unsigned long long>(st.corpus_cache_hits),
              static_cast<unsigned long long>(st.rank_cache_hits));

  fs::remove_all(dir);

  std::ofstream out("BENCH_svc.json");
  out << "{\n  \"benchmark\": \"svc_daemon_throughput\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"clients\": " << r.clients
        << ", \"jobs\": " << r.jobs << ", \"seconds\": " << r.seconds
        << ", \"jobs_per_sec\": " << r.jobs_per_sec << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"svc_daemon_speedup_over_oneshot_c1\": " << speedup_c1 << ",\n";
  out << "  \"svc_daemon_speedup_over_oneshot_c8\": " << speedup_c8 << ",\n";
  out << "  \"svc_daemon_speedup_over_oneshot_c64\": " << speedup_c64
      << ",\n";
  out << "  \"daemon_outputs_bit_identical\": "
      << (bit_identical ? "true" : "false") << "\n";
  out << "}\n";
  std::printf("\nwrote BENCH_svc.json\n");
  return bit_identical ? 0 : 1;
}
