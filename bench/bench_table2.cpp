// Table II (§VI-A1): MIP attack precision/recall/runtime on synthetic
// (IBM-Quest-style) data.
//
// Paper grid: d = m in {100, 500, 1000}, rho in {5%, 20%, 35%},
// sigma in {0.5, 1}, l = 3, 100 queries of 15 keywords per setting.
// Default here: d = m in {50, 100} and 20 queries so the bench finishes in
// ~a minute; pass --full for the paper grid (hours).
//
// Usage: bench_table2 [--full] [--dims=50,100] [--rhos=0.05,0.2,0.35]
//                     [--sigmas=0.5,1.0] [--queries=N] [--seed=S]
//                     [--trace-json=PATH] [--metrics-json=PATH]
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "data/quest.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

namespace {

struct CellResult {
  double precision = 0.0;
  double recall = 0.0;
  double avg_seconds = 0.0;
  int solved = 0;
  int attempted = 0;
};

CellResult run_cell(std::size_t d, std::size_t m, double rho, double sigma,
                    std::size_t num_queries, std::uint64_t seed,
                    obs::Sink* sink) {
  scheme::MrseOptions opt;
  opt.vocab_dim = d;
  opt.sigma = sigma;
  opt.mu = 1.0;
  sse::RankedSearchSystem system(opt, seed);
  rng::Rng rng(seed ^ 0xbeef);

  data::QuestOptions qopt;
  qopt.num_items = d;
  qopt.density = rho;
  qopt.num_transactions = m;
  system.upload_records(data::QuestGenerator(qopt, rng.child(1)).generate());

  // Queries with 15 keywords ("density 15/d as suggested in [5]").
  const std::size_t query_ones = std::min<std::size_t>(15, d / 2);
  std::vector<BitVec> queries;
  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    queries.push_back(rng.binary_with_k_ones(d, query_ones));
    system.ranked_query(queries.back(), 10);
  }

  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < m; ++i) ids.push_back(i);
  const auto view = sse::leak_known_records(system, ids);

  CellResult cell;
  std::vector<core::PrecisionRecall> prs;
  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    ++cell.attempted;
    core::MipAttackOptions aopt;
    aopt.solver.time_limit_seconds = 30.0;
    core::ExecContext actx;
    actx.sink = sink;
    const auto res = core::run_mip_attack(view, qi, opt.mu, sigma, aopt, actx);
    if (!res.found) continue;
    ++cell.solved;
    cell.avg_seconds += res.telemetry.wall_seconds;
    prs.push_back(core::binary_precision_recall(queries[qi], res.query));
  }
  if (cell.solved > 0) cell.avg_seconds /= cell.solved;
  const auto avg = core::average(prs);
  cell.precision = avg.precision;
  cell.recall = avg.recall;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const std::vector<int> dims =
      flags.get_int_list("dims", full ? std::vector<int>{100, 500, 1000}
                                      : std::vector<int>{50, 100});
  const std::vector<double> rhos =
      flags.get_double_list("rhos", {0.05, 0.20, 0.35});
  const std::vector<double> sigmas =
      flags.get_double_list("sigmas", {0.5, 1.0});
  const auto num_queries = static_cast<std::size_t>(
      flags.get_int("queries", full ? 100 : 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  bench::ObsFlags obs_flags(flags);

  bench::print_banner(
      "Table II: MIP attack on MRSE, synthetic (Quest-style) data",
      "precision (P@query), recall (R@query) and runtime per (d, rho, sigma)");
  std::printf("queries per cell: %zu, l = 3, m = d\n\n", num_queries);

  bench::TablePrinter table(
      {"sigma", "d=m", "rho", "P@query", "R@query", "Time(s)", "solved"}, 10);
  table.print_header();
  for (double sigma : sigmas) {
    for (int d_int : dims) {
      const auto d = static_cast<std::size_t>(d_int);
      for (double rho : rhos) {
        const CellResult cell =
            run_cell(d, d, rho, sigma, num_queries,
                     seed + d * 7 + std::size_t(rho * 100) * 3 +
                         std::size_t(sigma * 10),
                     obs_flags.sink());
        table.print_row({bench::fmt(sigma, 1), std::to_string(d),
                         bench::fmt(rho, 2), bench::fmt(cell.precision),
                         bench::fmt(cell.recall),
                         bench::fmt(cell.avg_seconds, 4),
                         std::to_string(cell.solved) + "/" +
                             std::to_string(cell.attempted)});
      }
    }
  }

  std::printf(
      "\nShape to compare with the paper's Table II: accuracy is high for\n"
      "sigma = 0.5 at rho >= 20%%, degrades sharply for sigma = 1 (the\n"
      "\"excessive noise\" regime) and for very sparse data (rho = 5%%).\n");
  obs_flags.finish();
  return 0;
}
