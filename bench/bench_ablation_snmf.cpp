// Ablation: components of the SNMF attack (Algorithm 3 design choices).
//
//   anls / mu          : factorization algorithm (Kim-Park ANLS vs
//                        multiplicative updates)
//   balance on/off     : latent-row rescaling before the fixed theta = 0.5
//                        threshold (NMF's diagonal-scale ambiguity)
//   restarts L         : best-of-L restarts (the paper's outer loop)
//   theta              : binarization threshold sweep
//
// Usage: bench_ablation_snmf [--d=16] [--m=64] [--rho=0.3] [--seed=S]
#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/metrics.hpp"
#include "core/snmf_attack.hpp"
#include "scheme/split_encryptor.hpp"

using namespace aspe;

namespace {

struct Scenario {
  std::vector<BitVec> truth_idx, truth_trap;
  sse::CoaView view;
};

Scenario make_scenario(std::size_t d, std::size_t m, double rho,
                       std::uint64_t seed) {
  rng::Rng rng(seed);
  scheme::SplitEncryptor enc(d, rng);
  Scenario s;
  for (std::size_t i = 0; i < m; ++i) {
    s.truth_idx.push_back(rng.binary_bernoulli(d, rho));
    s.view.cipher_indexes.push_back(
        enc.encrypt_index(to_real(s.truth_idx.back()), rng));
    s.truth_trap.push_back(rng.binary_bernoulli(d, rho * 0.8));
    s.view.cipher_trapdoors.push_back(
        enc.encrypt_trapdoor(to_real(s.truth_trap.back()), rng));
  }
  return s;
}

core::PrecisionRecall evaluate(const Scenario& s,
                               const core::SnmfAttackResult& res) {
  const auto perm = core::align_latent_dimensions(
      s.truth_idx, s.truth_trap, res.indexes, res.trapdoors);
  std::vector<core::PrecisionRecall> prs;
  for (std::size_t i = 0; i < s.truth_idx.size(); ++i) {
    prs.push_back(core::binary_precision_recall(
        s.truth_idx[i], core::apply_permutation(res.indexes[i], perm)));
    prs.push_back(core::binary_precision_recall(
        s.truth_trap[i], core::apply_permutation(res.trapdoors[i], perm)));
  }
  return core::average(prs);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  // Deliberately lean regime (m = 2d only, sparse-ish data, tight iteration
  // budget) so the variants actually separate.
  const auto d = static_cast<std::size_t>(flags.get_int("d", 28));
  const auto m = static_cast<std::size_t>(flags.get_int("m", 56));
  const double rho = flags.get_double("rho", 0.15);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner("Ablation: SNMF attack components",
                      "Algorithm 3 design choices (algorithm, balance, L, "
                      "theta)");
  std::printf("d = %zu, m = n = %zu, rho = %.2f\n\n", d, m, rho);

  const Scenario s = make_scenario(d, m, rho, seed);

  struct Variant {
    std::string name;
    core::SnmfAttackOptions options;
  };
  std::vector<Variant> variants;
  auto base = [&] {
    core::SnmfAttackOptions o;
    o.rank = d;
    o.restarts = 3;
    o.nmf.max_iterations = 120;
    o.nmf.rel_tol = 1e-6;
    return o;
  };
  {
    Variant v{"anls_L3", base()};
    variants.push_back(v);
  }
  {
    Variant v{"mu_L3", base()};
    v.options.nmf.algorithm = nmf::Algorithm::MultiplicativeUpdate;
    v.options.nmf.max_iterations = 600;
    variants.push_back(v);
  }
  {
    Variant v{"anls_L1", base()};
    v.options.restarts = 1;
    variants.push_back(v);
  }
  {
    Variant v{"anls_L6", base()};
    v.options.restarts = 6;
    variants.push_back(v);
  }
  {
    Variant v{"no_balance", base()};
    v.options.balance = false;
    variants.push_back(v);
  }
  {
    // Balance matters most for MU, whose factors drift in scale.
    Variant v{"mu_no_balance", base()};
    v.options.nmf.algorithm = nmf::Algorithm::MultiplicativeUpdate;
    v.options.nmf.max_iterations = 600;
    v.options.balance = false;
    variants.push_back(v);
  }
  for (double theta : {0.3, 0.7}) {
    Variant v{"theta_" + bench::fmt(theta, 1), base()};
    v.options.theta = theta;
    variants.push_back(v);
  }
  {
    // Deterministic SVD seeding: restarts are pointless, so L = 1.
    Variant v{"nndsvd_L1", base()};
    v.options.nmf.init = nmf::Initialization::Nndsvd;
    v.options.restarts = 1;
    variants.push_back(v);
  }

  bench::TablePrinter table({"variant", "P", "R", "fit_err", "Time(s)"}, 12);
  table.print_header();
  for (const auto& variant : variants) {
    // Same attack seed across variants.
    const core::ExecContext ctx{.seed = seed * 31 + 5};
    const auto res = core::run_snmf_attack(s.view, variant.options, ctx);
    const double seconds = res.telemetry.wall_seconds;
    const auto pr = evaluate(s, res);
    table.print_row({variant.name,
                     pr.precision_valid ? bench::fmt(pr.precision) : "-",
                     pr.recall_valid ? bench::fmt(pr.recall) : "-",
                     bench::fmt(res.best_fit_error, 3),
                     bench::fmt(seconds, 2)});
  }

  std::printf(
      "\nReading: a single random restart (anls_L1) occasionally lands in a\n"
      "poor optimum — the paper's best-of-L loop is what makes the attack\n"
      "reliable; the deterministic NNDSVD seed (nndsvd_L1) removes that\n"
      "fragility outright at L = 1. ANLS reaches lower fit error than MU at\n"
      "comparable time. Once converged, factors are already near-binary, so\n"
      "the attack is robust to the exact theta and to the balance step\n"
      "(which exists for MU-style runs whose factor scales drift).\n");
  return 0;
}
