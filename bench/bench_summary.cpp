// Table I (§VI): summary of the three attack algorithms, plus a quick
// end-to-end sanity demonstration of each at miniature scale, plus an
// aggregated view of every BENCH_*.json artifact found in the working
// directory (whatever bench_micro produced — no hardcoded file list).
//
// Usage: bench_summary [--seed=S]
#include <filesystem>

#include "bench_common.hpp"
#include "core/lep.hpp"
#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "core/snmf_attack.hpp"
#include "data/queries.hpp"
#include "data/quest.hpp"
#include "linalg/vector_ops.hpp"
#include "sse/adversary_view.hpp"
#include "sse/system.hpp"

using namespace aspe;

namespace {

/// Top-level scalar fields of one BENCH_*.json document, in file order.
/// Minimal hand parser for the shape this repo's writers emit: nested
/// arrays/objects ("results", "overheads") are skipped wholesale; numbers,
/// booleans and strings at depth 1 are the headline metrics.
std::vector<std::pair<std::string, std::string>> bench_scalars(
    const std::filesystem::path& path) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  int depth = 0;
  std::size_t i = 0;
  const auto read_string = [&] {
    std::string s;
    ++i;  // opening quote
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      s += text[i++];
    }
    ++i;  // closing quote
    return s;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '{' || c == '[') {
      ++depth;
      ++i;
    } else if (c == '}' || c == ']') {
      --depth;
      ++i;
    } else if (c == '"') {
      const std::string key = read_string();
      if (depth != 1) continue;
      while (i < text.size() && (text[i] == ':' || std::isspace(text[i]))) ++i;
      if (i >= text.size() || text[i] == '{' || text[i] == '[') continue;
      if (text[i] == '"') {
        fields.emplace_back(key, read_string());
      } else {
        std::string value;
        while (i < text.size() && text[i] != ',' && text[i] != '}' &&
               !std::isspace(text[i])) {
          value += text[i++];
        }
        fields.emplace_back(key, value);
      }
    } else {
      ++i;
    }
  }
  return fields;
}

/// Objects of a file's "ablation_results" array as ordered key/value rows
/// (empty when the file carries no ablation block). Handles exactly the flat
/// one-object-per-line shape this repo's writers emit.
std::vector<std::vector<std::pair<std::string, std::string>>> ablation_rows(
    const std::filesystem::path& path) {
  std::vector<std::vector<std::pair<std::string, std::string>>> rows;
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto start = text.find("\"ablation_results\"");
  if (start == std::string::npos) return rows;
  std::size_t i = text.find('[', start);
  if (i == std::string::npos) return rows;
  while (i < text.size() && text[i] != ']') {
    if (text[i] != '{') {
      ++i;
      continue;
    }
    const auto end = text.find('}', i);
    if (end == std::string::npos) break;
    std::vector<std::pair<std::string, std::string>> row;
    std::size_t j = i + 1;
    while (j < end) {
      const auto kq = text.find('"', j);
      if (kq == std::string::npos || kq >= end) break;
      const auto kq2 = text.find('"', kq + 1);
      const std::string key = text.substr(kq + 1, kq2 - kq - 1);
      std::size_t v = text.find(':', kq2) + 1;
      while (v < end && std::isspace(static_cast<unsigned char>(text[v]))) ++v;
      std::string value;
      if (text[v] == '"') {
        const auto vq = text.find('"', v + 1);
        value = text.substr(v + 1, vq - v - 1);
        j = vq + 1;
      } else {
        while (v < end && text[v] != ',') value += text[v++];
        while (!value.empty() &&
               std::isspace(static_cast<unsigned char>(value.back()))) {
          value.pop_back();
        }
        j = v;
      }
      row.emplace_back(key, value);
      j = text.find(',', j) == std::string::npos
              ? end
              : std::min(end, text.find(',', j) + 1);
    }
    if (!row.empty()) rows.push_back(std::move(row));
    i = end + 1;
  }
  return rows;
}

void print_ablation_tables(const std::vector<std::filesystem::path>& files) {
  for (const auto& file : files) {
    const auto rows = ablation_rows(file);
    if (rows.empty()) continue;
    std::printf("\n--- solver ablation variants (%s) ---\n\n",
                file.filename().string().c_str());
    std::vector<std::string> headers;
    for (const auto& [key, value] : rows.front()) headers.push_back(key);
    bench::TablePrinter table(headers, 13);
    table.print_header();
    for (const auto& row : rows) {
      std::vector<std::string> cells;
      for (const auto& header : headers) {
        std::string cell = "-";
        for (const auto& [key, value] : row) {
          if (key == header) {
            cell = value;
            break;
          }
        }
        cells.push_back(std::move(cell));
      }
      table.print_row(cells);
    }
  }
}

void print_bench_artifacts() {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(fs::current_path())) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::printf("\n--- recorded benchmark artifacts (BENCH_*.json) ---\n\n");
  if (files.empty()) {
    std::printf("none found in %s (run bench_micro here first)\n",
                fs::current_path().string().c_str());
    return;
  }
  bench::TablePrinter table({"File", "Headline metric", "Value"}, 40);
  table.print_header();
  for (const auto& file : files) {
    std::string shown = file.filename().string();
    for (const auto& [key, value] : bench_scalars(file)) {
      table.print_row({shown, key, value});
      shown.clear();  // file name only on its first row
    }
  }
  print_ablation_tables(files);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));

  bench::print_banner("Table I: summary of attack algorithms",
                      "attack / target scheme / adversary model / data domain");

  bench::TablePrinter table({"Attack", "Target", "Adversary", "Domain"}, 22);
  table.print_header();
  table.print_row({"LEP", "ASPE (Scheme 2)", "KPA", "Real"});
  table.print_row({"MIP", "MRSE (noise)", "KPA", "Binary"});
  table.print_row({"SNMF", "MKFSE (camouflage)", "COA", "Binary"});
  std::printf("\n--- live sanity demonstrations (miniature scale) ---\n\n");

  // LEP: exact disclosure.
  {
    const std::size_t d = 8;
    scheme::Scheme2Options opt;
    opt.record_dim = d;
    sse::SecureKnnSystem system(opt, seed);
    rng::Rng rng(seed + 1);
    const auto records = data::real_records(d + 6, d, -2.0, 2.0, rng);
    system.upload_records(records);
    for (std::size_t j = 0; j < d + 3; ++j) {
      system.knn_query(rng.uniform_vec(d, -2.0, 2.0), 3);
    }
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i <= d; ++i) ids.push_back(i);
    const auto res = core::run_lep_attack(sse::leak_known_records(system, ids));
    double max_err = 0.0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      max_err = std::max(max_err, linalg::max_abs(linalg::sub(
                                      res.records[i], records[i])));
    }
    std::printf("LEP : recovered %zu records, %zu queries; max error %.2e\n",
                res.records.size(), res.queries.size(), max_err);
  }

  // MIP: query reconstruction.
  {
    const std::size_t d = 40, m = 40;
    scheme::MrseOptions opt;
    opt.vocab_dim = d;
    opt.sigma = 0.5;
    sse::RankedSearchSystem system(opt, seed + 2);
    rng::Rng rng(seed + 3);
    data::QuestOptions qopt;
    qopt.num_items = d;
    qopt.density = 0.25;
    qopt.num_transactions = m;
    system.upload_records(data::QuestGenerator(qopt, rng.child(1)).generate());
    const BitVec q = rng.binary_with_k_ones(d, 8);
    system.ranked_query(q, 5);
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < m; ++i) ids.push_back(i);
    const auto res = core::run_mip_attack(sse::leak_known_records(system, ids),
                                          0, opt.mu, opt.sigma);
    if (res.found) {
      const auto pr = core::binary_precision_recall(q, res.query);
      std::printf("MIP : solution found in %.2fs; P=%.2f R=%.2f\n",
                  res.telemetry.wall_seconds, pr.precision, pr.recall);
    } else {
      std::printf("MIP : no solution within limits\n");
    }
  }

  // SNMF: COA reconstruction.
  {
    const std::size_t d = 12, m = 48;
    rng::Rng rng(seed + 4);
    scheme::SplitEncryptor enc(d, rng);
    std::vector<BitVec> truth_idx, truth_trap;
    sse::CoaView view;
    for (std::size_t i = 0; i < m; ++i) {
      truth_idx.push_back(rng.binary_bernoulli(d, 0.3));
      view.cipher_indexes.push_back(
          enc.encrypt_index(to_real(truth_idx.back()), rng));
      truth_trap.push_back(rng.binary_bernoulli(d, 0.25));
      view.cipher_trapdoors.push_back(
          enc.encrypt_trapdoor(to_real(truth_trap.back()), rng));
    }
    core::SnmfAttackOptions aopt;
    aopt.rank = d;
    aopt.restarts = 3;
    aopt.nmf.max_iterations = 250;
    const auto res = core::run_snmf_attack(view, aopt,
                                           core::ExecContext{.seed = seed + 5});
    const auto perm = core::align_latent_dimensions(truth_idx, truth_trap,
                                                    res.indexes, res.trapdoors);
    std::vector<core::PrecisionRecall> prs;
    for (std::size_t i = 0; i < m; ++i) {
      prs.push_back(core::binary_precision_recall(
          truth_idx[i], core::apply_permutation(res.indexes[i], perm)));
    }
    const auto avg = core::average(prs);
    std::printf("SNMF: ciphertext-only reconstruction; P=%.2f R=%.2f\n",
                avg.precision, avg.recall);
  }

  print_bench_artifacts();
  return 0;
}
