#!/usr/bin/env python3
"""Compare fresh BENCH_*.json artifacts against committed baselines.

Usage:
    tools/check_bench.py [--fresh-dir DIR] [--baseline-dir DIR]
                         [--threshold FRACTION] [--strict]

Every baseline document in --baseline-dir (default: bench/baselines/) must
have a fresh counterpart of the same name in --fresh-dir (default: the
current directory, where bench_micro writes its dumps). The *named series* —
the top-level scalar fields each writer emits as its headline numbers — are
compared direction-aware:

  * keys containing "speedup", "gflops" or "reduction" are higher-is-better;
  * keys containing "seconds" or "overhead" are lower-is-better;
  * boolean series (e.g. attack_outputs_bit_identical) must not flip from
    true to false;
  * anything else is reported but never enforced.

A regression beyond --threshold (default 0.15, i.e. 15%) on any enforced
series fails the run with exit code 1. Series present in the fresh run but
absent from the baseline (fresh-only keys — usually a bench gained a new
headline whose baseline was never re-seeded) are *warnings*; --strict
promotes them to failures. Per-record "results" entries are reported for
context only — individual micro-timings are too noisy to gate on; the
headline ratios are what the PRs' acceptance criteria name.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import pathlib
import sys

HIGHER_BETTER = ("speedup", "gflops", "reduction")
LOWER_BETTER = ("seconds", "overhead")


def direction(key):
    """'higher', 'lower', or None (unenforced) for a series name."""
    lowered = key.lower()
    if any(tag in lowered for tag in HIGHER_BETTER):
        return "higher"
    if any(tag in lowered for tag in LOWER_BETTER):
        return "lower"
    return None


def headline_series(doc):
    """Top-level scalar fields of one BENCH document, insertion-ordered."""
    return {
        key: value
        for key, value in doc.items()
        if isinstance(value, (int, float, bool)) and not key.startswith("_")
    }


def check_file(baseline_path, fresh_path, threshold):
    """Return (failures, warnings) string lists for one baseline/fresh pair."""
    failures = []
    warnings = []
    with open(baseline_path, encoding="utf-8") as fp:
        baseline = json.load(fp)
    with open(fresh_path, encoding="utf-8") as fp:
        fresh = json.load(fp)

    base_series = headline_series(baseline)
    fresh_series = headline_series(fresh)
    name = baseline_path.name

    for key in fresh_series:
        if key not in base_series:
            print(f"  {key}: (fresh only — baseline never re-seeded) [warn]")
            warnings.append(
                f"{name}: series '{key}' present in fresh run but missing "
                f"from the baseline; re-seed bench/baselines/{name}"
            )

    for key, base_value in base_series.items():
        if key not in fresh_series:
            failures.append(f"{name}: series '{key}' missing from fresh run")
            continue
        fresh_value = fresh_series[key]
        if isinstance(base_value, bool):
            status = "ok" if (fresh_value or not base_value) else "FAIL"
            print(f"  {key}: {base_value} -> {fresh_value} [{status}]")
            if status == "FAIL":
                failures.append(
                    f"{name}: '{key}' flipped from {base_value} to {fresh_value}"
                )
            continue
        sense = direction(key)
        if sense is None or base_value == 0:
            print(f"  {key}: {base_value:g} -> {fresh_value:g} [info]")
            continue
        ratio = fresh_value / base_value
        regressed = (
            ratio < 1.0 - threshold if sense == "higher" else ratio > 1.0 + threshold
        )
        status = "FAIL" if regressed else "ok"
        print(
            f"  {key}: {base_value:g} -> {fresh_value:g} "
            f"({ratio:.2f}x, {sense}-is-better) [{status}]"
        )
        if regressed:
            failures.append(
                f"{name}: '{key}' regressed beyond {threshold:.0%}: "
                f"{base_value:g} -> {fresh_value:g}"
            )
    return failures, warnings


def main():
    parser = argparse.ArgumentParser(
        description="Fail on >threshold regressions of named benchmark series."
    )
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--fresh-dir", type=pathlib.Path, default=pathlib.Path("."))
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path, default=repo_root / "bench" / "baselines"
    )
    parser.add_argument("--threshold", type=float, default=0.15)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (e.g. fresh-only series keys) as failures",
    )
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        print(f"{baseline_path.name}:")
        if not fresh_path.is_file():
            print("  (no fresh artifact — run bench_micro in --fresh-dir first)")
            failures.append(f"{baseline_path.name}: fresh artifact missing")
            continue
        file_failures, file_warnings = check_file(
            baseline_path, fresh_path, args.threshold
        )
        failures.extend(file_failures)
        warnings.extend(file_warnings)

    if warnings:
        print("\nwarnings:", file=sys.stderr)
        for warning in warnings:
            print(f"  {warning}", file=sys.stderr)
        if args.strict:
            failures.extend(warnings)

    if failures:
        print("\nregressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall named series within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
