#!/usr/bin/env bash
# Build the tree with AddressSanitizer + UBSan and run the tier-1 test suite
# under it. Usage: tools/run_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DASPE_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error turns any report into a test failure; detect_leaks catches
# view-era lifetime bugs (a kernel writing through a dangling view usually
# shows up as heap-buffer-overflow first).
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"

# Fast-fail pre-pass over the obs layer first: per-thread span buffers and
# the recording lifecycle are the newest lifetime-sensitive code, and the
# suite runs in well under a second.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -R "Obs\."

# Second pre-pass over the optimizer suites: the warm-start machinery
# (basis snapshots, trail rewinds, eta updates through row views) is the
# pointer-heaviest code in the tree, so surface its reports in seconds
# before paying for the full run.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "WarmStart|SimplexStress|Simplex\.|Mip"

# Third pre-pass over the truncated-SVD / warm-NNLS path: blocked QR panels,
# workspace Cholesky up/downdates and per-column factor buffers are the
# newest raw-pointer code (PR 5), and the suites run in well under a second.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "Svd\.|Nnls\.|Qr\."

# Fourth pre-pass over the io::v2 / mmap layer: envelope decoding walks
# attacker-controlled offsets, the mutation tests feed deliberately
# malformed containers, and MappedCorpus reads straight off mapped pages —
# exactly where an out-of-bounds read would hide. Runs in under a second.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "Codec\.|IoV2\.|MappedCorpus|Shard\.|Serialization\."

# Fifth pre-pass over the incremental sessions: score-matrix bands grown in
# place, SVD row/column updates against cached factors and NMF warm seeds
# handed across attack() calls are the newest stateful code (PR 7); the
# snapshot round-trips also re-read freshly written session files.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "CoaSession|LepSession|IncrementalSvd|NmfResume|CorpusRefresh"

# Sixth pre-pass over the MIP propagation stack: cut rows appended into a
# live simplex (tableau introspection walks B^-1 row by row), node-path
# linked lists rewound and replayed across subtree switches, and
# strong-branching probes that snapshot/restore bases — the newest
# pointer-heavy code (PR 8), surfaced in seconds.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "MipPropagation|MipBudget|Mip\.|Presolve"

# Seventh pre-pass over the svc daemon: framed protocol decoding walks
# attacker-controlled length prefixes, connection handlers hand shared_ptr
# connections to worker-thread delivery lambdas, and the server teardown
# shuts sockets down before joining — the newest lifetime-sensitive code
# (PR 9). The suites include deliberately malformed frames.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "Svc"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
