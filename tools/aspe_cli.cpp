// aspe_cli — command-line driver for the ASPE toolkit (see cli/commands.hpp).
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return aspe::cli::run_command(argc, argv, std::cout, std::cerr);
}
