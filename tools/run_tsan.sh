#!/usr/bin/env bash
# Build the tree with ThreadSanitizer and run the tier-1 test suite under it.
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DASPE_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes a data race fail the ctest invocation instead of just
# printing a report; second_deadlock_stack improves lock-order diagnostics.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

# Fast-fail pre-pass over the obs layer first: counter merges and span
# buffers are written from every pool worker, so races surface here in
# seconds before the full run pays for itself.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -R "Obs\."

# Second pre-pass: the MIP attack drives the (serial) warm-started solver
# from inside parallel heuristic probes; check those suites first.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "WarmStart|MipAttack|Par\."

# Third pre-pass: the truncated SVD fans gemm/QR panels over the pool and
# the ANLS warm path keeps per-column workspaces that must stay disjoint
# across workers; check the PR 5 suites before the full run.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "Svd\.|Nnls\.|Qr\."

# Fourth pre-pass: sharded execution fans gemm tiles and restart groups
# over the pool while every worker reads the same mapped pages; the Shard
# suites sweep budgets x thread counts, so tile races surface here first.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "Codec\.|IoV2\.|MappedCorpus|Shard\."

# Fifth pre-pass: the incremental sessions grow the score matrix by gemm
# bands fanned over the pool and the append-equivalence properties run at
# 1 and 8 threads against the same session state — the exact shape where a
# band race would break the bitwise guarantee.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "CoaSession|LepSession|IncrementalSvd|NmfResume|CorpusRefresh"

# Sixth pre-pass: the MIP propagation stack is serial by design, and the
# budget suite asserts bit-identical truncated attacks at 1 vs 8 threads —
# the exact property a racing counter or shared pseudo-cost array would
# break under TSan first.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "MipPropagation|MipBudget"

# Seventh pre-pass: the batching scheduler — fused SNMF sweeps demuxed to
# concurrent waiters, the refcounted score-matrix cache with its building
# markers, and the warm MIP basis state mutated across jobs. The scheduler
# suites assert bitwise solo/batched equality at 1 and 8 workers, which a
# racing restart slot or cache entry would break under TSan first.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "SvcScheduler|ScoreCache"

# Eighth pre-pass: the rest of the svc daemon — worker threads against the
# bounded queue, per-connection handler threads delivering results under
# per-connection write locks, warm caches shared across jobs, and a
# shutdown path that races accept/recv against teardown.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R "Svc"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
