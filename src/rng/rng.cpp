#include "rng/rng.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace aspe::rng {

BitVec Rng::binary_with_k_ones(std::size_t n, std::size_t k) {
  require(k <= n, "binary_with_k_ones: k exceeds length");
  BitVec v(n, 0);
  for (auto idx : sample_without_replacement(n, k)) v[idx] = 1;
  return v;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  require(k <= n, "sample_without_replacement: k exceeds population");
  // Partial Fisher-Yates: O(n) memory, O(n + k) time; adequate at the data
  // sizes used here (n <= a few thousand).
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

}  // namespace aspe::rng
