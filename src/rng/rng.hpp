// Deterministic, seedable random number generation used by every module.
//
// All randomized components of the library (key generation, noise injection,
// data generators, NMF initialization, ...) take an `Rng&` so experiments are
// reproducible from a single seed. `Rng::child(tag)` derives independent
// streams for sub-components without sharing mutable state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/types.hpp"

namespace aspe::rng {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(mix(seed)), stream_(mix(seed)) {}

  /// Derive an independent child generator. Children with different tags (or
  /// from different parents) produce statistically independent streams.
  /// Consumes state: the result depends on how much the parent has drawn.
  [[nodiscard]] Rng child(std::uint64_t tag) {
    return Rng(mix(engine_()) ^ mix(tag ^ 0x9e3779b97f4a7c15ULL));
  }

  /// Derive an independent stream from the *original seed* and a tag,
  /// without touching the parent's state. Unlike child(), split(tag) is
  /// order-independent — the same (seed, tag) pair always yields the same
  /// stream — which is what parallel per-restart seeding needs.
  [[nodiscard]] Rng split(std::uint64_t tag) const {
    return Rng(stream_ ^ mix(tag ^ 0x9e3779b97f4a7c15ULL));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Poisson sample with the given mean.
  int poisson(double mean) {
    std::poisson_distribution<int> d(mean);
    return d(engine_);
  }

  /// Vector of n iid uniform doubles in [lo, hi).
  Vec uniform_vec(std::size_t n, double lo, double hi) {
    Vec v(n);
    for (auto& x : v) x = uniform(lo, hi);
    return v;
  }

  /// Vector of n iid Gaussians.
  Vec normal_vec(std::size_t n, double mean, double stddev) {
    Vec v(n);
    for (auto& x : v) x = normal(mean, stddev);
    return v;
  }

  /// Binary vector of length n with exactly k ones in uniformly random
  /// positions. Throws if k > n.
  BitVec binary_with_k_ones(std::size_t n, std::size_t k);

  /// Binary vector of length n with each bit 1 independently with prob p.
  BitVec binary_bernoulli(std::size_t n, double p) {
    BitVec v(n);
    for (auto& x : v) x = bernoulli(p) ? 1 : 0;
    return v;
  }

  /// k distinct indices sampled uniformly from [0, n) (order randomized).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Shuffle a sequence in place.
  template <class Seq>
  void shuffle(Seq& seq) {
    std::shuffle(seq.begin(), seq.end(), engine_);
  }

  /// Weighted index sample: returns i with probability weights[i] / sum.
  std::size_t discrete(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Access the underlying engine (for std distributions not wrapped here).
  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: decorrelates adjacent seeds.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
  std::uint64_t stream_;  // mixed seed identity; basis of split()
};

}  // namespace aspe::rng
