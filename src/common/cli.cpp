#include "common/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace aspe {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // boolean switch
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int CliFlags::get_int(const std::string& name, int fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoi(it->second);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  throw InvalidArgument("bad boolean value for --" + name + ": " + it->second);
}

namespace {
template <class T, class Parse>
std::vector<T> parse_list(const std::string& text, Parse parse) {
  std::vector<T> out;
  std::stringstream ss(text);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(parse(tok));
  }
  return out;
}
}  // namespace

std::vector<int> CliFlags::get_int_list(const std::string& name,
                                        const std::vector<int>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_list<int>(it->second,
                         [](const std::string& s) { return std::stoi(s); });
}

std::vector<double> CliFlags::get_double_list(
    const std::string& name, const std::vector<double>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_list<double>(it->second,
                            [](const std::string& s) { return std::stod(s); });
}

std::vector<std::string> CliFlags::get_string_list(
    const std::string& name, const std::vector<std::string>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_list<std::string>(it->second,
                                 [](const std::string& s) { return s; });
}

std::size_t CliFlags::get_threads(std::size_t fallback) const {
  const auto it = values_.find("threads");
  if (it == values_.end()) return fallback;
  if (it->second == "all" || it->second == "0") return 0;
  int n = 0;
  try {
    std::size_t consumed = 0;
    n = std::stoi(it->second, &consumed);
    if (consumed != it->second.size()) {
      throw InvalidArgument("--threads expects a number or 'all', got " +
                            it->second);
    }
  } catch (const std::logic_error&) {
    throw InvalidArgument("--threads expects a number or 'all', got " +
                          it->second);
  }
  if (n < 0) {
    throw InvalidArgument("--threads must be >= 0, got " + it->second);
  }
  return static_cast<std::size_t>(n);
}

}  // namespace aspe
