// Error handling primitives shared across the library.
//
// The library reports contract violations and unrecoverable numerical
// conditions via exceptions derived from `aspe::Error`, so callers can
// distinguish library failures from standard-library ones.
#pragma once

#include <stdexcept>
#include <string>

namespace aspe {

/// Base class for all errors thrown by the aspe library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition
/// (dimension mismatch, empty input, out-of-range parameter, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine cannot proceed
/// (singular matrix, rank-deficient system, non-SPD matrix, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Require `cond`; throw InvalidArgument with `msg` otherwise.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace aspe
