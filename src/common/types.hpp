// Core value types shared across modules.
#pragma once

#include <cstdint>
#include <vector>

namespace aspe {

/// Dense real vector. All records, indexes and trapdoors are column vectors
/// stored as `Vec` (the paper's P_i, Q_j, I_i, T_j).
using Vec = std::vector<double>;

/// Binary vector over {0,1}. Used for MRSE/MKFSE data, bloom filters and the
/// reconstructed vectors produced by the MIP and SNMF attacks.
using BitVec = std::vector<std::uint8_t>;

/// Convert a binary vector to a real vector.
inline Vec to_real(const BitVec& b) {
  Vec v(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) v[i] = static_cast<double>(b[i]);
  return v;
}

/// Number of ones in a binary vector.
inline std::size_t popcount(const BitVec& b) {
  std::size_t n = 0;
  for (auto x : b) n += (x != 0);
  return n;
}

/// Density of ones in a binary vector (|v| / d). Returns 0 for empty input.
inline double density(const BitVec& b) {
  return b.empty() ? 0.0
                   : static_cast<double>(popcount(b)) /
                         static_cast<double>(b.size());
}

}  // namespace aspe
