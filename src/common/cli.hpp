// Tiny command-line flag parser for the bench and example binaries.
//
// Supports flags of the form `--name=value`, `--name value`, and boolean
// switches `--name`. Unknown flags raise an error so typos do not silently
// run the wrong experiment.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace aspe {

class CliFlags {
 public:
  CliFlags(int argc, const char* const* argv);

  /// True if `--name` was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of ints, e.g. --dims=100,500,1000.
  [[nodiscard]] std::vector<int> get_int_list(
      const std::string& name, const std::vector<int>& fallback) const;

  /// Comma-separated list of doubles.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, const std::vector<double>& fallback) const;

  /// Comma-separated list of strings, e.g. --input=a.txt,b.txt,c.txt.
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& name, const std::vector<std::string>& fallback) const;

  /// The global `--threads N` flag: N >= 1 is an explicit width, `--threads 0`
  /// (or `--threads all`) means every hardware thread. Returns `fallback`
  /// when the flag is absent; commands default to 1 so existing invocations
  /// keep their exact serial outputs.
  [[nodiscard]] std::size_t get_threads(std::size_t fallback = 1) const;

  /// Flags seen on the command line (for help/diagnostics).
  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace aspe
