// Minimal wall-clock stopwatch used by benches and solver time limits.
#pragma once

#include <chrono>

namespace aspe {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aspe
