// The Scheme-2 encryption apparatus (Wong et al. [25], Eq. (4)-(6)):
// secret split string S plus two invertible matrices M1, M2.
//
// A plaintext index I is split into shares (Ia, Ib) and a trapdoor T into
// (Ta, Tb) so that Ia.Ta + Ib.Tb = I.T, then
//
//   I'a = M1^T Ia    I'b = M2^T Ib
//   T'a = M1^{-1} Ta T'b = M2^{-1} Tb
//
// Splitting convention (following [25]): where S[k] = 0 the index coordinate
// is duplicated into both shares and the trapdoor coordinate is randomly
// split; where S[k] = 1 the roles swap. The split randomness is fresh per
// encryption — this is what defeats the naive known-plaintext key recovery
// that breaks Scheme 1 (Theorem 4 of [25]).
//
// MRSE and MKFSE reuse this apparatus on their own plaintext vectors, so it
// is factored out of AspeScheme2.
#pragma once

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace aspe::scheme {

/// A Scheme-2 ciphertext: the pair of encrypted shares.
struct CipherPair {
  Vec a;
  Vec b;
};

/// Ciphertext inner product (Eq. (6)): I'a.T'a + I'b.T'b. This is the only
/// operation the cloud server needs — and the only thing the COA adversary
/// needs for the SNMF attack.
[[nodiscard]] double cipher_score(const CipherPair& index,
                                  const CipherPair& trapdoor);

class SplitEncryptor {
 public:
  /// Generate a key (S, M1, M2) for `dim`-dimensional plaintext vectors.
  SplitEncryptor(std::size_t dim, rng::Rng& rng);

  /// Reconstruct an encryptor from persisted key material (io/key_io.hpp).
  /// Throws InvalidArgument on inconsistent shapes and NumericalError when a
  /// matrix is singular.
  SplitEncryptor(BitVec split, linalg::Matrix m1, linalg::Matrix m2);

  [[nodiscard]] CipherPair encrypt_index(const Vec& index, rng::Rng& rng) const;
  [[nodiscard]] CipherPair encrypt_trapdoor(const Vec& trapdoor,
                                            rng::Rng& rng) const;

  /// Key-holder decryption (used by tests and the trusted client).
  [[nodiscard]] Vec decrypt_index(const CipherPair& cipher) const;
  [[nodiscard]] Vec decrypt_trapdoor(const CipherPair& cipher) const;

  [[nodiscard]] std::size_t dim() const { return split_.size(); }
  [[nodiscard]] const BitVec& split_string() const { return split_; }
  /// Key-material accessors (persistence; the key holder only).
  [[nodiscard]] const linalg::Matrix& m1() const { return m1_; }
  [[nodiscard]] const linalg::Matrix& m2() const { return m2_; }

 private:
  BitVec split_;          // the secret bit string S
  linalg::Matrix m1_, m1_inv_;
  linalg::Matrix m2_, m2_inv_;
  linalg::Matrix m1_t_, m2_t_;          // cached transposes
  linalg::Matrix m1_inv_t_, m2_inv_t_;  // cached inverse transposes
};

}  // namespace aspe::scheme
