#include "scheme/scheme2.hpp"

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace aspe::scheme {

AspeScheme2::AspeScheme2(const Scheme2Options& options, rng::Rng& rng)
    : d_(options.record_dim),
      w_(options.padding_dims),
      encryptor_(options.record_dim + 1 + options.padding_dims, rng) {
  require(d_ > 0, "AspeScheme2: record dimension must be positive");
  // beta entries bounded away from zero so pad_index can always solve the
  // orthogonality constraint for the last coordinate.
  beta_.resize(w_);
  for (auto& x : beta_) {
    x = rng.uniform(0.5, 1.5) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
}

Vec AspeScheme2::pad_index(Vec index, rng::Rng& rng) const {
  if (w_ == 0) return index;
  // Random u with beta.u = 0: draw w-1 coordinates freely, solve the last.
  Vec u(w_, 0.0);
  if (w_ == 1) {
    u[0] = 0.0;
  } else {
    double acc = 0.0;
    for (std::size_t k = 0; k + 1 < w_; ++k) {
      u[k] = rng.uniform(-1.0, 1.0);
      acc += beta_[k] * u[k];
    }
    u[w_ - 1] = -acc / beta_[w_ - 1];
  }
  index.insert(index.end(), u.begin(), u.end());
  return index;
}

Vec AspeScheme2::pad_trapdoor(Vec trapdoor, rng::Rng& rng) const {
  if (w_ == 0) return trapdoor;
  const double s = rng.uniform(-1.0, 1.0);
  for (std::size_t k = 0; k < w_; ++k) trapdoor.push_back(s * beta_[k]);
  return trapdoor;
}

CipherPair AspeScheme2::encrypt_record(const Vec& p, rng::Rng& rng) const {
  require(p.size() == d_, "AspeScheme2::encrypt_record: bad dimension");
  return encryptor_.encrypt_index(pad_index(make_index(p), rng), rng);
}

CipherPair AspeScheme2::encrypt_query(const Vec& q, rng::Rng& rng) const {
  return encrypt_query_with_r(q, rng.uniform(0.5, 2.0), rng);
}

CipherPair AspeScheme2::encrypt_query_with_r(const Vec& q, double r,
                                             rng::Rng& rng) const {
  require(q.size() == d_, "AspeScheme2::encrypt_query: bad dimension");
  require(r > 0.0, "AspeScheme2::encrypt_query: r must be positive");
  return encryptor_.encrypt_trapdoor(pad_trapdoor(make_trapdoor(q, r), rng),
                                     rng);
}

}  // namespace aspe::scheme
