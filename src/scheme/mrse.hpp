// MRSE — privacy-preserving multi-keyword ranked search (Cao et al. [5]),
// the "ASPE with noise enhancement" of §IV and the target of the MIP attack.
//
// Records P and queries Q are d-dimensional binary keyword vectors.
// Index / trapdoor construction (Eq. (11)):
//
//   I = (P^T, E^T, 1)^T            E = (eps^1..eps^U) iid uniform in
//                                  (2mu/U - sqrt(6/U) sigma, 2mu/U + sqrt(6/U) sigma)
//   T = (r Q^T, r V^T, t)^T        V a random binary vector with U/2 ones,
//                                  r > 0 and t fresh random per query
//
// so that I'^T T' = I^T T = r (P.Q + E.V) + t (Eq. (12)), where E.V is the
// sum of U/2 of the eps's and therefore ~ N(mu, sigma^2). Encryption of the
// (d+U+1)-dimensional vectors uses the Scheme-2 apparatus (MRSE_II).
#pragma once

#include "rng/rng.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::scheme {

struct MrseOptions {
  std::size_t vocab_dim = 0;   // d (vocabulary size)
  std::size_t num_dummies = 8; // U (must be even: V has exactly U/2 ones)
  double mu = 1.0;             // mean of the aggregate noise E.V
  double sigma = 0.5;          // stddev of the aggregate noise
};

/// Everything the trapdoor generator used for one query; the plaintext-side
/// ground truth the attack evaluation compares against.
struct MrseTrapdoorSecrets {
  double r = 0.0;
  double t = 0.0;
  BitVec v;  // the dummy-selection vector
};

class Mrse {
 public:
  Mrse(const MrseOptions& options, rng::Rng& rng);

  /// Build the noisy plaintext index I for a binary record P.
  [[nodiscard]] Vec build_index(const BitVec& p, rng::Rng& rng) const;

  /// Build the noisy plaintext trapdoor T for a binary query Q; reports the
  /// per-query randomness through `secrets` when non-null.
  [[nodiscard]] Vec build_trapdoor(const BitVec& q, rng::Rng& rng,
                                   MrseTrapdoorSecrets* secrets = nullptr) const;

  [[nodiscard]] CipherPair encrypt_index(const Vec& index,
                                         rng::Rng& rng) const;
  [[nodiscard]] CipherPair encrypt_trapdoor(const Vec& trapdoor,
                                            rng::Rng& rng) const;

  /// Record-to-ciphertext convenience (index construction + encryption).
  [[nodiscard]] CipherPair encrypt_record(const BitVec& p, rng::Rng& rng) const;
  [[nodiscard]] CipherPair encrypt_query(const BitVec& q, rng::Rng& rng,
                                         MrseTrapdoorSecrets* secrets =
                                             nullptr) const;

  /// The noisy similarity r (P.Q + E.V) + t (Eq. (12)).
  [[nodiscard]] static double score(const CipherPair& index,
                                    const CipherPair& trapdoor) {
    return cipher_score(index, trapdoor);
  }

  [[nodiscard]] std::size_t vocab_dim() const { return d_; }
  [[nodiscard]] std::size_t num_dummies() const { return u_; }
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }
  /// Total plaintext dimension d + U + 1.
  [[nodiscard]] std::size_t cipher_dim() const { return encryptor_.dim(); }
  [[nodiscard]] const SplitEncryptor& encryptor() const { return encryptor_; }

  /// Half-width of the per-dummy uniform noise: sqrt(6/U) * sigma.
  [[nodiscard]] double noise_half_width() const;

 private:
  std::size_t d_;
  std::size_t u_;
  double mu_;
  double sigma_;
  SplitEncryptor encryptor_;
};

}  // namespace aspe::scheme
