// MKFSE — privacy-preserving multi-keyword fuzzy search (Wang et al. [22]),
// the "ASPE with camouflaging enhancement" of §V and the target of the SNMF
// attack.
//
// Index / trapdoor generation (Eq. (15)):
//
//   I = f(LSH(P), K)     T = f(LSH(Q), K)
//
// Each keyword is turned into a bigram vector, hashed by l LSH functions
// into a d-bit bloom filter, and the resulting binary vector is camouflaged
// by a keyed pseudo-random permutation f. The camouflaged binary vectors are
// then encrypted with the Scheme-2 apparatus, preserving I'^T T' = I^T T
// (Eq. (16)). Crucially, the whole pipeline is *deterministic* given K — the
// property the COA attack of §V exploits.
#pragma once

#include <string>
#include <vector>

#include "rng/rng.hpp"
#include "scheme/split_encryptor.hpp"
#include "text/lsh.hpp"
#include "text/prf.hpp"

namespace aspe::scheme {

struct MkfseOptions {
  std::size_t bloom_bits = 500;   // d (index/trapdoor length)
  std::size_t lsh_functions = 2;  // l
  double lsh_bucket_width = 4.0;
};

class Mkfse {
 public:
  Mkfse(const MkfseOptions& options, rng::Rng& rng);

  /// The camouflaged binary index I of a keyword set (deterministic).
  [[nodiscard]] BitVec build_index(
      const std::vector<std::string>& keywords) const;

  /// The camouflaged binary trapdoor T of a query keyword set — same
  /// pipeline as the index, as in Eq. (15).
  [[nodiscard]] BitVec build_trapdoor(
      const std::vector<std::string>& keywords) const {
    return build_index(keywords);
  }

  [[nodiscard]] CipherPair encrypt_index(const BitVec& index,
                                         rng::Rng& rng) const;
  [[nodiscard]] CipherPair encrypt_trapdoor(const BitVec& trapdoor,
                                            rng::Rng& rng) const;

  /// Relevance score I'^T T' = I^T T (Eq. (16)).
  [[nodiscard]] static double score(const CipherPair& index,
                                    const CipherPair& trapdoor) {
    return cipher_score(index, trapdoor);
  }

  [[nodiscard]] std::size_t bloom_bits() const { return d_; }
  [[nodiscard]] const SplitEncryptor& encryptor() const { return encryptor_; }
  [[nodiscard]] const text::LshFamily& lsh() const { return lsh_; }

 private:
  std::size_t d_;
  text::LshFamily lsh_;
  text::KeyedPermutation camouflage_;
  SplitEncryptor encryptor_;
};

}  // namespace aspe::scheme
