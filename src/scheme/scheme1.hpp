// ASPE Scheme 1 — the basic scheme of Wong et al. [25] (Eq. (2)):
//
//   I' = M^T I      T' = M^{-1} T
//
// with a single secret invertible matrix M. Preserves I.T exactly, but
// Theorem 4 of [25] already shows it falls to a KPA adversary with d+1
// linearly independent known pairs (key recovery); implemented here as the
// baseline the paper's Scheme-2 attack is compared against.
#pragma once

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "scheme/plain_index.hpp"

namespace aspe::scheme {

class AspeScheme1 {
 public:
  /// Key for d-dimensional records (the key matrix is (d+1) x (d+1)).
  AspeScheme1(std::size_t d, rng::Rng& rng);

  /// Encrypt a record P (length d): returns M^T I with I = (P, -0.5||P||^2).
  [[nodiscard]] Vec encrypt_record(const Vec& p) const;

  /// Encrypt a query Q (length d) with a fresh random r > 0.
  [[nodiscard]] Vec encrypt_query(const Vec& q, rng::Rng& rng) const;

  /// Encrypt a query with a caller-chosen r (tests).
  [[nodiscard]] Vec encrypt_query_with_r(const Vec& q, double r) const;

  /// Ciphertext score I'^T T' = I^T T.
  [[nodiscard]] static double score(const Vec& enc_index,
                                    const Vec& enc_trapdoor);

  /// Key-holder decryption.
  [[nodiscard]] Vec decrypt_index(const Vec& enc_index) const;
  [[nodiscard]] Vec decrypt_trapdoor(const Vec& enc_trapdoor) const;

  /// Theorem 4 of [25]: recover the key matrix M from d+1 known (I, I')
  /// pairs with linearly independent I (solves A M = B where A stacks the
  /// plain indexes as rows and B the cipher indexes).
  [[nodiscard]] static linalg::Matrix recover_key_from_known_pairs(
      const std::vector<Vec>& plain_indexes,
      const std::vector<Vec>& cipher_indexes);

  [[nodiscard]] std::size_t record_dim() const { return d_; }
  [[nodiscard]] const linalg::Matrix& key() const { return m_; }

 private:
  std::size_t d_;
  linalg::Matrix m_, m_inv_, m_t_, m_inv_t_;
};

}  // namespace aspe::scheme
