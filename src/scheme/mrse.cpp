#include "scheme/mrse.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aspe::scheme {

Mrse::Mrse(const MrseOptions& options, rng::Rng& rng)
    : d_(options.vocab_dim),
      u_(options.num_dummies),
      mu_(options.mu),
      sigma_(options.sigma),
      encryptor_(options.vocab_dim + options.num_dummies + 1, rng) {
  require(d_ > 0, "Mrse: vocabulary dimension must be positive");
  require(u_ >= 2 && u_ % 2 == 0, "Mrse: U must be even and >= 2");
  require(sigma_ > 0.0, "Mrse: sigma must be positive");
}

double Mrse::noise_half_width() const {
  return std::sqrt(6.0 / static_cast<double>(u_)) * sigma_;
}

Vec Mrse::build_index(const BitVec& p, rng::Rng& rng) const {
  require(p.size() == d_, "Mrse::build_index: bad dimension");
  Vec index;
  index.reserve(d_ + u_ + 1);
  for (auto bit : p) index.push_back(static_cast<double>(bit));
  const double center = 2.0 * mu_ / static_cast<double>(u_);
  const double half = noise_half_width();
  for (std::size_t k = 0; k < u_; ++k) {
    index.push_back(rng.uniform(center - half, center + half));
  }
  index.push_back(1.0);
  return index;
}

Vec Mrse::build_trapdoor(const BitVec& q, rng::Rng& rng,
                         MrseTrapdoorSecrets* secrets) const {
  require(q.size() == d_, "Mrse::build_trapdoor: bad dimension");
  const double r = rng.uniform(0.5, 2.0);
  const double t = rng.uniform(0.1, 1.0);
  const BitVec v = rng.binary_with_k_ones(u_, u_ / 2);
  Vec trapdoor;
  trapdoor.reserve(d_ + u_ + 1);
  for (auto bit : q) trapdoor.push_back(r * static_cast<double>(bit));
  for (auto bit : v) trapdoor.push_back(r * static_cast<double>(bit));
  trapdoor.push_back(t);
  if (secrets != nullptr) *secrets = {r, t, v};
  return trapdoor;
}

CipherPair Mrse::encrypt_index(const Vec& index, rng::Rng& rng) const {
  return encryptor_.encrypt_index(index, rng);
}

CipherPair Mrse::encrypt_trapdoor(const Vec& trapdoor, rng::Rng& rng) const {
  return encryptor_.encrypt_trapdoor(trapdoor, rng);
}

CipherPair Mrse::encrypt_record(const BitVec& p, rng::Rng& rng) const {
  return encrypt_index(build_index(p, rng), rng);
}

CipherPair Mrse::encrypt_query(const BitVec& q, rng::Rng& rng,
                               MrseTrapdoorSecrets* secrets) const {
  return encrypt_trapdoor(build_trapdoor(q, rng, secrets), rng);
}

}  // namespace aspe::scheme
