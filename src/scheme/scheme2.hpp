// ASPE Scheme 2 — the enhanced scheme of Wong et al. [25], the paper's
// "ASPE" and the target of the LEP attack (§III).
//
// Two tricks on top of Scheme 1:
//  1. The (d+1)-dimensional index/trapdoor is padded with w artificial
//     attributes whose inner product is always 0. Construction here: the key
//     holds a secret vector beta (length w); each index is padded with a
//     random u with beta.u = 0, each trapdoor with s*beta for a fresh random
//     scalar s — so the padded contribution is s*(beta.u) = 0 for every
//     (index, trapdoor) pair, as the paper requires.
//  2. The padded vectors are share-split with a secret bit string S and
//     encrypted with two matrices M1, M2 (SplitEncryptor).
//
// Theorem 6 of [25] claimed this resists a level-3 (KPA) attack; §III of the
// paper refutes that claim with Algorithm 1 (core/lep.hpp).
#pragma once

#include <cstddef>

#include "rng/rng.hpp"
#include "scheme/plain_index.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::scheme {

struct Scheme2Options {
  std::size_t record_dim = 0;    // d
  std::size_t padding_dims = 4;  // w
};

class AspeScheme2 {
 public:
  AspeScheme2(const Scheme2Options& options, rng::Rng& rng);

  /// Encrypt a record P (length d).
  [[nodiscard]] CipherPair encrypt_record(const Vec& p, rng::Rng& rng) const;

  /// Encrypt a query Q (length d) with a fresh random r > 0.
  [[nodiscard]] CipherPair encrypt_query(const Vec& q, rng::Rng& rng) const;

  /// Encrypt a query with caller-chosen r (tests).
  [[nodiscard]] CipherPair encrypt_query_with_r(const Vec& q, double r,
                                                rng::Rng& rng) const;

  /// The preserved quantity (Eq. (7)): r (P.Q - 0.5||P||^2).
  [[nodiscard]] static double score(const CipherPair& index,
                                    const CipherPair& trapdoor) {
    return cipher_score(index, trapdoor);
  }

  /// The (d+1)-dimensional plaintext index of P — what a KPA adversary can
  /// derive from a leaked plaintext record.
  [[nodiscard]] static Vec plaintext_index(const Vec& p) {
    return make_index(p);
  }

  [[nodiscard]] std::size_t record_dim() const { return d_; }
  [[nodiscard]] std::size_t padding_dims() const { return w_; }
  /// Total encrypted dimension d' = d + 1 + w.
  [[nodiscard]] std::size_t cipher_dim() const { return encryptor_.dim(); }

  /// Key-holder access (tests / trusted client).
  [[nodiscard]] const SplitEncryptor& encryptor() const { return encryptor_; }

 private:
  [[nodiscard]] Vec pad_index(Vec index, rng::Rng& rng) const;
  [[nodiscard]] Vec pad_trapdoor(Vec trapdoor, rng::Rng& rng) const;

  std::size_t d_;
  std::size_t w_;
  Vec beta_;  // secret padding direction (length w)
  SplitEncryptor encryptor_;
};

}  // namespace aspe::scheme
