#include "scheme/mkfse.hpp"

#include "common/error.hpp"
#include "text/bigram.hpp"

namespace aspe::scheme {

namespace {
text::LshOptions lsh_options(const MkfseOptions& o) {
  text::LshOptions l;
  l.num_functions = o.lsh_functions;
  l.bucket_width = o.lsh_bucket_width;
  return l;
}
}  // namespace

Mkfse::Mkfse(const MkfseOptions& options, rng::Rng& rng)
    : d_(options.bloom_bits),
      lsh_(text::kBigramDim, options.bloom_bits, lsh_options(options), rng),
      camouflage_(options.bloom_bits, rng.engine()()),
      encryptor_(options.bloom_bits, rng) {
  require(d_ > 0, "Mkfse: bloom length must be positive");
}

BitVec Mkfse::build_index(const std::vector<std::string>& keywords) const {
  std::vector<BitVec> bigrams;
  bigrams.reserve(keywords.size());
  for (const auto& k : keywords) bigrams.push_back(text::bigram_vector(k));
  return camouflage_.apply(lsh_.encode(bigrams));
}

CipherPair Mkfse::encrypt_index(const BitVec& index, rng::Rng& rng) const {
  require(index.size() == d_, "Mkfse::encrypt_index: bad dimension");
  return encryptor_.encrypt_index(to_real(index), rng);
}

CipherPair Mkfse::encrypt_trapdoor(const BitVec& trapdoor,
                                   rng::Rng& rng) const {
  require(trapdoor.size() == d_, "Mkfse::encrypt_trapdoor: bad dimension");
  return encryptor_.encrypt_trapdoor(to_real(trapdoor), rng);
}

}  // namespace aspe::scheme
