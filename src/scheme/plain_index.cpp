#include "scheme/plain_index.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace aspe::scheme {

Vec make_index(const Vec& p) {
  require(!p.empty(), "make_index: empty record");
  Vec index = p;
  index.push_back(-0.5 * linalg::norm_squared(p));
  return index;
}

Vec make_trapdoor(const Vec& q, double r) {
  require(!q.empty(), "make_trapdoor: empty query");
  require(r != 0.0, "make_trapdoor: r must be non-zero");
  Vec t(q.size() + 1);
  for (std::size_t i = 0; i < q.size(); ++i) t[i] = r * q[i];
  t[q.size()] = r;
  return t;
}

Vec record_from_index(const Vec& index) {
  require(index.size() >= 2, "record_from_index: index too short");
  return Vec(index.begin(), index.end() - 1);
}

bool index_is_consistent(const Vec& index, double tol) {
  if (index.size() < 2) return false;
  const Vec p = record_from_index(index);
  const double expected = -0.5 * linalg::norm_squared(p);
  const double scale = std::max(1.0, std::abs(expected));
  return std::abs(index.back() - expected) <= tol * scale;
}

RecoveredQuery query_from_trapdoor(const Vec& trapdoor) {
  require(trapdoor.size() >= 2, "query_from_trapdoor: trapdoor too short");
  const double r = trapdoor.back();
  require(std::abs(r) > 1e-12, "query_from_trapdoor: degenerate trapdoor");
  Vec q(trapdoor.begin(), trapdoor.end() - 1);
  for (auto& x : q) x /= r;
  return {std::move(q), r};
}

double plain_score(const Vec& index, const Vec& trapdoor) {
  return linalg::dot(index, trapdoor);
}

}  // namespace aspe::scheme
