#include "scheme/split_encryptor.hpp"

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace aspe::scheme {

double cipher_score(const CipherPair& index, const CipherPair& trapdoor) {
  return linalg::dot(index.a, trapdoor.a) + linalg::dot(index.b, trapdoor.b);
}

SplitEncryptor::SplitEncryptor(std::size_t dim, rng::Rng& rng) {
  require(dim > 0, "SplitEncryptor: dimension must be positive");
  split_ = rng.binary_bernoulli(dim, 0.5);
  auto k1 = linalg::random_invertible_pair(dim, rng);
  auto k2 = linalg::random_invertible_pair(dim, rng);
  m1_ = std::move(k1.m);
  m1_inv_ = std::move(k1.m_inv);
  m2_ = std::move(k2.m);
  m2_inv_ = std::move(k2.m_inv);
  m1_t_ = m1_.transpose();
  m2_t_ = m2_.transpose();
  m1_inv_t_ = m1_inv_.transpose();
  m2_inv_t_ = m2_inv_.transpose();
}

SplitEncryptor::SplitEncryptor(BitVec split, linalg::Matrix m1,
                               linalg::Matrix m2)
    : split_(std::move(split)), m1_(std::move(m1)), m2_(std::move(m2)) {
  const std::size_t n = split_.size();
  require(n > 0, "SplitEncryptor: empty split string");
  require(m1_.rows() == n && m1_.cols() == n && m2_.rows() == n &&
              m2_.cols() == n,
          "SplitEncryptor: key matrix shape must match the split string");
  m1_inv_ = linalg::LuDecomposition(m1_).inverse();  // throws when singular
  m2_inv_ = linalg::LuDecomposition(m2_).inverse();
  m1_t_ = m1_.transpose();
  m2_t_ = m2_.transpose();
  m1_inv_t_ = m1_inv_.transpose();
  m2_inv_t_ = m2_inv_.transpose();
}

CipherPair SplitEncryptor::encrypt_index(const Vec& index,
                                         rng::Rng& rng) const {
  require(index.size() == dim(), "SplitEncryptor::encrypt_index: bad length");
  Vec a(dim()), b(dim());
  for (std::size_t k = 0; k < dim(); ++k) {
    if (split_[k] == 0) {
      // duplicate
      a[k] = index[k];
      b[k] = index[k];
    } else {
      // random split: a + b = index[k], share magnitude tied to the value's
      // own scale so ciphertexts stay numerically tame.
      const double spread = std::abs(index[k]) + 1.0;
      const double s = rng.uniform(-spread, spread);
      a[k] = s;
      b[k] = index[k] - s;
    }
  }
  return {m1_t_.apply(a), m2_t_.apply(b)};
}

CipherPair SplitEncryptor::encrypt_trapdoor(const Vec& trapdoor,
                                            rng::Rng& rng) const {
  require(trapdoor.size() == dim(),
          "SplitEncryptor::encrypt_trapdoor: bad length");
  Vec a(dim()), b(dim());
  for (std::size_t k = 0; k < dim(); ++k) {
    if (split_[k] == 1) {
      a[k] = trapdoor[k];
      b[k] = trapdoor[k];
    } else {
      const double spread = std::abs(trapdoor[k]) + 1.0;
      const double s = rng.uniform(-spread, spread);
      a[k] = s;
      b[k] = trapdoor[k] - s;
    }
  }
  return {m1_inv_.apply(a), m2_inv_.apply(b)};
}

Vec SplitEncryptor::decrypt_index(const CipherPair& cipher) const {
  require(cipher.a.size() == dim() && cipher.b.size() == dim(),
          "SplitEncryptor::decrypt_index: bad ciphertext");
  // Ia = (M1^T)^{-1} I'a, Ib = (M2^T)^{-1} I'b.
  const Vec a = m1_inv_t_.apply(cipher.a);
  const Vec b = m2_inv_t_.apply(cipher.b);
  Vec index(dim());
  for (std::size_t k = 0; k < dim(); ++k) {
    index[k] = split_[k] == 0 ? a[k] : a[k] + b[k];
  }
  return index;
}

Vec SplitEncryptor::decrypt_trapdoor(const CipherPair& cipher) const {
  require(cipher.a.size() == dim() && cipher.b.size() == dim(),
          "SplitEncryptor::decrypt_trapdoor: bad ciphertext");
  // Ta = M1 T'a, Tb = M2 T'b.
  const Vec a = m1_.apply(cipher.a);
  const Vec b = m2_.apply(cipher.b);
  Vec trapdoor(dim());
  for (std::size_t k = 0; k < dim(); ++k) {
    trapdoor[k] = split_[k] == 1 ? a[k] : a[k] + b[k];
  }
  return trapdoor;
}

}  // namespace aspe::scheme
