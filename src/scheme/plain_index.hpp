// Plaintext index / trapdoor construction (Eq. (1) of the paper).
//
//   I_i = (P_i^T, -0.5 ||P_i||^2)^T          (d+1 dimensional)
//   T_j = r_j (Q_j^T, 1)^T                   (d+1 dimensional, r_j > 0)
//
// These are the "sensitive" intermediate representations: P_i and I_i are
// derivable from each other, and Q_j is derivable from T_j — which is what
// makes the LEP attack a complete plaintext disclosure.
#pragma once

#include "common/types.hpp"

namespace aspe::scheme {

/// I = (P, -0.5 ||P||^2).
[[nodiscard]] Vec make_index(const Vec& p);

/// T = r (Q, 1). Requires r != 0 (the scheme draws r > 0).
[[nodiscard]] Vec make_trapdoor(const Vec& q, double r);

/// Recover P from I (drops the quadratic coordinate).
[[nodiscard]] Vec record_from_index(const Vec& index);

/// Check that the last coordinate of `index` equals -0.5||P||^2 within tol.
[[nodiscard]] bool index_is_consistent(const Vec& index, double tol = 1e-6);

struct RecoveredQuery {
  Vec q;
  double r = 0.0;
};

/// Recover (Q, r) from T = r (Q, 1): r is the last coordinate.
[[nodiscard]] RecoveredQuery query_from_trapdoor(const Vec& trapdoor);

/// The preserved quantity of Eq. (3): I^T T = r (P.Q - 0.5||P||^2).
[[nodiscard]] double plain_score(const Vec& index, const Vec& trapdoor);

}  // namespace aspe::scheme
