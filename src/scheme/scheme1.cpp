#include "scheme/scheme1.hpp"

#include "common/error.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector_ops.hpp"

namespace aspe::scheme {

AspeScheme1::AspeScheme1(std::size_t d, rng::Rng& rng) : d_(d) {
  require(d > 0, "AspeScheme1: record dimension must be positive");
  auto key = linalg::random_invertible_pair(d + 1, rng);
  m_ = std::move(key.m);
  m_inv_ = std::move(key.m_inv);
  m_t_ = m_.transpose();
  m_inv_t_ = m_inv_.transpose();
}

Vec AspeScheme1::encrypt_record(const Vec& p) const {
  require(p.size() == d_, "AspeScheme1::encrypt_record: bad dimension");
  return m_t_.apply(make_index(p));
}

Vec AspeScheme1::encrypt_query(const Vec& q, rng::Rng& rng) const {
  return encrypt_query_with_r(q, rng.uniform(0.5, 2.0));
}

Vec AspeScheme1::encrypt_query_with_r(const Vec& q, double r) const {
  require(q.size() == d_, "AspeScheme1::encrypt_query: bad dimension");
  return m_inv_.apply(make_trapdoor(q, r));
}

double AspeScheme1::score(const Vec& enc_index, const Vec& enc_trapdoor) {
  return linalg::dot(enc_index, enc_trapdoor);
}

Vec AspeScheme1::decrypt_index(const Vec& enc_index) const {
  return m_inv_t_.apply(enc_index);
}

Vec AspeScheme1::decrypt_trapdoor(const Vec& enc_trapdoor) const {
  return m_.apply(enc_trapdoor);
}

linalg::Matrix AspeScheme1::recover_key_from_known_pairs(
    const std::vector<Vec>& plain_indexes,
    const std::vector<Vec>& cipher_indexes) {
  require(!plain_indexes.empty(), "recover_key: no pairs");
  require(plain_indexes.size() == cipher_indexes.size(),
          "recover_key: pair count mismatch");
  const std::size_t n = plain_indexes[0].size();
  require(plain_indexes.size() == n,
          "recover_key: need exactly dim(I) independent pairs");
  // I' = M^T I for each pair; stack as  A X = B  with A rows = plain
  // indexes, B rows = cipher indexes, X = M.  (Row r of A times M equals
  // row r of B because (M^T I)^T = I^T M.)
  const auto a = linalg::Matrix::from_rows(plain_indexes);
  const auto b = linalg::Matrix::from_rows(cipher_indexes);
  linalg::LuDecomposition lu(a);
  if (lu.is_singular()) {
    throw NumericalError("recover_key: known indexes are linearly dependent");
  }
  return lu.solve(b);  // X = A^{-1} B = M
}

}  // namespace aspe::scheme
