#include "cli/commands.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <variant>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "core/attack_api.hpp"
#include "core/lep.hpp"
#include "core/mip_attack.hpp"
#include "core/session.hpp"
#include "core/snmf_attack.hpp"
#include "data/quest.hpp"
#include "io/codec.hpp"
#include "io/key_io.hpp"
#include "io/session_io.hpp"
#include "obs/sinks.hpp"
#include "par/thread_pool.hpp"
#include "rng/rng.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"

namespace aspe::cli {

namespace {

std::ifstream open_input(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw io::IoError("cannot open input file: " + path);
  return f;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw io::IoError("cannot open output file: " + path);
  return f;
}

std::string required(const CliFlags& flags, const std::string& name) {
  const std::string v = flags.get_string(name, "");
  require(!v.empty(), "missing required flag --" + name);
  return v;
}

/// Resolve the command's *primary input* path: its named flag, with
/// `--input` accepted as the uniform alias every command shares.
std::string required_input(const CliFlags& flags, const std::string& name) {
  std::string v = flags.get_string(name, "");
  if (v.empty()) v = flags.get_string("input", "");
  require(!v.empty(), "missing required flag --" + name + " (or --input)");
  return v;
}

/// Resolve the command's *primary output* path (`--output` is the alias).
std::string required_output(const CliFlags& flags, const std::string& name) {
  std::string v = flags.get_string(name, "");
  if (v.empty()) v = flags.get_string("output", "");
  require(!v.empty(), "missing required flag --" + name + " (or --output)");
  return v;
}

/// The output encoding from `--format` (text when absent). Inputs never need
/// the flag: readers open with Format::Auto and sniff the v2 magic, so every
/// command consumes either encoding transparently.
io::Format output_format(const CliFlags& flags) {
  return io::parse_format(flags.get_string("format", "text"));
}

/// Build the execution policy for an attack command from the global
/// `--threads` flag (default 1, so existing invocations reproduce their
/// serial outputs exactly) and the command's `--seed`.
core::ExecContext make_exec_context(const CliFlags& flags,
                                    std::uint64_t seed) {
  core::ExecContext ctx;
  ctx.threads = flags.get_threads(1);
  ctx.seed = seed;
  if (flags.has("threads")) {
    // Publishes the width as the process default and grows the shared pool
    // when the request exceeds its current size.
    par::set_default_threads(ctx.threads);
  }
  return ctx;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << ch;
    }
  }
  os << '"';
}

/// Telemetry wiring for the attack-* commands: `--trace-json=<path>` streams
/// the run as a chrome://tracing / Perfetto event array, `--metrics-json=
/// <path>` dumps the final AttackTelemetry block (wall time, per-span
/// aggregates, counters, gauges) as one JSON object. Either flag attaches a
/// sink to the ExecContext, which turns the recording machinery on; with
/// neither flag sink() is null and the instrumented paths stay inert.
class CommandObs {
 public:
  explicit CommandObs(const CliFlags& flags)
      : trace_path_(flags.get_string("trace-json", "")),
        metrics_path_(flags.get_string("metrics-json", "")) {
    if (!trace_path_.empty()) {
      trace_.emplace(trace_path_);
      if (!trace_->ok()) {
        throw io::IoError("cannot open trace file: " + trace_path_);
      }
      tee_.add(&*trace_);
    } else if (!metrics_path_.empty()) {
      // Metrics come from the result's telemetry block, but recording must
      // still be switched on for the lower layers' counters to be captured.
      tee_.add(&null_);
    }
  }

  [[nodiscard]] obs::Sink* sink() {
    return trace_path_.empty() && metrics_path_.empty() ? nullptr : &tee_;
  }

  [[nodiscard]] bool wants_metrics() const { return !metrics_path_.empty(); }

  /// Close the trace stream and write the metrics snapshot; call after the
  /// attack returned (successful or not — a trace of a failed run is still
  /// a trace).
  void finish(const core::AttackTelemetry& telemetry, std::ostream& out) {
    if (trace_) {
      trace_->close();
      out << "wrote trace events to " << trace_path_ << "\n";
    }
    if (metrics_path_.empty()) return;
    auto f = open_output(metrics_path_);
    f.precision(15);
    f << "{\n  \"wall_seconds\": " << telemetry.wall_seconds
      << ",\n  \"spans\": [";
    for (std::size_t i = 0; i < telemetry.spans.size(); ++i) {
      f << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
      write_json_string(f, telemetry.spans[i].name);
      f << ", \"count\": " << telemetry.spans[i].count
        << ", \"total_seconds\": " << telemetry.spans[i].total_seconds << "}";
    }
    f << (telemetry.spans.empty() ? "]" : "\n  ]") << ",\n  \"counters\": {";
    std::size_t i = 0;
    for (const auto& [name, value] : telemetry.counters) {
      f << (i++ == 0 ? "\n" : ",\n") << "    ";
      write_json_string(f, name);
      f << ": " << value;
    }
    f << (telemetry.counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
    i = 0;
    for (const auto& [name, value] : telemetry.gauges) {
      f << (i++ == 0 ? "\n" : ",\n") << "    ";
      write_json_string(f, name);
      f << ": " << value;
    }
    f << (telemetry.gauges.empty() ? "}" : "\n  }") << "\n}\n";
    out << "wrote metrics to " << metrics_path_ << "\n";
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::optional<obs::JsonLinesSink> trace_;
  obs::NullSink null_;
  obs::TeeSink tee_;
};

// ------------------------------------------------------- request builders
//
// Flags -> core::*Request, once per attack kind. attack-lep / attack-mip /
// attack-snmf and `submit --attack=...` all parse through these, so the CLI
// and the daemon describe a job with the same vocabulary and the old
// per-command flag-translation blocks are gone.

core::LepRequest build_lep_request(const CliFlags& flags) {
  core::LepRequest req;
  req.known_plain = core::CorpusRef::from_path(required(flags, "known-plain"));
  req.db = core::CorpusRef::from_path(required_input(flags, "db"));
  req.trapdoors = core::CorpusRef::from_path(required(flags, "trapdoors"));
  return req;
}

core::MipRequest build_mip_request(const CliFlags& flags) {
  core::MipRequest req;
  req.known_plain = core::CorpusRef::from_path(required(flags, "known-plain"));
  req.db = core::CorpusRef::from_path(required_input(flags, "db"));
  req.trapdoors = core::CorpusRef::from_path(required(flags, "trapdoors"));
  req.trapdoor_id = static_cast<std::size_t>(flags.get_int("trapdoor-id", 0));
  req.mu = flags.get_double("mu", 1.0);
  req.sigma = flags.get_double("sigma", 0.5);
  req.options.l = flags.get_double("l", 3.0);
  req.options.solver.time_limit_seconds = flags.get_double("time-limit", 30.0);
  const int max_nodes = flags.get_int(
      "max-nodes", static_cast<int>(req.options.solver.max_nodes));
  require(max_nodes > 0, "attack-mip: --max-nodes must be positive");
  req.options.solver.max_nodes = static_cast<std::size_t>(max_nodes);
  return req;
}

core::SnmfRequest build_snmf_request(const CliFlags& flags) {
  core::SnmfRequest req;
  req.db = core::CorpusRef::from_path(required_input(flags, "db"));
  req.trapdoors = core::CorpusRef::from_path(required(flags, "trapdoors"));
  req.options.rank = static_cast<std::size_t>(flags.get_int("rank", 0));
  req.options.restarts =
      static_cast<std::size_t>(flags.get_int("restarts", 3));
  req.options.nmf.max_iterations =
      static_cast<std::size_t>(flags.get_int("iters", 250));
  req.options.rank_tol = flags.get_double("rank-tol", req.options.rank_tol);
  require(req.options.rank_tol > 0,
          "attack-snmf: --rank-tol must be positive");
  req.reuse_session = flags.get_bool("reuse-session", false);
  return req;
}

/// Raise a failed response as the typed error the top-level handler maps to
/// its exit code.
void require_ok(const core::AttackResponse& resp) {
  if (!resp.ok()) throw core::Error(resp.error, resp.message);
}

/// Print the rank-estimation report line when dispatch chose d itself
/// (exactly the line the pre-dispatch CLI printed).
void report_estimated_rank(const core::AttackResponse& resp,
                           std::ostream& out) {
  const double rank = resp.telemetry.counter("snmf.estimated_rank");
  if (rank > 0) {
    out << "estimated latent dimension d = "
        << static_cast<std::size_t>(rank) << " from rank(R)\n";
  }
}

// --------------------------------------------------------- result writers
//
// Shared by the in-process attack commands and `submit` (daemon results),
// so a job produces byte-identical output files either way.

// `suffix` is appended to every output path — "" for the single-job
// commands, ".jobN" when `submit` fans one invocation out over several
// inputs and each job needs its own files.

void write_snmf_outputs(const core::SnmfAttackResult& res,
                        const CliFlags& flags, std::ostream& out,
                        const std::string& suffix = "") {
  const std::string out_path = required_output(flags, "out") + suffix;
  if (output_format(flags) == io::Format::Binary) {
    // One BitVecList container: the reconstructed indexes followed by the
    // reconstructed trapdoors (the counts are reported on stdout; the text
    // report's comment lines have no binary equivalent).
    auto w = io::open_writer(out_path, io::Format::Binary);
    for (const auto& v : res.indexes) w->write_bitvec(v);
    for (const auto& v : res.trapdoors) w->write_bitvec(v);
    w->finish();
  } else {
    auto f = open_output(out_path);
    auto w = io::TextCodec::writer(f);
    f << "# reconstructed indexes (" << res.indexes.size() << ")\n";
    for (const auto& v : res.indexes) w->write_bitvec(v);
    f << "# reconstructed trapdoors (" << res.trapdoors.size() << ")\n";
    for (const auto& v : res.trapdoors) w->write_bitvec(v);
    w->finish();
  }
  out << "SNMF attack: reconstructed " << res.indexes.size()
      << " indexes and " << res.trapdoors.size()
      << " trapdoors (fit error " << res.best_fit_error << ")\n";
}

void write_lep_outputs(const core::LepResult& res, const CliFlags& flags,
                       std::ostream& out, const std::string& suffix = "") {
  const io::Format fmt = output_format(flags);
  auto rec_w = io::open_writer(required(flags, "out-records") + suffix, fmt);
  for (const auto& v : res.records) rec_w->write_vec(v);
  rec_w->finish();
  auto query_w = io::open_writer(required(flags, "out-queries") + suffix, fmt);
  for (const auto& v : res.queries) query_w->write_vec(v);
  query_w->finish();
  out << "LEP attack: recovered " << res.records.size() << " records and "
      << res.queries.size() << " queries (complete disclosure)\n";
}

int write_mip_outputs(const core::AttackResponse& resp, const CliFlags& flags,
                      std::ostream& out, const std::string& suffix = "") {
  if (resp.status == core::AttackStatus::NoSolution) {
    out << "MIP attack: no feasible query found within limits\n";
    return 3;
  }
  const auto& res = resp.mip();
  auto w = io::open_writer(required_output(flags, "out") + suffix,
                           output_format(flags));
  w->write_bitvec(res.query);
  w->finish();
  out << "MIP attack: reconstructed query with " << popcount(res.query)
      << " keywords in " << res.telemetry.wall_seconds
      << "s (rhat=" << res.rhat << ", that=" << res.that << ")\n";
  return 0;
}

// ----------------------------------------------------------------- commands

int cmd_keygen(const CliFlags& flags, std::ostream& out) {
  const auto dim = static_cast<std::size_t>(flags.get_int("dim", 0));
  require(dim > 0, "keygen: --dim must be positive");
  rng::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 2017)));
  const scheme::SplitEncryptor key(dim, rng);
  auto f = open_output(required(flags, "key"));
  io::write_split_encryptor(f, key);
  out << "wrote " << dim << "-dimensional split-encryptor key to "
      << flags.get_string("key", "") << "\n";
  return 0;
}

int cmd_gen_data(const CliFlags& flags, std::ostream& out) {
  const auto d = static_cast<std::size_t>(flags.get_int("d", 0));
  require(d > 0, "gen-data: --d must be positive");
  const auto count = static_cast<std::size_t>(flags.get_int("count", 100));
  rng::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 2017)));
  std::vector<Vec> as_vecs;
  as_vecs.reserve(count);
  if (flags.get_bool("real", false)) {
    // Real-valued records (the LEP attack's domain: for binary records the
    // quadratic index coordinate is linear in P and d+1 independent
    // indexes cannot exist).
    const double lo = flags.get_double("lo", -1.0);
    const double hi = flags.get_double("hi", 1.0);
    for (std::size_t i = 0; i < count; ++i) {
      as_vecs.push_back(rng.uniform_vec(d, lo, hi));
    }
    out << "wrote " << count << " real-valued records (d=" << d << ") to "
        << required_output(flags, "out") << "\n";
  } else {
    data::QuestOptions qopt;
    qopt.num_items = d;
    qopt.density = flags.get_double("rho", 0.2);
    qopt.num_transactions = count;
    for (const auto& r :
         data::QuestGenerator(qopt, std::move(rng)).generate()) {
      as_vecs.push_back(to_real(r));
    }
    out << "wrote " << count << " binary records (d=" << d
        << ", rho=" << qopt.density << ") to " << required_output(flags, "out")
        << "\n";
  }
  auto w = io::open_writer(required_output(flags, "out"), output_format(flags));
  for (const auto& v : as_vecs) w->write_vec(v);
  w->finish();
  return 0;
}

int cmd_encrypt(const CliFlags& flags, std::ostream& out, bool trapdoor) {
  auto key_file = open_input(required(flags, "key"));
  const scheme::SplitEncryptor key = io::read_split_encryptor(key_file);
  const auto plain =
      io::open_reader(required_input(flags, "plain"))->read_vecs();
  require(!plain.empty(), "encrypt: no plaintext records in input");
  rng::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  std::vector<scheme::CipherPair> db;
  db.reserve(plain.size());
  for (const auto& v : plain) {
    db.push_back(trapdoor ? key.encrypt_trapdoor(v, rng)
                          : key.encrypt_index(v, rng));
  }
  auto w = io::open_writer(required_output(flags, "out"), output_format(flags));
  w->write_cipher_database(db);
  w->finish();
  out << "encrypted " << db.size() << (trapdoor ? " trapdoors" : " indexes")
      << " under " << flags.get_string("key", "") << "\n";
  return 0;
}

int cmd_decrypt(const CliFlags& flags, std::ostream& out) {
  auto key_file = open_input(required(flags, "key"));
  const scheme::SplitEncryptor key = io::read_split_encryptor(key_file);
  const auto db =
      io::open_reader(required_input(flags, "db"))->read_cipher_database();
  const bool trapdoor = flags.get_bool("trapdoor", false);
  std::vector<Vec> plain;
  plain.reserve(db.size());
  for (const auto& c : db) {
    plain.push_back(trapdoor ? key.decrypt_trapdoor(c) : key.decrypt_index(c));
  }
  auto w = io::open_writer(required_output(flags, "out"), output_format(flags));
  for (const auto& v : plain) w->write_vec(v);
  w->finish();
  out << "decrypted " << plain.size() << " records\n";
  return 0;
}

int cmd_score(const CliFlags& flags, std::ostream& out) {
  const auto db =
      io::open_reader(required_input(flags, "db"))->read_cipher_database();
  const auto trapdoors =
      io::open_reader(required(flags, "trapdoors"))->read_cipher_database();
  require(!db.empty() && !trapdoors.empty(), "score: empty inputs");
  out << "score matrix (" << db.size() << " x " << trapdoors.size() << ")\n";
  out.precision(6);
  for (const auto& index : db) {
    for (const auto& t : trapdoors) {
      out << scheme::cipher_score(index, t) << ' ';
    }
    out << '\n';
  }
  return 0;
}

int cmd_attack_snmf(const CliFlags& flags, std::ostream& out) {
  // --session=PATH runs the attack through an incremental core::CoaSession
  // persisted at PATH. Without --append the inputs seed a fresh session
  // (the attack itself is bit-identical to the batch path); with --append
  // the inputs are the *delta* — new ciphertexts folded into the restored
  // session, whose factorization then warm-restarts.
  const std::string session_path = flags.get_string("session", "");
  const bool append = flags.get_bool("append", false);
  require(!append || !session_path.empty(),
          "attack-snmf: --append needs --session=PATH");

  core::SnmfRequest req = build_snmf_request(flags);
  CommandObs cobs(flags);
  core::ExecContext ctx = make_exec_context(
      flags, static_cast<std::uint64_t>(flags.get_int("seed", 2017)));
  ctx.sink = cobs.sink();

  core::SnmfAttackResult res;
  if (!session_path.empty()) {
    sse::CoaView view;
    view.cipher_indexes = *req.db.load_ciphers("attack-snmf db");
    view.cipher_trapdoors =
        *req.trapdoors.load_ciphers("attack-snmf trapdoors");
    std::optional<core::CoaSession> session;
    if (append) {
      session.emplace(io::load_coa_session(session_path), req.options, ctx);
    } else {
      session.emplace(req.options, ctx);
    }
    session->append_ciphertexts(view);
    if (req.options.rank == 0) {
      const std::size_t rank = session->estimate_rank();
      require(rank > 0, "attack-snmf: rank estimation found a zero matrix");
      out << "estimated latent dimension d = " << rank << " from rank(R)\n";
      session->set_rank(rank);
    } else {
      session->set_rank(req.options.rank);
    }
    res = session->attack();
    io::save_coa_session(session_path, session->snapshot());
    out << "session: " << session->num_indexes() << " indexes / "
        << session->num_trapdoors() << " trapdoors -> " << session_path
        << "\n";
  } else {
    core::AttackRequest areq;
    areq.request = std::move(req);
    core::AttackResponse resp = core::dispatch_attack(areq, ctx);
    require_ok(resp);
    report_estimated_rank(resp, out);
    res = std::get<core::SnmfAttackResult>(std::move(resp.result));
  }
  cobs.finish(res.telemetry, out);
  write_snmf_outputs(res, flags, out);
  return 0;
}

int cmd_make_index(const CliFlags& flags, std::ostream& out) {
  const auto records =
      io::open_reader(required_input(flags, "plain"))->read_vecs();
  std::vector<Vec> indexes;
  indexes.reserve(records.size());
  for (const auto& p : records) indexes.push_back(scheme::make_index(p));
  auto w = io::open_writer(required_output(flags, "out"), output_format(flags));
  for (const auto& v : indexes) w->write_vec(v);
  w->finish();
  out << "built " << indexes.size() << " ASPE indexes (P, -0.5||P||^2)\n";
  return 0;
}

int cmd_make_trapdoor(const CliFlags& flags, std::ostream& out) {
  const auto queries =
      io::open_reader(required_input(flags, "plain"))->read_vecs();
  rng::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  std::vector<Vec> trapdoors;
  trapdoors.reserve(queries.size());
  for (const auto& q : queries) {
    trapdoors.push_back(scheme::make_trapdoor(q, rng.uniform(0.5, 2.0)));
  }
  auto w = io::open_writer(required_output(flags, "out"), output_format(flags));
  for (const auto& v : trapdoors) w->write_vec(v);
  w->finish();
  out << "built " << trapdoors.size() << " ASPE trapdoors r(Q, 1)\n";
  return 0;
}

scheme::Mrse make_mrse(const CliFlags& flags, std::size_t d, rng::Rng& rng) {
  scheme::MrseOptions mopt;
  mopt.vocab_dim = d;
  mopt.num_dummies = static_cast<std::size_t>(flags.get_int("u", 8));
  mopt.mu = flags.get_double("mu", 1.0);
  mopt.sigma = flags.get_double("sigma", 0.5);
  return scheme::Mrse(mopt, rng);
}

BitVec to_bits(const Vec& v) {
  BitVec b(v.size());
  for (std::size_t k = 0; k < v.size(); ++k) b[k] = v[k] > 0.5 ? 1 : 0;
  return b;
}

int cmd_mrse_index(const CliFlags& flags, std::ostream& out) {
  const auto records =
      io::open_reader(required_input(flags, "plain"))->read_vecs();
  require(!records.empty(), "mrse-index: no records");
  rng::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const scheme::Mrse mrse = make_mrse(flags, records[0].size(), rng);
  std::vector<Vec> indexes;
  indexes.reserve(records.size());
  for (const auto& p : records) {
    indexes.push_back(mrse.build_index(to_bits(p), rng));
  }
  auto w = io::open_writer(required_output(flags, "out"), output_format(flags));
  for (const auto& v : indexes) w->write_vec(v);
  w->finish();
  out << "built " << indexes.size() << " MRSE indexes (d+U+1 = "
      << indexes[0].size() << ")\n";
  return 0;
}

int cmd_mrse_trapdoor(const CliFlags& flags, std::ostream& out) {
  const auto queries =
      io::open_reader(required_input(flags, "plain"))->read_vecs();
  require(!queries.empty(), "mrse-trapdoor: no queries");
  rng::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const scheme::Mrse mrse = make_mrse(flags, queries[0].size(), rng);
  std::vector<Vec> trapdoors;
  trapdoors.reserve(queries.size());
  for (const auto& q : queries) {
    trapdoors.push_back(mrse.build_trapdoor(to_bits(q), rng));
  }
  auto w = io::open_writer(required_output(flags, "out"), output_format(flags));
  for (const auto& v : trapdoors) w->write_vec(v);
  w->finish();
  out << "built " << trapdoors.size() << " MRSE trapdoors\n";
  return 0;
}

int cmd_attack_lep(const CliFlags& flags, std::ostream& out) {
  // --session=PATH runs the attack through an incremental core::LepSession
  // persisted at PATH; with --append the inputs are the *delta* (new leaks
  // and ciphertexts) and every input flag becomes optional. A session that
  // is not yet ready (a basis still incomplete) saves its state, reports
  // what it is waiting for, and exits 0 without writing outputs.
  const std::string session_path = flags.get_string("session", "");
  const bool append = flags.get_bool("append", false);
  require(!append || !session_path.empty(),
          "attack-lep: --append needs --session=PATH");

  // LEP consumes no randomness; the context carries the thread count and
  // the telemetry sink.
  CommandObs cobs(flags);
  core::ExecContext ctx = make_exec_context(flags, 0);
  ctx.sink = cobs.sink();

  core::LepResult res;
  if (!session_path.empty()) {
    // Session mode keeps its own input handling: under --append every flag
    // is optional (the inputs are a delta) and the known pairs are built
    // against the delta database.
    const auto read_vecs_flag = [&](const char* name) {
      const std::string path = flags.get_string(name, "");
      return path.empty() ? std::vector<Vec>{}
                          : io::open_reader(path)->read_vecs();
    };
    const auto read_db_flag = [&](const char* name, bool primary) {
      std::string path = flags.get_string(name, "");
      if (path.empty() && primary) path = flags.get_string("input", "");
      return path.empty() ? std::vector<scheme::CipherPair>{}
                          : io::open_reader(path)->read_cipher_database();
    };
    const auto known_records = read_vecs_flag("known-plain");
    sse::CoaView observed;
    observed.cipher_indexes = read_db_flag("db", true);
    observed.cipher_trapdoors = read_db_flag("trapdoors", false);
    require(known_records.size() <= observed.cipher_indexes.size(),
            "attack-lep: more known records than ciphertexts");
    std::vector<sse::KnownIndexPair> known_pairs;
    known_pairs.reserve(known_records.size());
    for (std::size_t i = 0; i < known_records.size(); ++i) {
      known_pairs.push_back({scheme::make_index(known_records[i]),
                             observed.cipher_indexes[i]});
    }
    std::optional<core::LepSession> session;
    if (append) {
      session.emplace(io::load_lep_session(session_path), core::LepOptions{},
                      ctx);
    } else {
      session.emplace(core::LepOptions{}, ctx);
    }
    session->add_known_pairs(known_pairs);
    session->append_ciphertexts(observed);
    io::save_lep_session(session_path, session->snapshot());
    if (!session->ready()) {
      out << "LEP session: waiting for "
          << (!session->pair_basis_complete()
                  ? "d+1 independent known pairs"
                  : "d+1 independent trapdoors")
          << " (" << session->num_indexes() << " indexes / "
          << session->num_trapdoors() << " trapdoors observed); state -> "
          << session_path << "\n";
      return 0;
    }
    res = session->result();
    out << "session: " << session->warm_resolves()
        << " warm re-solves; state -> " << session_path << "\n";
  } else {
    core::AttackRequest areq;
    areq.request = build_lep_request(flags);
    core::AttackResponse resp = core::dispatch_attack(areq, ctx);
    require_ok(resp);
    res = std::get<core::LepResult>(std::move(resp.result));
  }
  cobs.finish(res.telemetry, out);
  write_lep_outputs(res, flags, out);
  return 0;
}

int cmd_attack_mip(const CliFlags& flags, std::ostream& out) {
  // MIP consumes no randomness; the context carries the thread count and
  // the telemetry sink.
  CommandObs cobs(flags);
  core::ExecContext ctx = make_exec_context(flags, 0);
  ctx.sink = cobs.sink();

  core::AttackRequest areq;
  areq.request = build_mip_request(flags);
  const core::AttackResponse resp = core::dispatch_attack(areq, ctx);
  require_ok(resp);
  cobs.finish(resp.telemetry, out);
  return write_mip_outputs(resp, flags, out);
}

int cmd_convert(const CliFlags& flags, std::ostream& out) {
  const std::string in_path = required_input(flags, "in");
  const std::string out_path = required_output(flags, "out");
  // --format names the *target* encoding; the source encoding is sniffed.
  const io::Format fmt = io::parse_format(required(flags, "format"));
  auto reader = io::open_reader(in_path);
  auto writer = io::open_writer(out_path, fmt);
  std::size_t records = 0;
  std::vector<scheme::CipherPair> pending_db;
  while (auto r = reader->read_next()) {
    ++records;
    // Cipher pairs are buffered so the text target gets one framed
    // encrypted_db (count up front) rather than a bare record stream.
    if (r->kind == io::RecordKind::CipherPair) {
      pending_db.push_back(std::move(r->cipher));
    } else {
      writer->write_record(*r);
    }
  }
  if (!pending_db.empty()) writer->write_cipher_database(pending_db);
  writer->finish();
  out << "converted " << records << " records to "
      << (fmt == io::Format::Binary ? "binary" : "text") << ": " << out_path
      << "\n";
  return 0;
}

// -------------------------------------------------------------- svc surface

int cmd_serve(const CliFlags& flags, std::ostream& out) {
  const std::string socket = required(flags, "socket");
  CommandObs cobs(flags);  // --trace-json streams every job's recording

  svc::DaemonOptions dopt;
  const int workers = flags.get_int("workers", 1);
  require(workers > 0, "serve: --workers must be positive");
  dopt.workers = static_cast<std::size_t>(workers);
  const int queue = flags.get_int("queue", 64);
  require(queue > 0, "serve: --queue must be positive");
  dopt.queue_capacity = static_cast<std::size_t>(queue);
  const int budget_mb = flags.get_int("memory-budget-mb", 0);
  require(budget_mb >= 0, "serve: --memory-budget-mb must be >= 0");
  dopt.memory_budget_bytes =
      static_cast<std::size_t>(budget_mb) * 1024 * 1024;
  dopt.sink = cobs.sink();
  if (flags.has("threads")) {
    par::set_default_threads(flags.get_threads(1));
  }

  svc::Daemon daemon(dopt);
  svc::ServerOptions sopt;
  sopt.socket_path = socket;
  svc::Server server(daemon, sopt);
  out << "svc: serving on " << socket << " (" << dopt.workers
      << " worker" << (dopt.workers == 1 ? "" : "s") << ", queue "
      << dopt.queue_capacity << ")\n";
  out.flush();  // clients may block until this line appears

  server.wait();  // until a client sends Shutdown
  server.stop();
  daemon.stop();
  const svc::DaemonStats st = daemon.stats();
  out << "svc: stopped after " << st.submitted << " jobs (" << st.completed
      << " completed, " << st.rejected << " rejected, " << st.expired
      << " expired, " << st.cancelled << " cancelled; "
      << st.corpus_cache_hits << " corpus / " << st.rank_cache_hits
      << " rank / " << st.lep_session_hits << " session cache hits; "
      << st.batched_jobs << " jobs fused into " << st.batches_formed
      << " sweeps, " << st.score_cache_hits << " score / "
      << st.basis_cache_hits << " basis cache hits)\n";
  cobs.finish(core::AttackTelemetry{}, out);
  return 0;
}

/// Convert a request's path refs into inline payloads (`submit --inline`):
/// the corpora are read client-side and shipped inside the Submit frame,
/// for daemons that cannot see the client's filesystem.
core::AttackRequest inline_request(core::AttackRequest req) {
  const auto to_ciphers = [](core::CorpusRef& ref) {
    if (!ref.path.empty()) {
      ref = core::CorpusRef::inline_ciphers(
          *ref.load_ciphers("submit corpus"));
    }
  };
  const auto to_vecs = [](core::CorpusRef& ref) {
    if (!ref.path.empty()) {
      ref = core::CorpusRef::inline_vecs(*ref.load_vecs("submit corpus"));
    }
  };
  std::visit(
      [&](auto& typed) {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, core::SnmfRequest>) {
          to_ciphers(typed.db);
          to_ciphers(typed.trapdoors);
        } else {
          to_vecs(typed.known_plain);
          to_ciphers(typed.db);
          to_ciphers(typed.trapdoors);
        }
      },
      req.request);
  return req;
}

/// Build the request `submit` describes with its flags. `db_path`, when
/// non-empty, overrides the database corpus — the multi-input path builds
/// one request per `--input` entry this way, all other flags shared.
core::AttackRequest build_submit_request(const std::string& attack,
                                         const CliFlags& flags,
                                         const std::string& db_path) {
  core::AttackRequest req;
  if (attack == "lep") {
    req.request = build_lep_request(flags);
  } else if (attack == "mip") {
    req.request = build_mip_request(flags);
  } else if (attack == "snmf") {
    req.request = build_snmf_request(flags);
  } else {
    throw InvalidArgument("submit: unknown --attack kind: " + attack);
  }
  if (!db_path.empty()) {
    std::visit(
        [&](auto& typed) { typed.db = core::CorpusRef::from_path(db_path); },
        req.request);
  }
  if (flags.get_bool("inline", false)) req = inline_request(std::move(req));
  return req;
}

/// One human line summarizing a stats-bearing Pong.
void print_daemon_stats(const svc::DaemonStats& st, std::ostream& out) {
  out << "pong: " << st.submitted << " submitted, " << st.completed
      << " completed, " << st.rejected << " rejected, " << st.queue_depth
      << " queued; " << st.batched_jobs << " jobs fused into "
      << st.batches_formed << " sweeps, " << st.affinity_hits
      << " affinity hits; cache hits: " << st.corpus_cache_hits
      << " corpus, " << st.rank_cache_hits << " rank, "
      << st.lep_session_hits << " session, " << st.basis_cache_hits
      << " basis, " << st.score_cache_hits << " score ("
      << st.score_cache_misses << " misses, " << st.score_cache_evictions
      << " evicted, " << st.score_cache_bytes << " bytes resident)\n";
}

int cmd_submit(const CliFlags& flags, std::ostream& out) {
  svc::Client client(required(flags, "socket"));
  if (flags.get_bool("ping", false)) {
    // Stats-bearing daemons answer the Pong with a DaemonStats payload; a
    // bare "pong" covers servers that predate it.
    const auto stats = client.ping_stats();
    if (stats) {
      print_daemon_stats(*stats, out);
    } else {
      require(client.ping(), "submit: daemon did not answer the ping");
      out << "pong\n";
    }
    return 0;
  }
  if (flags.get_bool("shutdown", false)) {
    client.shutdown_server();
    out << "svc: daemon shutting down\n";
    return 0;
  }

  const std::string attack = required(flags, "attack");
  const std::vector<std::string> inputs = flags.get_string_list("input", {});

  CommandObs cobs(flags);  // metrics only: spans are recorded daemon-side
  svc::JobOptions jopts;
  jopts.threads = flags.get_threads(1);
  // Same seeds the in-process commands use, so daemon results match the
  // CLI bit for bit (LEP and MIP consume no randomness).
  jopts.seed = attack == "snmf"
                   ? static_cast<std::uint64_t>(flags.get_int("seed", 2017))
                   : 0;
  jopts.deadline_ms =
      static_cast<std::uint64_t>(flags.get_int("deadline-ms", 0));
  jopts.want_telemetry = cobs.sink() != nullptr;

  if (inputs.size() <= 1) {
    core::AttackRequest req = build_submit_request(attack, flags, "");
    core::AttackResponse resp = client.run(req, jopts);
    require_ok(resp);
    if (attack == "snmf") report_estimated_rank(resp, out);
    cobs.finish(resp.telemetry, out);
    if (attack == "lep") {
      write_lep_outputs(resp.lep(), flags, out);
    } else if (attack == "mip") {
      return write_mip_outputs(resp, flags, out);
    } else {
      write_snmf_outputs(resp.snmf(), flags, out);
    }
    return 0;
  }

  // Several --input databases: one job per input, shipped in a single
  // SubmitBatch frame over this connection so the daemon's scheduler can
  // coalesce compatible jobs. Each job writes its own output files (the
  // --out paths suffixed ".jobN") and reports its own status line; the
  // command's exit code is the first failing job's.
  std::vector<svc::BatchJob> jobs;
  jobs.reserve(inputs.size());
  for (const std::string& input : inputs) {
    jobs.push_back({build_submit_request(attack, flags, input), jopts});
  }
  const std::vector<std::uint64_t> ids = client.submit_batch(jobs);
  int exit_code = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    core::AttackResponse resp = client.wait(ids[i]);
    const std::string suffix = ".job" + std::to_string(i);
    out << "job " << i << " (" << inputs[i] << "): ";
    if (!resp.ok()) {
      out << "error: " << resp.message << "\n";
      if (exit_code == 0) exit_code = core::exit_code_for(resp.error);
      continue;
    }
    if (attack == "snmf") report_estimated_rank(resp, out);
    int job_code = 0;
    if (attack == "lep") {
      write_lep_outputs(resp.lep(), flags, out, suffix);
    } else if (attack == "mip") {
      job_code = write_mip_outputs(resp, flags, out, suffix);
    } else {
      write_snmf_outputs(resp.snmf(), flags, out, suffix);
    }
    if (exit_code == 0) exit_code = job_code;
  }
  cobs.finish(core::AttackTelemetry{}, out);
  return exit_code;
}

int cmd_help(std::ostream& out) {
  out << "aspe_cli — drive the ASPE toolkit from files\n"
         "\n"
         "  convert     --in=src --out=dst --format={text,bin}\n"
         "              (re-encode any corpus file; source format is sniffed)\n"
         "  keygen      --dim=N --key=key.txt [--seed=S]\n"
         "  gen-data    --d=N --out=plain.txt [--rho=R] [--count=M] [--seed=S]\n"
         "              [--real [--lo=A] [--hi=B]]  (real-valued records)\n"
         "  encrypt     --key=key.txt --plain=plain.txt --out=db.txt [--seed=S]\n"
         "  trapdoor    --key=key.txt --plain=queries.txt --out=trap.txt [--seed=S]\n"
         "  decrypt     --key=key.txt --db=db.txt --out=plain.txt [--trapdoor]\n"
         "  make-index     --plain=records.txt --out=indexes.txt\n"
         "  make-trapdoor  --plain=queries.txt --out=trapdoors.txt [--seed=S]\n"
         "  mrse-index     --plain=records.txt --out=indexes.txt\n"
         "                 [--u=U] [--mu=..] [--sigma=..] [--seed=S]\n"
         "  mrse-trapdoor  --plain=queries.txt --out=trapdoors.txt (same flags)\n"
         "  score       --db=db.txt --trapdoors=trap.txt\n"
         "  attack-snmf --db=db.txt --trapdoors=trap.txt --out=recon.txt\n"
         "              [--rank=N (estimated from rank(R) when omitted)]\n"
         "              [--rank-tol=T (rank-estimate tolerance, default 1e-8)]\n"
         "              [--restarts=L] [--iters=N] [--seed=S]\n"
         "              [--session=s.txt [--append]]\n"
         "  attack-lep  --known-plain=leak.txt --db=db.txt --trapdoors=trap.txt\n"
         "              --out-records=rec.txt --out-queries=q.txt\n"
         "              [--session=s.txt [--append]]\n"
         "              (leak.txt: records aligned with the first db entries;\n"
         "               needs d+1 linearly independent ones)\n"
         "  attack-mip  --known-plain=leak.txt --db=db.txt --trapdoors=trap.txt\n"
         "              --out=q.txt [--trapdoor-id=J] [--mu=..] [--sigma=..]\n"
         "              [--l=3] [--time-limit=30] [--max-nodes=200000]\n"
         "              (--max-nodes caps branch-and-bound nodes; the attack\n"
         "               reports NodeLimit when the cap trips first)\n"
         "  serve       --socket=PATH [--workers=N] [--queue=N]\n"
         "              [--memory-budget-mb=N (score-matrix cache budget)]\n"
         "              (attack-service daemon on a Unix socket; warm corpus/\n"
         "               session caches, cache-affine batching scheduler,\n"
         "               bounded job queue — docs/svc.md)\n"
         "  submit      --socket=PATH --attack={lep,mip,snmf} <attack flags>\n"
         "              [--deadline-ms=N] [--inline] | --ping | --shutdown\n"
         "              (ship one job to a running daemon; same flags and\n"
         "               same output files as the attack-* commands;\n"
         "               --input=a,b,c ships one job per database in a\n"
         "               single batch — outputs suffixed .jobN, one status\n"
         "               line each; --ping prints the daemon's stats line)\n"
         "  help\n"
         "\n"
         "Every attack-* command also accepts the global --threads=N flag:\n"
         "N parallel threads (0 or `all` = every hardware thread; default 1).\n"
         "Results are bit-identical for any thread count.\n"
         "\n"
         "Uniform I/O flags (see docs/io.md):\n"
         "  --format={text,bin}        output encoding (default text); input\n"
         "                             encodings are always auto-detected\n"
         "  --input=..., --output=...  aliases for each command's primary\n"
         "                             input/output flag (--db/--plain, --out)\n"
         "\n"
         "Incremental sessions (see docs/incremental.md):\n"
         "  --session=PATH  run attack-snmf / attack-lep through a persistent\n"
         "                  incremental session stored at PATH\n"
         "  --append        inputs are a *delta* folded into the restored\n"
         "                  session (score matrix grows in place, the\n"
         "                  factorization / LU solves warm-restart)\n"
         "\n"
         "Attack telemetry (see docs/observability.md):\n"
         "  --trace-json=trace.json    span/counter event array for\n"
         "                             chrome://tracing or ui.perfetto.dev\n"
         "  --metrics-json=m.json      wall time, span aggregates, counters\n"
         "Attaching either never changes attack output.\n"
         "\n"
         "Exit codes (docs/api.md): 0 ok, 1 internal error, 2 bad input,\n"
         "3 no feasible solution (attack-mip), 4 attack preconditions not\n"
         "met yet, 5 budget exhausted (deadline / queue / limits).\n"
         "\n"
         "Corpus files use the io/ text format or the io::v2 binary\n"
         "container (magic \"ASPEIO2\"); `score` and `attack-snmf` need no\n"
         "key — that is the point of the paper.\n";
  return 0;
}

}  // namespace

int run_command(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty()) {
    cmd_help(err);
    return 2;
  }
  const std::string& name = args[0];
  std::vector<const char*> argv = {"aspe_cli"};
  for (std::size_t i = 1; i < args.size(); ++i) argv.push_back(args[i].c_str());
  try {
    const CliFlags flags(static_cast<int>(argv.size()), argv.data());
    if (name == "keygen") return cmd_keygen(flags, out);
    if (name == "gen-data") return cmd_gen_data(flags, out);
    if (name == "encrypt") return cmd_encrypt(flags, out, /*trapdoor=*/false);
    if (name == "trapdoor") return cmd_encrypt(flags, out, /*trapdoor=*/true);
    if (name == "decrypt") return cmd_decrypt(flags, out);
    if (name == "score") return cmd_score(flags, out);
    if (name == "make-index") return cmd_make_index(flags, out);
    if (name == "make-trapdoor") return cmd_make_trapdoor(flags, out);
    if (name == "mrse-index") return cmd_mrse_index(flags, out);
    if (name == "mrse-trapdoor") return cmd_mrse_trapdoor(flags, out);
    if (name == "convert") return cmd_convert(flags, out);
    if (name == "attack-snmf") return cmd_attack_snmf(flags, out);
    if (name == "attack-lep") return cmd_attack_lep(flags, out);
    if (name == "attack-mip") return cmd_attack_mip(flags, out);
    if (name == "serve") return cmd_serve(flags, out);
    if (name == "submit") return cmd_submit(flags, out);
    if (name == "help" || name == "--help") return cmd_help(out);
    err << "unknown command: " << name << "\n";
    cmd_help(err);
    return 2;
  } catch (const std::exception& e) {
    // The one error boundary: classify onto the ErrorCode taxonomy and map
    // to the documented exit codes (2 bad input, 4 not ready, 5 budget,
    // 1 internal).
    err << "error: " << e.what() << "\n";
    return core::exit_code_for(core::error_code_of(e));
  }
}

int run_command(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run_command(args, out, err);
}

}  // namespace aspe::cli
