// The aspe_cli command layer: file-based key generation, encryption, data
// generation, scoring and attacks. Kept out of main() so each command is
// unit-testable.
//
// File formats are the io/ module's text records: a key file holds a
// SplitEncryptor, a plaintext file is a list of `vec` records, a ciphertext
// file an `encrypted_db` block, a binary reconstruction a list of `bits`
// records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aspe::cli {

/// Run one subcommand: args[0] is the command name ("keygen", "encrypt",
/// "trapdoor", "gen-data", "score", "decrypt", "attack-snmf", "help").
/// Human-readable output goes to `out`, diagnostics to `err`.
/// Returns a process exit code (0 = success).
int run_command(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// argv adapter used by tools/aspe_cli.cpp.
int run_command(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err);

}  // namespace aspe::cli
