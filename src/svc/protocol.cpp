#include "svc/protocol.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/obs.hpp"

namespace aspe::svc {

namespace {

// ---- corpora -------------------------------------------------------------

enum class RefMode : std::uint8_t { Empty = 0, Path = 1, Ciphers = 2, Vecs = 3 };

void encode_corpus_ref(WireWriter& w, const core::CorpusRef& ref) {
  if (!ref.path.empty()) {
    w.u8(static_cast<std::uint8_t>(RefMode::Path));
    w.str(ref.path);
  } else if (ref.ciphers != nullptr) {
    w.u8(static_cast<std::uint8_t>(RefMode::Ciphers));
    w.u64(ref.ciphers->size());
    for (const auto& c : *ref.ciphers) {
      w.vec(c.a);
      w.vec(c.b);
    }
  } else if (ref.vecs != nullptr) {
    w.u8(static_cast<std::uint8_t>(RefMode::Vecs));
    w.u64(ref.vecs->size());
    for (const auto& v : *ref.vecs) w.vec(v);
  } else {
    w.u8(static_cast<std::uint8_t>(RefMode::Empty));
  }
}

core::CorpusRef decode_corpus_ref(WireReader& r) {
  const auto mode = r.u8();
  switch (static_cast<RefMode>(mode)) {
    case RefMode::Empty:
      return {};
    case RefMode::Path:
      return core::CorpusRef::from_path(r.str());
    case RefMode::Ciphers: {
      // Minimum bytes per pair: two empty vecs = two u64 length prefixes.
      const std::size_t n = r.count(16, "svc corpus cipher count");
      std::vector<scheme::CipherPair> db(n);
      for (auto& c : db) {
        c.a = r.vec();
        c.b = r.vec();
      }
      return core::CorpusRef::inline_ciphers(std::move(db));
    }
    case RefMode::Vecs: {
      const std::size_t n = r.count(8, "svc corpus vec count");
      std::vector<Vec> vs(n);
      for (auto& v : vs) v = r.vec();
      return core::CorpusRef::inline_vecs(std::move(vs));
    }
    default:
      throw io::IoError("svc: unknown corpus reference mode " +
                        std::to_string(mode));
  }
}

// ---- telemetry -----------------------------------------------------------

void encode_telemetry(WireWriter& w, const core::AttackTelemetry& t) {
  w.f64(t.wall_seconds);
  w.u64(t.spans.size());
  for (const auto& s : t.spans) {
    w.str(s.name);
    w.u64(s.count);
    w.f64(s.total_seconds);
  }
  w.u64(t.counters.size());
  for (const auto& [name, value] : t.counters) {
    w.str(name);
    w.f64(value);
  }
  w.u64(t.gauges.size());
  for (const auto& [name, value] : t.gauges) {
    w.str(name);
    w.f64(value);
  }
}

core::AttackTelemetry decode_telemetry(WireReader& r) {
  core::AttackTelemetry t;
  t.wall_seconds = r.f64();
  // Minimum bytes per span row: name prefix (8) + count (8) + seconds (8).
  const std::size_t spans = r.count(24, "svc telemetry span count");
  t.spans.resize(spans);
  for (auto& s : t.spans) {
    s.name = r.str();
    s.count = static_cast<std::size_t>(r.u64());
    s.total_seconds = r.f64();
  }
  const std::size_t counters = r.count(16, "svc telemetry counter count");
  for (std::size_t i = 0; i < counters; ++i) {
    std::string name = r.str();
    t.counters[std::move(name)] = r.f64();
  }
  const std::size_t gauges = r.count(16, "svc telemetry gauge count");
  for (std::size_t i = 0; i < gauges; ++i) {
    std::string name = r.str();
    t.gauges[std::move(name)] = r.f64();
  }
  return t;
}

// ---- vectors-of-vectors helpers -----------------------------------------

void encode_vec_list(WireWriter& w, const std::vector<Vec>& vs) {
  w.u64(vs.size());
  for (const auto& v : vs) w.vec(v);
}

std::vector<Vec> decode_vec_list(WireReader& r) {
  const std::size_t n = r.count(8, "svc vec list count");
  std::vector<Vec> vs(n);
  for (auto& v : vs) v = r.vec();
  return vs;
}

void encode_bits_list(WireWriter& w, const std::vector<BitVec>& vs) {
  w.u64(vs.size());
  for (const auto& v : vs) w.bits(v);
}

std::vector<BitVec> decode_bits_list(WireReader& r) {
  const std::size_t n = r.count(8, "svc bitvec list count");
  std::vector<BitVec> vs(n);
  for (auto& v : vs) v = r.bits();
  return vs;
}

}  // namespace

// ---- job options ---------------------------------------------------------

void encode_job_options(WireWriter& w, const JobOptions& opts) {
  w.u64(opts.threads);
  w.u64(opts.seed);
  w.u8(opts.deterministic ? 1 : 0);
  w.u64(opts.deadline_ms);
  w.u8(opts.want_telemetry ? 1 : 0);
}

JobOptions decode_job_options(WireReader& r) {
  JobOptions opts;
  opts.threads = static_cast<std::size_t>(r.u64());
  opts.seed = r.u64();
  opts.deterministic = r.u8() != 0;
  opts.deadline_ms = r.u64();
  opts.want_telemetry = r.u8() != 0;
  return opts;
}

// ---- requests ------------------------------------------------------------

void encode_request(WireWriter& w, const core::AttackRequest& req) {
  w.u8(static_cast<std::uint8_t>(req.kind()));
  switch (req.kind()) {
    case core::AttackKind::Lep: {
      const auto& lep = std::get<core::LepRequest>(req.request);
      encode_corpus_ref(w, lep.known_plain);
      encode_corpus_ref(w, lep.db);
      encode_corpus_ref(w, lep.trapdoors);
      w.f64(lep.options.independence_tol);
      break;
    }
    case core::AttackKind::Mip: {
      const auto& mip = std::get<core::MipRequest>(req.request);
      encode_corpus_ref(w, mip.known_plain);
      encode_corpus_ref(w, mip.db);
      encode_corpus_ref(w, mip.trapdoors);
      w.u64(mip.trapdoor_id);
      w.f64(mip.mu);
      w.f64(mip.sigma);
      // The CLI-surfaced solver knobs; remaining MipAttackOptions fields
      // keep their defaults on the receiving side (docs/svc.md).
      w.f64(mip.options.l);
      w.f64(mip.options.solver.time_limit_seconds);
      w.u64(mip.options.solver.max_nodes);
      break;
    }
    case core::AttackKind::Snmf: {
      const auto& snmf = std::get<core::SnmfRequest>(req.request);
      encode_corpus_ref(w, snmf.db);
      encode_corpus_ref(w, snmf.trapdoors);
      w.u64(snmf.options.rank);
      w.u64(snmf.options.restarts);
      w.u64(snmf.options.nmf.max_iterations);
      w.f64(snmf.options.theta);
      w.f64(snmf.options.rank_tol);
      w.u8(snmf.reuse_session ? 1 : 0);
      break;
    }
  }
}

core::AttackRequest decode_request(WireReader& r) {
  const auto tag = r.u8();
  core::AttackRequest out;
  switch (static_cast<core::AttackKind>(tag)) {
    case core::AttackKind::Lep: {
      core::LepRequest lep;
      lep.known_plain = decode_corpus_ref(r);
      lep.db = decode_corpus_ref(r);
      lep.trapdoors = decode_corpus_ref(r);
      lep.options.independence_tol = r.f64();
      out.request = std::move(lep);
      return out;
    }
    case core::AttackKind::Mip: {
      core::MipRequest mip;
      mip.known_plain = decode_corpus_ref(r);
      mip.db = decode_corpus_ref(r);
      mip.trapdoors = decode_corpus_ref(r);
      mip.trapdoor_id = static_cast<std::size_t>(r.u64());
      mip.mu = r.f64();
      mip.sigma = r.f64();
      mip.options.l = r.f64();
      mip.options.solver.time_limit_seconds = r.f64();
      mip.options.solver.max_nodes = static_cast<std::size_t>(r.u64());
      out.request = std::move(mip);
      return out;
    }
    case core::AttackKind::Snmf: {
      core::SnmfRequest snmf;
      snmf.db = decode_corpus_ref(r);
      snmf.trapdoors = decode_corpus_ref(r);
      snmf.options.rank = static_cast<std::size_t>(r.u64());
      snmf.options.restarts = static_cast<std::size_t>(r.u64());
      snmf.options.nmf.max_iterations = static_cast<std::size_t>(r.u64());
      snmf.options.theta = r.f64();
      snmf.options.rank_tol = r.f64();
      snmf.reuse_session = r.u8() != 0;
      out.request = std::move(snmf);
      return out;
    }
    default:
      throw io::IoError("svc: unknown attack request tag " +
                        std::to_string(tag));
  }
}

// ---- responses -----------------------------------------------------------

namespace {

enum class ResultTag : std::uint8_t { None = 0, Lep = 1, Mip = 2, Snmf = 3 };

}  // namespace

void encode_response(WireWriter& w, const core::AttackResponse& resp) {
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.u8(static_cast<std::uint8_t>(resp.error));
  w.str(resp.message);
  if (std::holds_alternative<core::LepResult>(resp.result)) {
    const auto& lep = resp.lep();
    w.u8(static_cast<std::uint8_t>(ResultTag::Lep));
    encode_vec_list(w, lep.trapdoors);
    encode_vec_list(w, lep.queries);
    w.vec(lep.query_multipliers);
    encode_vec_list(w, lep.indexes);
    encode_vec_list(w, lep.records);
  } else if (std::holds_alternative<core::MipAttackResult>(resp.result)) {
    const auto& mip = resp.mip();
    w.u8(static_cast<std::uint8_t>(ResultTag::Mip));
    w.u8(mip.found ? 1 : 0);
    w.bits(mip.query);
    w.f64(mip.rhat);
    w.f64(mip.that);
    w.u8(static_cast<std::uint8_t>(mip.status));
  } else if (std::holds_alternative<core::SnmfAttackResult>(resp.result)) {
    const auto& snmf = resp.snmf();
    w.u8(static_cast<std::uint8_t>(ResultTag::Snmf));
    encode_bits_list(w, snmf.indexes);
    encode_bits_list(w, snmf.trapdoors);
    w.f64(snmf.best_fit_error);
  } else {
    w.u8(static_cast<std::uint8_t>(ResultTag::None));
  }
  encode_telemetry(w, resp.telemetry);
}

core::AttackResponse decode_response(WireReader& r) {
  core::AttackResponse resp;
  const auto status = r.u8();
  if (status > static_cast<std::uint8_t>(core::AttackStatus::Failed)) {
    throw io::IoError("svc: unknown response status " + std::to_string(status));
  }
  resp.status = static_cast<core::AttackStatus>(status);
  const auto code = r.u8();
  if (code > static_cast<std::uint8_t>(core::ErrorCode::Internal)) {
    throw io::IoError("svc: unknown error code " + std::to_string(code));
  }
  resp.error = static_cast<core::ErrorCode>(code);
  resp.message = r.str();
  const auto tag = r.u8();
  switch (static_cast<ResultTag>(tag)) {
    case ResultTag::None:
      break;
    case ResultTag::Lep: {
      core::LepResult lep;
      lep.trapdoors = decode_vec_list(r);
      lep.queries = decode_vec_list(r);
      lep.query_multipliers = r.vec();
      lep.indexes = decode_vec_list(r);
      lep.records = decode_vec_list(r);
      resp.result = std::move(lep);
      break;
    }
    case ResultTag::Mip: {
      core::MipAttackResult mip;
      mip.found = r.u8() != 0;
      mip.query = r.bits();
      mip.rhat = r.f64();
      mip.that = r.f64();
      mip.status = static_cast<opt::MipStatus>(r.u8());
      resp.result = std::move(mip);
      break;
    }
    case ResultTag::Snmf: {
      core::SnmfAttackResult snmf;
      snmf.indexes = decode_bits_list(r);
      snmf.trapdoors = decode_bits_list(r);
      snmf.best_fit_error = r.f64();
      resp.result = std::move(snmf);
      break;
    }
    default:
      throw io::IoError("svc: unknown result tag " + std::to_string(tag));
  }
  resp.telemetry = decode_telemetry(r);
  // Mirror the telemetry into the result variant so daemon-side and
  // in-process results expose it identically.
  if (auto* lep = std::get_if<core::LepResult>(&resp.result)) {
    lep->telemetry = resp.telemetry;
  } else if (auto* mip = std::get_if<core::MipAttackResult>(&resp.result)) {
    mip->telemetry = resp.telemetry;
  } else if (auto* snmf = std::get_if<core::SnmfAttackResult>(&resp.result)) {
    snmf->telemetry = resp.telemetry;
  }
  return resp;
}

void encode_daemon_stats(WireWriter& w, const DaemonStats& stats) {
  w.u64(stats.submitted);
  w.u64(stats.completed);
  w.u64(stats.cancelled);
  w.u64(stats.expired);
  w.u64(stats.rejected);
  w.u64(stats.corpus_cache_hits);
  w.u64(stats.rank_cache_hits);
  w.u64(stats.lep_session_hits);
  w.u64(stats.snmf_resumes);
  w.u64(stats.batches_formed);
  w.u64(stats.batched_jobs);
  w.u64(stats.affinity_hits);
  w.u64(stats.basis_cache_hits);
  w.u64(stats.score_cache_hits);
  w.u64(stats.score_cache_misses);
  w.u64(stats.score_cache_evictions);
  w.u64(stats.score_cache_bytes);
  w.u64(stats.queue_depth);
}

DaemonStats decode_daemon_stats(WireReader& r) {
  DaemonStats stats;
  stats.submitted = r.u64();
  stats.completed = r.u64();
  stats.cancelled = r.u64();
  stats.expired = r.u64();
  stats.rejected = r.u64();
  stats.corpus_cache_hits = r.u64();
  stats.rank_cache_hits = r.u64();
  stats.lep_session_hits = r.u64();
  stats.snmf_resumes = r.u64();
  stats.batches_formed = r.u64();
  stats.batched_jobs = r.u64();
  stats.affinity_hits = r.u64();
  stats.basis_cache_hits = r.u64();
  stats.score_cache_hits = r.u64();
  stats.score_cache_misses = r.u64();
  stats.score_cache_evictions = r.u64();
  stats.score_cache_bytes = r.u64();
  stats.queue_depth = static_cast<std::size_t>(r.u64());
  return stats;
}

std::vector<std::uint8_t> build_submit_payload(const core::AttackRequest& req,
                                               const JobOptions& opts) {
  WireWriter w;
  encode_job_options(w, opts);
  encode_request(w, req);
  return w.take();
}

std::vector<std::uint8_t> build_submit_batch_payload(
    const std::vector<BatchJob>& jobs) {
  WireWriter w;
  w.u64(jobs.size());
  for (const BatchJob& job : jobs) {
    encode_job_options(w, job.options);
    encode_request(w, job.request);
  }
  return w.take();
}

std::vector<std::uint8_t> build_result_payload(
    std::uint64_t job_id, const core::AttackResponse& resp) {
  WireWriter w;
  w.u64(job_id);
  encode_response(w, resp);
  return w.take();
}

// ---- frame IO ------------------------------------------------------------

bool send_frame(int fd, FrameType type,
                const std::vector<std::uint8_t>& payload) {
  unsigned char header[kFrameHeaderBytes];
  const std::uint32_t magic = kFrameMagic;
  const auto type_raw = static_cast<std::uint32_t>(type);
  const std::uint64_t len = payload.size();
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type_raw, 4);
  std::memcpy(header + 8, &len, 8);

  const auto send_all = [fd](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    while (n > 0) {
      const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        return false;  // peer gone (EPIPE) or socket dead
      }
      p += sent;
      n -= static_cast<std::size_t>(sent);
    }
    return true;
  };

  if (!send_all(header, sizeof header)) return false;
  return payload.empty() || send_all(payload.data(), payload.size());
}

std::optional<Frame> recv_frame(int fd, std::size_t max_frame_bytes) {
  const auto recv_all = [fd](void* data, std::size_t n, bool* clean_eof) {
    auto* p = static_cast<unsigned char*>(data);
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, p + got, n - got, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        throw io::IoError(std::string("svc: socket read failed: ") +
                          std::strerror(errno));
      }
      if (r == 0) {
        if (clean_eof != nullptr && got == 0) {
          *clean_eof = true;
          return;
        }
        throw io::IoError("svc: truncated frame (peer closed mid-frame)");
      }
      got += static_cast<std::size_t>(r);
    }
  };

  unsigned char header[kFrameHeaderBytes];
  bool clean_eof = false;
  recv_all(header, sizeof header, &clean_eof);
  if (clean_eof) return std::nullopt;

  std::uint32_t magic = 0, type_raw = 0;
  std::uint64_t len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type_raw, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  if (magic != kFrameMagic) {
    throw io::IoError("svc: bad frame magic");
  }
  if (len > max_frame_bytes) {
    throw io::IoError("svc: frame payload of " + std::to_string(len) +
                      " bytes exceeds the " +
                      std::to_string(max_frame_bytes) + "-byte limit");
  }
  Frame f;
  f.type = static_cast<FrameType>(type_raw);
  f.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) recv_all(f.payload.data(), f.payload.size(), nullptr);
  if (obs::enabled()) {
    obs::counter_add("svc.frames_received", 1.0);
    obs::counter_add("svc.bytes_received",
                     static_cast<double>(len + kFrameHeaderBytes));
  }
  return f;
}

}  // namespace aspe::svc
