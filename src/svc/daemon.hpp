// aspe::svc — the long-running attack service.
//
// A Daemon owns the warmed state that one-shot CLI invocations rebuild on
// every run: the process-wide par::ThreadPool, a parsed-corpus cache keyed
// by (path, size, mtime), a rank-estimate cache for SNMF jobs, persistent
// core::LepSession objects (whose LU factorizations make repeated LEP jobs
// a back-substitution-and-assemble instead of a fresh solve — bit-identical
// to the batch attack, per PR 7's session contract) and opt-in
// core::CoaSession objects for SNMF warm resumes. Jobs arrive as
// core::AttackRequest values (decoded from Submit frames by the Server, or
// handed in directly by in-process callers), run on a bounded queue with
// per-job deadlines and cancellation, and leave as core::AttackResponse.
//
// Architecture follows the filter-graph runtime named in the ROADMAP:
// attacks are the persistent filters, corpora the typed channels feeding
// them (a CorpusRef names a channel; the corpus cache is its buffer), and
// the framed socket protocol is the command channel controlling the graph
// at runtime.
//
// Threading: Daemon::submit/cancel/execute are safe to call from any
// thread. Worker threads execute jobs concurrently; the attacks' parallel
// sections share the process pool (a second concurrent batch degrades to
// serial inside the pool, so results stay bit-identical at any worker
// count). Sessions are serialized per corpus key.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/attack_api.hpp"
#include "core/session.hpp"
#include "obs/obs.hpp"
#include "svc/protocol.hpp"

namespace aspe::svc {

struct DaemonOptions {
  /// Job-execution threads. 0 builds a stepping daemon that runs jobs only
  /// through run_one() / run_scheduled() — the deterministic mode the queue
  /// and scheduler tests drive.
  std::size_t workers = 1;
  /// Bounded queue depth; a Submit arriving with the queue full is refused
  /// immediately with ErrorCode::Budget (backpressure, not buffering).
  std::size_t queue_capacity = 64;
  /// Daemon-wide telemetry stream: every job's recording is also delivered
  /// here (e.g. a JsonLinesSink from `aspe_cli serve --trace-json`). The
  /// sink must outlive the daemon. May be null. A non-null sink disables
  /// SNMF batch coalescing (a fused sweep cannot attribute spans per job).
  obs::Sink* sink = nullptr;
  /// Warm-cache entry cap (corpora, rank estimates, sessions and MIP basis
  /// states each); a cache is cleared wholesale when it would exceed this.
  std::size_t max_cache_entries = 64;
  /// Resident-byte budget of the shared score-matrix cache, and the
  /// ExecContext::memory_budget_bytes every job runs under. 0 = unbounded.
  std::size_t memory_budget_bytes = 0;
  /// Most SNMF jobs one fused restart sweep may coalesce.
  std::size_t max_snmf_batch = 16;
  /// Most jobs a queued job may be bypassed by for cache affinity before it
  /// becomes un-bypassable (the starvation bound; deadline-bearing jobs are
  /// never bypassed at all).
  std::size_t max_affinity_bypass = 4;
};

class Daemon {
 public:
  /// Result delivery callback: invoked exactly once per submitted job, on
  /// the worker thread (or inside submit() for refused jobs). Must not
  /// throw.
  using Deliver = std::function<void(std::uint64_t, core::AttackResponse&&)>;

  explicit Daemon(DaemonOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Enqueue a job. Always assigns and returns a job id; when the queue is
  /// full (or the daemon is stopping) the job is refused by delivering an
  /// ErrorCode::Budget response before submit returns.
  std::uint64_t submit(core::AttackRequest request, JobOptions options,
                       Deliver deliver);

  /// Enqueue several jobs atomically (one lock acquisition), so the
  /// scheduler sees the whole batch at once and compatible SNMF jobs can
  /// coalesce into one fused sweep. Ids are assigned in order; jobs beyond
  /// the queue capacity are refused individually, exactly like submit().
  std::vector<std::uint64_t> submit_batch(std::vector<BatchJob> jobs,
                                          Deliver deliver);

  /// Cancel a job that is still queued: it is removed and its response
  /// (ErrorCode::Budget, "job cancelled before execution") is delivered.
  /// Returns false when the job already started, finished, or never
  /// existed — a running attack is never killed (docs/svc.md).
  bool cancel(std::uint64_t job_id);

  /// Pop and execute one queued job on the calling thread, strictly FIFO —
  /// no affinity reordering, no coalescing. False when the queue was empty.
  /// This is the workers == 0 stepping mode; with worker threads running it
  /// simply competes with them.
  bool run_one();

  /// One scheduler step on the calling thread: pop the next job in
  /// cache-affine order plus any compatible queued SNMF peers, and execute
  /// them (fused when more than one). Returns the number of jobs executed
  /// (0 = queue empty). This is exactly what each worker thread loops over;
  /// exposed so scheduler tests can step it deterministically.
  std::size_t run_scheduled();

  /// Execute a request synchronously through the warm caches, bypassing
  /// the queue (used by the workers, and directly by benches/tests).
  /// Never throws; failures map onto the ErrorCode taxonomy exactly like
  /// core::dispatch_attack.
  [[nodiscard]] core::AttackResponse execute(const core::AttackRequest& request,
                                             const JobOptions& options);

  /// Stop the workers. Jobs still queued are delivered as refused
  /// (ErrorCode::Budget, "daemon stopped before execution"); the running
  /// ones finish and deliver normally. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] DaemonStats stats() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    core::AttackRequest request;
    JobOptions options;
    Deliver deliver;
    std::chrono::steady_clock::time_point deadline{};  // epoch() = none
    /// Corpus identity for cache-affine scheduling: the request's corpus
    /// paths joined with '|' ("" when any corpus is inline — no stable
    /// identity, no affinity). Computed once at submit.
    std::string affinity_key;
    /// Times an affinity pick has jumped over this job while it was queued;
    /// at max_affinity_bypass the job becomes un-bypassable.
    std::size_t bypassed = 0;
  };

  struct LepEntry {
    std::mutex mu;
    std::optional<core::LepSession> session;
  };
  struct CoaEntry {
    std::mutex mu;
    std::optional<core::CoaSession> session;
    std::size_t rank = 0;
  };
  struct CorpusEntry {
    std::string fingerprint;
    std::shared_ptr<const std::vector<scheme::CipherPair>> ciphers;
    std::shared_ptr<const std::vector<Vec>> vecs;
  };
  /// One persistent MIP warm state (root basis + cut pool). Serialized per
  /// key: the entry mutex is held across the whole attack, so two identical
  /// MIP jobs never race on the shared basis.
  struct MipBasisEntry {
    std::mutex mu;
    core::MipWarmState state;
  };

  void worker_loop();
  void run_job(Job&& job);
  /// Pop the next job in cache-affine order plus compatible SNMF peers.
  /// Caller holds queue_mu_. Empty when the queue is empty.
  std::vector<std::shared_ptr<Job>> take_batch_locked();
  /// Execute >= 2 coalesced SNMF jobs as one fused restart sweep,
  /// demultiplexing per-job responses. Falls back to solo execution for any
  /// job the fused path cannot serve.
  void run_snmf_batch(std::vector<std::shared_ptr<Job>> jobs);
  [[nodiscard]] core::AttackResponse refused(core::ErrorCode code,
                                             const std::string& message) const;

  /// Resolve a path ref through the corpus cache (stat-validated). Returns
  /// the ref unchanged when it is inline already. `fingerprint_out`, when
  /// non-null, receives the corpus identity string ("" for inline refs —
  /// no stable identity, so no session/rank caching).
  core::CorpusRef resolve_ciphers(const core::CorpusRef& ref,
                                  std::string* fingerprint_out);
  core::CorpusRef resolve_vecs(const core::CorpusRef& ref,
                               std::string* fingerprint_out);

  [[nodiscard]] core::AttackResponse execute_resolved(
      const core::AttackRequest& request, const JobOptions& options);
  [[nodiscard]] core::AttackResponse execute_lep_warm(
      const core::LepRequest& req, const std::string& key,
      const core::ExecContext& ctx);
  [[nodiscard]] core::AttackResponse execute_snmf_warm(
      const core::SnmfRequest& req, const std::string& key,
      const core::ExecContext& ctx);

  DaemonOptions options_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  /// Affinity key of the job most recently popped by the scheduler — the
  /// corpus whose parsed form, score matrix and sessions are warmest.
  /// Guarded by queue_mu_.
  std::string last_affinity_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};

  std::mutex cache_mu_;  // guards the maps (not the entries)
  std::map<std::string, CorpusEntry> corpus_cache_;
  std::map<std::string, std::size_t> rank_cache_;
  std::map<std::string, std::shared_ptr<LepEntry>> lep_sessions_;
  std::map<std::string, std::shared_ptr<CoaEntry>> coa_sessions_;
  std::map<std::string, std::shared_ptr<MipBasisEntry>> mip_basis_;

  core::ScoreMatrixCache score_cache_;

  std::atomic<std::uint64_t> submitted_{0}, completed_{0}, cancelled_{0},
      expired_{0}, rejected_{0}, corpus_hits_{0}, rank_hits_{0},
      lep_hits_{0}, snmf_resumes_{0}, batches_formed_{0}, batched_jobs_{0},
      affinity_hits_{0}, basis_hits_{0};
};

// ------------------------------------------------------------------ server

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket. A stale socket
  /// file from a previous run is replaced.
  std::string socket_path;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Accepts connections on a Unix-domain socket and speaks the framed
/// protocol, routing Submit frames into a Daemon. One handler thread per
/// connection; responses are written under a per-connection lock so a
/// worker delivering a result never interleaves with a protocol reply.
/// Malformed frames (bad magic, oversized length prefix, truncation,
/// unknown type/tag) answer with a ProtocolError frame where possible and
/// close that connection only — the daemon and its other clients are
/// unaffected, as is a client that disconnects while its job is running.
class Server {
 public:
  Server(Daemon& daemon, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Block until a client sends a Shutdown frame (or stop() is called).
  void wait();

  /// Close the listener and every connection, join the handler threads.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

 private:
  struct Connection;

  void accept_loop();
  void handle_connection(const std::shared_ptr<Connection>& conn);

  Daemon& daemon_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::vector<std::thread> handlers_;
  std::vector<std::weak_ptr<Connection>> connections_;
};

}  // namespace aspe::svc
