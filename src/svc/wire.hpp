// Bounds-checked binary encode/decode primitives for the aspe::svc
// protocol (svc/protocol.hpp).
//
// WireWriter appends fixed-width native-endian scalars and length-prefixed
// containers to a byte buffer; WireReader walks the same layout and throws
// io::IoError the moment a read would cross the end of the message —
// *before* any allocation is sized from an attacker-controlled length
// field. Every element-count multiplication goes through io::checked_mul,
// the same guard the io::v2 envelope uses, so an oversized length prefix is
// rejected as malformed instead of becoming a giant allocation.
//
// Native byte order is fine here: both ends of a Unix-domain socket are the
// same host (the io::v2 container makes the same choice and tags it).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "io/format.hpp"

namespace aspe::svc {

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) { append(&v, sizeof v); }

  void u64(std::uint64_t v) { append(&v, sizeof v); }

  void f64(double v) { append(&v, sizeof v); }

  void str(const std::string& s) {
    u64(s.size());
    append(s.data(), s.size());
  }

  void vec(const Vec& v) {
    u64(v.size());
    append(v.data(), v.size() * sizeof(double));
  }

  void bits(const BitVec& v) {
    u64(v.size());
    for (const std::uint8_t b : v) u8(b);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1, "u8");
    return data_[off_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v;
    copy(&v, sizeof v, "u32");
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v;
    copy(&v, sizeof v, "u64");
    return v;
  }

  [[nodiscard]] double f64() {
    double v;
    copy(&v, sizeof v, "f64");
    return v;
  }

  /// Read a length-prefixed count and prove that `count * elem_bytes` more
  /// payload actually exists before the caller allocates anything.
  [[nodiscard]] std::size_t count(std::size_t elem_bytes, const char* what) {
    const std::uint64_t n = u64();
    const std::size_t total =
        io::checked_mul(static_cast<std::size_t>(n), elem_bytes, what);
    need(total, what);
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::string str() {
    const std::size_t n = count(1, "svc wire string");
    std::string s(reinterpret_cast<const char*>(data_ + off_), n);
    off_ += n;
    return s;
  }

  [[nodiscard]] Vec vec() {
    const std::size_t n = count(sizeof(double), "svc wire vec");
    Vec v(n);
    std::memcpy(v.data(), data_ + off_, n * sizeof(double));
    off_ += n * sizeof(double);
    return v;
  }

  [[nodiscard]] BitVec bits() {
    const std::size_t n = count(1, "svc wire bitvec");
    BitVec v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = data_[off_ + i];
    off_ += n;
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - off_; }

  /// Every decoder calls this last: trailing bytes mean the two ends
  /// disagree about the message layout, which must not pass silently.
  void expect_end(const char* what) const {
    if (off_ != size_) {
      throw io::IoError(std::string(what) + ": trailing bytes in message");
    }
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - off_ < n) {
      throw io::IoError(std::string("svc: truncated message reading ") + what);
    }
  }

  void copy(void* out, std::size_t n, const char* what) {
    need(n, what);
    std::memcpy(out, data_ + off_, n);
    off_ += n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

}  // namespace aspe::svc
