// The aspe::svc job protocol: length-prefixed frames over a Unix-domain
// socket, carrying the unified core::AttackRequest / core::AttackResponse
// vocabulary (core/attack_api.hpp).
//
// Framing (all scalars native-endian; both ends share a host):
//
//   offset size  field
//   0      4    magic "ASV1"
//   4      4    u32 frame type (FrameType)
//   8      8    u64 payload byte count
//   16     ...  payload
//
// A reader validates magic and type and bounds the payload length against
// its configured maximum *before* allocating; frames larger than the limit,
// unknown types and short reads are protocol errors — the server answers
// with a ProtocolError frame and closes the connection (its decode state is
// unknowable past the first bad byte). Payload decoding goes through
// svc::WireReader, whose length prefixes are overflow-checked with the same
// io::checked_mul guard as the io::v2 envelope.
//
// Job lifecycle (see docs/svc.md for the full state machine):
//
//   client                       server
//   Submit{JobOptions, req} ->
//                             <- Accepted{job id}          (or ProtocolError)
//                             <- Result{job id, response}
//   Cancel{job id}          ->
//                             <- CancelAck{job id, hit}
//   Ping                    ->
//                             <- Pong
//   Shutdown                ->
//                             <- ShutdownAck               (server drains+exits)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/attack_api.hpp"
#include "svc/wire.hpp"

namespace aspe::svc {

inline constexpr std::uint32_t kFrameMagic = 0x31565341u;  // "ASV1"
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default cap on one frame's payload. Generous for real corpora (256 MiB)
/// while rejecting absurd length prefixes long before allocation.
inline constexpr std::size_t kDefaultMaxFrameBytes = 256u << 20;

enum class FrameType : std::uint32_t {
  // client -> server
  Submit = 1,
  Cancel = 2,
  Ping = 3,
  Shutdown = 4,
  /// N jobs in one frame: u64 count, then count x (JobOptions, request).
  /// The server answers with one Accepted frame per job, in submission
  /// order, before any Result — so the client learns every id up front —
  /// and the daemon's scheduler sees the whole batch at once (compatible
  /// SNMF jobs coalesce into one fused sweep; see docs/svc.md).
  SubmitBatch = 5,
  // server -> client
  Accepted = 16,
  Result = 17,
  Pong = 18,
  ShutdownAck = 19,
  ProtocolError = 20,
  CancelAck = 21,
};

/// Per-job execution policy carried in the Submit frame next to the
/// AttackRequest (the fields of core::ExecContext that make sense to ship,
/// plus the job deadline).
struct JobOptions {
  std::size_t threads = 1;
  std::uint64_t seed = 2017;
  bool deterministic = true;
  /// 0 = no deadline. Otherwise the job must *start* within this many
  /// milliseconds of the daemon accepting it; a job still queued when the
  /// deadline passes fails with ErrorCode::Budget (running jobs are never
  /// killed mid-attack — see docs/svc.md).
  std::uint64_t deadline_ms = 0;
  /// Record the run (per-job obs recording) and return span aggregates in
  /// the response telemetry. Never changes attack output.
  bool want_telemetry = false;
};

struct Frame {
  FrameType type = FrameType::Ping;
  std::vector<std::uint8_t> payload;
};

/// Monotonic counters describing the daemon's life so far. Shipped verbatim
/// in the Pong payload (encode_daemon_stats), so `aspe_cli submit --ping`
/// can print a one-line health summary without a side channel. An empty
/// Pong payload (a pre-stats server) decodes as "no stats".
struct DaemonStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // executed, any status
  std::uint64_t cancelled = 0;  // cancelled while still queued
  std::uint64_t expired = 0;    // deadline passed before execution
  std::uint64_t rejected = 0;   // refused at submit (queue full)
  std::uint64_t corpus_cache_hits = 0;
  std::uint64_t rank_cache_hits = 0;
  std::uint64_t lep_session_hits = 0;
  std::uint64_t snmf_resumes = 0;
  // Batched scheduling (PR 10): fused SNMF sweeps and warm-state reuse.
  std::uint64_t batches_formed = 0;   // fused sweeps executed
  std::uint64_t batched_jobs = 0;     // jobs that rode in a fused sweep
  std::uint64_t affinity_hits = 0;    // jobs scheduled onto warm state
  std::uint64_t basis_cache_hits = 0; // MIP jobs warm-started from a basis
  std::uint64_t score_cache_hits = 0;
  std::uint64_t score_cache_misses = 0;
  std::uint64_t score_cache_evictions = 0;
  std::uint64_t score_cache_bytes = 0;  // snapshot, not monotonic
  std::size_t queue_depth = 0;          // snapshot, not monotonic
};

// --------------------------------------------------------- payload codecs

void encode_job_options(WireWriter& w, const JobOptions& opts);
[[nodiscard]] JobOptions decode_job_options(WireReader& r);

/// Encode/decode the full request variant, CorpusRefs included (paths are
/// shipped as strings, inline payloads as length-prefixed arrays).
void encode_request(WireWriter& w, const core::AttackRequest& req);
[[nodiscard]] core::AttackRequest decode_request(WireReader& r);

/// Encode/decode a response, result variant and telemetry included, so a
/// daemon job round-trips bit-identically to the in-process result.
void encode_response(WireWriter& w, const core::AttackResponse& resp);
[[nodiscard]] core::AttackResponse decode_response(WireReader& r);

/// Encode/decode the daemon stats block of a Pong payload.
void encode_daemon_stats(WireWriter& w, const DaemonStats& stats);
[[nodiscard]] DaemonStats decode_daemon_stats(WireReader& r);

/// One job of a SubmitBatch frame.
struct BatchJob {
  core::AttackRequest request;
  JobOptions options;
};

// Whole-frame payload builders used by client and server.
[[nodiscard]] std::vector<std::uint8_t> build_submit_payload(
    const core::AttackRequest& req, const JobOptions& opts);
[[nodiscard]] std::vector<std::uint8_t> build_submit_batch_payload(
    const std::vector<BatchJob>& jobs);
[[nodiscard]] std::vector<std::uint8_t> build_result_payload(
    std::uint64_t job_id, const core::AttackResponse& resp);

// ----------------------------------------------------------------- frame IO

/// Write one frame to `fd` (loops over partial writes, suppresses SIGPIPE).
/// Returns false when the peer is gone (EPIPE / reset) — the caller decides
/// whether that matters; a daemon delivering to a vanished client does not.
bool send_frame(int fd, FrameType type,
                const std::vector<std::uint8_t>& payload);

/// Read one frame. Returns std::nullopt on clean EOF at a frame boundary.
/// Throws io::IoError on a malformed header (bad magic), a payload length
/// above `max_frame_bytes`, or EOF mid-frame (a truncated frame).
[[nodiscard]] std::optional<Frame> recv_frame(
    int fd, std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace aspe::svc
