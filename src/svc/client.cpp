#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aspe::svc {

Client::Client(const std::string& socket_path, std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("svc: socket path too long: " + socket_path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw io::IoError(std::string("svc: socket(): ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw io::IoError("svc: connect(" + socket_path +
                      "): " + std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::pump(const char* waiting_for) {
  auto frame = recv_frame(fd_, max_frame_bytes_);
  if (!frame) {
    throw io::IoError(std::string("svc: server closed the connection while "
                                  "waiting for ") +
                      waiting_for);
  }
  switch (frame->type) {
    case FrameType::Accepted: {
      WireReader r(frame->payload);
      accepted_.push_back(r.u64());
      r.expect_end("svc accepted frame");
      break;
    }
    case FrameType::Result: {
      WireReader r(frame->payload);
      const std::uint64_t id = r.u64();
      core::AttackResponse resp = decode_response(r);
      r.expect_end("svc result frame");
      results_.emplace(id, std::move(resp));
      break;
    }
    case FrameType::CancelAck: {
      WireReader r(frame->payload);
      const std::uint64_t id = r.u64();
      const bool hit = r.u8() != 0;
      r.expect_end("svc cancel-ack frame");
      cancel_acks_.emplace_back(id, hit);
      break;
    }
    case FrameType::Pong:
      pongs_.push_back(std::move(frame->payload));
      break;
    case FrameType::ShutdownAck:
      shutdown_acked_ = true;
      break;
    case FrameType::ProtocolError: {
      WireReader r(frame->payload);
      throw io::IoError("svc: server protocol error: " + r.str());
    }
    default:
      throw io::IoError("svc: unexpected frame type " +
                        std::to_string(static_cast<std::uint32_t>(
                            frame->type)) +
                        " from server");
  }
}

std::uint64_t Client::submit(const core::AttackRequest& request,
                             const JobOptions& options) {
  if (!send_frame(fd_, FrameType::Submit,
                  build_submit_payload(request, options))) {
    throw io::IoError("svc: connection lost sending a job");
  }
  while (accepted_.empty()) pump("job acceptance");
  const std::uint64_t id = accepted_.front();
  accepted_.pop_front();
  return id;
}

std::vector<std::uint64_t> Client::submit_batch(
    const std::vector<BatchJob>& jobs) {
  if (jobs.empty()) return {};
  if (!send_frame(fd_, FrameType::SubmitBatch,
                  build_submit_batch_payload(jobs))) {
    throw io::IoError("svc: connection lost sending a job batch");
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs.size());
  while (ids.size() < jobs.size()) {
    while (accepted_.empty()) pump("batch acceptance");
    ids.push_back(accepted_.front());
    accepted_.pop_front();
  }
  return ids;
}

core::AttackResponse Client::wait(std::uint64_t job_id) {
  for (;;) {
    const auto it = results_.find(job_id);
    if (it != results_.end()) {
      core::AttackResponse resp = std::move(it->second);
      results_.erase(it);
      return resp;
    }
    pump("a job result");
  }
}

core::AttackResponse Client::run(const core::AttackRequest& request,
                                 const JobOptions& options) {
  return wait(submit(request, options));
}

bool Client::cancel(std::uint64_t job_id) {
  WireWriter w;
  w.u64(job_id);
  if (!send_frame(fd_, FrameType::Cancel, w.bytes())) {
    throw io::IoError("svc: connection lost sending a cancel");
  }
  while (cancel_acks_.empty()) pump("a cancel acknowledgement");
  const auto [id, hit] = cancel_acks_.front();
  cancel_acks_.pop_front();
  if (id != job_id) {
    throw io::IoError("svc: cancel acknowledgement for unexpected job " +
                      std::to_string(id));
  }
  return hit;
}

bool Client::ping() {
  if (!send_frame(fd_, FrameType::Ping, {})) return false;
  try {
    while (pongs_.empty()) pump("a pong");
  } catch (const io::IoError&) {
    return false;
  }
  pongs_.pop_front();
  return true;
}

std::optional<DaemonStats> Client::ping_stats() {
  if (!send_frame(fd_, FrameType::Ping, {})) return std::nullopt;
  try {
    while (pongs_.empty()) pump("a pong");
  } catch (const io::IoError&) {
    return std::nullopt;
  }
  const std::vector<std::uint8_t> payload = std::move(pongs_.front());
  pongs_.pop_front();
  if (payload.empty()) return std::nullopt;  // pre-stats server
  WireReader r(payload);
  DaemonStats stats = decode_daemon_stats(r);
  r.expect_end("svc pong frame");
  return stats;
}

void Client::shutdown_server() {
  if (!send_frame(fd_, FrameType::Shutdown, {})) {
    throw io::IoError("svc: connection lost sending a shutdown");
  }
  while (!shutdown_acked_) pump("the shutdown acknowledgement");
}

}  // namespace aspe::svc
