// Blocking client for the aspe::svc protocol (svc/protocol.hpp).
//
// One Client owns one connected Unix-domain socket. It is not thread-safe —
// concurrent callers each construct their own (the bench harness gives every
// client thread one). Jobs may be pipelined on a single connection: call
// submit() several times, then wait() each id in any order; frames arriving
// out of the caller's order (another job's Result, a CancelAck racing a
// Result) are buffered and handed out when asked for.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/attack_api.hpp"
#include "svc/protocol.hpp"

namespace aspe::svc {

class Client {
 public:
  /// Connect to a daemon's socket. Throws io::IoError when the socket does
  /// not exist or nothing is listening.
  explicit Client(const std::string& socket_path,
                  std::size_t max_frame_bytes = kDefaultMaxFrameBytes);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Ship a job; blocks until the daemon's Accepted frame and returns the
  /// job id. The result (including a Budget refusal) arrives via wait().
  std::uint64_t submit(const core::AttackRequest& request,
                       const JobOptions& options = {});

  /// Ship several jobs in one SubmitBatch frame; blocks until every job's
  /// Accepted frame and returns the ids in submission order. The daemon's
  /// scheduler sees the whole batch at once, so compatible SNMF jobs
  /// coalesce into one fused sweep. Results arrive via wait(), any order.
  std::vector<std::uint64_t> submit_batch(const std::vector<BatchJob>& jobs);

  /// Block until the Result frame for `job_id` arrives.
  core::AttackResponse wait(std::uint64_t job_id);

  /// submit() + wait() in one call.
  core::AttackResponse run(const core::AttackRequest& request,
                           const JobOptions& options = {});

  /// Ask the daemon to cancel a job. True when the job was still queued
  /// (its wait() then reports the Budget refusal); false when it already
  /// started or finished — a running job is never killed.
  bool cancel(std::uint64_t job_id);

  /// Round-trip a Ping. False when the connection is dead.
  bool ping();

  /// Round-trip a Ping and return the daemon stats its Pong carried.
  /// nullopt when the connection is dead or the server predates the stats
  /// payload (an empty Pong).
  std::optional<DaemonStats> ping_stats();

  /// Request daemon shutdown and wait for the acknowledgement.
  void shutdown_server();

  /// The raw connected socket (protocol tests poke malformed bytes at it).
  [[nodiscard]] int fd() const { return fd_; }

 private:
  /// Read one frame (throws io::IoError on EOF — the server never closes
  /// first in a healthy exchange) and file it into the pending buffers.
  /// A ProtocolError frame from the server throws with its message.
  void pump(const char* waiting_for);

  int fd_ = -1;
  std::size_t max_frame_bytes_;
  std::deque<std::uint64_t> accepted_;
  std::map<std::uint64_t, core::AttackResponse> results_;
  std::deque<std::pair<std::uint64_t, bool>> cancel_acks_;
  std::deque<std::vector<std::uint8_t>> pongs_;
  bool shutdown_acked_ = false;
};

}  // namespace aspe::svc
