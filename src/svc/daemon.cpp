#include "svc/daemon.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <initializer_list>
#include <set>
#include <sstream>
#include <utility>

#include "scheme/plain_index.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::svc {

namespace {

/// Per-job recording target: keeps the merged Summary for the response and
/// forwards it to the daemon-wide sink (when one is configured).
class ForwardSink final : public obs::Sink {
 public:
  explicit ForwardSink(obs::Sink* downstream) : downstream_(downstream) {}

  void consume(const obs::Summary& summary) override {
    last_ = summary;
    if (downstream_ != nullptr) downstream_->consume(summary);
  }

  [[nodiscard]] const obs::Summary& last() const { return last_; }

 private:
  obs::Sink* downstream_;
  obs::Summary last_;
};

/// Corpus identity for the warm caches: path plus size plus mtime. Nullopt
/// when the file cannot be stat'ed (the subsequent load reports the real
/// error with the io layer's message).
std::optional<std::string> stat_fingerprint(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  std::ostringstream os;
  os << path << '|' << st.st_size << '|' << st.st_mtim.tv_sec << '.'
     << st.st_mtim.tv_nsec;
  return os.str();
}

core::ExecContext job_context(const JobOptions& opts) {
  core::ExecContext ctx;
  ctx.threads = opts.threads;
  ctx.seed = opts.seed;
  ctx.deterministic = opts.deterministic;
  return ctx;
}

/// Corpus identity for cache-affine scheduling: every corpus path of the
/// request joined with '|'. Empty when any corpus is inline or unnamed —
/// those jobs have no stable warm state to be affine to.
std::string affinity_key_of(const core::AttackRequest& request) {
  const auto join = [](std::initializer_list<const core::CorpusRef*> refs) {
    std::string key;
    for (const auto* ref : refs) {
      if (ref->path.empty()) return std::string();
      if (!key.empty()) key += '|';
      key += ref->path;
    }
    return key;
  };
  return std::visit(
      [&](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, core::LepRequest>) {
          return join({&req.known_plain, &req.db, &req.trapdoors});
        } else if constexpr (std::is_same_v<T, core::MipRequest>) {
          return join({&req.known_plain, &req.db, &req.trapdoors});
        } else {
          return join({&req.db, &req.trapdoors});
        }
      },
      request.request);
}

/// Format a double for a cache-key string (round-trippable, locale-free).
std::string key_f64(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

// ------------------------------------------------------------------ daemon

Daemon::Daemon(DaemonOptions options) : options_(options) {
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Daemon::~Daemon() { stop(); }

core::AttackResponse Daemon::refused(core::ErrorCode code,
                                     const std::string& message) const {
  core::AttackResponse resp;
  resp.status = core::AttackStatus::Failed;
  resp.error = code;
  resp.message = message;
  return resp;
}

std::uint64_t Daemon::submit(core::AttackRequest request, JobOptions options,
                             Deliver deliver) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  auto job = std::make_shared<Job>();
  job->id = id;
  job->request = std::move(request);
  job->options = options;
  job->deliver = std::move(deliver);
  job->affinity_key = affinity_key_of(job->request);
  if (options.deadline_ms > 0) {
    job->deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options.deadline_ms);
  }

  bool stopping = false;
  bool queued = false;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping = stopping_;
    if (!stopping && queue_.size() < options_.queue_capacity) {
      queue_.push_back(job);
      queued = true;
    }
  }
  if (queued) {
    queue_cv_.notify_one();
    return id;
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  job->deliver(id, refused(core::ErrorCode::Budget,
                           stopping ? "daemon is stopping"
                                    : "queue full: job refused"));
  return id;
}

std::vector<std::uint64_t> Daemon::submit_batch(std::vector<BatchJob> jobs,
                                                Deliver deliver) {
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs.size());
  std::vector<std::shared_ptr<Job>> refusals;
  bool stopping = false;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping = stopping_;
    for (BatchJob& bj : jobs) {
      const std::uint64_t id =
          next_id_.fetch_add(1, std::memory_order_relaxed);
      submitted_.fetch_add(1, std::memory_order_relaxed);
      ids.push_back(id);
      auto job = std::make_shared<Job>();
      job->id = id;
      job->request = std::move(bj.request);
      job->options = bj.options;
      job->deliver = deliver;
      job->affinity_key = affinity_key_of(job->request);
      if (bj.options.deadline_ms > 0) {
        job->deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bj.options.deadline_ms);
      }
      if (!stopping && queue_.size() < options_.queue_capacity) {
        queue_.push_back(std::move(job));
      } else {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        refusals.push_back(std::move(job));
      }
    }
  }
  queue_cv_.notify_all();
  for (const auto& job : refusals) {
    job->deliver(job->id, refused(core::ErrorCode::Budget,
                                  stopping ? "daemon is stopping"
                                           : "queue full: job refused"));
  }
  return ids;
}

bool Daemon::cancel(std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    const auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [job_id](const auto& j) { return j->id == job_id; });
    if (it == queue_.end()) return false;
    job = *it;
    queue_.erase(it);
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  job->deliver(job->id, refused(core::ErrorCode::Budget,
                                "job cancelled before execution"));
  return true;
}

bool Daemon::run_one() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  run_job(std::move(*job));
  return true;
}

void Daemon::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;  // queue drained by stop()
    }
    // Raced pops (another worker emptied the queue between the wait and
    // here) return 0 and loop back into the wait.
    run_scheduled();
  }
}

std::vector<std::shared_ptr<Daemon::Job>> Daemon::take_batch_locked() {
  std::vector<std::shared_ptr<Job>> out;
  if (queue_.empty()) return out;

  // --- cache-affine pick -------------------------------------------------
  // Prefer the first queued job whose corpus state is warm (affinity key ==
  // the last scheduled job's), but never jump over a deadline-bearing job
  // or one already bypassed max_affinity_bypass times — the starvation
  // bound that keeps deadlines meaningful. Ties break on queue order, so
  // the schedule is deterministic for a given queue state.
  std::size_t pick = 0;
  if (!last_affinity_.empty()) {
    std::size_t match = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i]->affinity_key == last_affinity_) {
        match = i;
        break;
      }
    }
    if (match < queue_.size()) {
      bool allowed = true;
      for (std::size_t i = 0; i < match; ++i) {
        if (queue_[i]->deadline != std::chrono::steady_clock::time_point{} ||
            queue_[i]->bypassed >= options_.max_affinity_bypass) {
          allowed = false;
          break;
        }
      }
      if (allowed) pick = match;
    }
  }
  std::shared_ptr<Job> first = queue_[pick];
  if (!last_affinity_.empty() && first->affinity_key == last_affinity_) {
    affinity_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < pick; ++i) ++queue_[i]->bypassed;
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  if (!first->affinity_key.empty()) last_affinity_ = first->affinity_key;
  out.push_back(first);

  // --- SNMF coalescing ---------------------------------------------------
  // Extract queued jobs the fused sweep can serve together with the pick:
  // same corpus pair, cold restart path, no per-job recording. Extraction
  // keeps queue order, so demuxed delivery order is deterministic too.
  const auto batchable = [this](const Job& job) {
    if (job.affinity_key.empty() || job.options.want_telemetry ||
        options_.sink != nullptr) {
      return false;
    }
    const auto* snmf = std::get_if<core::SnmfRequest>(&job.request.request);
    return snmf != nullptr && !snmf->reuse_session &&
           !snmf->db.path.empty() && !snmf->trapdoors.path.empty();
  };
  if (!batchable(*first)) return out;
  for (auto it = queue_.begin();
       it != queue_.end() && out.size() < options_.max_snmf_batch;) {
    if ((*it)->affinity_key == first->affinity_key && batchable(**it)) {
      out.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::size_t Daemon::run_scheduled() {
  std::vector<std::shared_ptr<Job>> picked;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    picked = take_batch_locked();
  }
  const std::size_t n = picked.size();
  if (n == 0) return 0;
  if (n == 1) {
    run_job(std::move(*picked.front()));
    return 1;
  }
  run_snmf_batch(std::move(picked));
  return n;
}

void Daemon::run_job(Job&& job) {
  if (job.deadline != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() > job.deadline) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    job.deliver(job.id,
                refused(core::ErrorCode::Budget,
                        "deadline of " + std::to_string(job.options.deadline_ms) +
                            " ms expired before the job started"));
    return;
  }
  core::AttackResponse resp = execute(job.request, job.options);
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.deliver(job.id, std::move(resp));
}

void Daemon::run_snmf_batch(std::vector<std::shared_ptr<Job>> jobs) {
  // Per-job deadline refusals first, exactly as run_job would have issued
  // them — riding in a batch never relaxes a deadline.
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<Job>> live;
  live.reserve(jobs.size());
  for (auto& job : jobs) {
    if (job->deadline != std::chrono::steady_clock::time_point{} &&
        now > job->deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      job->deliver(job->id,
                   refused(core::ErrorCode::Budget,
                           "deadline of " +
                               std::to_string(job->options.deadline_ms) +
                               " ms expired before the job started"));
    } else {
      live.push_back(std::move(job));
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    run_job(std::move(*live.front()));
    return;
  }

  std::size_t delivered = 0;
  try {
    // One corpus resolve, one score-matrix build (or cache hit), one rank
    // estimate per distinct (seed, tol) — then a single fused restart
    // sweep. Each job's initializations come from its own options and
    // context, so the demuxed results are bit-identical to solo runs.
    const auto& proto = std::get<core::SnmfRequest>(live.front()->request.request);
    std::string db_fp, td_fp;
    const core::CorpusRef db = resolve_ciphers(proto.db, &db_fp);
    const core::CorpusRef td = resolve_ciphers(proto.trapdoors, &td_fp);
    if (db_fp.empty() || td_fp.empty()) {
      throw core::Error(core::ErrorCode::BadInput,
                        "snmf batch: corpus has no stable identity");
    }
    std::size_t sweep_threads = 1;
    for (const auto& job : live) {
      sweep_threads =
          std::max(sweep_threads, job_context(job->options).resolved_threads());
    }
    const std::string score_key = db_fp + "#" + td_fp;
    const auto scores = score_cache_.get_or_build(
        score_key, options_.memory_budget_bytes, [&] {
          return core::build_score_matrix(*db.ciphers, *td.ciphers,
                                          sweep_threads);
        });

    std::vector<core::SnmfBatchJob> batch(live.size());
    std::vector<std::size_t> estimated(live.size(), 0);
    for (std::size_t i = 0; i < live.size(); ++i) {
      const auto& req = std::get<core::SnmfRequest>(live[i]->request.request);
      core::ExecContext ctx = job_context(live[i]->options);
      ctx.memory_budget_bytes = options_.memory_budget_bytes;
      core::SnmfAttackOptions opts = req.options;
      if (opts.rank == 0) {
        // The same rank-estimate cache the solo path keeps: keyed on
        // corpus, seed AND tolerance (the estimation identity).
        const std::string rank_key = db_fp + "#" + td_fp +
                                     "#seed=" + std::to_string(ctx.seed) +
                                     "#tol=" + key_f64(opts.rank_tol);
        std::size_t rank = 0;
        {
          std::lock_guard<std::mutex> lk(cache_mu_);
          const auto it = rank_cache_.find(rank_key);
          if (it != rank_cache_.end()) rank = it->second;
        }
        if (rank > 0) {
          rank_hits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          rank = core::estimate_latent_dimension(*scores, opts.rank_tol, ctx);
          if (rank == 0) {
            throw core::Error(core::ErrorCode::NotReady,
                              "snmf: rank estimation found a zero matrix");
          }
          std::lock_guard<std::mutex> lk(cache_mu_);
          if (rank_cache_.size() >= options_.max_cache_entries &&
              rank_cache_.count(rank_key) == 0) {
            rank_cache_.clear();
          }
          rank_cache_[rank_key] = rank;
        }
        opts.rank = rank;
        estimated[i] = rank;
      }
      batch[i].options = opts;
      batch[i].ctx = ctx;
    }

    std::vector<core::SnmfAttackResult> results =
        core::run_snmf_attack_batch(*scores, batch);

    batches_formed_.fetch_add(1, std::memory_order_relaxed);
    batched_jobs_.fetch_add(live.size(), std::memory_order_relaxed);
    for (std::size_t i = 0; i < live.size(); ++i) {
      core::AttackResponse resp;
      auto res = std::move(results[i]);
      if (estimated[i] > 0) {
        res.telemetry.counters["snmf.estimated_rank"] =
            static_cast<double>(estimated[i]);
      }
      resp.telemetry = res.telemetry;
      resp.result = std::move(res);
      resp.status = core::AttackStatus::Ok;
      resp.error = core::ErrorCode::Ok;
      // Batched jobs never carry want_telemetry; strip exactly as
      // execute_resolved does.
      resp.telemetry.spans.clear();
      resp.telemetry.gauges.clear();
      completed_.fetch_add(1, std::memory_order_relaxed);
      live[i]->deliver(live[i]->id, std::move(resp));
      ++delivered;
    }
  } catch (...) {
    // Anything the fused path cannot serve (unreadable corpus, rank
    // failure, ...) falls back to solo execution, which reports the real
    // per-job error through the normal taxonomy.
    for (std::size_t i = delivered; i < live.size(); ++i) {
      run_job(std::move(*live[i]));
    }
  }
}

void Daemon::stop() {
  std::deque<std::shared_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
    orphaned.swap(queue_);
  }
  queue_cv_.notify_all();
  for (const auto& job : orphaned) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    job->deliver(job->id, refused(core::ErrorCode::Budget,
                                  "daemon stopped before execution"));
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.corpus_cache_hits = corpus_hits_.load(std::memory_order_relaxed);
  s.rank_cache_hits = rank_hits_.load(std::memory_order_relaxed);
  s.lep_session_hits = lep_hits_.load(std::memory_order_relaxed);
  s.snmf_resumes = snmf_resumes_.load(std::memory_order_relaxed);
  s.batches_formed = batches_formed_.load(std::memory_order_relaxed);
  s.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
  s.affinity_hits = affinity_hits_.load(std::memory_order_relaxed);
  s.basis_cache_hits = basis_hits_.load(std::memory_order_relaxed);
  {
    const auto sc = score_cache_.stats();
    s.score_cache_hits = sc.hits;
    s.score_cache_misses = sc.misses;
    s.score_cache_evictions = sc.evictions;
    s.score_cache_bytes = sc.resident_bytes;
  }
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    s.queue_depth = queue_.size();
  }
  return s;
}

// ------------------------------------------------------------- warm caches

core::CorpusRef Daemon::resolve_ciphers(const core::CorpusRef& ref,
                                        std::string* fingerprint_out) {
  if (fingerprint_out != nullptr) fingerprint_out->clear();
  if (ref.ciphers != nullptr || ref.vecs != nullptr || ref.path.empty()) {
    return ref;  // inline (no stable identity) or empty (dispatch validates)
  }
  const auto fp = stat_fingerprint(ref.path);
  if (!fp) return ref;  // unreadable: let the loader raise the io error
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    const auto it = corpus_cache_.find(ref.path);
    if (it != corpus_cache_.end() && it->second.fingerprint == *fp &&
        it->second.ciphers != nullptr) {
      corpus_hits_.fetch_add(1, std::memory_order_relaxed);
      if (fingerprint_out != nullptr) *fingerprint_out = *fp;
      core::CorpusRef out;
      out.ciphers = it->second.ciphers;
      return out;
    }
  }
  auto loaded = ref.load_ciphers("corpus");
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (corpus_cache_.size() >= options_.max_cache_entries &&
        corpus_cache_.count(ref.path) == 0) {
      corpus_cache_.clear();
    }
    auto& entry = corpus_cache_[ref.path];
    if (entry.fingerprint != *fp) entry.vecs.reset();  // file changed on disk
    entry.fingerprint = *fp;
    entry.ciphers = loaded;
  }
  if (fingerprint_out != nullptr) *fingerprint_out = *fp;
  core::CorpusRef out;
  out.ciphers = std::move(loaded);
  return out;
}

core::CorpusRef Daemon::resolve_vecs(const core::CorpusRef& ref,
                                     std::string* fingerprint_out) {
  if (fingerprint_out != nullptr) fingerprint_out->clear();
  if (ref.ciphers != nullptr || ref.vecs != nullptr || ref.path.empty()) {
    return ref;
  }
  const auto fp = stat_fingerprint(ref.path);
  if (!fp) return ref;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    const auto it = corpus_cache_.find(ref.path);
    if (it != corpus_cache_.end() && it->second.fingerprint == *fp &&
        it->second.vecs != nullptr) {
      corpus_hits_.fetch_add(1, std::memory_order_relaxed);
      if (fingerprint_out != nullptr) *fingerprint_out = *fp;
      core::CorpusRef out;
      out.vecs = it->second.vecs;
      return out;
    }
  }
  auto loaded = ref.load_vecs("corpus");
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (corpus_cache_.size() >= options_.max_cache_entries &&
        corpus_cache_.count(ref.path) == 0) {
      corpus_cache_.clear();
    }
    auto& entry = corpus_cache_[ref.path];
    if (entry.fingerprint != *fp) entry.ciphers.reset();
    entry.fingerprint = *fp;
    entry.vecs = loaded;
  }
  if (fingerprint_out != nullptr) *fingerprint_out = *fp;
  core::CorpusRef out;
  out.vecs = std::move(loaded);
  return out;
}

// --------------------------------------------------------------- execution

core::AttackResponse Daemon::execute(const core::AttackRequest& request,
                                     const JobOptions& options) {
  try {
    return execute_resolved(request, options);
  } catch (const std::exception& e) {
    return refused(core::error_code_of(e), e.what());
  }
}

core::AttackResponse Daemon::execute_resolved(
    const core::AttackRequest& request, const JobOptions& options) {
  core::ExecContext ctx = job_context(options);
  ctx.memory_budget_bytes = options_.memory_budget_bytes;
  ForwardSink collector(options_.sink);
  if (options.want_telemetry || options_.sink != nullptr) {
    ctx.sink = &collector;
  }

  core::AttackResponse resp = std::visit(
      [&](const auto& typed) -> core::AttackResponse {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, core::LepRequest>) {
          core::LepRequest r = typed;
          std::string kp_fp, db_fp, td_fp;
          r.known_plain = resolve_vecs(typed.known_plain, &kp_fp);
          r.db = resolve_ciphers(typed.db, &db_fp);
          r.trapdoors = resolve_ciphers(typed.trapdoors, &td_fp);
          if (!kp_fp.empty() && !db_fp.empty() && !td_fp.empty()) {
            std::ostringstream key;
            key << kp_fp << '#' << db_fp << '#' << td_fp
                << "#tol=" << r.options.independence_tol;
            return execute_lep_warm(r, key.str(), ctx);
          }
          core::AttackRequest resolved;
          resolved.request = std::move(r);
          return core::dispatch_attack(resolved, ctx);
        } else if constexpr (std::is_same_v<T, core::MipRequest>) {
          core::MipRequest r = typed;
          std::string kp_fp, db_fp, td_fp;
          r.known_plain = resolve_vecs(typed.known_plain, &kp_fp);
          r.db = resolve_ciphers(typed.db, &db_fp);
          r.trapdoors = resolve_ciphers(typed.trapdoors, &td_fp);
          const bool identified =
              !kp_fp.empty() && !db_fp.empty() && !td_fp.empty();
          core::AttackRequest resolved;
          resolved.request = std::move(r);
          if (!identified) return core::dispatch_attack(resolved, ctx);
          // Persistent MIP basis cache: repeated jobs over the same corpora
          // and parameters warm-start the root LP and reuse the root cut
          // pool. run_mip_attack self-invalidates on model-digest mismatch,
          // so the parameter key only scopes contention; correctness never
          // depends on it. The entry mutex serializes the whole attack per
          // key — two identical jobs never race on the shared basis.
          std::ostringstream key;
          key << kp_fp << '#' << db_fp << '#' << td_fp
              << "#tid=" << typed.trapdoor_id << "#mu=" << key_f64(typed.mu)
              << "#sigma=" << key_f64(typed.sigma)
              << "#l=" << key_f64(typed.options.l)
              << "#tl=" << key_f64(typed.options.solver.time_limit_seconds)
              << "#nodes=" << typed.options.solver.max_nodes;
          std::shared_ptr<MipBasisEntry> entry;
          {
            std::lock_guard<std::mutex> lk(cache_mu_);
            if (mip_basis_.size() >= options_.max_cache_entries &&
                mip_basis_.count(key.str()) == 0) {
              mip_basis_.clear();
            }
            auto& slot = mip_basis_[key.str()];
            if (slot == nullptr) slot = std::make_shared<MipBasisEntry>();
            entry = slot;
          }
          std::lock_guard<std::mutex> lk(entry->mu);
          const bool warm = entry->state.has_root_basis;
          if (warm) basis_hits_.fetch_add(1, std::memory_order_relaxed);
          core::DispatchHooks hooks;
          hooks.mip_warm = &entry->state;
          return core::dispatch_attack(resolved, ctx, hooks);
        } else {
          core::SnmfRequest r = typed;
          std::string db_fp, td_fp;
          r.db = resolve_ciphers(typed.db, &db_fp);
          r.trapdoors = resolve_ciphers(typed.trapdoors, &td_fp);
          const bool identified = !db_fp.empty() && !td_fp.empty();
          if (r.reuse_session && identified) {
            std::ostringstream key;
            key << db_fp << '#' << td_fp << "#rank=" << r.options.rank
                << "#restarts=" << r.options.restarts
                << "#iters=" << r.options.nmf.max_iterations
                << "#theta=" << r.options.theta
                << "#tol=" << key_f64(r.options.rank_tol)
                << "#seed=" << ctx.seed;
            return execute_snmf_warm(r, key.str(), ctx);
          }
          // Shared score-matrix cache: every stage of this job (and every
          // later job over the same corpora) reads one resident R. A cache
          // hit is bit-identical to a rebuild, so this never changes output.
          core::DispatchHooks hooks;
          if (identified) {
            hooks.score_cache = &score_cache_;
            hooks.score_key = db_fp + "#" + td_fp;
          }
          // Rank-estimate cache: the estimate is deterministic per
          // (corpus, seed, tolerance), so replaying a cached rank
          // reproduces the cold run bit for bit while skipping the SVD.
          // The tolerance is part of the key — two jobs differing only in
          // rank_tol may legitimately disagree on the estimate.
          std::string rank_key;
          std::size_t cached_rank = 0;
          if (r.options.rank == 0 && identified) {
            rank_key = db_fp + "#" + td_fp +
                       "#seed=" + std::to_string(ctx.seed) +
                       "#tol=" + key_f64(r.options.rank_tol);
            std::lock_guard<std::mutex> lk(cache_mu_);
            const auto it = rank_cache_.find(rank_key);
            if (it != rank_cache_.end()) cached_rank = it->second;
          }
          if (cached_rank > 0) {
            rank_hits_.fetch_add(1, std::memory_order_relaxed);
            r.options.rank = cached_rank;
            core::AttackRequest resolved;
            resolved.request = std::move(r);
            core::AttackResponse out =
                core::dispatch_attack(resolved, ctx, hooks);
            if (out.ok()) {
              const auto rank = static_cast<double>(cached_rank);
              out.telemetry.counters["snmf.estimated_rank"] = rank;
              if (auto* res =
                      std::get_if<core::SnmfAttackResult>(&out.result)) {
                res->telemetry.counters["snmf.estimated_rank"] = rank;
              }
            }
            return out;
          }
          core::AttackRequest resolved;
          resolved.request = std::move(r);
          core::AttackResponse out =
              core::dispatch_attack(resolved, ctx, hooks);
          if (!rank_key.empty() && out.ok()) {
            const auto rank = static_cast<std::size_t>(
                out.telemetry.counter("snmf.estimated_rank"));
            if (rank > 0) {
              std::lock_guard<std::mutex> lk(cache_mu_);
              if (rank_cache_.size() >= options_.max_cache_entries &&
                  rank_cache_.count(rank_key) == 0) {
                rank_cache_.clear();
              }
              rank_cache_[rank_key] = rank;
            }
          }
          return out;
        }
      },
      request.request);

  if (!options.want_telemetry) {
    resp.telemetry.spans.clear();
    resp.telemetry.gauges.clear();
  }
  return resp;
}

core::AttackResponse Daemon::execute_lep_warm(const core::LepRequest& req,
                                              const std::string& key,
                                              const core::ExecContext& ctx) {
  std::shared_ptr<LepEntry> entry;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (lep_sessions_.size() >= options_.max_cache_entries &&
        lep_sessions_.count(key) == 0) {
      lep_sessions_.clear();
    }
    auto& slot = lep_sessions_[key];
    if (slot == nullptr) slot = std::make_shared<LepEntry>();
    entry = slot;
  }

  // The recording wraps session build *and* assemble; the session itself
  // runs with a null sink (its spans land in this recording).
  obs::ScopedRecording rec(ctx.sink);
  std::lock_guard<std::mutex> lk(entry->mu);
  if (entry->session.has_value()) {
    lep_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const auto known = req.known_plain.load_vecs("lep known-plain");
    const auto db = req.db.load_ciphers("lep db");
    const auto trapdoors = req.trapdoors.load_ciphers("lep trapdoors");
    if (known->size() > db->size()) {
      throw core::Error(core::ErrorCode::BadInput,
                        "lep: more known records than ciphertexts");
    }
    core::ExecContext session_ctx = ctx;
    session_ctx.sink = nullptr;
    try {
      entry->session.emplace(req.options, session_ctx);
      std::vector<sse::KnownIndexPair> pairs;
      pairs.reserve(known->size());
      for (std::size_t i = 0; i < known->size(); ++i) {
        pairs.push_back({scheme::make_index((*known)[i]), (*db)[i]});
      }
      entry->session->add_known_pairs(pairs);
      sse::CoaView view;
      view.cipher_indexes = *db;
      view.cipher_trapdoors = *trapdoors;
      entry->session->append_ciphertexts(view);
    } catch (...) {
      entry->session.reset();  // never cache a half-built session
      throw;
    }
  }

  core::AttackResponse resp;
  // result() is bit-identical to run_lep_attack on the same view (the
  // session contract), so warm hits return exactly the cold answer.
  auto res = entry->session->result();
  res.telemetry.absorb(rec.finish());
  resp.telemetry = res.telemetry;
  resp.result = std::move(res);
  resp.status = core::AttackStatus::Ok;
  resp.error = core::ErrorCode::Ok;
  return resp;
}

core::AttackResponse Daemon::execute_snmf_warm(const core::SnmfRequest& req,
                                               const std::string& key,
                                               const core::ExecContext& ctx) {
  std::shared_ptr<CoaEntry> entry;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (coa_sessions_.size() >= options_.max_cache_entries &&
        coa_sessions_.count(key) == 0) {
      coa_sessions_.clear();
    }
    auto& slot = coa_sessions_[key];
    if (slot == nullptr) slot = std::make_shared<CoaEntry>();
    entry = slot;
  }

  obs::ScopedRecording rec(ctx.sink);
  std::lock_guard<std::mutex> lk(entry->mu);
  const bool fresh = !entry->session.has_value();
  if (fresh) {
    const auto db = req.db.load_ciphers("snmf db");
    const auto trapdoors = req.trapdoors.load_ciphers("snmf trapdoors");
    core::ExecContext session_ctx = ctx;
    session_ctx.sink = nullptr;
    try {
      entry->session.emplace(req.options, session_ctx);
      sse::CoaView view;
      view.cipher_indexes = *db;
      view.cipher_trapdoors = *trapdoors;
      entry->session->append_ciphertexts(view);
      std::size_t rank = req.options.rank;
      if (rank == 0) {
        rank = entry->session->estimate_rank(req.options.rank_tol);
        if (rank == 0) {
          throw core::Error(core::ErrorCode::NotReady,
                            "snmf: rank estimation found a zero matrix");
        }
      }
      entry->session->set_rank(rank);
      entry->rank = rank;
    } catch (...) {
      entry->session.reset();
      throw;
    }
  } else {
    snmf_resumes_.fetch_add(1, std::memory_order_relaxed);
  }

  core::AttackResponse resp;
  // First attack of a fresh session == run_snmf_attack bit for bit; later
  // calls warm-resume (same fixed point, not bitwise — which is why this
  // path requires the reuse_session opt-in).
  auto res = entry->session->attack();
  if (req.options.rank == 0) {
    res.telemetry.counters["snmf.estimated_rank"] =
        static_cast<double>(entry->rank);
  }
  res.telemetry.absorb(rec.finish());
  resp.telemetry = res.telemetry;
  resp.result = std::move(res);
  resp.status = core::AttackStatus::Ok;
  resp.error = core::ErrorCode::Ok;
  return resp;
}

// ------------------------------------------------------------------ server

struct Server::Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Serialized frame write; false (and closed-for-writing) once the peer
  /// is gone. A daemon worker delivering to a vanished client lands here
  /// harmlessly — the job itself already ran to completion.
  bool send(FrameType type, const std::vector<std::uint8_t>& payload) {
    std::lock_guard<std::mutex> lk(write_mu);
    if (!open.load(std::memory_order_relaxed)) return false;
    if (!send_frame(fd, type, payload)) {
      open.store(false, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

Server::Server(Daemon& daemon, ServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {
  sockaddr_un addr{};
  if (options_.socket_path.empty()) {
    throw InvalidArgument("svc: server requires a socket path");
  }
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("svc: socket path too long: " + options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw io::IoError(std::string("svc: socket(): ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io::IoError("svc: bind(" + options_.socket_path +
                      "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io::IoError(std::string("svc: listen(): ") + std::strerror(err));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down by stop()
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;  // conn destructor closes the fd
    connections_.push_back(conn);
    handlers_.emplace_back([this, conn] { handle_connection(conn); });
  }
}

void Server::handle_connection(const std::shared_ptr<Connection>& conn) {
  try {
    for (;;) {
      auto frame = recv_frame(conn->fd, options_.max_frame_bytes);
      if (!frame) return;  // clean disconnect at a frame boundary
      switch (frame->type) {
        case FrameType::Submit: {
          WireReader r(frame->payload);
          JobOptions jopts = decode_job_options(r);
          core::AttackRequest req = decode_request(r);
          r.expect_end("svc submit frame");
          // Accepted must precede Result on the wire even when the daemon
          // delivers synchronously (queue-full refusal) or a worker
          // finishes before submit() returns — both deliver paths and the
          // handler race through this once-guard with the same id.
          auto accept_once = std::make_shared<std::once_flag>();
          auto send_accepted = [conn, accept_once](std::uint64_t id) {
            std::call_once(*accept_once, [&] {
              WireWriter w;
              w.u64(id);
              conn->send(FrameType::Accepted, w.bytes());
            });
          };
          const auto id = daemon_.submit(
              std::move(req), jopts,
              [conn, send_accepted](std::uint64_t job_id,
                                    core::AttackResponse&& resp) {
                send_accepted(job_id);
                conn->send(FrameType::Result,
                           build_result_payload(job_id, resp));
              });
          send_accepted(id);
          break;
        }
        case FrameType::SubmitBatch: {
          WireReader r(frame->payload);
          // Minimum bytes per job: the fixed-size JobOptions block (26)
          // plus a one-byte request tag.
          const std::size_t n = r.count(27, "svc submit-batch job count");
          std::vector<BatchJob> jobs(n);
          for (auto& job : jobs) {
            job.options = decode_job_options(r);
            job.request = decode_request(r);
          }
          r.expect_end("svc submit-batch frame");
          // Per job, its Accepted frame precedes its Result frame — the
          // Submit once-guard generalized to a set of ids, since a worker
          // (or a synchronous refusal) can deliver before submit_batch
          // returns the id list to this thread.
          struct AcceptGuard {
            std::mutex mu;
            std::set<std::uint64_t> sent;
            bool first(std::uint64_t id) {
              std::lock_guard<std::mutex> lk(mu);
              return sent.insert(id).second;
            }
          };
          auto guard = std::make_shared<AcceptGuard>();
          const auto send_accepted = [conn, guard](std::uint64_t id) {
            if (guard->first(id)) {
              WireWriter w;
              w.u64(id);
              conn->send(FrameType::Accepted, w.bytes());
            }
          };
          const auto ids = daemon_.submit_batch(
              std::move(jobs),
              [conn, send_accepted](std::uint64_t job_id,
                                    core::AttackResponse&& resp) {
                send_accepted(job_id);
                conn->send(FrameType::Result,
                           build_result_payload(job_id, resp));
              });
          for (const auto id : ids) send_accepted(id);
          break;
        }
        case FrameType::Cancel: {
          WireReader r(frame->payload);
          const std::uint64_t id = r.u64();
          r.expect_end("svc cancel frame");
          const bool hit = daemon_.cancel(id);
          WireWriter w;
          w.u64(id);
          w.u8(hit ? 1 : 0);
          conn->send(FrameType::CancelAck, w.bytes());
          break;
        }
        case FrameType::Ping: {
          // The Pong carries the daemon's stats block; a client that does
          // not care simply ignores the payload.
          WireWriter w;
          encode_daemon_stats(w, daemon_.stats());
          conn->send(FrameType::Pong, w.bytes());
          break;
        }
        case FrameType::Shutdown: {
          conn->send(FrameType::ShutdownAck, {});
          {
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          return;
        }
        default:
          throw io::IoError("svc: unexpected frame type " +
                            std::to_string(static_cast<std::uint32_t>(
                                frame->type)));
      }
    }
  } catch (const std::exception& e) {
    // Malformed input: decode state past the first bad byte is unknowable,
    // so answer (best effort) and drop only this connection.
    WireWriter w;
    w.str(e.what());
    conn->send(FrameType::ProtocolError, w.bytes());
    conn->open.store(false, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  shutdown_cv_.wait(lk, [this] { return shutdown_requested_ || stopped_; });
}

void Server::stop() {
  std::vector<std::thread> handlers;
  bool was_stopped = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    was_stopped = stopped_;
    if (!stopped_) {
      stopped_ = true;
      shutdown_requested_ = true;
      // shutdown() unblocks accept()/recv() on Linux; the fds are closed
      // after the threads holding them have been joined.
      if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
      for (const auto& weak : connections_) {
        if (auto conn = weak.lock()) {
          conn->open.store(false, std::memory_order_relaxed);
          ::shutdown(conn->fd, SHUT_RDWR);
        }
      }
    }
    handlers.swap(handlers_);
  }
  shutdown_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!was_stopped) ::unlink(options_.socket_path.c_str());
}

}  // namespace aspe::svc
