#include "svc/daemon.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "scheme/plain_index.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::svc {

namespace {

/// Per-job recording target: keeps the merged Summary for the response and
/// forwards it to the daemon-wide sink (when one is configured).
class ForwardSink final : public obs::Sink {
 public:
  explicit ForwardSink(obs::Sink* downstream) : downstream_(downstream) {}

  void consume(const obs::Summary& summary) override {
    last_ = summary;
    if (downstream_ != nullptr) downstream_->consume(summary);
  }

  [[nodiscard]] const obs::Summary& last() const { return last_; }

 private:
  obs::Sink* downstream_;
  obs::Summary last_;
};

/// Corpus identity for the warm caches: path plus size plus mtime. Nullopt
/// when the file cannot be stat'ed (the subsequent load reports the real
/// error with the io layer's message).
std::optional<std::string> stat_fingerprint(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  std::ostringstream os;
  os << path << '|' << st.st_size << '|' << st.st_mtim.tv_sec << '.'
     << st.st_mtim.tv_nsec;
  return os.str();
}

core::ExecContext job_context(const JobOptions& opts) {
  core::ExecContext ctx;
  ctx.threads = opts.threads;
  ctx.seed = opts.seed;
  ctx.deterministic = opts.deterministic;
  return ctx;
}

}  // namespace

// ------------------------------------------------------------------ daemon

Daemon::Daemon(DaemonOptions options) : options_(options) {
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Daemon::~Daemon() { stop(); }

core::AttackResponse Daemon::refused(core::ErrorCode code,
                                     const std::string& message) const {
  core::AttackResponse resp;
  resp.status = core::AttackStatus::Failed;
  resp.error = code;
  resp.message = message;
  return resp;
}

std::uint64_t Daemon::submit(core::AttackRequest request, JobOptions options,
                             Deliver deliver) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  auto job = std::make_shared<Job>();
  job->id = id;
  job->request = std::move(request);
  job->options = options;
  job->deliver = std::move(deliver);
  if (options.deadline_ms > 0) {
    job->deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options.deadline_ms);
  }

  bool stopping = false;
  bool queued = false;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping = stopping_;
    if (!stopping && queue_.size() < options_.queue_capacity) {
      queue_.push_back(job);
      queued = true;
    }
  }
  if (queued) {
    queue_cv_.notify_one();
    return id;
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  job->deliver(id, refused(core::ErrorCode::Budget,
                           stopping ? "daemon is stopping"
                                    : "queue full: job refused"));
  return id;
}

bool Daemon::cancel(std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    const auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [job_id](const auto& j) { return j->id == job_id; });
    if (it == queue_.end()) return false;
    job = *it;
    queue_.erase(it);
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  job->deliver(job->id, refused(core::ErrorCode::Budget,
                                "job cancelled before execution"));
  return true;
}

bool Daemon::run_one() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  run_job(std::move(*job));
  return true;
}

void Daemon::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, queue drained by stop()
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(std::move(*job));
  }
}

void Daemon::run_job(Job&& job) {
  if (job.deadline != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() > job.deadline) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    job.deliver(job.id,
                refused(core::ErrorCode::Budget,
                        "deadline of " + std::to_string(job.options.deadline_ms) +
                            " ms expired before the job started"));
    return;
  }
  core::AttackResponse resp = execute(job.request, job.options);
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.deliver(job.id, std::move(resp));
}

void Daemon::stop() {
  std::deque<std::shared_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
    orphaned.swap(queue_);
  }
  queue_cv_.notify_all();
  for (const auto& job : orphaned) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    job->deliver(job->id, refused(core::ErrorCode::Budget,
                                  "daemon stopped before execution"));
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.corpus_cache_hits = corpus_hits_.load(std::memory_order_relaxed);
  s.rank_cache_hits = rank_hits_.load(std::memory_order_relaxed);
  s.lep_session_hits = lep_hits_.load(std::memory_order_relaxed);
  s.snmf_resumes = snmf_resumes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    s.queue_depth = queue_.size();
  }
  return s;
}

// ------------------------------------------------------------- warm caches

core::CorpusRef Daemon::resolve_ciphers(const core::CorpusRef& ref,
                                        std::string* fingerprint_out) {
  if (fingerprint_out != nullptr) fingerprint_out->clear();
  if (ref.ciphers != nullptr || ref.vecs != nullptr || ref.path.empty()) {
    return ref;  // inline (no stable identity) or empty (dispatch validates)
  }
  const auto fp = stat_fingerprint(ref.path);
  if (!fp) return ref;  // unreadable: let the loader raise the io error
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    const auto it = corpus_cache_.find(ref.path);
    if (it != corpus_cache_.end() && it->second.fingerprint == *fp &&
        it->second.ciphers != nullptr) {
      corpus_hits_.fetch_add(1, std::memory_order_relaxed);
      if (fingerprint_out != nullptr) *fingerprint_out = *fp;
      core::CorpusRef out;
      out.ciphers = it->second.ciphers;
      return out;
    }
  }
  auto loaded = ref.load_ciphers("corpus");
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (corpus_cache_.size() >= options_.max_cache_entries &&
        corpus_cache_.count(ref.path) == 0) {
      corpus_cache_.clear();
    }
    auto& entry = corpus_cache_[ref.path];
    if (entry.fingerprint != *fp) entry.vecs.reset();  // file changed on disk
    entry.fingerprint = *fp;
    entry.ciphers = loaded;
  }
  if (fingerprint_out != nullptr) *fingerprint_out = *fp;
  core::CorpusRef out;
  out.ciphers = std::move(loaded);
  return out;
}

core::CorpusRef Daemon::resolve_vecs(const core::CorpusRef& ref,
                                     std::string* fingerprint_out) {
  if (fingerprint_out != nullptr) fingerprint_out->clear();
  if (ref.ciphers != nullptr || ref.vecs != nullptr || ref.path.empty()) {
    return ref;
  }
  const auto fp = stat_fingerprint(ref.path);
  if (!fp) return ref;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    const auto it = corpus_cache_.find(ref.path);
    if (it != corpus_cache_.end() && it->second.fingerprint == *fp &&
        it->second.vecs != nullptr) {
      corpus_hits_.fetch_add(1, std::memory_order_relaxed);
      if (fingerprint_out != nullptr) *fingerprint_out = *fp;
      core::CorpusRef out;
      out.vecs = it->second.vecs;
      return out;
    }
  }
  auto loaded = ref.load_vecs("corpus");
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (corpus_cache_.size() >= options_.max_cache_entries &&
        corpus_cache_.count(ref.path) == 0) {
      corpus_cache_.clear();
    }
    auto& entry = corpus_cache_[ref.path];
    if (entry.fingerprint != *fp) entry.ciphers.reset();
    entry.fingerprint = *fp;
    entry.vecs = loaded;
  }
  if (fingerprint_out != nullptr) *fingerprint_out = *fp;
  core::CorpusRef out;
  out.vecs = std::move(loaded);
  return out;
}

// --------------------------------------------------------------- execution

core::AttackResponse Daemon::execute(const core::AttackRequest& request,
                                     const JobOptions& options) {
  try {
    return execute_resolved(request, options);
  } catch (const std::exception& e) {
    return refused(core::error_code_of(e), e.what());
  }
}

core::AttackResponse Daemon::execute_resolved(
    const core::AttackRequest& request, const JobOptions& options) {
  core::ExecContext ctx = job_context(options);
  ForwardSink collector(options_.sink);
  if (options.want_telemetry || options_.sink != nullptr) {
    ctx.sink = &collector;
  }

  core::AttackResponse resp = std::visit(
      [&](const auto& typed) -> core::AttackResponse {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, core::LepRequest>) {
          core::LepRequest r = typed;
          std::string kp_fp, db_fp, td_fp;
          r.known_plain = resolve_vecs(typed.known_plain, &kp_fp);
          r.db = resolve_ciphers(typed.db, &db_fp);
          r.trapdoors = resolve_ciphers(typed.trapdoors, &td_fp);
          if (!kp_fp.empty() && !db_fp.empty() && !td_fp.empty()) {
            std::ostringstream key;
            key << kp_fp << '#' << db_fp << '#' << td_fp
                << "#tol=" << r.options.independence_tol;
            return execute_lep_warm(r, key.str(), ctx);
          }
          core::AttackRequest resolved;
          resolved.request = std::move(r);
          return core::dispatch_attack(resolved, ctx);
        } else if constexpr (std::is_same_v<T, core::MipRequest>) {
          core::MipRequest r = typed;
          r.known_plain = resolve_vecs(typed.known_plain, nullptr);
          r.db = resolve_ciphers(typed.db, nullptr);
          r.trapdoors = resolve_ciphers(typed.trapdoors, nullptr);
          core::AttackRequest resolved;
          resolved.request = std::move(r);
          return core::dispatch_attack(resolved, ctx);
        } else {
          core::SnmfRequest r = typed;
          std::string db_fp, td_fp;
          r.db = resolve_ciphers(typed.db, &db_fp);
          r.trapdoors = resolve_ciphers(typed.trapdoors, &td_fp);
          const bool identified = !db_fp.empty() && !td_fp.empty();
          if (r.reuse_session && identified) {
            std::ostringstream key;
            key << db_fp << '#' << td_fp << "#rank=" << r.options.rank
                << "#restarts=" << r.options.restarts
                << "#iters=" << r.options.nmf.max_iterations
                << "#theta=" << r.options.theta << "#seed=" << ctx.seed;
            return execute_snmf_warm(r, key.str(), ctx);
          }
          // Rank-estimate cache: the estimate is deterministic per
          // (corpus, seed), so replaying a cached rank reproduces the
          // cold run bit for bit while skipping the SVD.
          std::string rank_key;
          std::size_t cached_rank = 0;
          if (r.options.rank == 0 && identified) {
            rank_key = db_fp + "#" + td_fp +
                       "#seed=" + std::to_string(ctx.seed);
            std::lock_guard<std::mutex> lk(cache_mu_);
            const auto it = rank_cache_.find(rank_key);
            if (it != rank_cache_.end()) cached_rank = it->second;
          }
          if (cached_rank > 0) {
            rank_hits_.fetch_add(1, std::memory_order_relaxed);
            r.options.rank = cached_rank;
            core::AttackRequest resolved;
            resolved.request = std::move(r);
            core::AttackResponse out = core::dispatch_attack(resolved, ctx);
            if (out.ok()) {
              const auto rank = static_cast<double>(cached_rank);
              out.telemetry.counters["snmf.estimated_rank"] = rank;
              if (auto* res =
                      std::get_if<core::SnmfAttackResult>(&out.result)) {
                res->telemetry.counters["snmf.estimated_rank"] = rank;
              }
            }
            return out;
          }
          core::AttackRequest resolved;
          resolved.request = std::move(r);
          core::AttackResponse out = core::dispatch_attack(resolved, ctx);
          if (!rank_key.empty() && out.ok()) {
            const auto rank = static_cast<std::size_t>(
                out.telemetry.counter("snmf.estimated_rank"));
            if (rank > 0) {
              std::lock_guard<std::mutex> lk(cache_mu_);
              if (rank_cache_.size() >= options_.max_cache_entries &&
                  rank_cache_.count(rank_key) == 0) {
                rank_cache_.clear();
              }
              rank_cache_[rank_key] = rank;
            }
          }
          return out;
        }
      },
      request.request);

  if (!options.want_telemetry) {
    resp.telemetry.spans.clear();
    resp.telemetry.gauges.clear();
  }
  return resp;
}

core::AttackResponse Daemon::execute_lep_warm(const core::LepRequest& req,
                                              const std::string& key,
                                              const core::ExecContext& ctx) {
  std::shared_ptr<LepEntry> entry;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (lep_sessions_.size() >= options_.max_cache_entries &&
        lep_sessions_.count(key) == 0) {
      lep_sessions_.clear();
    }
    auto& slot = lep_sessions_[key];
    if (slot == nullptr) slot = std::make_shared<LepEntry>();
    entry = slot;
  }

  // The recording wraps session build *and* assemble; the session itself
  // runs with a null sink (its spans land in this recording).
  obs::ScopedRecording rec(ctx.sink);
  std::lock_guard<std::mutex> lk(entry->mu);
  if (entry->session.has_value()) {
    lep_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const auto known = req.known_plain.load_vecs("lep known-plain");
    const auto db = req.db.load_ciphers("lep db");
    const auto trapdoors = req.trapdoors.load_ciphers("lep trapdoors");
    if (known->size() > db->size()) {
      throw core::Error(core::ErrorCode::BadInput,
                        "lep: more known records than ciphertexts");
    }
    core::ExecContext session_ctx = ctx;
    session_ctx.sink = nullptr;
    try {
      entry->session.emplace(req.options, session_ctx);
      std::vector<sse::KnownIndexPair> pairs;
      pairs.reserve(known->size());
      for (std::size_t i = 0; i < known->size(); ++i) {
        pairs.push_back({scheme::make_index((*known)[i]), (*db)[i]});
      }
      entry->session->add_known_pairs(pairs);
      sse::CoaView view;
      view.cipher_indexes = *db;
      view.cipher_trapdoors = *trapdoors;
      entry->session->append_ciphertexts(view);
    } catch (...) {
      entry->session.reset();  // never cache a half-built session
      throw;
    }
  }

  core::AttackResponse resp;
  // result() is bit-identical to run_lep_attack on the same view (the
  // session contract), so warm hits return exactly the cold answer.
  auto res = entry->session->result();
  res.telemetry.absorb(rec.finish());
  resp.telemetry = res.telemetry;
  resp.result = std::move(res);
  resp.status = core::AttackStatus::Ok;
  resp.error = core::ErrorCode::Ok;
  return resp;
}

core::AttackResponse Daemon::execute_snmf_warm(const core::SnmfRequest& req,
                                               const std::string& key,
                                               const core::ExecContext& ctx) {
  std::shared_ptr<CoaEntry> entry;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (coa_sessions_.size() >= options_.max_cache_entries &&
        coa_sessions_.count(key) == 0) {
      coa_sessions_.clear();
    }
    auto& slot = coa_sessions_[key];
    if (slot == nullptr) slot = std::make_shared<CoaEntry>();
    entry = slot;
  }

  obs::ScopedRecording rec(ctx.sink);
  std::lock_guard<std::mutex> lk(entry->mu);
  const bool fresh = !entry->session.has_value();
  if (fresh) {
    const auto db = req.db.load_ciphers("snmf db");
    const auto trapdoors = req.trapdoors.load_ciphers("snmf trapdoors");
    core::ExecContext session_ctx = ctx;
    session_ctx.sink = nullptr;
    try {
      entry->session.emplace(req.options, session_ctx);
      sse::CoaView view;
      view.cipher_indexes = *db;
      view.cipher_trapdoors = *trapdoors;
      entry->session->append_ciphertexts(view);
      std::size_t rank = req.options.rank;
      if (rank == 0) {
        rank = entry->session->estimate_rank(1e-8);
        if (rank == 0) {
          throw core::Error(core::ErrorCode::NotReady,
                            "snmf: rank estimation found a zero matrix");
        }
      }
      entry->session->set_rank(rank);
      entry->rank = rank;
    } catch (...) {
      entry->session.reset();
      throw;
    }
  } else {
    snmf_resumes_.fetch_add(1, std::memory_order_relaxed);
  }

  core::AttackResponse resp;
  // First attack of a fresh session == run_snmf_attack bit for bit; later
  // calls warm-resume (same fixed point, not bitwise — which is why this
  // path requires the reuse_session opt-in).
  auto res = entry->session->attack();
  if (req.options.rank == 0) {
    res.telemetry.counters["snmf.estimated_rank"] =
        static_cast<double>(entry->rank);
  }
  res.telemetry.absorb(rec.finish());
  resp.telemetry = res.telemetry;
  resp.result = std::move(res);
  resp.status = core::AttackStatus::Ok;
  resp.error = core::ErrorCode::Ok;
  return resp;
}

// ------------------------------------------------------------------ server

struct Server::Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Serialized frame write; false (and closed-for-writing) once the peer
  /// is gone. A daemon worker delivering to a vanished client lands here
  /// harmlessly — the job itself already ran to completion.
  bool send(FrameType type, const std::vector<std::uint8_t>& payload) {
    std::lock_guard<std::mutex> lk(write_mu);
    if (!open.load(std::memory_order_relaxed)) return false;
    if (!send_frame(fd, type, payload)) {
      open.store(false, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

Server::Server(Daemon& daemon, ServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {
  sockaddr_un addr{};
  if (options_.socket_path.empty()) {
    throw InvalidArgument("svc: server requires a socket path");
  }
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("svc: socket path too long: " + options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw io::IoError(std::string("svc: socket(): ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io::IoError("svc: bind(" + options_.socket_path +
                      "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io::IoError(std::string("svc: listen(): ") + std::strerror(err));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down by stop()
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;  // conn destructor closes the fd
    connections_.push_back(conn);
    handlers_.emplace_back([this, conn] { handle_connection(conn); });
  }
}

void Server::handle_connection(const std::shared_ptr<Connection>& conn) {
  try {
    for (;;) {
      auto frame = recv_frame(conn->fd, options_.max_frame_bytes);
      if (!frame) return;  // clean disconnect at a frame boundary
      switch (frame->type) {
        case FrameType::Submit: {
          WireReader r(frame->payload);
          JobOptions jopts = decode_job_options(r);
          core::AttackRequest req = decode_request(r);
          r.expect_end("svc submit frame");
          // Accepted must precede Result on the wire even when the daemon
          // delivers synchronously (queue-full refusal) or a worker
          // finishes before submit() returns — both deliver paths and the
          // handler race through this once-guard with the same id.
          auto accept_once = std::make_shared<std::once_flag>();
          auto send_accepted = [conn, accept_once](std::uint64_t id) {
            std::call_once(*accept_once, [&] {
              WireWriter w;
              w.u64(id);
              conn->send(FrameType::Accepted, w.bytes());
            });
          };
          const auto id = daemon_.submit(
              std::move(req), jopts,
              [conn, send_accepted](std::uint64_t job_id,
                                    core::AttackResponse&& resp) {
                send_accepted(job_id);
                conn->send(FrameType::Result,
                           build_result_payload(job_id, resp));
              });
          send_accepted(id);
          break;
        }
        case FrameType::Cancel: {
          WireReader r(frame->payload);
          const std::uint64_t id = r.u64();
          r.expect_end("svc cancel frame");
          const bool hit = daemon_.cancel(id);
          WireWriter w;
          w.u64(id);
          w.u8(hit ? 1 : 0);
          conn->send(FrameType::CancelAck, w.bytes());
          break;
        }
        case FrameType::Ping: {
          conn->send(FrameType::Pong, {});
          break;
        }
        case FrameType::Shutdown: {
          conn->send(FrameType::ShutdownAck, {});
          {
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          return;
        }
        default:
          throw io::IoError("svc: unexpected frame type " +
                            std::to_string(static_cast<std::uint32_t>(
                                frame->type)));
      }
    }
  } catch (const std::exception& e) {
    // Malformed input: decode state past the first bad byte is unknowable,
    // so answer (best effort) and drop only this connection.
    WireWriter w;
    w.str(e.what());
    conn->send(FrameType::ProtocolError, w.bytes());
    conn->open.store(false, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  shutdown_cv_.wait(lk, [this] { return shutdown_requested_ || stopped_; });
}

void Server::stop() {
  std::vector<std::thread> handlers;
  bool was_stopped = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    was_stopped = stopped_;
    if (!stopped_) {
      stopped_ = true;
      shutdown_requested_ = true;
      // shutdown() unblocks accept()/recv() on Linux; the fds are closed
      // after the threads holding them have been joined.
      if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
      for (const auto& weak : connections_) {
        if (auto conn = weak.lock()) {
          conn->open.store(false, std::memory_order_relaxed);
          ::shutdown(conn->fd, SHUT_RDWR);
        }
      }
    }
    handlers.swap(handlers_);
  }
  shutdown_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!was_stopped) ::unlink(options_.socket_path.c_str());
}

}  // namespace aspe::svc
