#include "nmf/nnls.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"

namespace aspe::nmf {

using linalg::ConstVecView;
using linalg::Matrix;
using linalg::VecView;
using linalg::dot;

void NnlsWorkspace::clear() {
  passive_.clear();
  std::fill(in_passive_.begin(), in_passive_.end(), false);
}

void NnlsWorkspace::seed_from_support(ConstVecView x) {
  passive_.clear();
  in_passive_.assign(x.size(), false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0) {
      passive_.push_back(i);
      in_passive_[i] = true;
    }
  }
}

void NnlsWorkspace::ensure_capacity(std::size_t k, std::size_t n) {
  if (l_.rows() >= k) return;
  // Geometric growth, clamped to the Gram dimension (the support can never
  // exceed it). Valid rows are preserved; refactor_from recomputes the rest.
  const std::size_t cap =
      std::min(std::max({k, 2 * l_.rows(), std::size_t{8}}), n);
  Matrix grown(cap, cap, 0.0);
  for (std::size_t i = 0; i < l_.rows(); ++i) {
    const double* src = l_.row_ptr(i);
    std::copy(src, src + i + 1, grown.row_ptr(i));
  }
  l_ = std::move(grown);
}

void NnlsWorkspace::refactor_from(const Matrix& g, std::size_t from) {
  const std::size_t k = passive_.size();
  ensure_capacity(k, g.rows());
  // Same per-entry arithmetic as linalg::Cholesky, computed row-wise so a
  // partial pass is exactly the suffix of a full factorization.
  for (std::size_t i = from; i < k; ++i) {
    const std::size_t gi = passive_[i];
    for (std::size_t j = 0; j < i; ++j) {
      const double s = g(gi, passive_[j]) - dot(l_.row_view(i).subvec(0, j),
                                                l_.row_view(j).subvec(0, j));
      l_(i, j) = s / l_(j, j);
    }
    const ConstVecView row = l_.row_view(i).subvec(0, i);
    const double diag = g(gi, gi) - dot(row, row);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      throw NumericalError(
          "nnls_gram: passive Gram block is not positive definite");
    }
    l_(i, i) = std::sqrt(diag);
  }
  factor_rows_ += k - from;
}

void NnlsWorkspace::solve_passive(ConstVecView f) {
  const std::size_t k = passive_.size();
  z_.resize(k);
  const ConstVecView zv(z_);
  // L y = f_P
  for (std::size_t i = 0; i < k; ++i) {
    const double s =
        f[passive_[i]] - dot(l_.row_view(i).subvec(0, i), zv.subvec(0, i));
    z_[i] = s / l_(i, i);
  }
  // L^T z = y (columns of L read through strided views)
  for (std::size_t ii = k; ii-- > 0;) {
    const std::size_t tail = k - ii - 1;
    const double s = z_[ii] - dot(l_.col_view(ii).subvec(ii + 1, tail),
                                  zv.subvec(ii + 1, tail));
    z_[ii] = s / l_(ii, ii);
  }
}

void nnls_gram(const Matrix& g, ConstVecView f, VecView x, NnlsWorkspace& ws,
               const NnlsOptions& options) {
  require(g.rows() == g.cols(), "nnls_gram: Gram matrix must be square");
  require(f.size() == g.rows() && x.size() == g.rows(),
          "nnls_gram: dimension mismatch");
  const std::size_t n = g.rows();
  const std::size_t max_outer = options.max_outer_iterations > 0
                                    ? options.max_outer_iterations
                                    : 3 * n + 30;
  ws.outer_iterations_ = 0;
  ws.factor_rows_ = 0;
  ws.set_reused_ = false;

  // A workspace carried over from a different problem size starts cold.
  if (!ws.passive_.empty() &&
      (ws.in_passive_.size() != n || ws.passive_.back() >= n)) {
    ws.passive_.clear();
  }
  if (ws.in_passive_.size() != n) ws.in_passive_.assign(n, false);

  // Scale-aware dual tolerance.
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(f[i]));
  const double tol = options.tol * scale;

  bool warm = !ws.passive_.empty();
  bool have_z = false;
  if (warm) {
    // The Gram matrix changed since the set was recorded (ANLS updates the
    // other factor between half-steps): refactor the inherited passive
    // block against the new G before trusting it. A non-SPD block (possible
    // when the new G shrank the well-conditioned cone) abandons the warm
    // start instead of failing the solve.
    try {
      ws.refactor_from(g, 0);
      ws.solve_passive(f);
      have_z = true;
      // Off-support entries must be exactly zero; the support keeps the
      // caller's previous values as the feasible start of the inner loop.
      for (std::size_t i = 0; i < n; ++i) {
        if (!ws.in_passive_[i]) x[i] = 0.0;
      }
    } catch (const NumericalError&) {
      ws.clear();
      warm = false;
    }
  }
  ws.warm_started_ = warm;
  if (!warm) {
    for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
  }
  const std::vector<std::size_t> inherited = ws.passive_;

  auto write_solution = [&] {
    for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
    for (std::size_t a = 0; a < ws.passive_.size(); ++a) {
      x[ws.passive_[a]] = ws.z_[a];
    }
  };

  // Inner loop: restore primal feasibility of the passive LS solution.
  // Returns with x holding the (feasible) passive solution.
  auto run_inner = [&](bool z_ready) {
    for (std::size_t inner = 0; inner < 4 * n + 40; ++inner) {
      if (!z_ready) ws.solve_passive(f);
      z_ready = false;
      double alpha = 1.0;
      bool all_positive = true;
      for (std::size_t a = 0; a < ws.passive_.size(); ++a) {
        if (ws.z_[a] > 0.0) continue;
        all_positive = false;
        const std::size_t j = ws.passive_[a];
        const double denom = x[j] - ws.z_[a];
        if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
      }
      if (all_positive) {
        write_solution();
        return;
      }
      // Step toward z until the first passive variable hits zero. Step
      // values are staged in a buffer because x is zeroed before writing.
      ws.step_.resize(ws.passive_.size());
      for (std::size_t a = 0; a < ws.passive_.size(); ++a) {
        const std::size_t j = ws.passive_[a];
        ws.step_[a] = x[j] + alpha * (ws.z_[a] - x[j]);
      }
      for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
      for (std::size_t a = 0; a < ws.passive_.size(); ++a) {
        x[ws.passive_[a]] = ws.step_[a];
      }
      // Drop passive variables that became (numerically) zero; the factor
      // stays valid above the lowest removed position.
      std::vector<std::size_t> next;
      next.reserve(ws.passive_.size());
      std::size_t lowest_removed = ws.passive_.size();
      for (std::size_t a = 0; a < ws.passive_.size(); ++a) {
        const std::size_t j = ws.passive_[a];
        if (x[j] > 1e-12) {
          next.push_back(j);
        } else {
          x[j] = 0.0;
          ws.in_passive_[j] = false;
          lowest_removed = std::min(lowest_removed, next.size());
        }
      }
      if (lowest_removed < ws.passive_.size()) {
        ws.passive_ = std::move(next);
        ws.refactor_from(g, lowest_removed);
      }
      if (ws.passive_.empty()) return;
    }
  };

  if (have_z) {
    bool feasible = true;
    for (double z : ws.z_) feasible = feasible && z > 0.0;
    if (feasible) {
      write_solution();
    } else {
      run_inner(true);
    }
  }

  ws.w_.resize(n);
  for (std::size_t outer = 0; outer < max_outer; ++outer) {
    ws.outer_iterations_ = outer + 1;
    // Dual w = f - G x.
    for (std::size_t j = 0; j < n; ++j) ws.w_[j] = f[j];
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i] == 0.0) continue;
      const double xi = x[i];
      const double* gi = g.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) ws.w_[j] -= gi[j] * xi;
    }
    // Most positive dual among active (zero) variables.
    std::size_t enter = n;
    double best = tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (ws.in_passive_[j]) continue;
      if (ws.w_[j] > best) {
        best = ws.w_[j];
        enter = j;
      }
    }
    if (enter == n) break;  // KKT satisfied
    ws.in_passive_[enter] = true;
    // Sorted insertion keeps the factor canonical; only rows from the
    // insertion position down need recomputing.
    const auto pos =
        std::lower_bound(ws.passive_.begin(), ws.passive_.end(), enter);
    const std::size_t p =
        static_cast<std::size_t>(pos - ws.passive_.begin());
    ws.passive_.insert(pos, enter);
    ws.refactor_from(g, p);
    run_inner(false);
  }
  ws.set_reused_ = warm && ws.passive_ == inherited;
}

void nnls_gram(const Matrix& g, ConstVecView f, VecView x,
               const NnlsOptions& options) {
  NnlsWorkspace ws;
  nnls_gram(g, f, x, ws, options);
}

Vec nnls_gram(const Matrix& g, const Vec& f, const NnlsOptions& options) {
  Vec x(g.rows(), 0.0);
  nnls_gram(g, ConstVecView(f), VecView(x), options);
  return x;
}

Vec nnls(const Matrix& a, const Vec& b, const NnlsOptions& options) {
  require(a.rows() == b.size(), "nnls: dimension mismatch");
  const std::size_t n = a.cols();
  Matrix g(n, n, 0.0);
  linalg::gemm(1.0, a.cview(), linalg::Op::Transpose, a.cview(),
               linalg::Op::None, 0.0, g.view());
  const Vec f = a.apply_transposed(b);
  Vec x(n, 0.0);
  nnls_gram(g, ConstVecView(f), VecView(x), options);
  return x;
}

}  // namespace aspe::nmf
