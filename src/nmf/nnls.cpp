#include "nmf/nnls.hpp"

#include <cmath>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"

namespace aspe::nmf {

using linalg::Cholesky;
using linalg::ConstVecView;
using linalg::Matrix;
using linalg::VecView;

namespace {

/// Solve G_PP z_P = f_P restricted to the passive set.
Vec solve_passive(const Matrix& g, ConstVecView f,
                  const std::vector<std::size_t>& passive) {
  const std::size_t k = passive.size();
  Matrix gpp(k, k);
  Vec fp(k);
  for (std::size_t a = 0; a < k; ++a) {
    fp[a] = f[passive[a]];
    for (std::size_t b = 0; b < k; ++b) {
      gpp(a, b) = g(passive[a], passive[b]);
    }
  }
  return Cholesky(gpp).solve(fp);
}

}  // namespace

void nnls_gram(const Matrix& g, ConstVecView f, VecView x,
               const NnlsOptions& options) {
  require(g.rows() == g.cols(), "nnls_gram: Gram matrix must be square");
  require(f.size() == g.rows() && x.size() == g.rows(),
          "nnls_gram: dimension mismatch");
  const std::size_t n = g.rows();
  const std::size_t max_outer = options.max_outer_iterations > 0
                                    ? options.max_outer_iterations
                                    : 3 * n + 30;

  for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
  std::vector<bool> in_passive(n, false);
  std::vector<std::size_t> passive;
  Vec w(n);             // dual, reused across outer iterations
  Vec step;             // per-passive-var step values (inner loop)
  step.reserve(n);

  // Scale-aware dual tolerance.
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(f[i]));
  const double tol = options.tol * scale;

  for (std::size_t outer = 0; outer < max_outer; ++outer) {
    // Dual w = f - G x.
    for (std::size_t j = 0; j < n; ++j) w[j] = f[j];
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i] == 0.0) continue;
      const double xi = x[i];
      const double* gi = g.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) w[j] -= gi[j] * xi;
    }
    // Most positive dual among active (zero) variables.
    std::size_t enter = n;
    double best = tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (in_passive[j]) continue;
      if (w[j] > best) {
        best = w[j];
        enter = j;
      }
    }
    if (enter == n) break;  // KKT satisfied
    in_passive[enter] = true;
    passive.push_back(enter);

    // Inner loop: restore primal feasibility of the passive LS solution.
    for (std::size_t inner = 0; inner < 4 * n + 40; ++inner) {
      Vec z = solve_passive(g, f, passive);
      double alpha = 1.0;
      bool all_positive = true;
      for (std::size_t a = 0; a < passive.size(); ++a) {
        if (z[a] > 0.0) continue;
        all_positive = false;
        const std::size_t j = passive[a];
        const double denom = x[j] - z[a];
        if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
      }
      if (all_positive) {
        for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
        for (std::size_t a = 0; a < passive.size(); ++a) {
          x[passive[a]] = z[a];
        }
        break;
      }
      // Step toward z until the first passive variable hits zero. Step
      // values are staged in a buffer because x is zeroed before writing.
      step.resize(passive.size());
      for (std::size_t a = 0; a < passive.size(); ++a) {
        const std::size_t j = passive[a];
        step[a] = x[j] + alpha * (z[a] - x[j]);
      }
      for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
      for (std::size_t a = 0; a < passive.size(); ++a) {
        x[passive[a]] = step[a];
      }
      // Drop passive variables that became (numerically) zero.
      std::vector<std::size_t> next;
      next.reserve(passive.size());
      for (auto j : passive) {
        if (x[j] > 1e-12) {
          next.push_back(j);
        } else {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(next);
      if (passive.empty()) break;
    }
  }
}

Vec nnls_gram(const Matrix& g, const Vec& f, const NnlsOptions& options) {
  Vec x(g.rows(), 0.0);
  nnls_gram(g, ConstVecView(f), VecView(x), options);
  return x;
}

Vec nnls(const Matrix& a, const Vec& b, const NnlsOptions& options) {
  require(a.rows() == b.size(), "nnls: dimension mismatch");
  const std::size_t n = a.cols();
  Matrix g(n, n, 0.0);
  linalg::gemm(1.0, a.cview(), linalg::Op::Transpose, a.cview(),
               linalg::Op::None, 0.0, g.view());
  const Vec f = a.apply_transposed(b);
  Vec x(n, 0.0);
  nnls_gram(g, ConstVecView(f), VecView(x), options);
  return x;
}

}  // namespace aspe::nmf
