#include "nmf/nmf.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "linalg/svd.hpp"
#include "linalg/truncated_svd.hpp"
#include "nmf/nnls.hpp"
#include "obs/obs.hpp"
#include "par/parallel.hpp"

namespace aspe::nmf {

using linalg::Matrix;
using linalg::Op;

namespace {

// Loops below this many scalar operations run serially; the pool dispatch
// costs more than it saves on the small factors of the unit tests.
constexpr std::size_t kParallelWorkThreshold = std::size_t{1} << 16;

// Inputs whose small side is below this run NNDSVD through the full Jacobi
// SVD; above it the randomized truncated path wins (same crossover as
// core::estimate_latent_dimension).
constexpr std::size_t kTruncatedInitMinDim = 128;

/// parallel_for with a work gate: fans out only when count * work_per_item
/// justifies it. Every call site writes disjoint state per index, so the
/// parallel and serial paths are bit-identical.
template <class Fn>
void for_each_index(std::size_t count, std::size_t work_per_item,
                    std::size_t threads, Fn&& fn) {
  if (count > 1 && count * work_per_item >= kParallelWorkThreshold) {
    const std::size_t grain = std::max<std::size_t>(
        1, kParallelWorkThreshold / std::max<std::size_t>(work_per_item, 1));
    par::parallel_for(0, count, grain, fn, threads);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

/// G = M M^T for a d x k matrix M (result d x d), via the shared syrk-style
/// gram kernel (upper triangle mirrored, rows parallelized).
Matrix gram_rows(const Matrix& m, std::size_t threads) {
  Matrix g(m.rows(), m.rows());
  linalg::gram(m.cview(), g.view(), threads);
  return g;
}

/// Penalty terms of Eq. (18): eta/2 ||W||_F^2 + lambda/2 sum_j ||h_j||_1^2.
double penalty(const Matrix& w, const Matrix& h, double eta, double lambda) {
  double wfro = 0.0;
  for (auto x : w.data()) wfro += x * x;
  double l1sq = 0.0;
  for (std::size_t j = 0; j < h.cols(); ++j) {
    double colsum = 0.0;
    for (std::size_t k = 0; k < h.rows(); ++k) colsum += h(k, j);
    l1sq += colsum * colsum;
  }
  return 0.5 * eta * wfro + 0.5 * lambda * l1sq;
}

/// Eq. (18) via the Gram identity
///   ||R - W^T H||_F^2 = ||R||_F^2 - 2 <F, W> + <W W^T, H H^T>,  F = H R^T,
/// O(d^2 (m + n)) given F, against the naive O(m n d) residual sweep. F is
/// a by-product of both the ANLS W-half-step and the MU W-numerator, so
/// per-iteration convergence checks get it for free. The small clamp
/// absorbs the cancellation roundoff that can push an (exactly tiny) fit a
/// hair negative.
double objective_from_gram(double r_fro2, const Matrix& f_w, const Matrix& w,
                           const Matrix& h, double eta, double lambda,
                           double* fit_error, std::size_t threads) {
  double cross = 0.0;
  {
    const auto& fd = f_w.data();
    const auto& wd = w.data();
    for (std::size_t i = 0; i < fd.size(); ++i) cross += fd[i] * wd[i];
  }
  const Matrix gw = gram_rows(w, threads);
  const Matrix gh = gram_rows(h, threads);
  double quad = 0.0;
  {
    const auto& a = gw.data();
    const auto& b = gh.data();
    for (std::size_t i = 0; i < a.size(); ++i) quad += a[i] * b[i];
  }
  const double fit = std::max(0.0, r_fro2 - 2.0 * cross + quad);
  if (fit_error != nullptr) *fit_error = std::sqrt(fit);
  return 0.5 * fit + penalty(w, h, eta, lambda);
}

/// Batch NNLS statistics of one ANLS half-step, summed serially after the
/// parallel column loop (the per-column numbers live in the workspaces).
struct NnlsBatchStats {
  double solves = 0.0;
  double warm_starts = 0.0;
  double warm_hits = 0.0;

  void absorb(const std::vector<NnlsWorkspace>& ws) {
    solves += static_cast<double>(ws.size());
    for (const auto& w : ws) {
      warm_starts += w.warm_started() ? 1.0 : 0.0;
      warm_hits += w.passive_set_reused() ? 1.0 : 0.0;
    }
  }
};

/// ANLS half step: solve for H in min ||R - W^T H|| + lambda L1^2 columns.
/// Gram trick: G = W W^T + lambda * ones, F = W R.
void update_h_anls(const Matrix& r, const Matrix& w, Matrix& h, double lambda,
                   std::size_t threads, std::vector<NnlsWorkspace>& ws,
                   bool warm, NnlsBatchStats& stats) {
  const std::size_t d = w.rows();
  Matrix g = gram_rows(w, threads);
  for (auto& x : g.data()) x += lambda;
  // Tiny ridge keeps principal submatrices SPD when W rows are degenerate.
  for (std::size_t k = 0; k < d; ++k) g(k, k) += 1e-10;
  // F = W R  (d x n) through the blocked gemm kernel.
  const std::size_t n = r.cols();
  Matrix f(d, n);
  linalg::gemm(1.0, w.cview(), Op::None, r.cview(), Op::None, 0.0, f.view(),
               threads);
  // Columns of H are independent NNLS solves — the ANLS hot spot. The view
  // form reads f's column and writes h's column in place: no per-column
  // Vec copies in the loop. Each column owns its workspace, so the warm
  // state threads through the parallel loop without sharing.
  obs::counter_add("nmf.nnls_solves", static_cast<double>(n));
  for_each_index(n, d * d * d + d * d, threads, [&](std::size_t j) {
    if (!warm) ws[j].clear();
    nnls_gram(g, f.col_view(j), h.col_view(j), ws[j]);
  });
  stats.absorb(ws);
}

/// ANLS half step for W: min ||R^T - H^T W|| + eta ||W||^2.
/// Gram: G = H H^T + eta I, F = H R^T. F depends only on (H, R), both
/// fixed for the rest of the iteration, so it is exported through f_w for
/// the objective evaluation that follows.
void update_w_anls(const Matrix& r, Matrix& w, const Matrix& h, double eta,
                   std::size_t threads, std::vector<NnlsWorkspace>& ws,
                   bool warm, NnlsBatchStats& stats, Matrix& f_w) {
  const std::size_t d = h.rows();
  Matrix g = gram_rows(h, threads);
  for (std::size_t k = 0; k < d; ++k) g(k, k) += eta + 1e-10;
  // F = H R^T (d x m): transposition is an op flag into gemm, not a copy.
  const std::size_t m = r.rows();
  if (f_w.rows() != d || f_w.cols() != m) f_w = Matrix(d, m);
  linalg::gemm(1.0, h.cview(), Op::None, r.cview(), Op::Transpose, 0.0,
               f_w.view(), threads);
  obs::counter_add("nmf.nnls_solves", static_cast<double>(m));
  for_each_index(m, d * d * d + d * d, threads, [&](std::size_t i) {
    if (!warm) ws[i].clear();
    nnls_gram(g, f_w.col_view(i), w.col_view(i), ws[i]);
  });
  stats.absorb(ws);
}

/// Multiplicative updates for the same objective. The W-step numerator is
/// H R^T with the already-updated H — exactly the F the objective needs —
/// so it is computed straight into f_w.
void update_mu(const Matrix& r, Matrix& w, Matrix& h, double eta,
               double lambda, std::size_t threads, Matrix& f_w) {
  constexpr double kEps = 1e-12;
  const std::size_t d = w.rows();
  const std::size_t m = w.cols();
  const std::size_t n = h.cols();

  // H <- H .* (W R) ./ (W W^T H + lambda * ones * H + eps)
  {
    Matrix wwt = gram_rows(w, threads);
    Matrix numer(d, n);
    linalg::gemm(1.0, w.cview(), Op::None, r.cview(), Op::None, 0.0,
                 numer.view(), threads);
    Matrix denom(d, n);
    linalg::gemm(1.0, wwt.cview(), Op::None, h.cview(), Op::None, 0.0,
                 denom.view(), threads);
    // + lambda * (column sums of H broadcast to every row)
    for_each_index(n, 2 * d, threads, [&](std::size_t j) {
      double colsum = 0.0;
      for (std::size_t k = 0; k < d; ++k) colsum += h(k, j);
      for (std::size_t k = 0; k < d; ++k) denom(k, j) += lambda * colsum;
    });
    for_each_index(d, n, threads, [&](std::size_t k) {
      for (std::size_t j = 0; j < n; ++j) {
        h(k, j) *= numer(k, j) / (denom(k, j) + kEps);
      }
    });
  }

  // W <- W .* (H R^T) ./ (H H^T W + eta W + eps)
  {
    Matrix hht = gram_rows(h, threads);
    if (f_w.rows() != d || f_w.cols() != m) f_w = Matrix(d, m);
    linalg::gemm(1.0, h.cview(), Op::None, r.cview(), Op::Transpose, 0.0,
                 f_w.view(), threads);
    Matrix denom(d, m);
    linalg::gemm(1.0, hht.cview(), Op::None, w.cview(), Op::None, 0.0,
                 denom.view(), threads);
    for_each_index(d, m, threads, [&](std::size_t k) {
      for (std::size_t i = 0; i < m; ++i) {
        denom(k, i) += eta * w(k, i);
        w(k, i) *= f_w(k, i) / (denom(k, i) + kEps);
      }
    });
  }
}

/// Combine the leading singular triplets (left/right in the factored
/// orientation, i.e. after any transpose swap) into the NNDSVD seed.
void nndsvd_from_triplets(const Matrix& left, const Matrix& right,
                          const Vec& sing, std::size_t rank, bool transposed,
                          Matrix& w, Matrix& h, double fill) {
  const std::size_t m = w.cols();
  const std::size_t n = h.cols();
  const std::size_t k_avail = sing.size();

  for (auto& x : w.data()) x = fill;
  for (auto& x : h.data()) x = fill;

  for (std::size_t t = 0; t < std::min(rank, k_avail); ++t) {
    // Split the t-th pair into positive/negative parts.
    Vec up(left.rows()), un(left.rows());
    for (std::size_t i = 0; i < left.rows(); ++i) {
      up[i] = std::max(left(i, t), 0.0);
      un[i] = std::max(-left(i, t), 0.0);
    }
    Vec vp(right.rows()), vn(right.rows());
    for (std::size_t i = 0; i < right.rows(); ++i) {
      vp[i] = std::max(right(i, t), 0.0);
      vn[i] = std::max(-right(i, t), 0.0);
    }
    auto norm = [](const Vec& v) {
      double s = 0.0;
      for (double x : v) s += x * x;
      return std::sqrt(s);
    };
    const double mp = norm(up) * norm(vp);
    const double mn = norm(un) * norm(vn);
    const Vec& lu = mp >= mn ? up : un;
    const Vec& rv = mp >= mn ? vp : vn;
    const double mass = std::max(mp >= mn ? mp : mn, 1e-300);
    const double scale = std::sqrt(sing[t] * mass);
    const double lu_norm = std::max(norm(lu), 1e-300);
    const double rv_norm = std::max(norm(rv), 1e-300);
    // Row t of W spans the record axis (length m), row t of H the trapdoor
    // axis (length n); undo the transpose swap.
    for (std::size_t i = 0; i < m; ++i) {
      const double val = transposed ? rv[i] / rv_norm : lu[i] / lu_norm;
      w(t, i) += scale * val;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double val = transposed ? lu[j] / lu_norm : rv[j] / rv_norm;
      h(t, j) += scale * val;
    }
  }
}

/// NNDSVD: seed (W, H) from the leading singular triplets of R, keeping the
/// dominant sign pattern of each rank-1 term (Boutsidis & Gallopoulos 2008,
/// the "NNDSVDa"-style epsilon fill so multiplicative updates can escape
/// exact zeros). W is d x m, H is d x n with R ~= W^T H. Only the leading
/// `rank` triplets are ever read, so on large inputs the randomized
/// truncated SVD computes exactly what is needed instead of the full
/// spectrum.
void nndsvd_init(const Matrix& r, std::size_t rank, Matrix& w, Matrix& h,
                 double fill, bool truncated) {
  const std::size_t m = r.rows();
  const std::size_t n = r.cols();
  // Svd needs rows >= cols; factor R or R^T accordingly and swap roles. The
  // transpose is an op flag into the view constructor, not a materialized
  // temporary.
  const bool transposed = m < n;
  const Op op = transposed ? Op::Transpose : Op::None;

  if (truncated && std::min(m, n) >= kTruncatedInitMinDim &&
      rank + 8 < std::min(m, n)) {
    obs::Span span("svd/truncated");
    linalg::TruncatedSvdOptions o;
    o.rank = rank;
    // Fixed stream: NNDSVD stays a deterministic function of (R, rank),
    // independent of any caller RNG, like the full-SVD path.
    o.seed = 0x9e3779b97f4a7c15ull;
    const linalg::TruncatedSvd tsvd(r.cview(), op, o);
    if (tsvd.jacobi_converged()) {
      nndsvd_from_triplets(tsvd.u(), tsvd.v(), tsvd.singular_values(), rank,
                           transposed, w, h, fill);
      return;
    }
    // Unconverged projected Jacobi (pathological): fall through to the
    // full factorization below.
  }
  obs::Span span("svd/full");
  const linalg::Svd svd(r.cview(), op);
  // After the swap: left singular vectors correspond to rows of length
  // max(m, n); map them back to the record side / trapdoor side.
  nndsvd_from_triplets(svd.u(), svd.v(), svd.singular_values(), rank,
                       transposed, w, h, fill);
}

}  // namespace

NmfInit nmf_initialize(const Matrix& r, std::size_t rank,
                       const SparseNmfOptions& options, rng::Rng& rng) {
  require(rank > 0, "sparse_nmf: rank must be positive");
  require(r.rows() > 0 && r.cols() > 0, "sparse_nmf: empty input");
  for (auto x : r.data()) {
    require(x >= 0.0, "sparse_nmf: input matrix must be non-negative");
  }
  const std::size_t m = r.rows();
  const std::size_t n = r.cols();

  double mean = 0.0;
  for (auto x : r.data()) mean += x;
  mean /= static_cast<double>(m * n);
  const double init_scale =
      std::sqrt(std::max(mean, 1e-6) / static_cast<double>(rank));
  NmfInit init;
  init.w = Matrix(rank, m);
  init.h = Matrix(rank, n);
  if (options.init == Initialization::Nndsvd) {
    // Deterministic SVD-based seed; the epsilon fill keeps multiplicative
    // updates from locking onto exact zeros.
    nndsvd_init(r, rank, init.w, init.h, 0.01 * init_scale,
                options.truncated_init);
  } else {
    // Random non-negative init scaled so W^T H matches R's mean magnitude.
    for (auto& x : init.w.data()) x = rng.uniform(0.0, 1.0) * init_scale;
    for (auto& x : init.h.data()) x = rng.uniform(0.0, 1.0) * init_scale;
  }
  return init;
}

NmfResult sparse_nmf_from_init(const Matrix& r, std::size_t rank,
                               const SparseNmfOptions& options, NmfInit init,
                               std::size_t threads) {
  require(rank > 0 && init.w.rows() == rank && init.h.rows() == rank,
          "sparse_nmf_from_init: init rank mismatch");
  require(init.w.cols() == r.rows() && init.h.cols() == r.cols(),
          "sparse_nmf_from_init: init shape mismatch");

  NmfResult result;
  result.w = std::move(init.w);
  result.h = std::move(init.h);

  obs::Span run_span("nmf/run");
  const bool anls = options.algorithm == Algorithm::Anls;
  const bool warm = anls && options.warm_start;

  double r_fro2 = 0.0;
  for (auto x : r.data()) r_fro2 += x * x;

  // Per-column warm-start state, persisted across outer iterations (H
  // columns and W columns are distinct NNLS problem families).
  std::vector<NnlsWorkspace> ws_h(anls ? r.cols() : 0);
  std::vector<NnlsWorkspace> ws_w(anls ? r.rows() : 0);
  NnlsBatchStats stats;
  if (warm && options.resume_from_init) {
    // The init is a near-solution (sparse_nmf_resume): arm every column's
    // warm start with its support, so even the first half-steps refactor an
    // inherited passive set instead of rebuilding it from zero.
    for (std::size_t j = 0; j < ws_h.size(); ++j) {
      ws_h[j].seed_from_support(result.h.col_view(j));
    }
    for (std::size_t i = 0; i < ws_w.size(); ++i) {
      ws_w[i].seed_from_support(result.w.col_view(i));
    }
  }

  // F = H R^T, maintained by every update step for the objective below.
  Matrix f_w(rank, r.rows());
  linalg::gemm(1.0, result.h.cview(), Op::None, r.cview(), Op::Transpose, 0.0,
               f_w.view(), threads);

  double prev_obj = objective_from_gram(r_fro2, f_w, result.w, result.h,
                                        options.eta, options.lambda, nullptr,
                                        threads);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (anls) {
      update_h_anls(r, result.w, result.h, options.lambda, threads, ws_h,
                    warm, stats);
      update_w_anls(r, result.w, result.h, options.eta, threads, ws_w, warm,
                    stats, f_w);
    } else {
      update_mu(r, result.w, result.h, options.eta, options.lambda, threads,
                f_w);
    }
    obs::counter_add(anls ? "nmf.anls_iterations" : "nmf.mu_iterations", 1.0);
    result.iterations = it + 1;
    const double obj =
        objective_from_gram(r_fro2, f_w, result.w, result.h, options.eta,
                            options.lambda, nullptr, threads);
    if (std::abs(prev_obj - obj) <=
        options.rel_tol * std::max(1.0, std::abs(prev_obj))) {
      prev_obj = obj;
      break;
    }
    prev_obj = obj;
  }
  result.objective =
      objective_from_gram(r_fro2, f_w, result.w, result.h, options.eta,
                          options.lambda, &result.fit_error, threads);
  if (obs::enabled() && stats.solves > 0.0) {
    obs::counter_add("nnls.solves", stats.solves);
    obs::counter_add("nnls.warm_starts", stats.warm_starts);
    obs::counter_add("nnls.warm_hits", stats.warm_hits);
    // Fraction of solves that finished on the inherited passive set — the
    // quantity that predicts the warm-start payoff for this input.
    obs::gauge_set("nmf.passive_reuse_rate", stats.warm_hits / stats.solves);
  }
  return result;
}

NmfResult sparse_nmf(const Matrix& r, std::size_t rank,
                     const SparseNmfOptions& options, rng::Rng& rng) {
  return sparse_nmf_from_init(r, rank, options,
                              nmf_initialize(r, rank, options, rng));
}

NmfResult sparse_nmf_resume(const Matrix& r, std::size_t rank,
                            const SparseNmfOptions& options,
                            const NmfResult& prev, std::size_t threads) {
  require(rank > 0 && prev.w.rows() == rank && prev.h.rows() == rank,
          "sparse_nmf_resume: rank mismatch with previous factorization");
  const std::size_t m_old = prev.w.cols();
  const std::size_t n_old = prev.h.cols();
  require(m_old > 0 && n_old > 0,
          "sparse_nmf_resume: empty previous factorization");
  require(r.rows() >= m_old && r.cols() >= n_old,
          "sparse_nmf_resume: input shrank below previous factorization");
  const std::size_t m = r.rows();
  const std::size_t n = r.cols();

  obs::Span span("nmf/resume");

  NmfInit init;
  init.w = Matrix(rank, m);
  init.h = Matrix(rank, n);
  for (std::size_t k = 0; k < rank; ++k) {
    std::copy_n(prev.w.row_ptr(k), m_old, init.w.row_ptr(k));
    std::copy_n(prev.h.row_ptr(k), n_old, init.h.row_ptr(k));
  }

  // New H columns — one per appended column of R — from an NNLS projection
  // against the carried W. The fresh W columns are still zero here, so the
  // full-matrix Gram and gemm see exactly the old factor over the old rows:
  // same G = W W^T + lambda (+ ridge) and F = W R as update_h_anls.
  if (n > n_old) {
    const std::size_t c = n - n_old;
    Matrix g = gram_rows(init.w, threads);
    for (auto& x : g.data()) x += options.lambda;
    for (std::size_t k = 0; k < rank; ++k) g(k, k) += 1e-10;
    Matrix f(rank, c);
    linalg::gemm(1.0, init.w.cview(), Op::None, r.block(0, n_old, m, c),
                 Op::None, 0.0, f.view(), threads);
    for_each_index(c, rank * rank * rank + rank * rank, threads,
                   [&](std::size_t j) {
                     NnlsWorkspace ws;
                     nnls_gram(g, f.col_view(j), init.h.col_view(n_old + j),
                               ws);
                   });
  }

  // New W columns — one per appended row of R — against the extended H:
  // G = H H^T + eta (+ ridge) I and F = H R_new^T as in update_w_anls.
  if (m > m_old) {
    const std::size_t k_new = m - m_old;
    Matrix g = gram_rows(init.h, threads);
    for (std::size_t k = 0; k < rank; ++k) g(k, k) += options.eta + 1e-10;
    Matrix f(rank, k_new);
    linalg::gemm(1.0, init.h.cview(), Op::None, r.block(m_old, 0, k_new, n),
                 Op::Transpose, 0.0, f.view(), threads);
    for_each_index(k_new, rank * rank * rank + rank * rank, threads,
                   [&](std::size_t i) {
                     NnlsWorkspace ws;
                     nnls_gram(g, f.col_view(i), init.w.col_view(m_old + i),
                               ws);
                   });
  }

  SparseNmfOptions resumed = options;
  resumed.resume_from_init = true;
  return sparse_nmf_from_init(r, rank, resumed, std::move(init), threads);
}

void balance_rows(Matrix& w, Matrix& h) {
  require(w.rows() == h.rows(), "balance_rows: rank mismatch");
  for (std::size_t k = 0; k < w.rows(); ++k) {
    double wn = 0.0, hn = 0.0;
    for (std::size_t i = 0; i < w.cols(); ++i) wn = std::max(wn, w(k, i));
    for (std::size_t j = 0; j < h.cols(); ++j) hn = std::max(hn, h(k, j));
    if (wn <= 0.0 || hn <= 0.0) continue;
    // Scale so both rows peak at the same value (geometric mean), keeping
    // the product W^T H unchanged.
    const double target = std::sqrt(wn * hn);
    const double sw = target / wn;
    for (std::size_t i = 0; i < w.cols(); ++i) w(k, i) *= sw;
    const double sh = target / hn;
    for (std::size_t j = 0; j < h.cols(); ++j) h(k, j) *= sh;
  }
}

Matrix to_binary(const Matrix& m, double theta) {
  Matrix b(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      b(i, j) = m(i, j) < theta ? 0.0 : 1.0;
    }
  }
  return b;
}

}  // namespace aspe::nmf
