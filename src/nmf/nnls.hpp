// Non-negative least squares (Lawson-Hanson active set).
//
// Kernel of the ANLS sparse-NMF solver (Kim & Park 2007, the paper's
// reference [12]): each NMF half-step is a batch of NNLS problems sharing one
// Gram matrix.
#pragma once

#include "linalg/matrix.hpp"

namespace aspe::nmf {

struct NnlsOptions {
  std::size_t max_outer_iterations = 0;  // 0 => 3 * num_vars + 30
  double tol = 1e-10;                    // dual feasibility tolerance
};

/// Solve min ||A x - b||_2, x >= 0, given the Gram matrix G = A^T A and
/// f = A^T b. G must be symmetric positive definite on every principal
/// submatrix encountered (guaranteed when A has full column rank or a ridge
/// was added).
///
/// View form: f and x may be strided matrix columns; the solution is written
/// into x in place (x is zeroed first, so it needs no initialization). f and
/// x must not alias. This is the batch entry point the ANLS solver uses —
/// one Gram matrix, one NNLS call per column, zero per-column copies.
void nnls_gram(const linalg::Matrix& g, linalg::ConstVecView f,
               linalg::VecView x, const NnlsOptions& options = {});

/// Owning convenience wrapper around the view form.
[[nodiscard]] Vec nnls_gram(const linalg::Matrix& g, const Vec& f,
                            const NnlsOptions& options = {});

/// Convenience wrapper forming G and f from A and b.
[[nodiscard]] Vec nnls(const linalg::Matrix& a, const Vec& b,
                       const NnlsOptions& options = {});

}  // namespace aspe::nmf
