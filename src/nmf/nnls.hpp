// Non-negative least squares (Lawson-Hanson active set).
//
// Kernel of the ANLS sparse-NMF solver (Kim & Park 2007, the paper's
// reference [12]): each NMF half-step is a batch of NNLS problems sharing one
// Gram matrix.
//
// Warm starts: consecutive ANLS outer iterations solve the same column
// against a slowly-moving Gram matrix, and the optimal active set barely
// changes between them. NnlsWorkspace carries each column's passive set
// (and the Cholesky factor of the passive Gram block, incrementally
// up/downdated as variables enter and leave) across calls, so iteration
// t+1 starts from iteration t's support instead of from zero.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace aspe::nmf {

struct NnlsOptions {
  std::size_t max_outer_iterations = 0;  // 0 => 3 * num_vars + 30
  double tol = 1e-10;                    // dual feasibility tolerance
};

/// Per-column state carried across nnls_gram calls.
///
/// What persists is the passive SET only — the Gram matrix is different on
/// every ANLS half-step, so the factor is rebuilt from the new G at the
/// start of each warm call (and then up/downdated incrementally while the
/// active-set loop runs). The set is kept sorted ascending, which makes the
/// factor — and therefore the returned x — a pure function of (G, f, final
/// set), independent of the order in which variables entered: a warm solve
/// and a cold solve that terminate on the same support return bit-identical
/// solutions.
class NnlsWorkspace {
 public:
  NnlsWorkspace() = default;

  /// Forget the carried passive set; the next solve starts cold.
  void clear();

  /// Adopt the support of x (its strictly positive entries) as the carried
  /// passive set, as if a previous solve had terminated on it. This is how
  /// a resumed ANLS run re-arms warm starts from a deserialized or
  /// dimension-extended factor: the next nnls_gram call on this workspace
  /// must then pass that same x, per the warm-start contract below.
  void seed_from_support(linalg::ConstVecView x);

  /// Support of the last solution, ascending.
  [[nodiscard]] const std::vector<std::size_t>& passive_set() const {
    return passive_;
  }

  // --- Statistics of the most recent nnls_gram call on this workspace.

  /// Whether the call started from a non-empty inherited passive set.
  [[nodiscard]] bool warm_started() const { return warm_started_; }
  /// Whether a warm-started call terminated on the inherited set unchanged
  /// (the KKT conditions held without any active-set move) — the "warm hit"
  /// the obs counters report.
  [[nodiscard]] bool passive_set_reused() const { return set_reused_; }
  [[nodiscard]] std::size_t outer_iterations() const {
    return outer_iterations_;
  }
  /// Cholesky rows (re)computed — the actual up/downdate work. A cold solve
  /// of a size-k support pays at least k(k+1)/2 row-updates' worth; a warm
  /// hit pays exactly k (the initial refactorization against the new G).
  [[nodiscard]] std::size_t factor_rows_computed() const {
    return factor_rows_;
  }

 private:
  friend void nnls_gram(const linalg::Matrix& g, linalg::ConstVecView f,
                        linalg::VecView x, NnlsWorkspace& workspace,
                        const NnlsOptions& options);

  void ensure_capacity(std::size_t k, std::size_t n);
  /// Recompute factor rows [from, passive_.size()) against g. Rows < from
  /// stay valid: Cholesky row i depends only on rows < i, so inserting or
  /// removing the variable at sorted position p invalidates rows >= p and
  /// nothing else. Throws NumericalError when a pivot is not positive.
  void refactor_from(const linalg::Matrix& g, std::size_t from);
  /// z_ <- G_PP^{-1} f_P via the current factor (forward + back subst).
  void solve_passive(linalg::ConstVecView f);

  std::vector<std::size_t> passive_;  // ascending
  std::vector<bool> in_passive_;
  linalg::Matrix l_;  // factor buffer; leading k x k lower triangle in use
  Vec z_;             // passive-block solution, aligned with passive_
  Vec w_;             // dual scratch
  Vec step_;          // inner-loop step scratch
  bool warm_started_ = false;
  bool set_reused_ = false;
  std::size_t outer_iterations_ = 0;
  std::size_t factor_rows_ = 0;
};

/// Solve min ||A x - b||_2, x >= 0, given the Gram matrix G = A^T A and
/// f = A^T b. G must be symmetric positive definite on every principal
/// submatrix encountered (guaranteed when A has full column rank or a ridge
/// was added).
///
/// View form: f and x may be strided matrix columns; the solution is written
/// into x in place (x is zeroed first, so it needs no initialization). f and
/// x must not alias. This is the batch entry point the ANLS solver uses —
/// one Gram matrix, one NNLS call per column, zero per-column copies.
void nnls_gram(const linalg::Matrix& g, linalg::ConstVecView f,
               linalg::VecView x, const NnlsOptions& options = {});

/// Warm-startable form. When `workspace` carries a passive set from a
/// previous call, x must hold the previous solution (its support is the
/// carried set; off-support entries are forced to zero) — exactly what an
/// ANLS column view contains between outer iterations. With an empty
/// workspace this is the cold solve above, sharing every code path.
void nnls_gram(const linalg::Matrix& g, linalg::ConstVecView f,
               linalg::VecView x, NnlsWorkspace& workspace,
               const NnlsOptions& options = {});

/// Owning convenience wrapper around the view form.
[[nodiscard]] Vec nnls_gram(const linalg::Matrix& g, const Vec& f,
                            const NnlsOptions& options = {});

/// Convenience wrapper forming G and f from A and b.
[[nodiscard]] Vec nnls(const linalg::Matrix& a, const Vec& b,
                       const NnlsOptions& options = {});

}  // namespace aspe::nmf
