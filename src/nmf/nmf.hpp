// Sparse non-negative matrix factorization.
//
// Implements the objective the paper optimizes in Algorithm 3 (Eq. 18):
//
//   min_{W>=0, H>=0}  1/2 ||R - W^T H||_F^2
//                   + eta/2 ||W||_F^2  +  lambda/2 sum_j ||h_j||_1^2
//
// where R is m x n, W is d x m (columns = indexes I_i) and H is d x n
// (columns = trapdoors T_j). Two algorithms are provided:
//   * ANLS  — alternating non-negativity-constrained least squares
//             (Kim & Park 2007, the paper's citation [12]); accurate,
//             per-iteration cost dominated by active-set NNLS solves.
//   * MU    — multiplicative updates adapted to the same objective; cheaper
//             per iteration, used for the larger benchmark settings.
#pragma once

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace aspe::nmf {

enum class Algorithm { Anls, MultiplicativeUpdate };

enum class Initialization {
  /// iid uniform entries scaled to R's magnitude (the classic default; runs
  /// differ per restart, which is what Algorithm 3's best-of-L exploits).
  Random,
  /// NNDSVD (Boutsidis & Gallopoulos 2008): deterministic initialization
  /// from the leading singular triplets of R. Faster convergence on
  /// well-conditioned inputs; restarts become pointless (deterministic).
  Nndsvd,
};

struct SparseNmfOptions {
  double eta = 0.01;     // Frobenius penalty on W
  double lambda = 0.01;  // L1^2 penalty on columns of H
  std::size_t max_iterations = 200;
  double rel_tol = 1e-5;  // stop when relative objective change is below
  Algorithm algorithm = Algorithm::Anls;
  Initialization init = Initialization::Random;
  /// ANLS only: carry each column's NNLS passive set across outer
  /// iterations (NnlsWorkspace), so iteration t+1 starts from iteration
  /// t's support instead of from zero. The warm and cold paths share every
  /// solve formula and terminate on the same KKT support for
  /// non-degenerate problems, so the factorization is bit-identical to
  /// warm_start = false — just cheaper. Disable to benchmark the cold path
  /// or to sidestep a (measure-zero) dual tie at the tolerance boundary.
  bool warm_start = true;
  /// Nndsvd only: seed from the randomized truncated SVD
  /// (linalg::TruncatedSvd, rank + oversample triplets) instead of the
  /// full Jacobi SVD when the input is large enough to profit. Falls back
  /// to the full SVD for small inputs or when the projected Jacobi fails
  /// to converge. Deterministic (fixed internal seed) like the full-SVD
  /// path, but a numerically different — equally valid — initialization.
  bool truncated_init = true;
  /// ANLS + warm_start only: treat the caller's init as a near-solution
  /// and seed every column's NNLS passive set from the init's support
  /// before the first half-step, instead of discovering the supports from
  /// zero. This is what sparse_nmf_resume sets; it changes nothing but the
  /// warm-start state, so the fixed point reached is the same.
  bool resume_from_init = false;
};

struct NmfResult {
  linalg::Matrix w;  // d x m, non-negative
  linalg::Matrix h;  // d x n, non-negative
  double objective = 0.0;   // final value of Eq. (18)
  double fit_error = 0.0;   // ||R - W^T H||_F
  std::size_t iterations = 0;
};

/// Initial (W, H) pair for one sparse-NMF run. Drawing the initialization
/// is the only step that consumes RNG state, so restarts can pre-draw their
/// inits in restart order and then optimize in parallel with results
/// bit-identical to the serial loop (see core::run_snmf_attack).
struct NmfInit {
  linalg::Matrix w;  // d x m
  linalg::Matrix h;  // d x n
};

/// Draw the initial factors for one run (Random init consumes rng; Nndsvd
/// is deterministic and leaves rng untouched). Validates r and rank.
[[nodiscard]] NmfInit nmf_initialize(const linalg::Matrix& r, std::size_t rank,
                                     const SparseNmfOptions& options,
                                     rng::Rng& rng);

/// Run the ANLS / MU iterations from a given initialization. `threads` caps
/// the width of the per-iteration parallel sections (0 = process default);
/// the result is bit-identical for any width.
[[nodiscard]] NmfResult sparse_nmf_from_init(const linalg::Matrix& r,
                                             std::size_t rank,
                                             const SparseNmfOptions& options,
                                             NmfInit init,
                                             std::size_t threads = 0);

/// One run of sparse NMF from a random non-negative initialization.
/// `rank` is the paper's d (bloom-filter length). Equivalent to
/// nmf_initialize + sparse_nmf_from_init.
[[nodiscard]] NmfResult sparse_nmf(const linalg::Matrix& r, std::size_t rank,
                                   const SparseNmfOptions& options,
                                   rng::Rng& rng);

/// Warm-restart a factorization after R grew: `prev` factored the leading
/// prev.w.cols() x prev.h.cols() block of the new r (same rank). New W / H
/// columns — one per appended row / column of R — are initialized by a
/// single NNLS projection against the carried opposite factor, then the
/// ANLS loop runs from the extended pair with every column's passive set
/// seeded from its support (resume_from_init). On an unchanged R this
/// terminates in one or two cheap verification iterations; after a small
/// append it converges in a handful, against max_iterations from scratch.
[[nodiscard]] NmfResult sparse_nmf_resume(const linalg::Matrix& r,
                                          std::size_t rank,
                                          const SparseNmfOptions& options,
                                          const NmfResult& prev,
                                          std::size_t threads = 0);

/// Rescale latent dimensions so rows of W and H carry comparable magnitude
/// (W^T H is invariant). Makes the fixed binarization threshold meaningful.
void balance_rows(linalg::Matrix& w, linalg::Matrix& h);

/// The paper's ConvertToBinaryMatrix: entries below `theta` -> 0, else 1.
[[nodiscard]] linalg::Matrix to_binary(const linalg::Matrix& m, double theta);

}  // namespace aspe::nmf
