// Hungarian algorithm (Jonker-Volgenant potentials variant) for the linear
// assignment problem.
//
// Used by the SNMF-attack evaluation to align reconstructed NMF latent
// dimensions with ground-truth bloom-filter positions: R = I^T T is invariant
// under any permutation of the d latent dimensions, so precision/recall is
// measured after an optimal relabeling (see DESIGN.md §4.5).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace aspe::opt {

struct AssignmentResult {
  /// row_to_col[r] = column assigned to row r.
  std::vector<std::size_t> row_to_col;
  double total_cost = 0.0;
};

/// Minimum-cost perfect matching on a square cost matrix. O(n^3).
[[nodiscard]] AssignmentResult solve_assignment(const linalg::Matrix& cost);

}  // namespace aspe::opt
