#include "opt/hungarian.hpp"

#include <limits>

#include "common/error.hpp"

namespace aspe::opt {

AssignmentResult solve_assignment(const linalg::Matrix& cost) {
  require(cost.rows() == cost.cols(), "solve_assignment: matrix must be square");
  require(cost.rows() > 0, "solve_assignment: empty matrix");
  const std::size_t n = cost.rows();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Classic O(n^3) Hungarian with row/column potentials and 1-based
  // sentinel column 0 (match[0] holds the row currently being augmented).
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> match(n + 1, 0);  // match[col] = row (1-based)
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.row_to_col.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    result.row_to_col[match[j] - 1] = j - 1;
  }
  for (std::size_t r = 0; r < n; ++r) {
    result.total_cost += cost(r, result.row_to_col[r]);
  }
  return result;
}

}  // namespace aspe::opt
