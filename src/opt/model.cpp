#include "opt/model.hpp"

#include <cmath>

namespace aspe::opt {

std::size_t Model::add_variable(double lb, double ub, VarType type,
                                std::string name) {
  require(lb <= ub, "Model::add_variable: lb > ub");
  require(std::isfinite(lb), "Model::add_variable: lower bound must be finite");
  if (type == VarType::Binary) {
    require(lb >= 0.0 && ub <= 1.0, "Model::add_variable: binary bounds");
  }
  vars_.push_back(Variable{lb, ub, type, std::move(name)});
  return vars_.size() - 1;
}

std::size_t Model::add_constraint(LinExpr terms, Sense sense, double rhs) {
  for (const auto& t : terms) {
    require(t.var < vars_.size(), "Model::add_constraint: unknown variable");
  }
  cons_.push_back(Constraint{std::move(terms), sense, rhs});
  ++row_revision_;
  return cons_.size() - 1;
}

std::size_t Model::add_cut_row(LinExpr terms, Sense sense, double rhs) {
  require(sense != Sense::Equal, "Model::add_cut_row: cuts are inequalities");
  const std::size_t row = add_constraint(std::move(terms), sense, rhs);
  ++num_cut_rows_;
  return row;
}

void Model::record_global_tightening(std::size_t var, double lb, double ub) {
  set_bounds(var, lb, ub);
  global_trail_.push_back(GlobalBound{var, lb, ub});
}

void Model::set_objective(LinExpr objective) {
  for (const auto& t : objective) {
    require(t.var < vars_.size(), "Model::set_objective: unknown variable");
  }
  objective_ = std::move(objective);
}

bool Model::has_integer_variables() const {
  for (const auto& v : vars_) {
    if (v.type != VarType::Continuous) return true;
  }
  return false;
}

double Model::objective_value(const Vec& x) const {
  require(x.size() == vars_.size(), "Model::objective_value: bad point");
  double s = 0.0;
  for (const auto& t : objective_) s += t.coef * x[t.var];
  return s;
}

double Model::max_violation(const Vec& x) const {
  require(x.size() == vars_.size(), "Model::max_violation: bad point");
  double worst = 0.0;
  for (const auto& c : cons_) {
    double lhs = 0.0;
    for (const auto& t : c.terms) lhs += t.coef * x[t.var];
    double v = 0.0;
    switch (c.sense) {
      case Sense::LessEqual:
        v = lhs - c.rhs;
        break;
      case Sense::GreaterEqual:
        v = c.rhs - lhs;
        break;
      case Sense::Equal:
        v = std::abs(lhs - c.rhs);
        break;
    }
    worst = std::max(worst, v);
  }
  return worst;
}

void Model::set_bounds(std::size_t var, double lb, double ub) {
  require(var < vars_.size(), "Model::set_bounds: unknown variable");
  require(lb <= ub, "Model::set_bounds: lb > ub");
  vars_[var].lb = lb;
  vars_[var].ub = ub;
  ++bound_revision_;
}

}  // namespace aspe::opt
