// Bounded-variable simplex (dense revised form) with warm starts.
//
// Solves the LP relaxations for the branch-and-bound MIP solver. Variables
// carry individual [lb, ub] bounds (lb finite; ub may be +inf), so binary
// branching does not blow up the row count.
//
// The solver is persistent and re-entrant: `SimplexSolver` builds the
// constraint matrix once and then supports
//   * cold two-phase primal solves (`solve`) with Devex reference-weight
//     pricing and a Bland-rule anti-cycling fallback,
//   * bound deltas (`set_bounds`) that do not invalidate the basis,
//   * dual-simplex re-optimization (`solve_warm`) from a dual-feasible
//     basis after bounds tighten — the branch-and-bound workhorse,
//   * basis snapshot/restore (`basis` / `restore`) so a tree search can
//     return to any ancestor's basis without re-solving, and
//   * periodic refactorization of B^{-1} from the basis for numerical
//     hygiene (eta-style rank-1 updates drift over long pivot sequences).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "opt/model.hpp"

namespace aspe::opt {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  LpStatus status = LpStatus::IterationLimit;
  Vec x;                   // structural variable values (valid when Optimal)
  double objective = 0.0;  // objective at x
  std::size_t iterations = 0;
};

struct SimplexOptions {
  /// Hard iteration cap; 0 selects an automatic cap based on problem size.
  std::size_t max_iterations = 0;
  /// Feasibility tolerance on basic-variable bounds and phase-1 residual.
  double feas_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double opt_tol = 1e-9;
  /// Dual-simplex pivot cap per warm re-solve; 0 selects an automatic cap.
  /// When it trips, solve_warm falls back to a cold primal solve.
  std::size_t dual_iteration_limit = 0;
  /// Pivots between dense refactorizations of B^{-1} from the basis.
  std::size_t refactor_interval = 64;
  /// Iterations of one optimize pass before switching to the Bland
  /// anti-cycling rule; 0 selects an automatic burn-in based on problem
  /// size. Set to 1 to force Bland pricing from the start (tests).
  std::size_t bland_threshold = 0;
};

/// Nonbasic-at-lower / nonbasic-at-upper / basic marker per column.
enum class VarStatus : std::uint8_t { AtLower, AtUpper, Basic };

/// Snapshot of a basis: enough to reproduce the solver's algebraic state
/// (B^{-1} and the basic values are recomputed on restore). Cheap to copy —
/// two index vectors, no m x m matrix.
struct BasisState {
  std::vector<std::size_t> basis;  // basic column per row
  std::vector<VarStatus> status;   // status per column (incl. slacks/arts)
  Vec art_sign;                    // artificial column signs at snapshot time
};

/// Cumulative work counters across the lifetime of one solver.
struct SolverStats {
  std::size_t primal_iterations = 0;
  std::size_t dual_iterations = 0;
  std::size_t refactorizations = 0;
  std::size_t cold_solves = 0;
  std::size_t warm_solves = 0;
  /// Warm solves that tripped the dual iteration limit (or hit numerical
  /// trouble) and restarted as cold primal solves.
  std::size_t dual_fallbacks = 0;
};

/// Persistent, warm-startable simplex over one model's constraint matrix.
///
/// The solver keeps a reference to the model: the matrix and objective are
/// read on demand, variable bounds are mirrored internally and updated via
/// `set_bounds` / `sync_bounds` (a bound change in the model alone is picked
/// up by `sync_bounds`, which is cheap when `Model::bound_revision` is
/// unchanged). The model must outlive the solver, and its variables,
/// constraints and coefficients must not change after construction — only
/// bounds and the objective may.
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model, const SimplexOptions& opt = {});

  /// Override the solver's bounds for one structural variable. O(1); does
  /// not touch the model or the basis.
  void set_bounds(std::size_t var, double lb, double ub);

  /// Re-mirror every structural bound from the model. No-op when the model's
  /// bound revision matches the last sync.
  void sync_bounds();

  /// Mirror rows appended to the model since construction (the root cut
  /// loop's ≤/≥ cut rows; Equal rows are rejected). The current basis stays
  /// valid: each new row's slack enters the basis, so a subsequent
  /// solve_warm repairs the (likely violated) cut rows by the dual simplex.
  /// Outstanding BasisState snapshots taken *before* the append become
  /// shape-incompatible and must not be restored. No-op when the model has
  /// no new rows.
  void append_model_rows();

  [[nodiscard]] double lower_bound(std::size_t var) const;
  [[nodiscard]] double upper_bound(std::size_t var) const;

  /// Cold solve: two-phase primal from the all-artificial basis. Resets any
  /// existing basis.
  LpResult solve();

  /// Warm re-solve from the current basis: recomputes the basic values under
  /// the current bounds and runs the bounded dual simplex (the basis of a
  /// previous optimal solve stays dual feasible under any bound change).
  /// Falls back to a cold solve when no basis exists or the dual iteration
  /// limit trips.
  LpResult solve_warm();

  /// True after any successful solve or restore.
  [[nodiscard]] bool has_basis() const { return have_basis_; }

  /// Snapshot the current basis (valid after a successful solve).
  [[nodiscard]] BasisState basis() const;

  /// Restore a snapshot taken from *this solver*. B^{-1} is refactorized
  /// lazily on the next solve_warm.
  void restore(const BasisState& state);

  /// Attach a basis exported by *another solver over an identical model*
  /// (same variables, rows and column layout): restore + pin the artificial
  /// columns to zero, reproducing the exporting solver's post-phase-1 state.
  /// A plain restore is not enough on a never-solved solver — its artificials
  /// still have infinite upper bounds, so a dual re-solve could pivot one
  /// back in and diverge from the exporting solver bit-for-bit.
  void warm_attach(const BasisState& state);

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  [[nodiscard]] std::size_t num_structural() const { return n_; }
  [[nodiscard]] std::size_t num_rows() const { return m_; }
  [[nodiscard]] std::size_t num_columns() const { return total_; }
  [[nodiscard]] std::size_t num_slacks() const {
    return art_begin_ - slack_begin_;
  }

  // --- optimal-tableau introspection (cut separation, rc propagation) -----
  //
  // Valid right after a successful solve/solve_warm, while the factorization
  // is current (factor_valid()); a restore() invalidates it until the next
  // warm solve.

  /// True while B^{-1} matches the current basis.
  [[nodiscard]] bool factor_valid() const { return have_basis_ && binv_valid_; }

  /// Basic column of tableau row r.
  [[nodiscard]] std::size_t basis_column(std::size_t r) const;

  /// Row of B^{-1} containing column j, or num_rows() when j is nonbasic.
  [[nodiscard]] std::size_t basis_row(std::size_t j) const;

  /// Status of any column (structural, slack or artificial).
  [[nodiscard]] VarStatus column_status(std::size_t j) const;

  /// Current value of any column (bound value when nonbasic, basic value
  /// otherwise).
  [[nodiscard]] double column_value(std::size_t j) const;

  /// Tableau row r of the current factorization: alpha_j = (e_r^T B^{-1}) A_j
  /// for every column j (size num_columns()), plus the row's basic value.
  /// Requires factor_valid().
  void tableau_row(std::size_t r, Vec& alpha, double& basic_value) const;

  /// Reduced cost of every column under the model's current objective
  /// (size num_columns(); zero on basic columns up to round-off). Requires
  /// factor_valid().
  [[nodiscard]] Vec reduced_costs() const;

  /// Constraint row / sign of slack column `slack_begin() + k`.
  [[nodiscard]] std::size_t slack_row(std::size_t k) const;
  [[nodiscard]] double slack_sign(std::size_t k) const;
  [[nodiscard]] std::size_t slack_begin() const { return slack_begin_; }
  [[nodiscard]] std::size_t artificial_begin() const { return art_begin_; }

 private:
  enum class StepStatus : std::uint8_t { Ok, Optimal, Infeasible, Unbounded };

  void build();
  void reset_to_artificial_basis();
  void rebuild_phase2_cost();
  [[nodiscard]] double value(std::size_t j) const;
  [[nodiscard]] double col_dot(const Vec& y, std::size_t j) const;
  [[nodiscard]] Vec compute_d(std::size_t j) const;
  void recompute_xb();
  bool refactorize();
  void pivot_update(std::size_t r, const Vec& d);
  void clamp_basic_drift();
  void maybe_refactorize();
  LpStatus optimize(const Vec& cost, std::size_t& iteration_counter);
  LpStatus dual_optimize(std::size_t& iteration_counter);
  LpResult extract_result(LpStatus status, std::size_t iterations) const;
  LpResult cold_fallback(std::size_t iterations_so_far);

  const Model& model_;
  SimplexOptions opt_;

  std::size_t n_ = 0;      // structural variables
  std::size_t m_ = 0;      // rows
  std::size_t total_ = 0;  // structural + slack + artificial
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;

  linalg::Matrix at_;  // structural columns stored as rows (A transposed)
  std::vector<std::size_t> slack_row_;
  Vec slack_sign_;
  Vec art_sign_;
  Vec rhs_;
  double rhs_scale_ = 1.0;

  Vec lb_, ub_;
  Vec cost2_;    // phase-2 cost (structural objective, padded with zeros)
  Vec cb_;       // scratch: basic costs, refreshed every pricing pass
  Vec weights_;  // Devex reference weights, reset per optimize() call
  std::vector<VarStatus> status_;
  std::vector<std::size_t> basis_;      // basic column per row
  std::vector<std::size_t> basis_pos_;  // column -> row (npos when nonbasic)
  Vec xb_;
  linalg::Matrix binv_;

  bool have_basis_ = false;
  bool binv_valid_ = false;
  bool arts_pinned_ = false;  // artificials fixed to 0 (post phase 1)
  std::size_t pivots_since_refactor_ = 0;
  std::uint64_t synced_bound_revision_ = 0;
  SolverStats stats_;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Solve the LP relaxation of `model` (integrality ignored). One-shot
/// convenience wrapper over SimplexSolver.
[[nodiscard]] LpResult solve_lp(const Model& model,
                                const SimplexOptions& options = {});

}  // namespace aspe::opt
