// Bounded-variable primal simplex (two-phase, dense revised form).
//
// Solves the LP relaxations for the branch-and-bound MIP solver. Variables
// carry individual [lb, ub] bounds (lb finite; ub may be +inf), so binary
// branching does not blow up the row count. Anti-cycling via a Bland-rule
// fallback after a Dantzig-pricing burn-in.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "opt/model.hpp"

namespace aspe::opt {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  LpStatus status = LpStatus::IterationLimit;
  Vec x;                   // structural variable values (valid when Optimal)
  double objective = 0.0;  // objective at x
  std::size_t iterations = 0;
};

struct SimplexOptions {
  /// Hard iteration cap; 0 selects an automatic cap based on problem size.
  std::size_t max_iterations = 0;
  /// Feasibility tolerance on basic-variable bounds and phase-1 residual.
  double feas_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double opt_tol = 1e-9;
};

/// Solve the LP relaxation of `model` (integrality ignored).
[[nodiscard]] LpResult solve_lp(const Model& model,
                                const SimplexOptions& options = {});

}  // namespace aspe::opt
