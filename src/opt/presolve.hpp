// Presolve for linear / mixed-integer models.
//
// Standard reductions applied before the simplex / branch-and-bound:
//   * bound tightening from single-constraint activity analysis,
//   * detection of trivially infeasible or redundant rows,
//   * rounding of integer-variable bounds,
//   * fixing of variables whose bounds have collapsed.
//
// The attack models benefit directly: Eq. (14)'s band constraints often pin
// rhat/that into a narrow box, which shrinks the B&B tree.
#pragma once

#include <optional>

#include "opt/model.hpp"

namespace aspe::opt {

struct PresolveResult {
  /// The model became trivially infeasible (empty domain or a row that can
  /// never be satisfied at the variable bounds).
  bool infeasible = false;
  /// Number of bound changes applied.
  std::size_t bounds_tightened = 0;
  /// Number of rows proven redundant (satisfied for every point in the box).
  std::size_t redundant_rows = 0;
  /// Number of variables fixed (lb == ub after tightening).
  std::size_t variables_fixed = 0;
  /// Rounds of propagation executed.
  std::size_t rounds = 0;
};

struct PresolveOptions {
  std::size_t max_rounds = 10;
  double feas_tol = 1e-9;
};

/// Tighten `model` in place. Never removes rows or variables (indices stay
/// stable); redundant rows are only counted, infeasibility is only reported.
[[nodiscard]] PresolveResult presolve(Model& model,
                                      const PresolveOptions& options = {});

/// Pure-binary knapsack relaxation of one model row:
///   sum_i weight_i * z_i <= capacity,  z_i in {0,1},
/// where z_i is vars[i] itself or its complement (complemented[i]). Derived
/// by presolve-style activity analysis: continuous / general-integer terms
/// are relaxed to their best-case bound contribution, negative binary
/// coefficients are complemented, and items whose weight alone exceeds the
/// capacity are dropped into `forced_zero` (z_i = 0 in every integer point —
/// a coefficient-tightening fact the cut loop can apply as a fixing). Every
/// integer-feasible point of the model satisfies the relaxation, so covers
/// separated from it are valid cuts.
struct BinaryKnapsack {
  std::vector<std::size_t> vars;
  std::vector<double> weights;      // positive
  std::vector<bool> complemented;   // z_i = 1 - x_i
  std::vector<std::size_t> forced_zero_vars;  // z = 0 forced by capacity
  std::vector<bool> forced_zero_complemented;
  double capacity = 0.0;
};

/// Build the relaxation for `row` (GreaterEqual rows are negated; Equal rows
/// use their <= half). Returns nullopt when the row has no useful binary
/// knapsack structure: an unbounded continuous term, fewer than two binary
/// items, or a capacity no cover can exceed.
[[nodiscard]] std::optional<BinaryKnapsack> binary_knapsack_relaxation(
    const Model& model, std::size_t row);

}  // namespace aspe::opt
