// Presolve for linear / mixed-integer models.
//
// Standard reductions applied before the simplex / branch-and-bound:
//   * bound tightening from single-constraint activity analysis,
//   * detection of trivially infeasible or redundant rows,
//   * rounding of integer-variable bounds,
//   * fixing of variables whose bounds have collapsed.
//
// The attack models benefit directly: Eq. (14)'s band constraints often pin
// rhat/that into a narrow box, which shrinks the B&B tree.
#pragma once

#include "opt/model.hpp"

namespace aspe::opt {

struct PresolveResult {
  /// The model became trivially infeasible (empty domain or a row that can
  /// never be satisfied at the variable bounds).
  bool infeasible = false;
  /// Number of bound changes applied.
  std::size_t bounds_tightened = 0;
  /// Number of rows proven redundant (satisfied for every point in the box).
  std::size_t redundant_rows = 0;
  /// Number of variables fixed (lb == ub after tightening).
  std::size_t variables_fixed = 0;
  /// Rounds of propagation executed.
  std::size_t rounds = 0;
};

struct PresolveOptions {
  std::size_t max_rounds = 10;
  double feas_tol = 1e-9;
};

/// Tighten `model` in place. Never removes rows or variables (indices stay
/// stable); redundant rows are only counted, infeasibility is only reported.
[[nodiscard]] PresolveResult presolve(Model& model,
                                      const PresolveOptions& options = {});

}  // namespace aspe::opt
