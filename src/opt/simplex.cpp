#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace aspe::opt {

namespace {

using linalg::ConstVecView;
using linalg::Matrix;
using linalg::Op;
using linalg::VecView;

enum class VarStatus : std::uint8_t { AtLower, AtUpper, Basic };

// Internal solver state. Variable layout: [0, n) structural, [n, n+s) slacks
// (one per inequality row), [n+s, n+s+m) artificials (one per row).
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& opt)
      : model_(model), opt_(opt) {
    build();
  }

  LpResult run() {
    LpResult result;

    // ---- Phase 1: minimize the sum of artificials. ----
    Vec phase1_cost(total_, 0.0);
    for (std::size_t a = 0; a < m_; ++a) phase1_cost[art_begin_ + a] = 1.0;
    const LpStatus s1 = optimize(phase1_cost, result.iterations);
    if (s1 == LpStatus::IterationLimit) return result;
    double art_sum = 0.0;
    for (std::size_t a = 0; a < m_; ++a) art_sum += value(art_begin_ + a);
    if (art_sum > opt_.feas_tol * std::max(1.0, rhs_scale_)) {
      result.status = LpStatus::Infeasible;
      return result;
    }

    // ---- Phase 2: the real objective, artificials pinned to zero. ----
    for (std::size_t a = 0; a < m_; ++a) {
      ub_[art_begin_ + a] = 0.0;
      // A nonbasic artificial must sit at a bound; both bounds are now 0.
      if (status_[art_begin_ + a] == VarStatus::AtUpper) {
        status_[art_begin_ + a] = VarStatus::AtLower;
      }
    }
    Vec phase2_cost(total_, 0.0);
    for (const auto& t : model_.objective()) phase2_cost[t.var] += t.coef;
    const LpStatus s2 = optimize(phase2_cost, result.iterations);
    result.status = s2;
    if (s2 != LpStatus::Optimal) return result;

    result.x.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) result.x[j] = value(j);
    result.objective = model_.objective_value(result.x);
    return result;
  }

 private:
  void build() {
    n_ = model_.num_variables();
    m_ = model_.num_constraints();
    require(m_ > 0, "solve_lp: model has no constraints");

    // Structural columns: row j of at_ is column j of A (contiguous, so
    // pricing and ratio-test read it through row views).
    at_ = Matrix(n_, m_, 0.0);
    rhs_.resize(m_);
    slack_row_.clear();
    slack_sign_.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      const Constraint& c = model_.constraint(i);
      for (const auto& t : c.terms) at_(t.var, i) += t.coef;
      rhs_[i] = c.rhs;
      if (c.sense == Sense::LessEqual) {
        slack_row_.push_back(i);
        slack_sign_.push_back(1.0);
      } else if (c.sense == Sense::GreaterEqual) {
        slack_row_.push_back(i);
        slack_sign_.push_back(-1.0);
      }
    }
    slack_begin_ = n_;
    art_begin_ = n_ + slack_row_.size();
    total_ = art_begin_ + m_;

    lb_.assign(total_, 0.0);
    ub_.assign(total_, kInfinity);
    for (std::size_t j = 0; j < n_; ++j) {
      lb_[j] = model_.variable(j).lb;
      ub_[j] = model_.variable(j).ub;
    }

    rhs_scale_ = 1.0;
    for (auto b : rhs_) rhs_scale_ = std::max(rhs_scale_, std::abs(b));

    // Start: structurals and slacks nonbasic at their lower bound;
    // artificials absorb the residual and form the initial basis.
    status_.assign(total_, VarStatus::AtLower);
    Vec residual = rhs_;
    for (std::size_t j = 0; j < n_; ++j) {
      if (lb_[j] == 0.0) continue;
      linalg::axpy(-lb_[j], at_.row_view(j), VecView(residual));
    }
    art_sign_.resize(m_);
    basis_.resize(m_);
    xb_.resize(m_);
    cb_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      art_sign_[i] = residual[i] >= 0.0 ? 1.0 : -1.0;
      basis_[i] = art_begin_ + i;
      status_[art_begin_ + i] = VarStatus::Basic;
      xb_[i] = std::abs(residual[i]);
    }
    binv_ = Matrix::identity(m_);
    // With the sign-adjusted artificial basis, B = diag(art_sign_), so
    // B^{-1} = diag(art_sign_).
    for (std::size_t i = 0; i < m_; ++i) binv_(i, i) = art_sign_[i];
  }

  // Column j of the full constraint matrix, materialized on demand.
  // Slack/artificial columns are singletons; avoid storing them densely.
  double col_dot(const Vec& y, std::size_t j) const {
    if (j < n_) {
      return linalg::dot(ConstVecView(y), at_.row_view(j));
    }
    if (j < art_begin_) {
      const std::size_t k = j - slack_begin_;
      return slack_sign_[k] * y[slack_row_[k]];
    }
    const std::size_t k = j - art_begin_;
    return art_sign_[k] * y[k];
  }

  // d = B^{-1} A_j.
  Vec compute_d(std::size_t j) const {
    Vec d(m_, 0.0);
    if (j < n_) {
      linalg::gemv(1.0, binv_.cview(), Op::None, at_.row_view(j), 0.0,
                   VecView(d));
    } else if (j < art_begin_) {
      const std::size_t k = j - slack_begin_;
      const std::size_t row = slack_row_[k];
      for (std::size_t i = 0; i < m_; ++i) {
        d[i] = slack_sign_[k] * binv_(i, row);
      }
    } else {
      const std::size_t k = j - art_begin_;
      for (std::size_t i = 0; i < m_; ++i) d[i] = art_sign_[k] * binv_(i, k);
    }
    return d;
  }

  double value(std::size_t j) const {
    switch (status_[j]) {
      case VarStatus::AtLower:
        return lb_[j];
      case VarStatus::AtUpper:
        return ub_[j];
      case VarStatus::Basic:
        for (std::size_t i = 0; i < m_; ++i) {
          if (basis_[i] == j) return xb_[i];
        }
        return 0.0;  // unreachable
    }
    return 0.0;
  }

  LpStatus optimize(const Vec& cost, std::size_t& iteration_counter) {
    const std::size_t max_iters =
        opt_.max_iterations > 0 ? opt_.max_iterations
                                : 200 * (m_ + total_) + 2000;
    const std::size_t bland_after = 20 * (m_ + total_) + 500;
    std::size_t local_iters = 0;

    while (true) {
      if (local_iters++ > max_iters) return LpStatus::IterationLimit;
      ++iteration_counter;
      const bool bland = local_iters > bland_after;

      // y^T = c_B^T B^{-1}, i.e. y = (B^{-1})^T c_B via the transposed gemv.
      for (std::size_t i = 0; i < m_; ++i) cb_[i] = cost[basis_[i]];
      Vec y(m_, 0.0);
      linalg::gemv(1.0, binv_.cview(), Op::Transpose, ConstVecView(cb_), 0.0,
                   VecView(y));

      // Pricing.
      std::size_t entering = total_;
      double best_score = opt_.opt_tol;
      int enter_dir = 0;
      for (std::size_t j = 0; j < total_; ++j) {
        const VarStatus st = status_[j];
        if (st == VarStatus::Basic) continue;
        if (lb_[j] == ub_[j]) continue;  // fixed variable can never improve
        const double rc = cost[j] - col_dot(y, j);
        double score = 0.0;
        int dir = 0;
        if (st == VarStatus::AtLower && rc < -opt_.opt_tol) {
          score = -rc;
          dir = +1;
        } else if (st == VarStatus::AtUpper && rc > opt_.opt_tol) {
          score = rc;
          dir = -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          entering = j;
          enter_dir = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          enter_dir = dir;
        }
      }
      if (entering == total_) return LpStatus::Optimal;

      const Vec d = compute_d(entering);

      // Ratio test. Moving the entering variable by t in direction
      // enter_dir changes basic values by -t * enter_dir * d.
      double t_limit = ub_[entering] - lb_[entering];  // bound-flip distance
      std::ptrdiff_t leaving_row = -1;                 // -1 => bound flip
      bool leaving_to_upper = false;
      double best_pivot_mag = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double g = enter_dir * d[i];
        const std::size_t bj = basis_[i];
        double t = kInfinity;
        bool to_upper = false;
        if (g > opt_.opt_tol) {  // basic variable decreases toward its lb
          t = (xb_[i] - lb_[bj]) / g;
        } else if (g < -opt_.opt_tol) {  // increases toward its ub
          if (ub_[bj] == kInfinity) continue;
          t = (ub_[bj] - xb_[i]) / (-g);
          to_upper = true;
        } else {
          continue;
        }
        t = std::max(t, 0.0);
        const double mag = std::abs(g);
        const bool better =
            t < t_limit - 1e-12 ||
            (t < t_limit + 1e-12 && leaving_row >= 0 && mag > best_pivot_mag);
        if (better) {
          t_limit = std::min(t, t_limit);
          leaving_row = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = to_upper;
          best_pivot_mag = mag;
        }
      }

      if (t_limit == kInfinity) return LpStatus::Unbounded;

      if (leaving_row < 0) {
        // Bound flip: the entering variable runs to its opposite bound.
        linalg::axpy(-(t_limit * enter_dir), ConstVecView(d), VecView(xb_));
        status_[entering] = enter_dir > 0 ? VarStatus::AtUpper
                                          : VarStatus::AtLower;
        continue;
      }

      // Basis change.
      const auto r = static_cast<std::size_t>(leaving_row);
      const std::size_t leaving = basis_[r];
      linalg::axpy(-(t_limit * enter_dir), ConstVecView(d), VecView(xb_));
      const double entering_value =
          (enter_dir > 0 ? lb_[entering] : ub_[entering]) +
          enter_dir * t_limit;

      // Gauss-Jordan update of B^{-1} with pivot d[r], eta-style on row
      // views: scale the pivot row, then subtract its multiple from the
      // other rows.
      const double pivot = d[r];
      const VecView br = binv_.row_view(r);
      linalg::scal(1.0 / pivot, br);
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == r || d[i] == 0.0) continue;
        linalg::axpy(-d[i], br, binv_.row_view(i));
      }

      basis_[r] = entering;
      xb_[r] = entering_value;
      status_[entering] = VarStatus::Basic;
      status_[leaving] =
          leaving_to_upper ? VarStatus::AtUpper : VarStatus::AtLower;
      // Clamp small drift on the leaving variable's row mates.
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t bj = basis_[i];
        if (xb_[i] < lb_[bj] && xb_[i] > lb_[bj] - opt_.feas_tol) {
          xb_[i] = lb_[bj];
        }
        if (ub_[bj] != kInfinity && xb_[i] > ub_[bj] &&
            xb_[i] < ub_[bj] + opt_.feas_tol) {
          xb_[i] = ub_[bj];
        }
      }
    }
  }

  const Model& model_;
  SimplexOptions opt_;

  std::size_t n_ = 0;      // structural variables
  std::size_t m_ = 0;      // rows
  std::size_t total_ = 0;  // structural + slack + artificial
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;

  Matrix at_;  // structural columns stored as rows (n x m, A transposed)
  std::vector<std::size_t> slack_row_;
  Vec slack_sign_;
  Vec art_sign_;
  Vec rhs_;
  double rhs_scale_ = 1.0;

  Vec lb_, ub_;
  Vec cb_;  // scratch: basic costs, refreshed every pricing pass
  std::vector<VarStatus> status_;
  std::vector<std::size_t> basis_;
  Vec xb_;
  Matrix binv_;
};

}  // namespace

LpResult solve_lp(const Model& model, const SimplexOptions& options) {
  require(model.num_variables() > 0, "solve_lp: model has no variables");
  Simplex s(model, options);
  return s.run();
}

}  // namespace aspe::opt
