#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.hpp"

namespace aspe::opt {

namespace {

using linalg::Matrix;

enum class VarStatus : std::uint8_t { AtLower, AtUpper, Basic };

// Internal solver state. Variable layout: [0, n) structural, [n, n+s) slacks
// (one per inequality row), [n+s, n+s+m) artificials (one per row).
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& opt)
      : model_(model), opt_(opt) {
    build();
  }

  LpResult run() {
    LpResult result;

    // ---- Phase 1: minimize the sum of artificials. ----
    Vec phase1_cost(total_, 0.0);
    for (std::size_t a = 0; a < m_; ++a) phase1_cost[art_begin_ + a] = 1.0;
    const LpStatus s1 = optimize(phase1_cost, result.iterations);
    if (s1 == LpStatus::IterationLimit) return result;
    double art_sum = 0.0;
    for (std::size_t a = 0; a < m_; ++a) art_sum += value(art_begin_ + a);
    if (art_sum > opt_.feas_tol * std::max(1.0, rhs_scale_)) {
      result.status = LpStatus::Infeasible;
      return result;
    }

    // ---- Phase 2: the real objective, artificials pinned to zero. ----
    for (std::size_t a = 0; a < m_; ++a) {
      ub_[art_begin_ + a] = 0.0;
      // A nonbasic artificial must sit at a bound; both bounds are now 0.
      if (status_[art_begin_ + a] == VarStatus::AtUpper) {
        status_[art_begin_ + a] = VarStatus::AtLower;
      }
    }
    Vec phase2_cost(total_, 0.0);
    for (const auto& t : model_.objective()) phase2_cost[t.var] += t.coef;
    const LpStatus s2 = optimize(phase2_cost, result.iterations);
    result.status = s2;
    if (s2 != LpStatus::Optimal) return result;

    result.x.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) result.x[j] = value(j);
    result.objective = model_.objective_value(result.x);
    return result;
  }

 private:
  void build() {
    n_ = model_.num_variables();
    m_ = model_.num_constraints();
    require(m_ > 0, "solve_lp: model has no constraints");

    // Structural columns, dense column-major.
    a_cols_.assign(n_, Vec(m_, 0.0));
    rhs_.resize(m_);
    slack_row_.clear();
    slack_sign_.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      const Constraint& c = model_.constraint(i);
      for (const auto& t : c.terms) a_cols_[t.var][i] += t.coef;
      rhs_[i] = c.rhs;
      if (c.sense == Sense::LessEqual) {
        slack_row_.push_back(i);
        slack_sign_.push_back(1.0);
      } else if (c.sense == Sense::GreaterEqual) {
        slack_row_.push_back(i);
        slack_sign_.push_back(-1.0);
      }
    }
    slack_begin_ = n_;
    art_begin_ = n_ + slack_row_.size();
    total_ = art_begin_ + m_;

    lb_.assign(total_, 0.0);
    ub_.assign(total_, kInfinity);
    for (std::size_t j = 0; j < n_; ++j) {
      lb_[j] = model_.variable(j).lb;
      ub_[j] = model_.variable(j).ub;
    }

    rhs_scale_ = 1.0;
    for (auto b : rhs_) rhs_scale_ = std::max(rhs_scale_, std::abs(b));

    // Start: structurals and slacks nonbasic at their lower bound;
    // artificials absorb the residual and form the initial basis.
    status_.assign(total_, VarStatus::AtLower);
    Vec residual = rhs_;
    for (std::size_t j = 0; j < n_; ++j) {
      if (lb_[j] == 0.0) continue;
      for (std::size_t i = 0; i < m_; ++i) residual[i] -= a_cols_[j][i] * lb_[j];
    }
    art_sign_.resize(m_);
    basis_.resize(m_);
    xb_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      art_sign_[i] = residual[i] >= 0.0 ? 1.0 : -1.0;
      basis_[i] = art_begin_ + i;
      status_[art_begin_ + i] = VarStatus::Basic;
      xb_[i] = std::abs(residual[i]);
    }
    binv_ = Matrix::identity(m_);
    // With the sign-adjusted artificial basis, B = diag(art_sign_), so
    // B^{-1} = diag(art_sign_).
    for (std::size_t i = 0; i < m_; ++i) binv_(i, i) = art_sign_[i];
  }

  // Column j of the full constraint matrix, materialized on demand.
  // Slack/artificial columns are singletons; avoid storing them densely.
  double col_dot(const Vec& y, std::size_t j) const {
    if (j < n_) {
      const Vec& col = a_cols_[j];
      double s = 0.0;
      for (std::size_t i = 0; i < m_; ++i) s += y[i] * col[i];
      return s;
    }
    if (j < art_begin_) {
      const std::size_t k = j - slack_begin_;
      return slack_sign_[k] * y[slack_row_[k]];
    }
    const std::size_t k = j - art_begin_;
    return art_sign_[k] * y[k];
  }

  // d = B^{-1} A_j.
  Vec compute_d(std::size_t j) const {
    Vec d(m_, 0.0);
    if (j < n_) {
      const Vec& col = a_cols_[j];
      for (std::size_t k = 0; k < m_; ++k) {
        const double v = col[k];
        if (v == 0.0) continue;
        for (std::size_t i = 0; i < m_; ++i) d[i] += binv_(i, k) * v;
      }
    } else if (j < art_begin_) {
      const std::size_t k = j - slack_begin_;
      const std::size_t row = slack_row_[k];
      for (std::size_t i = 0; i < m_; ++i) {
        d[i] = slack_sign_[k] * binv_(i, row);
      }
    } else {
      const std::size_t k = j - art_begin_;
      for (std::size_t i = 0; i < m_; ++i) d[i] = art_sign_[k] * binv_(i, k);
    }
    return d;
  }

  double value(std::size_t j) const {
    switch (status_[j]) {
      case VarStatus::AtLower:
        return lb_[j];
      case VarStatus::AtUpper:
        return ub_[j];
      case VarStatus::Basic:
        for (std::size_t i = 0; i < m_; ++i) {
          if (basis_[i] == j) return xb_[i];
        }
        return 0.0;  // unreachable
    }
    return 0.0;
  }

  LpStatus optimize(const Vec& cost, std::size_t& iteration_counter) {
    const std::size_t max_iters =
        opt_.max_iterations > 0 ? opt_.max_iterations
                                : 200 * (m_ + total_) + 2000;
    const std::size_t bland_after = 20 * (m_ + total_) + 500;
    std::size_t local_iters = 0;

    while (true) {
      if (local_iters++ > max_iters) return LpStatus::IterationLimit;
      ++iteration_counter;
      const bool bland = local_iters > bland_after;

      // y^T = c_B^T B^{-1}
      Vec y(m_, 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        const double cb = cost[basis_[i]];
        if (cb == 0.0) continue;
        for (std::size_t k = 0; k < m_; ++k) y[k] += cb * binv_(i, k);
      }

      // Pricing.
      std::size_t entering = total_;
      double best_score = opt_.opt_tol;
      int enter_dir = 0;
      for (std::size_t j = 0; j < total_; ++j) {
        const VarStatus st = status_[j];
        if (st == VarStatus::Basic) continue;
        if (lb_[j] == ub_[j]) continue;  // fixed variable can never improve
        const double rc = cost[j] - col_dot(y, j);
        double score = 0.0;
        int dir = 0;
        if (st == VarStatus::AtLower && rc < -opt_.opt_tol) {
          score = -rc;
          dir = +1;
        } else if (st == VarStatus::AtUpper && rc > opt_.opt_tol) {
          score = rc;
          dir = -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          entering = j;
          enter_dir = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          enter_dir = dir;
        }
      }
      if (entering == total_) return LpStatus::Optimal;

      const Vec d = compute_d(entering);

      // Ratio test. Moving the entering variable by t in direction
      // enter_dir changes basic values by -t * enter_dir * d.
      double t_limit = ub_[entering] - lb_[entering];  // bound-flip distance
      std::ptrdiff_t leaving_row = -1;                 // -1 => bound flip
      bool leaving_to_upper = false;
      double best_pivot_mag = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double g = enter_dir * d[i];
        const std::size_t bj = basis_[i];
        double t = kInfinity;
        bool to_upper = false;
        if (g > opt_.opt_tol) {  // basic variable decreases toward its lb
          t = (xb_[i] - lb_[bj]) / g;
        } else if (g < -opt_.opt_tol) {  // increases toward its ub
          if (ub_[bj] == kInfinity) continue;
          t = (ub_[bj] - xb_[i]) / (-g);
          to_upper = true;
        } else {
          continue;
        }
        t = std::max(t, 0.0);
        const double mag = std::abs(g);
        const bool better =
            t < t_limit - 1e-12 ||
            (t < t_limit + 1e-12 && leaving_row >= 0 && mag > best_pivot_mag);
        if (better) {
          t_limit = std::min(t, t_limit);
          leaving_row = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = to_upper;
          best_pivot_mag = mag;
        }
      }

      if (t_limit == kInfinity) return LpStatus::Unbounded;

      if (leaving_row < 0) {
        // Bound flip: the entering variable runs to its opposite bound.
        for (std::size_t i = 0; i < m_; ++i) {
          xb_[i] -= t_limit * enter_dir * d[i];
        }
        status_[entering] = enter_dir > 0 ? VarStatus::AtUpper
                                          : VarStatus::AtLower;
        continue;
      }

      // Basis change.
      const auto r = static_cast<std::size_t>(leaving_row);
      const std::size_t leaving = basis_[r];
      for (std::size_t i = 0; i < m_; ++i) {
        xb_[i] -= t_limit * enter_dir * d[i];
      }
      const double entering_value =
          (enter_dir > 0 ? lb_[entering] : ub_[entering]) +
          enter_dir * t_limit;

      // Gauss-Jordan update of B^{-1} with pivot d[r].
      const double pivot = d[r];
      double* br = binv_.row_ptr(r);
      const double inv_pivot = 1.0 / pivot;
      for (std::size_t k = 0; k < m_; ++k) br[k] *= inv_pivot;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == r || d[i] == 0.0) continue;
        const double f = d[i];
        double* bi = binv_.row_ptr(i);
        for (std::size_t k = 0; k < m_; ++k) bi[k] -= f * br[k];
      }

      basis_[r] = entering;
      xb_[r] = entering_value;
      status_[entering] = VarStatus::Basic;
      status_[leaving] =
          leaving_to_upper ? VarStatus::AtUpper : VarStatus::AtLower;
      // Clamp small drift on the leaving variable's row mates.
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t bj = basis_[i];
        if (xb_[i] < lb_[bj] && xb_[i] > lb_[bj] - opt_.feas_tol) {
          xb_[i] = lb_[bj];
        }
        if (ub_[bj] != kInfinity && xb_[i] > ub_[bj] &&
            xb_[i] < ub_[bj] + opt_.feas_tol) {
          xb_[i] = ub_[bj];
        }
      }
    }
  }

  const Model& model_;
  SimplexOptions opt_;

  std::size_t n_ = 0;      // structural variables
  std::size_t m_ = 0;      // rows
  std::size_t total_ = 0;  // structural + slack + artificial
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;

  std::vector<Vec> a_cols_;  // structural columns (dense, length m)
  std::vector<std::size_t> slack_row_;
  Vec slack_sign_;
  Vec art_sign_;
  Vec rhs_;
  double rhs_scale_ = 1.0;

  Vec lb_, ub_;
  std::vector<VarStatus> status_;
  std::vector<std::size_t> basis_;
  Vec xb_;
  Matrix binv_;
};

}  // namespace

LpResult solve_lp(const Model& model, const SimplexOptions& options) {
  require(model.num_variables() > 0, "solve_lp: model has no variables");
  Simplex s(model, options);
  return s.run();
}

}  // namespace aspe::opt
