#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"

namespace aspe::opt {

using linalg::ConstVecView;
using linalg::Matrix;
using linalg::Op;
using linalg::VecView;

namespace {

/// Emits the growth of a cumulative stats field as an obs counter when the
/// scope ends — one counter_add per optimize pass instead of one per pivot.
class StatDeltaCounter {
 public:
  StatDeltaCounter(const char* name, const std::size_t& current)
      : name_(name), current_(current), entry_(current) {}
  ~StatDeltaCounter() {
    if (current_ != entry_) {
      obs::counter_add(name_, static_cast<double>(current_ - entry_));
    }
  }
  StatDeltaCounter(const StatDeltaCounter&) = delete;
  StatDeltaCounter& operator=(const StatDeltaCounter&) = delete;

 private:
  const char* name_;
  const std::size_t& current_;
  std::size_t entry_;
};

}  // namespace

// Variable layout: [0, n) structural, [n, n+s) slacks (one per inequality
// row), [n+s, n+s+m) artificials (one per row).

SimplexSolver::SimplexSolver(const Model& model, const SimplexOptions& opt)
    : model_(model), opt_(opt) {
  build();
}

void SimplexSolver::build() {
  n_ = model_.num_variables();
  m_ = model_.num_constraints();
  require(n_ > 0, "SimplexSolver: model has no variables");
  require(m_ > 0, "SimplexSolver: model has no constraints");

  // Structural columns: row j of at_ is column j of A (contiguous, so
  // pricing and ratio-test read it through row views).
  at_ = Matrix(n_, m_, 0.0);
  rhs_.resize(m_);
  slack_row_.clear();
  slack_sign_.clear();
  for (std::size_t i = 0; i < m_; ++i) {
    const Constraint& c = model_.constraint(i);
    for (const auto& t : c.terms) at_(t.var, i) += t.coef;
    rhs_[i] = c.rhs;
    if (c.sense == Sense::LessEqual) {
      slack_row_.push_back(i);
      slack_sign_.push_back(1.0);
    } else if (c.sense == Sense::GreaterEqual) {
      slack_row_.push_back(i);
      slack_sign_.push_back(-1.0);
    }
  }
  slack_begin_ = n_;
  art_begin_ = n_ + slack_row_.size();
  total_ = art_begin_ + m_;

  lb_.assign(total_, 0.0);
  ub_.assign(total_, kInfinity);
  for (std::size_t j = 0; j < n_; ++j) {
    lb_[j] = model_.variable(j).lb;
    ub_[j] = model_.variable(j).ub;
  }
  synced_bound_revision_ = model_.bound_revision();

  rhs_scale_ = 1.0;
  for (auto b : rhs_) rhs_scale_ = std::max(rhs_scale_, std::abs(b));

  art_sign_.assign(m_, 1.0);
  basis_.resize(m_);
  basis_pos_.assign(total_, npos);
  xb_.resize(m_);
  cb_.resize(m_);
  cost2_.assign(total_, 0.0);
  weights_.assign(total_, 1.0);
  status_.assign(total_, VarStatus::AtLower);
  binv_ = Matrix::identity(m_);
}

void SimplexSolver::set_bounds(std::size_t var, double lb, double ub) {
  require(var < n_, "SimplexSolver::set_bounds: unknown variable");
  require(lb <= ub, "SimplexSolver::set_bounds: lb > ub");
  require(std::isfinite(lb), "SimplexSolver::set_bounds: lb must be finite");
  lb_[var] = lb;
  ub_[var] = ub;
  // A nonbasic variable must sit at a finite bound.
  if (status_[var] == VarStatus::AtUpper && ub == kInfinity) {
    status_[var] = VarStatus::AtLower;
  }
}

void SimplexSolver::sync_bounds() {
  if (model_.bound_revision() == synced_bound_revision_) return;
  for (std::size_t j = 0; j < n_; ++j) {
    lb_[j] = model_.variable(j).lb;
    ub_[j] = model_.variable(j).ub;
    if (status_[j] == VarStatus::AtUpper && ub_[j] == kInfinity) {
      status_[j] = VarStatus::AtLower;
    }
  }
  synced_bound_revision_ = model_.bound_revision();
}

void SimplexSolver::append_model_rows() {
  const std::size_t new_m = model_.num_constraints();
  require(new_m >= m_, "SimplexSolver::append_model_rows: rows removed");
  if (new_m == m_) return;
  for (std::size_t i = m_; i < new_m; ++i) {
    require(model_.constraint(i).sense != Sense::Equal,
            "SimplexSolver::append_model_rows: appended rows must be "
            "inequalities");
  }

  const std::size_t old_m = m_;
  const std::size_t old_art_begin = art_begin_;
  const std::size_t old_total = total_;
  const std::size_t added = new_m - old_m;

  // Structural columns gain one entry per new row.
  Matrix at2(n_, new_m, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    for (std::size_t i = 0; i < old_m; ++i) at2(j, i) = at_(j, i);
  }
  rhs_.resize(new_m);
  for (std::size_t i = old_m; i < new_m; ++i) {
    const Constraint& c = model_.constraint(i);
    for (const auto& t : c.terms) at2(t.var, i) += t.coef;
    rhs_[i] = c.rhs;
    slack_row_.push_back(i);
    slack_sign_.push_back(c.sense == Sense::LessEqual ? 1.0 : -1.0);
    rhs_scale_ = std::max(rhs_scale_, std::abs(c.rhs));
  }
  at_ = std::move(at2);

  // New layout: the appended slacks extend the slack block in place, which
  // shifts every artificial column index by `added`.
  m_ = new_m;
  art_begin_ = slack_begin_ + slack_row_.size();
  total_ = art_begin_ + m_;
  const auto remap = [&](std::size_t j) {
    return j < old_art_begin ? j : j + (art_begin_ - old_art_begin);
  };

  std::vector<VarStatus> status2(total_, VarStatus::AtLower);
  Vec lb2(total_, 0.0), ub2(total_, kInfinity);
  for (std::size_t j = 0; j < old_total; ++j) {
    status2[remap(j)] = status_[j];
    lb2[remap(j)] = lb_[j];
    ub2[remap(j)] = ub_[j];
  }
  for (std::size_t a = 0; a < m_; ++a) {
    if (arts_pinned_) ub2[art_begin_ + a] = 0.0;
  }
  status_ = std::move(status2);
  lb_ = std::move(lb2);
  ub_ = std::move(ub2);

  // The basis grows by the new slacks: appending a row whose slack is basic
  // keeps B invertible (singleton ±1 column) and dual feasible (slack cost
  // 0), so a warm dual re-solve repairs any violated cut directly.
  basis_.resize(m_);
  art_sign_.resize(m_, 1.0);
  for (std::size_t i = 0; i < old_m; ++i) basis_[i] = remap(basis_[i]);
  for (std::size_t i = old_m; i < m_; ++i) {
    const std::size_t slack_col = old_art_begin + (i - old_m);
    basis_[i] = slack_col;
    status_[slack_col] = VarStatus::Basic;
    art_sign_[i] = 1.0;
  }
  basis_pos_.assign(total_, npos);
  for (std::size_t i = 0; i < m_; ++i) basis_pos_[basis_[i]] = i;

  xb_.resize(m_, 0.0);
  cb_.resize(m_);
  cost2_.assign(total_, 0.0);
  weights_.assign(total_, 1.0);
  binv_ = Matrix::identity(m_);
  binv_valid_ = false;  // refactorized by the next solve_warm
  obs::counter_add("simplex.rows_appended", static_cast<double>(added));
}

std::size_t SimplexSolver::basis_column(std::size_t r) const {
  require(r < m_, "SimplexSolver::basis_column: bad row");
  return basis_[r];
}

std::size_t SimplexSolver::basis_row(std::size_t j) const {
  require(j < total_, "SimplexSolver::basis_row: bad column");
  return basis_pos_[j] == npos ? m_ : basis_pos_[j];
}

VarStatus SimplexSolver::column_status(std::size_t j) const {
  require(j < total_, "SimplexSolver::column_status: bad column");
  return status_[j];
}

double SimplexSolver::column_value(std::size_t j) const {
  require(j < total_, "SimplexSolver::column_value: bad column");
  return value(j);
}

void SimplexSolver::tableau_row(std::size_t r, Vec& alpha,
                                double& basic_value) const {
  require(r < m_, "SimplexSolver::tableau_row: bad row");
  require(factor_valid(), "SimplexSolver::tableau_row: stale factorization");
  Vec rho(m_);
  for (std::size_t i = 0; i < m_; ++i) rho[i] = binv_(r, i);
  alpha.resize(total_);
  for (std::size_t j = 0; j < total_; ++j) alpha[j] = col_dot(rho, j);
  basic_value = xb_[r];
}

Vec SimplexSolver::reduced_costs() const {
  require(factor_valid(), "SimplexSolver::reduced_costs: stale factorization");
  Vec cost(total_, 0.0);
  for (const auto& t : model_.objective()) cost[t.var] += t.coef;
  Vec cb(m_), y(m_);
  for (std::size_t i = 0; i < m_; ++i) cb[i] = cost[basis_[i]];
  linalg::gemv(1.0, binv_.cview(), Op::Transpose, ConstVecView(cb), 0.0,
               VecView(y));
  Vec rc(total_);
  for (std::size_t j = 0; j < total_; ++j) rc[j] = cost[j] - col_dot(y, j);
  return rc;
}

std::size_t SimplexSolver::slack_row(std::size_t k) const {
  require(k < slack_row_.size(), "SimplexSolver::slack_row: bad slack");
  return slack_row_[k];
}

double SimplexSolver::slack_sign(std::size_t k) const {
  require(k < slack_sign_.size(), "SimplexSolver::slack_sign: bad slack");
  return slack_sign_[k];
}

double SimplexSolver::lower_bound(std::size_t var) const {
  require(var < n_, "SimplexSolver::lower_bound: unknown variable");
  return lb_[var];
}

double SimplexSolver::upper_bound(std::size_t var) const {
  require(var < n_, "SimplexSolver::upper_bound: unknown variable");
  return ub_[var];
}

void SimplexSolver::reset_to_artificial_basis() {
  // Structurals and slacks nonbasic at their lower bound; artificials absorb
  // the residual and form the initial basis.
  status_.assign(total_, VarStatus::AtLower);
  for (std::size_t a = 0; a < m_; ++a) ub_[art_begin_ + a] = kInfinity;
  arts_pinned_ = false;

  Vec residual = rhs_;
  for (std::size_t j = 0; j < n_; ++j) {
    if (lb_[j] == 0.0) continue;
    linalg::axpy(-lb_[j], at_.row_view(j), VecView(residual));
  }
  basis_pos_.assign(total_, npos);
  for (std::size_t i = 0; i < m_; ++i) {
    art_sign_[i] = residual[i] >= 0.0 ? 1.0 : -1.0;
    basis_[i] = art_begin_ + i;
    basis_pos_[art_begin_ + i] = i;
    status_[art_begin_ + i] = VarStatus::Basic;
    xb_[i] = std::abs(residual[i]);
  }
  // With the sign-adjusted artificial basis, B = diag(art_sign_), so
  // B^{-1} = diag(art_sign_).
  binv_ = Matrix::identity(m_);
  for (std::size_t i = 0; i < m_; ++i) binv_(i, i) = art_sign_[i];
  binv_valid_ = true;
  pivots_since_refactor_ = 0;
}

void SimplexSolver::rebuild_phase2_cost() {
  std::fill(cost2_.begin(), cost2_.end(), 0.0);
  for (const auto& t : model_.objective()) cost2_[t.var] += t.coef;
}

// Column j of the full constraint matrix, materialized on demand.
// Slack/artificial columns are singletons; avoid storing them densely.
double SimplexSolver::col_dot(const Vec& y, std::size_t j) const {
  if (j < n_) {
    return linalg::dot(ConstVecView(y), at_.row_view(j));
  }
  if (j < art_begin_) {
    const std::size_t k = j - slack_begin_;
    return slack_sign_[k] * y[slack_row_[k]];
  }
  const std::size_t k = j - art_begin_;
  return art_sign_[k] * y[k];
}

// d = B^{-1} A_j.
Vec SimplexSolver::compute_d(std::size_t j) const {
  Vec d(m_, 0.0);
  if (j < n_) {
    linalg::gemv(1.0, binv_.cview(), Op::None, at_.row_view(j), 0.0,
                 VecView(d));
  } else if (j < art_begin_) {
    const std::size_t k = j - slack_begin_;
    const std::size_t row = slack_row_[k];
    for (std::size_t i = 0; i < m_; ++i) {
      d[i] = slack_sign_[k] * binv_(i, row);
    }
  } else {
    const std::size_t k = j - art_begin_;
    for (std::size_t i = 0; i < m_; ++i) d[i] = art_sign_[k] * binv_(i, k);
  }
  return d;
}

double SimplexSolver::value(std::size_t j) const {
  switch (status_[j]) {
    case VarStatus::AtLower:
      return lb_[j];
    case VarStatus::AtUpper:
      return ub_[j];
    case VarStatus::Basic:
      return xb_[basis_pos_[j]];
  }
  return 0.0;
}

void SimplexSolver::recompute_xb() {
  // x_B = B^{-1} (b - sum_{nonbasic j} A_j x_j).
  Vec residual = rhs_;
  for (std::size_t j = 0; j < total_; ++j) {
    if (status_[j] == VarStatus::Basic) continue;
    const double v = status_[j] == VarStatus::AtUpper ? ub_[j] : lb_[j];
    if (v == 0.0) continue;
    if (j < n_) {
      linalg::axpy(-v, at_.row_view(j), VecView(residual));
    } else if (j < art_begin_) {
      const std::size_t k = j - slack_begin_;
      residual[slack_row_[k]] -= v * slack_sign_[k];
    } else {
      residual[j - art_begin_] -= v * art_sign_[j - art_begin_];
    }
  }
  linalg::gemv(1.0, binv_.cview(), Op::None, ConstVecView(residual), 0.0,
               VecView(xb_));
}

bool SimplexSolver::refactorize() {
  // Rebuild B^{-1} densely from the basis columns (LU with partial
  // pivoting), discarding the drift accumulated by the eta-style updates.
  Matrix b(m_, m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t j = basis_[i];
    if (j < n_) {
      for (std::size_t k = 0; k < m_; ++k) b(k, i) = at_(j, k);
    } else if (j < art_begin_) {
      const std::size_t k = j - slack_begin_;
      b(slack_row_[k], i) = slack_sign_[k];
    } else {
      const std::size_t k = j - art_begin_;
      b(k, i) = art_sign_[k];
    }
  }
  linalg::LuDecomposition lu(std::move(b));
  if (lu.is_singular()) return false;
  binv_ = lu.inverse();
  binv_valid_ = true;
  pivots_since_refactor_ = 0;
  ++stats_.refactorizations;
  obs::counter_add("simplex.refactorizations", 1.0);
  return true;
}

// Gauss-Jordan update of B^{-1} with pivot d[r], eta-style on row views:
// scale the pivot row, then subtract its multiple from the other rows.
void SimplexSolver::pivot_update(std::size_t r, const Vec& d) {
  const double pivot = d[r];
  const VecView br = binv_.row_view(r);
  linalg::scal(1.0 / pivot, br);
  for (std::size_t i = 0; i < m_; ++i) {
    if (i == r || d[i] == 0.0) continue;
    linalg::axpy(-d[i], br, binv_.row_view(i));
  }
}

// Clamp small drift of basic values onto their bounds.
void SimplexSolver::clamp_basic_drift() {
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t bj = basis_[i];
    if (xb_[i] < lb_[bj] && xb_[i] > lb_[bj] - opt_.feas_tol) {
      xb_[i] = lb_[bj];
    }
    if (ub_[bj] != kInfinity && xb_[i] > ub_[bj] &&
        xb_[i] < ub_[bj] + opt_.feas_tol) {
      xb_[i] = ub_[bj];
    }
  }
}

void SimplexSolver::maybe_refactorize() {
  if (++pivots_since_refactor_ < opt_.refactor_interval) return;
  if (refactorize()) recompute_xb();
}

LpStatus SimplexSolver::optimize(const Vec& cost,
                                 std::size_t& iteration_counter) {
  StatDeltaCounter pivots("simplex.primal_iterations",
                          stats_.primal_iterations);
  const std::size_t max_iters = opt_.max_iterations > 0
                                    ? opt_.max_iterations
                                    : 200 * (m_ + total_) + 2000;
  const std::size_t bland_after = opt_.bland_threshold > 0
                                      ? opt_.bland_threshold
                                      : 20 * (m_ + total_) + 500;
  std::size_t local_iters = 0;
  weights_.assign(total_, 1.0);  // fresh Devex reference framework
  Vec y(m_), rho(m_);

  while (true) {
    if (local_iters++ > max_iters) return LpStatus::IterationLimit;
    ++iteration_counter;
    ++stats_.primal_iterations;
    const bool bland = local_iters > bland_after;

    // y^T = c_B^T B^{-1}, i.e. y = (B^{-1})^T c_B via the transposed gemv.
    for (std::size_t i = 0; i < m_; ++i) cb_[i] = cost[basis_[i]];
    linalg::gemv(1.0, binv_.cview(), Op::Transpose, ConstVecView(cb_), 0.0,
                 VecView(y));

    // Devex pricing: maximize rc^2 / w over the eligible columns; the
    // reference weights approximate steepest-edge norms at rank-1 update
    // cost. Ties break toward the smaller index (deterministic).
    std::size_t entering = total_;
    double best_score = 0.0;
    int enter_dir = 0;
    for (std::size_t j = 0; j < total_; ++j) {
      const VarStatus st = status_[j];
      if (st == VarStatus::Basic) continue;
      if (lb_[j] == ub_[j]) continue;  // fixed variable can never improve
      const double rc = cost[j] - col_dot(y, j);
      double viol = 0.0;
      int dir = 0;
      if (st == VarStatus::AtLower && rc < -opt_.opt_tol) {
        viol = -rc;
        dir = +1;
      } else if (st == VarStatus::AtUpper && rc > opt_.opt_tol) {
        viol = rc;
        dir = -1;
      } else {
        continue;
      }
      if (bland) {  // first eligible index
        entering = j;
        enter_dir = dir;
        break;
      }
      const double score = viol * viol / weights_[j];
      if (score > best_score) {
        best_score = score;
        entering = j;
        enter_dir = dir;
      }
    }
    if (entering == total_) return LpStatus::Optimal;

    const Vec d = compute_d(entering);

    // Ratio test. Moving the entering variable by t in direction enter_dir
    // changes basic values by -t * enter_dir * d. A row tying the current
    // limit (including the bound-flip distance) is preferred when its pivot
    // magnitude is larger — pivoting on the biggest |d_i| among the blocking
    // rows is cheaper in fill and error than a near-degenerate follow-up.
    double t_limit = ub_[entering] - lb_[entering];  // bound-flip distance
    std::ptrdiff_t leaving_row = -1;                 // -1 => bound flip
    bool leaving_to_upper = false;
    double best_pivot_mag = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double g = enter_dir * d[i];
      const std::size_t bj = basis_[i];
      double t = kInfinity;
      bool to_upper = false;
      if (g > opt_.opt_tol) {  // basic variable decreases toward its lb
        t = (xb_[i] - lb_[bj]) / g;
      } else if (g < -opt_.opt_tol) {  // increases toward its ub
        if (ub_[bj] == kInfinity) continue;
        t = (ub_[bj] - xb_[i]) / (-g);
        to_upper = true;
      } else {
        continue;
      }
      t = std::max(t, 0.0);
      const double mag = std::abs(g);
      const bool better =
          t < t_limit - 1e-12 || (t < t_limit + 1e-12 && mag > best_pivot_mag);
      if (better) {
        t_limit = std::min(t, t_limit);
        leaving_row = static_cast<std::ptrdiff_t>(i);
        leaving_to_upper = to_upper;
        best_pivot_mag = mag;
      }
    }

    if (t_limit == kInfinity) return LpStatus::Unbounded;

    if (leaving_row < 0) {
      // Bound flip: the entering variable runs to its opposite bound. No
      // basis change, so the Devex weights are untouched.
      linalg::axpy(-(t_limit * enter_dir), ConstVecView(d), VecView(xb_));
      status_[entering] =
          enter_dir > 0 ? VarStatus::AtUpper : VarStatus::AtLower;
      continue;
    }

    // Basis change.
    const auto r = static_cast<std::size_t>(leaving_row);
    const std::size_t leaving = basis_[r];
    // The Devex update needs the pivot row of B^{-1} before the pivot.
    if (!bland) {
      for (std::size_t i = 0; i < m_; ++i) rho[i] = binv_(r, i);
    }
    linalg::axpy(-(t_limit * enter_dir), ConstVecView(d), VecView(xb_));
    const double entering_value =
        (enter_dir > 0 ? lb_[entering] : ub_[entering]) +
        enter_dir * t_limit;

    pivot_update(r, d);
    basis_[r] = entering;
    basis_pos_[entering] = r;
    basis_pos_[leaving] = npos;
    xb_[r] = entering_value;
    status_[entering] = VarStatus::Basic;
    status_[leaving] =
        leaving_to_upper ? VarStatus::AtUpper : VarStatus::AtLower;
    clamp_basic_drift();

    if (!bland) {
      // Devex reference-weight update (Forrest-Goldfarb): for nonbasic j,
      // w_j <- max(w_j, (alpha_rj / alpha_rq)^2 w_q); the leaving variable
      // re-enters the frame with w = max(w_q / alpha_rq^2, 1).
      const double aq = d[r];
      const double wq = weights_[entering];
      double wmax = 1.0;
      for (std::size_t j = 0; j < total_; ++j) {
        if (status_[j] == VarStatus::Basic || j == leaving) continue;
        if (lb_[j] == ub_[j]) continue;
        const double alpha = col_dot(rho, j);
        if (alpha == 0.0) continue;
        const double cand = (alpha / aq) * (alpha / aq) * wq;
        if (cand > weights_[j]) weights_[j] = cand;
        wmax = std::max(wmax, weights_[j]);
      }
      weights_[leaving] = std::max(wq / (aq * aq), 1.0);
      wmax = std::max(wmax, weights_[leaving]);
      // Degraded frame: restart the reference framework.
      if (wmax > 1e9) weights_.assign(total_, 1.0);
    }
    maybe_refactorize();
  }
}

LpStatus SimplexSolver::dual_optimize(std::size_t& iteration_counter) {
  StatDeltaCounter pivots("simplex.dual_iterations", stats_.dual_iterations);
  const std::size_t max_iters = opt_.dual_iteration_limit > 0
                                    ? opt_.dual_iteration_limit
                                    : 40 * m_ + 400;
  const std::size_t bland_after =
      opt_.bland_threshold > 0 ? opt_.bland_threshold : 10 * m_ + 100;
  const double feas = opt_.feas_tol * std::max(1.0, rhs_scale_);
  std::size_t local_iters = 0;
  Vec y(m_), rho(m_);

  while (true) {
    if (local_iters++ > max_iters) return LpStatus::IterationLimit;
    ++iteration_counter;
    ++stats_.dual_iterations;
    const bool bland = local_iters > bland_after;

    // Leaving row: the basic variable with the worst bound violation
    // (Bland mode: the first violated row).
    std::size_t r = m_;
    double worst = feas;
    bool below = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t bj = basis_[i];
      const double under = lb_[bj] - xb_[i];
      const double over =
          ub_[bj] == kInfinity ? -kInfinity : xb_[i] - ub_[bj];
      const double v = std::max(under, over);
      if (v > worst) {
        worst = v;
        r = i;
        below = under >= over;
        if (bland) break;
      }
    }
    if (r == m_) return LpStatus::Optimal;  // primal feasible + dual feasible

    // Pivot row alpha_j = (e_r^T B^{-1}) A_j, and y for the reduced costs.
    for (std::size_t i = 0; i < m_; ++i) rho[i] = binv_(r, i);
    for (std::size_t i = 0; i < m_; ++i) cb_[i] = cost2_[basis_[i]];
    linalg::gemv(1.0, binv_.cview(), Op::Transpose, ConstVecView(cb_), 0.0,
                 VecView(y));

    // Dual ratio test: among the columns that can push xb_[r] toward its
    // violated bound, pick the minimal |rc| / |alpha| (preserves dual
    // feasibility); ties break toward the larger |alpha|, then the smaller
    // index. In Bland mode the smallest min-ratio index wins outright.
    std::size_t entering = total_;
    double best_ratio = kInfinity;
    double best_mag = 0.0;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::Basic) continue;
      if (lb_[j] == ub_[j]) continue;
      const double alpha = col_dot(rho, j);
      if (std::abs(alpha) <= 1e-9) continue;
      const int dir = status_[j] == VarStatus::AtLower ? +1 : -1;
      // Moving j by t >= 0 in direction dir changes xb_[r] by -t*dir*alpha.
      const double push = -dir * alpha;
      if (below ? push <= 0.0 : push >= 0.0) continue;
      const double rc = cost2_[j] - col_dot(y, j);
      const double ratio =
          std::max(dir > 0 ? rc : -rc, 0.0) / std::abs(alpha);
      const bool better =
          bland ? ratio < best_ratio - 1e-12
                : ratio < best_ratio - 1e-12 ||
                      (ratio < best_ratio + 1e-12 &&
                       std::abs(alpha) > best_mag);
      if (better) {
        best_ratio = std::min(ratio, best_ratio);
        best_mag = std::abs(alpha);
        entering = j;
      }
    }
    if (entering == total_) {
      // Dual unbounded: no column can repair the violated row.
      return LpStatus::Infeasible;
    }

    const Vec d = compute_d(entering);
    const double pivot = d[r];
    if (std::abs(pivot) < 1e-11) {
      // rho and B^{-1} A_j disagree numerically: refactorize and retry; a
      // persistent disagreement runs into the iteration limit.
      if (!refactorize()) return LpStatus::IterationLimit;
      recompute_xb();
      continue;
    }

    const int dir = status_[entering] == VarStatus::AtLower ? +1 : -1;
    const std::size_t leaving = basis_[r];
    const double target = below ? lb_[leaving] : ub_[leaving];
    const double t = std::max((xb_[r] - target) / (dir * pivot), 0.0);

    linalg::axpy(-(t * dir), ConstVecView(d), VecView(xb_));
    const double entering_value =
        (dir > 0 ? lb_[entering] : ub_[entering]) + dir * t;

    pivot_update(r, d);
    basis_[r] = entering;
    basis_pos_[entering] = r;
    basis_pos_[leaving] = npos;
    xb_[r] = entering_value;
    status_[entering] = VarStatus::Basic;
    status_[leaving] = below ? VarStatus::AtLower : VarStatus::AtUpper;
    clamp_basic_drift();
    maybe_refactorize();
  }
}

LpResult SimplexSolver::extract_result(LpStatus status,
                                       std::size_t iterations) const {
  LpResult result;
  result.status = status;
  result.iterations = iterations;
  if (status != LpStatus::Optimal) return result;
  result.x.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) result.x[j] = value(j);
  result.objective = model_.objective_value(result.x);
  return result;
}

LpResult SimplexSolver::cold_fallback(std::size_t iterations_so_far) {
  LpResult result = solve();
  result.iterations += iterations_so_far;
  return result;
}

LpResult SimplexSolver::solve() {
  obs::Span span("simplex/cold_solve");
  obs::counter_add("simplex.cold_solves", 1.0);
  ++stats_.cold_solves;
  have_basis_ = false;
  std::size_t iterations = 0;
  reset_to_artificial_basis();

  // ---- Phase 1: minimize the sum of artificials. ----
  Vec phase1_cost(total_, 0.0);
  for (std::size_t a = 0; a < m_; ++a) phase1_cost[art_begin_ + a] = 1.0;
  const LpStatus s1 = optimize(phase1_cost, iterations);
  if (s1 == LpStatus::IterationLimit) {
    return extract_result(LpStatus::IterationLimit, iterations);
  }
  double art_sum = 0.0;
  for (std::size_t a = 0; a < m_; ++a) art_sum += value(art_begin_ + a);
  if (art_sum > opt_.feas_tol * std::max(1.0, rhs_scale_)) {
    return extract_result(LpStatus::Infeasible, iterations);
  }

  // ---- Phase 2: the real objective, artificials pinned to zero. ----
  for (std::size_t a = 0; a < m_; ++a) {
    ub_[art_begin_ + a] = 0.0;
    // A nonbasic artificial must sit at a bound; both bounds are now 0.
    if (status_[art_begin_ + a] == VarStatus::AtUpper) {
      status_[art_begin_ + a] = VarStatus::AtLower;
    }
  }
  arts_pinned_ = true;
  rebuild_phase2_cost();
  const LpStatus s2 = optimize(cost2_, iterations);
  if (s2 == LpStatus::Optimal) have_basis_ = true;
  return extract_result(s2, iterations);
}

LpResult SimplexSolver::solve_warm() {
  if (!have_basis_) return solve();
  obs::Span span("simplex/warm_solve");
  obs::counter_add("simplex.warm_solves", 1.0);
  ++stats_.warm_solves;
  std::size_t iterations = 0;

  if (!binv_valid_ && !refactorize()) {
    ++stats_.dual_fallbacks;
    obs::counter_add("simplex.dual_fallbacks", 1.0);
    obs::instant("simplex/dual_fallback");
    return cold_fallback(iterations);
  }
  rebuild_phase2_cost();
  recompute_xb();

  // The previous optimal basis stays dual feasible under any bound change
  // (reduced costs do not depend on bounds), so the dual simplex restores
  // primal feasibility directly — no phase 1.
  const LpStatus dual = dual_optimize(iterations);
  if (dual == LpStatus::Infeasible) {
    // The basis itself is still dual feasible and reusable.
    return extract_result(LpStatus::Infeasible, iterations);
  }
  if (dual == LpStatus::IterationLimit) {
    ++stats_.dual_fallbacks;
    obs::counter_add("simplex.dual_fallbacks", 1.0);
    obs::instant("simplex/dual_fallback");
    return cold_fallback(iterations);
  }

  // Primal polish: normally proves optimality in one pricing pass; it only
  // pivots when the objective changed or tolerance drift left a violated
  // reduced cost.
  const LpStatus s2 = optimize(cost2_, iterations);
  if (s2 == LpStatus::Unbounded) {
    have_basis_ = false;
    return extract_result(LpStatus::Unbounded, iterations);
  }
  if (s2 != LpStatus::Optimal) {
    ++stats_.dual_fallbacks;
    obs::counter_add("simplex.dual_fallbacks", 1.0);
    obs::instant("simplex/dual_fallback");
    return cold_fallback(iterations);
  }
  return extract_result(LpStatus::Optimal, iterations);
}

BasisState SimplexSolver::basis() const {
  require(have_basis_, "SimplexSolver::basis: no basis to snapshot");
  BasisState state;
  state.basis = basis_;
  state.status = status_;
  state.art_sign = art_sign_;
  return state;
}

void SimplexSolver::restore(const BasisState& state) {
  require(state.basis.size() == m_ && state.status.size() == total_ &&
              state.art_sign.size() == m_,
          "SimplexSolver::restore: snapshot shape mismatch");
  basis_ = state.basis;
  status_ = state.status;
  art_sign_ = state.art_sign;
  basis_pos_.assign(total_, npos);
  for (std::size_t i = 0; i < m_; ++i) basis_pos_[basis_[i]] = i;
  // Nonbasic statuses may predate the current bounds.
  for (std::size_t j = 0; j < n_; ++j) {
    if (status_[j] == VarStatus::AtUpper && ub_[j] == kInfinity) {
      status_[j] = VarStatus::AtLower;
    }
  }
  have_basis_ = true;
  binv_valid_ = false;  // refactorized lazily by the next solve_warm
}

void SimplexSolver::warm_attach(const BasisState& state) {
  restore(state);
  for (std::size_t a = 0; a < m_; ++a) {
    ub_[art_begin_ + a] = 0.0;
    if (status_[art_begin_ + a] == VarStatus::AtUpper) {
      status_[art_begin_ + a] = VarStatus::AtLower;
    }
  }
  arts_pinned_ = true;
}

LpResult solve_lp(const Model& model, const SimplexOptions& options) {
  require(model.num_variables() > 0, "solve_lp: model has no variables");
  require(model.num_constraints() > 0, "solve_lp: model has no constraints");
  SimplexSolver solver(model, options);
  return solver.solve();
}

}  // namespace aspe::opt
