// Branch-and-bound solver for mixed binary/continuous linear programs.
//
// Together with the simplex this replaces the Gurobi dependency of the
// paper's Algorithm 2 (the MIP attack). The attack uses it as a feasibility
// search: objective 0, stop at the first integer-feasible point — which makes
// depth-first most-fractional branching with nearest-integer-first child
// ordering behave like an LP diving heuristic with backtracking.
//
// Beyond the warm-started tree search, the solver carries four
// independently-toggleable propagation techniques (all off reproduces the
// plain warm-started DFS bit for bit):
//   * a root cut loop: Gomory mixed-integer cuts from the optimal simplex
//     tableau plus knapsack cover cuts from the model rows, selected from a
//     violation-ranked pool and appended as permanent ≤/≥ rows,
//   * reduced-cost bound propagation: once an incumbent exists, nonbasic
//     integer variables whose reduced cost proves they cannot move without
//     passing the incumbent are fixed or tightened (per node, and globally
//     on restarts),
//   * pseudo-cost branching seeded by strong-branching probes at shallow
//     depths, with deterministic index tie-breaks,
//   * best-first node selection (priority queue on the parent LP bound with
//     a DFS plunge phase) and optional restarts that replay learned global
//     bound tightenings.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "opt/model.hpp"
#include "opt/simplex.hpp"

namespace aspe::opt {

enum class MipStatus {
  Optimal,        // proved optimal (search exhausted)
  Feasible,       // integer-feasible found, search stopped early
  Infeasible,     // proved infeasible
  NodeLimit,      // node budget exhausted without a feasible point
  TimeLimit,      // wall-clock budget exhausted without a feasible point
  NotRun,         // the branch-and-bound search was never invoked
  Heuristic,      // feasible point from a primal heuristic; search skipped
};

/// How open nodes are ordered.
enum class NodeSelection {
  /// LIFO stack, near child on top — the historical diving DFS.
  DepthFirst,
  /// Priority queue on the parent LP bound (lowest first, FIFO tie-break)
  /// with a bounded DFS plunge after every expansion so incumbents still
  /// arrive early.
  BestFirst,
};

struct MipResult {
  MipStatus status = MipStatus::NotRun;
  Vec x;                   // best integer-feasible point (when found)
  double objective = 0.0;  // objective at x
  std::size_t nodes_explored = 0;
  double seconds = 0.0;
  std::size_t simplex_iterations = 0;  // total LP pivots across all nodes
  std::size_t lp_warm_solves = 0;      // nodes re-optimized by dual simplex
  std::size_t lp_cold_solves = 0;      // nodes solved from the artificial basis
  std::size_t cuts_added = 0;          // rows appended by the root cut loop
  std::size_t rc_fixings = 0;          // bounds tightened by reduced costs
  std::size_t strong_branches = 0;     // strong-branching LP probes
  std::size_t restarts = 0;            // search restarts performed

  [[nodiscard]] bool has_solution() const {
    return status == MipStatus::Optimal || status == MipStatus::Feasible;
  }
};

struct MipOptions {
  /// Stop at the first integer-feasible solution (the attack's mode).
  bool first_feasible = false;
  /// Run presolve (bound tightening) on the root model before the search.
  bool use_presolve = true;
  /// Warm-start each node's LP from its parent's basis via the dual simplex
  /// (cold fallback when the dual iteration limit trips). Off reproduces the
  /// historical cold-solve-per-node behaviour.
  bool warm_start = true;
  std::size_t max_nodes = 200000;
  double time_limit_seconds = 60.0;
  double int_tol = 1e-6;
  SimplexOptions lp;

  // --- root cutting planes ------------------------------------------------
  /// Separate Gomory mixed-integer cuts from the optimal root tableau.
  bool gomory_cuts = false;
  /// Separate knapsack cover cuts from the model's ≤/≥ rows (continuous
  /// terms relaxed to their bounds, coefficients tightened by presolve-style
  /// activity analysis).
  bool cover_cuts = false;
  /// Maximum separate-append-reoptimize rounds at the root.
  std::size_t max_cut_rounds = 8;
  /// Violation-ranked cuts appended per round (the rest stay in the pool
  /// and are re-scored against the next fractional point).
  std::size_t max_cuts_per_round = 20;
  /// Minimum efficacy (violation / coefficient norm) for a pool cut.
  double cut_min_violation = 1e-4;

  // --- reduced-cost propagation -------------------------------------------
  /// After every node LP solved under an incumbent, fix or tighten nonbasic
  /// integer variables whose reduced cost proves they cannot participate in
  /// a better solution; applied globally when a restart returns to the root.
  bool reduced_cost_fixing = false;

  // --- branching ----------------------------------------------------------
  /// Branch on pseudo-cost scores (product of estimated up/down objective
  /// gains) instead of most-fractional. Uninitialized variables at shallow
  /// depth are seeded by strong-branching probes; ties break on
  /// fractionality, then the smaller index — deterministic at any thread
  /// count.
  bool pseudo_cost_branching = false;
  /// Probe depth cutoff: nodes at depth < strong_branch_depth strong-branch
  /// their unreliable candidates.
  std::size_t strong_branch_depth = 4;
  /// Maximum probed candidates per node (most-fractional first).
  std::size_t strong_branch_candidates = 8;
  /// Pseudo-cost observations per direction before a variable's estimate is
  /// trusted without probing.
  std::size_t reliability = 2;

  // --- node selection -----------------------------------------------------
  NodeSelection node_selection = NodeSelection::DepthFirst;
  /// Consecutive near-child dives taken after each best-first expansion
  /// before returning to the queue.
  std::size_t plunge_depth = 8;

  // --- restarts -----------------------------------------------------------
  /// Abandon the open tree when it stalls, replay the global bound
  /// tightenings learned so far (root reduced-cost fixings, depth-0 probe
  /// fixings), re-run the root cut loop and start over with the retained
  /// pseudo-costs.
  bool restarts = false;
  /// Nodes without incumbent improvement before a restart fires (0 = auto).
  std::size_t restart_interval = 0;
  /// Hard cap on restarts per solve.
  std::size_t max_restarts = 2;
};

/// A separated cut over structural variables. Pool cuts carry their
/// efficacy-ranking metadata (coefficient norm, generation sequence) so a
/// replayed pool re-scores exactly as the original run did; cuts already
/// appended as model rows only need terms/sense/rhs.
struct PoolCut {
  LinExpr terms;  // ascending var index, no duplicates
  Sense sense = Sense::GreaterEqual;
  double rhs = 0.0;
  double norm = 1.0;    // 2-norm of the coefficients
  std::size_t seq = 0;  // generation order — deterministic tie-break
};

/// Snapshot of one root cut loop, attachable to a later solve of a
/// *structurally identical, freshly built* model (same variables, rows and
/// coefficients — the caller keys snapshots, e.g. by a model digest).
///
/// On the first solve (has_basis == false at entry) the snapshot is filled:
/// the cuts appended as model rows, the leftover un-appended pool, the cut
/// sequence counter, the global bound tightenings recorded during the loop,
/// and the root basis. On a later solve the snapshot replays all of that and
/// the first cut loop is skipped, so the search resumes from a state
/// bit-identical to the exporting run's — warm results equal cold results
/// bit for bit.
struct WarmCutPool {
  std::vector<PoolCut> applied;          // cuts appended as model rows
  std::vector<PoolCut> pool;             // separated but never appended
  std::size_t cut_seq = 0;               // next cut generation number
  std::vector<GlobalBound> tightenings;  // global fixings from the loop
  BasisState basis;                      // root basis after the cut loop
  bool has_basis = false;
};

/// Solve a mixed-integer linear program by LP-based branch and bound.
[[nodiscard]] MipResult solve_mip(Model model, const MipOptions& options = {});

/// In-place variant sharing a caller-owned solver (e.g. the MIP attack's
/// root-LP solver, whose basis then warm-starts the root node). Presolve
/// mutates `model` bounds only; the root cut loop appends rows to `model`
/// (and mirrors them into `solver`), which stay valid for later solves.
/// `solver` must have been built over `model`.
[[nodiscard]] MipResult solve_mip(Model& model, SimplexSolver& solver,
                                  const MipOptions& options = {});

/// Variant with a persistent root-state snapshot (see WarmCutPool). When
/// `warm` is non-null and empty it is filled from this run's first cut loop;
/// when it already carries a basis the root state is replayed instead of
/// recomputed. Either way the solver state entering the tree search is
/// canonicalized (basis restored, factorization rebuilt lazily), so a run
/// that exports, a run that attaches, and a run with an empty throwaway
/// snapshot all produce bit-identical results. Passing nullptr reproduces
/// the plain two-argument overload exactly.
[[nodiscard]] MipResult solve_mip(Model& model, SimplexSolver& solver,
                                  const MipOptions& options, WarmCutPool* warm);

}  // namespace aspe::opt
