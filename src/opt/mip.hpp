// Branch-and-bound solver for mixed binary/continuous linear programs.
//
// Together with the simplex this replaces the Gurobi dependency of the
// paper's Algorithm 2 (the MIP attack). The attack uses it as a feasibility
// search: objective 0, stop at the first integer-feasible point — which makes
// depth-first most-fractional branching with nearest-integer-first child
// ordering behave like an LP diving heuristic with backtracking.
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"
#include "opt/model.hpp"
#include "opt/simplex.hpp"

namespace aspe::opt {

enum class MipStatus {
  Optimal,        // proved optimal (search exhausted)
  Feasible,       // integer-feasible found, search stopped early
  Infeasible,     // proved infeasible
  NodeLimit,      // node budget exhausted without a feasible point
  TimeLimit,      // wall-clock budget exhausted without a feasible point
  NotRun,         // the branch-and-bound search was never invoked
  Heuristic,      // feasible point from a primal heuristic; search skipped
};

struct MipResult {
  MipStatus status = MipStatus::NotRun;
  Vec x;                   // best integer-feasible point (when found)
  double objective = 0.0;  // objective at x
  std::size_t nodes_explored = 0;
  double seconds = 0.0;
  std::size_t simplex_iterations = 0;  // total LP pivots across all nodes
  std::size_t lp_warm_solves = 0;      // nodes re-optimized by dual simplex
  std::size_t lp_cold_solves = 0;      // nodes solved from the artificial basis

  [[nodiscard]] bool has_solution() const {
    return status == MipStatus::Optimal || status == MipStatus::Feasible;
  }
};

struct MipOptions {
  /// Stop at the first integer-feasible solution (the attack's mode).
  bool first_feasible = false;
  /// Run presolve (bound tightening) on the root model before the search.
  bool use_presolve = true;
  /// Warm-start each node's LP from its parent's basis via the dual simplex
  /// (cold fallback when the dual iteration limit trips). Off reproduces the
  /// historical cold-solve-per-node behaviour.
  bool warm_start = true;
  std::size_t max_nodes = 200000;
  double time_limit_seconds = 60.0;
  double int_tol = 1e-6;
  SimplexOptions lp;
};

/// Solve a mixed-integer linear program by LP-based branch and bound.
[[nodiscard]] MipResult solve_mip(Model model, const MipOptions& options = {});

/// In-place variant sharing a caller-owned solver (e.g. the MIP attack's
/// root-LP solver, whose basis then warm-starts the root node). Presolve
/// mutates `model` bounds only; `solver` must have been built over `model`.
[[nodiscard]] MipResult solve_mip(Model& model, SimplexSolver& solver,
                                  const MipOptions& options = {});

}  // namespace aspe::opt
