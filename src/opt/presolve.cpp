#include "opt/presolve.hpp"

#include <cmath>

namespace aspe::opt {

namespace {

/// Minimum and maximum of a linear expression over the variable box.
struct Activity {
  double lo = 0.0;
  double hi = 0.0;
};

Activity row_activity(const Model& m, const LinExpr& terms) {
  Activity act;
  for (const auto& t : terms) {
    const Variable& v = m.variable(t.var);
    if (t.coef >= 0.0) {
      act.lo += t.coef * v.lb;
      act.hi += t.coef * v.ub;  // may be +inf
    } else {
      act.lo += t.coef * v.ub;  // may be -inf
      act.hi += t.coef * v.lb;
    }
  }
  return act;
}

}  // namespace

PresolveResult presolve(Model& model, const PresolveOptions& options) {
  PresolveResult result;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    result.rounds = round + 1;
    bool changed = false;

    for (std::size_t ci = 0; ci < model.num_constraints(); ++ci) {
      const Constraint& row = model.constraint(ci);
      const Activity act = row_activity(model, row.terms);

      // Infeasibility / redundancy detection.
      const double tol = options.feas_tol *
                         (1.0 + std::abs(row.rhs));
      switch (row.sense) {
        case Sense::LessEqual:
          if (act.lo > row.rhs + tol) {
            result.infeasible = true;
            return result;
          }
          if (act.hi <= row.rhs + tol) ++result.redundant_rows;
          break;
        case Sense::GreaterEqual:
          if (act.hi < row.rhs - tol) {
            result.infeasible = true;
            return result;
          }
          if (act.lo >= row.rhs - tol) ++result.redundant_rows;
          break;
        case Sense::Equal:
          if (act.lo > row.rhs + tol || act.hi < row.rhs - tol) {
            result.infeasible = true;
            return result;
          }
          break;
      }

      // Bound tightening: for each variable, the row minus the best-case
      // activity of the *other* terms bounds coef * x.
      for (const auto& t : row.terms) {
        if (t.coef == 0.0) continue;
        const Variable& v = model.variable(t.var);
        const double self_lo = t.coef >= 0.0 ? t.coef * v.lb : t.coef * v.ub;
        const double self_hi = t.coef >= 0.0 ? t.coef * v.ub : t.coef * v.lb;
        const double rest_lo = act.lo - self_lo;
        const double rest_hi = act.hi - self_hi;

        double new_lb = v.lb;
        double new_ub = v.ub;
        // <= : coef*x <= rhs - rest_lo
        if (row.sense != Sense::GreaterEqual && std::isfinite(rest_lo)) {
          const double cap = row.rhs - rest_lo;
          if (t.coef > 0.0) {
            new_ub = std::min(new_ub, cap / t.coef);
          } else {
            new_lb = std::max(new_lb, cap / t.coef);
          }
        }
        // >= : coef*x >= rhs - rest_hi
        if (row.sense != Sense::LessEqual && std::isfinite(rest_hi)) {
          const double floor_v = row.rhs - rest_hi;
          if (t.coef > 0.0) {
            new_lb = std::max(new_lb, floor_v / t.coef);
          } else {
            new_ub = std::min(new_ub, floor_v / t.coef);
          }
        }
        if (v.type != VarType::Continuous) {
          new_lb = std::ceil(new_lb - options.feas_tol);
          new_ub = std::floor(new_ub + options.feas_tol);
        }
        const bool tighter_lb = new_lb > v.lb + options.feas_tol;
        const bool tighter_ub = new_ub < v.ub - options.feas_tol;
        if (!tighter_lb && !tighter_ub) continue;
        if (new_lb > new_ub + options.feas_tol) {
          result.infeasible = true;
          return result;
        }
        model.set_bounds(t.var, std::max(v.lb, new_lb),
                         std::min(v.ub, std::max(new_ub, new_lb)));
        ++result.bounds_tightened;
        changed = true;
      }
    }
    if (!changed) break;
  }

  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (v.ub - v.lb <= options.feas_tol) ++result.variables_fixed;
  }
  return result;
}

}  // namespace aspe::opt
