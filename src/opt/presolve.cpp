#include "opt/presolve.hpp"

#include <cmath>

#include "linalg/matrix_view.hpp"

namespace aspe::opt {

namespace {

using linalg::ConstVecView;

/// Minimum and maximum of a linear expression over the variable box.
struct Activity {
  double lo = 0.0;
  double hi = 0.0;
};

/// Activity against dense bound mirrors read through views — one indexed
/// load per term instead of a Variable struct lookup.
Activity row_activity(const LinExpr& terms, ConstVecView lb, ConstVecView ub) {
  Activity act;
  for (const auto& t : terms) {
    if (t.coef >= 0.0) {
      act.lo += t.coef * lb[t.var];
      act.hi += t.coef * ub[t.var];  // may be +inf
    } else {
      act.lo += t.coef * ub[t.var];  // may be -inf
      act.hi += t.coef * lb[t.var];
    }
  }
  return act;
}

}  // namespace

PresolveResult presolve(Model& model, const PresolveOptions& options) {
  PresolveResult result;

  // Dense lb/ub mirrors of the variable box, kept in sync with every
  // set_bounds call so row_activity never walks the Variable table.
  const std::size_t nvars = model.num_variables();
  Vec lb(nvars), ub(nvars);
  for (std::size_t j = 0; j < nvars; ++j) {
    lb[j] = model.variable(j).lb;
    ub[j] = model.variable(j).ub;
  }
  const ConstVecView lbv(lb);
  const ConstVecView ubv(ub);

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    result.rounds = round + 1;
    bool changed = false;

    for (std::size_t ci = 0; ci < model.num_constraints(); ++ci) {
      const Constraint& row = model.constraint(ci);
      const Activity act = row_activity(row.terms, lbv, ubv);

      // Infeasibility / redundancy detection.
      const double tol = options.feas_tol *
                         (1.0 + std::abs(row.rhs));
      switch (row.sense) {
        case Sense::LessEqual:
          if (act.lo > row.rhs + tol) {
            result.infeasible = true;
            return result;
          }
          if (act.hi <= row.rhs + tol) ++result.redundant_rows;
          break;
        case Sense::GreaterEqual:
          if (act.hi < row.rhs - tol) {
            result.infeasible = true;
            return result;
          }
          if (act.lo >= row.rhs - tol) ++result.redundant_rows;
          break;
        case Sense::Equal:
          if (act.lo > row.rhs + tol || act.hi < row.rhs - tol) {
            result.infeasible = true;
            return result;
          }
          break;
      }

      // Bound tightening: for each variable, the row minus the best-case
      // activity of the *other* terms bounds coef * x.
      for (const auto& t : row.terms) {
        if (t.coef == 0.0) continue;
        const double vlb = lb[t.var];
        const double vub = ub[t.var];
        const double self_lo = t.coef >= 0.0 ? t.coef * vlb : t.coef * vub;
        const double self_hi = t.coef >= 0.0 ? t.coef * vub : t.coef * vlb;
        const double rest_lo = act.lo - self_lo;
        const double rest_hi = act.hi - self_hi;

        double new_lb = vlb;
        double new_ub = vub;
        // <= : coef*x <= rhs - rest_lo
        if (row.sense != Sense::GreaterEqual && std::isfinite(rest_lo)) {
          const double cap = row.rhs - rest_lo;
          if (t.coef > 0.0) {
            new_ub = std::min(new_ub, cap / t.coef);
          } else {
            new_lb = std::max(new_lb, cap / t.coef);
          }
        }
        // >= : coef*x >= rhs - rest_hi
        if (row.sense != Sense::LessEqual && std::isfinite(rest_hi)) {
          const double floor_v = row.rhs - rest_hi;
          if (t.coef > 0.0) {
            new_lb = std::max(new_lb, floor_v / t.coef);
          } else {
            new_ub = std::min(new_ub, floor_v / t.coef);
          }
        }
        if (model.variable(t.var).type != VarType::Continuous) {
          new_lb = std::ceil(new_lb - options.feas_tol);
          new_ub = std::floor(new_ub + options.feas_tol);
        }
        const bool tighter_lb = new_lb > vlb + options.feas_tol;
        const bool tighter_ub = new_ub < vub - options.feas_tol;
        if (!tighter_lb && !tighter_ub) continue;
        if (new_lb > new_ub + options.feas_tol) {
          result.infeasible = true;
          return result;
        }
        lb[t.var] = std::max(vlb, new_lb);
        ub[t.var] = std::min(vub, std::max(new_ub, new_lb));
        model.set_bounds(t.var, lb[t.var], ub[t.var]);
        ++result.bounds_tightened;
        changed = true;
      }
    }
    if (!changed) break;
  }

  for (std::size_t j = 0; j < nvars; ++j) {
    if (ub[j] - lb[j] <= options.feas_tol) ++result.variables_fixed;
  }
  return result;
}

std::optional<BinaryKnapsack> binary_knapsack_relaxation(const Model& model,
                                                         std::size_t row) {
  require(row < model.num_constraints(),
          "binary_knapsack_relaxation: unknown row");
  const Constraint& c = model.constraint(row);
  // Orient the row as <=. GreaterEqual is negated; Equal keeps its <= half.
  const double dir = c.sense == Sense::GreaterEqual ? -1.0 : 1.0;

  // Merge duplicate variable indices first (Model allows and sums them).
  std::vector<std::size_t> vars;
  Vec coefs;
  for (const auto& t : c.terms) {
    const double a = dir * t.coef;
    if (a == 0.0) continue;
    bool merged = false;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == t.var) {
        coefs[i] += a;
        merged = true;
        break;
      }
    }
    if (!merged) {
      vars.push_back(t.var);
      coefs.push_back(a);
    }
  }

  BinaryKnapsack ks;
  ks.capacity = dir * c.rhs;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const Variable& v = model.variable(vars[i]);
    const bool binary = v.type != VarType::Continuous && v.lb >= -1e-9 &&
                        v.ub <= 1.0 + 1e-9;
    if (!binary) {
      // Relax to the term's best case (its minimum over the box); the row
      // then holds a fortiori for the binary part.
      const double best =
          coefs[i] >= 0.0 ? coefs[i] * v.lb : coefs[i] * v.ub;
      if (!std::isfinite(best)) return std::nullopt;
      ks.capacity -= best;
      continue;
    }
    if (v.ub - v.lb < 0.5) {
      // Already fixed: fold the constant in.
      ks.capacity -= coefs[i] * v.lb;
      continue;
    }
    if (coefs[i] > 0.0) {
      ks.vars.push_back(vars[i]);
      ks.weights.push_back(coefs[i]);
      ks.complemented.push_back(false);
    } else {
      // a*x = -|a|*x = |a|*(1-x) - |a|: complement and shift the capacity.
      ks.vars.push_back(vars[i]);
      ks.weights.push_back(-coefs[i]);
      ks.complemented.push_back(true);
      ks.capacity -= coefs[i];  // capacity += |a|
    }
  }
  if (ks.capacity < -1e-9) return std::nullopt;  // row infeasible or numeric

  // Items whose weight alone exceeds the capacity are forced to zero in
  // every integer point — peel them off as fixings.
  for (std::size_t i = 0; i < ks.vars.size();) {
    if (ks.weights[i] > ks.capacity + 1e-9) {
      ks.forced_zero_vars.push_back(ks.vars[i]);
      ks.forced_zero_complemented.push_back(ks.complemented[i]);
      ks.vars.erase(ks.vars.begin() + static_cast<std::ptrdiff_t>(i));
      ks.weights.erase(ks.weights.begin() + static_cast<std::ptrdiff_t>(i));
      ks.complemented.erase(ks.complemented.begin() +
                            static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  if (ks.vars.size() < 2 && ks.forced_zero_vars.empty()) return std::nullopt;
  double total = 0.0;
  for (double w : ks.weights) total += w;
  if (total <= ks.capacity + 1e-9 && ks.forced_zero_vars.empty()) {
    return std::nullopt;  // no cover can exceed the capacity
  }
  return ks;
}

}  // namespace aspe::opt
