#include "opt/mip.hpp"

#include <cmath>
#include <vector>

#include "common/stopwatch.hpp"
#include "opt/presolve.hpp"

namespace aspe::opt {

namespace {

struct Node {
  std::size_t var;
  double lb;
  double ub;
  std::size_t depth;
};

/// Index of the integer variable whose LP value is most fractional;
/// model.num_variables() when the point is integral.
std::size_t most_fractional(const Model& model, const Vec& x, double tol) {
  std::size_t best = model.num_variables();
  double best_frac = tol;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).type == VarType::Continuous) continue;
    const double f = x[j] - std::floor(x[j]);
    const double frac = std::min(f, 1.0 - f);
    if (frac > best_frac) {
      best_frac = frac;
      best = j;
    }
  }
  return best;
}

}  // namespace

MipResult solve_mip(Model model, const MipOptions& options) {
  MipResult result;
  Stopwatch watch;

  if (options.use_presolve) {
    const PresolveResult pre = presolve(model);
    if (pre.infeasible) {
      result.status = MipStatus::Infeasible;
      result.seconds = watch.seconds();
      return result;
    }
  }

  // Remember original bounds so nodes can restore them after backtracking.
  const std::size_t n = model.num_variables();
  Vec orig_lb(n), orig_ub(n);
  for (std::size_t j = 0; j < n; ++j) {
    orig_lb[j] = model.variable(j).lb;
    orig_ub[j] = model.variable(j).ub;
  }

  double incumbent_obj = kInfinity;
  bool have_incumbent = false;
  bool search_truncated = false;

  // Depth-first stack. Each entry carries the *complete* bound overrides of
  // its path (small: only branched variables differ from the originals).
  struct StackEntry {
    std::vector<Node> path;  // bound changes from root to this node
  };
  std::vector<StackEntry> stack;
  stack.push_back({});

  while (!stack.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      search_truncated = true;
      break;
    }
    if (watch.seconds() > options.time_limit_seconds) {
      search_truncated = true;
      break;
    }
    const StackEntry entry = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    // Apply this node's bounds.
    for (std::size_t j = 0; j < n; ++j) model.set_bounds(j, orig_lb[j], orig_ub[j]);
    bool bounds_ok = true;
    for (const auto& nd : entry.path) {
      if (nd.lb > nd.ub) {
        bounds_ok = false;
        break;
      }
      model.set_bounds(nd.var, nd.lb, nd.ub);
    }
    if (!bounds_ok) continue;

    const LpResult lp = solve_lp(model, options.lp);
    if (lp.status == LpStatus::Infeasible) continue;
    if (lp.status == LpStatus::IterationLimit) {
      search_truncated = true;
      continue;
    }
    if (lp.status == LpStatus::Unbounded) {
      // Unbounded relaxation at the root of a minimization with integer
      // variables: treat as unbounded problem -> report via exception.
      throw NumericalError("solve_mip: LP relaxation is unbounded");
    }

    // Bound pruning.
    if (have_incumbent && lp.objective >= incumbent_obj - 1e-9) continue;

    const std::size_t frac = most_fractional(model, lp.x, options.int_tol);
    if (frac == n) {
      // Integer feasible.
      if (!have_incumbent || lp.objective < incumbent_obj) {
        have_incumbent = true;
        incumbent_obj = lp.objective;
        result.x = lp.x;
        // Snap integer variables exactly.
        for (std::size_t j = 0; j < n; ++j) {
          if (model.variable(j).type != VarType::Continuous) {
            result.x[j] = std::round(result.x[j]);
          }
        }
        result.objective = incumbent_obj;
      }
      if (options.first_feasible) {
        result.status = MipStatus::Feasible;
        result.seconds = watch.seconds();
        return result;
      }
      continue;
    }

    // Branch. Push the far child first so the near (nearest-integer) child is
    // explored next -> diving behaviour.
    const double v = lp.x[frac];
    const double floor_v = std::floor(v);
    const double ceil_v = floor_v + 1.0;
    const std::size_t depth = entry.path.size();

    // `model` currently carries this node's bounds, so its variable bounds
    // are the effective ones to intersect with.
    const double eff_lb = model.variable(frac).lb;
    const double eff_ub = model.variable(frac).ub;
    StackEntry down = entry;  // x_frac <= floor(v)
    down.path.push_back({frac, eff_lb, floor_v, depth});
    StackEntry up = entry;  // x_frac >= ceil(v)
    up.path.push_back({frac, ceil_v, eff_ub, depth});

    const bool near_is_up = (v - floor_v) >= 0.5;
    if (near_is_up) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  result.seconds = watch.seconds();
  if (have_incumbent) {
    result.status = search_truncated ? MipStatus::Feasible : MipStatus::Optimal;
  } else if (search_truncated) {
    result.status = watch.seconds() > options.time_limit_seconds
                        ? MipStatus::TimeLimit
                        : MipStatus::NodeLimit;
  } else {
    result.status = MipStatus::Infeasible;
  }
  if (have_incumbent) result.objective = incumbent_obj;
  return result;
}

}  // namespace aspe::opt
