#include "opt/mip.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"
#include "obs/obs.hpp"
#include "opt/presolve.hpp"

namespace aspe::opt {

namespace {

/// Index of the integer variable whose LP value is most fractional;
/// model.num_variables() when the point is integral.
std::size_t most_fractional(const Model& model, const Vec& x, double tol) {
  std::size_t best = model.num_variables();
  double best_frac = tol;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).type == VarType::Continuous) continue;
    const double f = x[j] - std::floor(x[j]);
    const double frac = std::min(f, 1.0 - f);
    if (frac > best_frac) {
      best_frac = frac;
      best = j;
    }
  }
  return best;
}

}  // namespace

MipResult solve_mip(Model model, const MipOptions& options) {
  SimplexSolver solver(model, options.lp);
  return solve_mip(model, solver, options);
}

MipResult solve_mip(Model& model, SimplexSolver& solver,
                    const MipOptions& options) {
  MipResult result;
  Stopwatch watch;
  obs::Span search_span("opt/solve_mip");
  const SolverStats entry_stats = solver.stats();

  // B&B node-event tallies, accumulated locally (the search is serial) and
  // emitted as counters once at exit — near-zero cost per node.
  std::size_t pruned_parent_bound = 0;
  std::size_t pruned_bound = 0;
  std::size_t infeasible_nodes = 0;
  std::size_t incumbents_found = 0;
  std::size_t max_depth = 0;

  // Bound deltas applied to the solver on the way down the tree; rewound on
  // backtrack and fully on exit (the caller keeps a usable solver).
  struct TrailEntry {
    std::size_t var;
    double lb, ub;  // solver bounds before this node's delta
  };
  std::vector<TrailEntry> trail;

  const auto finalize = [&](MipResult& r) {
    while (!trail.empty()) {
      const TrailEntry& t = trail.back();
      solver.set_bounds(t.var, t.lb, t.ub);
      trail.pop_back();
    }
    r.seconds = watch.seconds();
    const SolverStats& s = solver.stats();
    r.lp_warm_solves = s.warm_solves - entry_stats.warm_solves;
    r.lp_cold_solves = s.cold_solves - entry_stats.cold_solves;
    if (obs::enabled()) {
      obs::counter_add("mip.bnb.nodes",
                       static_cast<double>(r.nodes_explored));
      obs::counter_add("mip.bnb.simplex_iterations",
                       static_cast<double>(r.simplex_iterations));
      obs::counter_add("mip.bnb.warm_solves",
                       static_cast<double>(r.lp_warm_solves));
      obs::counter_add("mip.bnb.cold_solves",
                       static_cast<double>(r.lp_cold_solves));
      obs::counter_add("mip.bnb.dual_fallbacks",
                       static_cast<double>(s.dual_fallbacks -
                                           entry_stats.dual_fallbacks));
      obs::counter_add("mip.bnb.pruned_parent_bound",
                       static_cast<double>(pruned_parent_bound));
      obs::counter_add("mip.bnb.pruned_bound",
                       static_cast<double>(pruned_bound));
      obs::counter_add("mip.bnb.infeasible_nodes",
                       static_cast<double>(infeasible_nodes));
      obs::counter_add("mip.bnb.incumbents",
                       static_cast<double>(incumbents_found));
      obs::gauge_set("mip.bnb.max_depth", static_cast<double>(max_depth));
    }
  };

  if (options.use_presolve) {
    const PresolveResult pre = presolve(model);
    if (pre.infeasible) {
      result.status = MipStatus::Infeasible;
      finalize(result);
      return result;
    }
    solver.sync_bounds();
  }

  const std::size_t n = model.num_variables();
  double incumbent_obj = kInfinity;
  bool have_incumbent = false;
  bool search_truncated = false;

  // Depth-first search over bound deltas. Each frame carries ONE bound change
  // relative to its parent; popping a frame rewinds exactly the abandoned
  // suffix of the path (DFS order guarantees the trail prefix below `depth`
  // is the new node's own ancestor path). No O(n) bound reset per node.
  constexpr std::size_t kRoot = static_cast<std::size_t>(-1);
  struct Frame {
    std::size_t var = kRoot;  // branching variable (kRoot for the root node)
    double lb = 0.0, ub = 0.0;
    std::size_t depth = 0;  // trail length before this node's delta
    std::shared_ptr<const BasisState> warm;  // parent's optimal basis
    double parent_bound = -kInfinity;        // parent LP objective
  };

  std::vector<Frame> stack;
  stack.push_back(Frame{});
  // Snapshot the solver's in-memory basis currently corresponds to; when a
  // dive child's warm pointer matches, the restore is skipped entirely.
  std::shared_ptr<const BasisState> live;

  while (!stack.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      search_truncated = true;
      break;
    }
    if (watch.seconds() > options.time_limit_seconds) {
      search_truncated = true;
      break;
    }
    const Frame frame = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;
    max_depth = std::max(max_depth, frame.depth);

    // Rewind to this node's branch point, then apply its single delta.
    while (trail.size() > frame.depth) {
      const TrailEntry& t = trail.back();
      solver.set_bounds(t.var, t.lb, t.ub);
      trail.pop_back();
    }
    if (frame.var != kRoot) {
      if (frame.lb > frame.ub) continue;  // empty branch interval
      trail.push_back({frame.var, solver.lower_bound(frame.var),
                       solver.upper_bound(frame.var)});
      solver.set_bounds(frame.var, frame.lb, frame.ub);
    }

    // The child LP bound can only be worse than the parent's: prune on the
    // parent objective before paying for the solve.
    if (have_incumbent && frame.parent_bound >= incumbent_obj - 1e-9) {
      ++pruned_parent_bound;
      continue;
    }

    LpResult lp;
    if (options.warm_start) {
      if (frame.warm && live != frame.warm) solver.restore(*frame.warm);
      lp = solver.solve_warm();  // cold when no basis exists yet
    } else {
      lp = solver.solve();
    }
    live.reset();
    result.simplex_iterations += lp.iterations;

    if (lp.status == LpStatus::Infeasible) {
      ++infeasible_nodes;
      continue;
    }
    if (lp.status == LpStatus::IterationLimit) {
      search_truncated = true;
      continue;
    }
    if (lp.status == LpStatus::Unbounded) {
      // Unbounded relaxation at the root of a minimization with integer
      // variables: treat as unbounded problem -> report via exception.
      throw NumericalError("solve_mip: LP relaxation is unbounded");
    }

    // Bound pruning.
    if (have_incumbent && lp.objective >= incumbent_obj - 1e-9) {
      ++pruned_bound;
      continue;
    }

    const std::size_t frac = most_fractional(model, lp.x, options.int_tol);
    if (frac == n) {
      // Integer feasible.
      if (!have_incumbent || lp.objective < incumbent_obj) {
        have_incumbent = true;
        ++incumbents_found;
        if (obs::enabled()) obs::instant("mip/incumbent");
        incumbent_obj = lp.objective;
        result.x = lp.x;
        // Snap integer variables exactly.
        for (std::size_t j = 0; j < n; ++j) {
          if (model.variable(j).type != VarType::Continuous) {
            result.x[j] = std::round(result.x[j]);
          }
        }
        result.objective = incumbent_obj;
      }
      if (options.first_feasible) {
        result.status = MipStatus::Feasible;
        finalize(result);
        return result;
      }
      continue;
    }

    // Branch. Push the far child first so the near (nearest-integer) child is
    // explored next -> diving behaviour. Both children share one snapshot of
    // this node's optimal basis; the near child finds it still live in the
    // solver and dives without a restore.
    const double v = lp.x[frac];
    const double floor_v = std::floor(v);
    const double ceil_v = floor_v + 1.0;
    const double eff_lb = solver.lower_bound(frac);
    const double eff_ub = solver.upper_bound(frac);
    std::shared_ptr<const BasisState> snap;
    if (options.warm_start) {
      snap = std::make_shared<const BasisState>(solver.basis());
      live = snap;
    }
    const std::size_t child_depth = trail.size();
    Frame down{frac, eff_lb, floor_v, child_depth, snap, lp.objective};
    Frame up{frac, ceil_v, eff_ub, child_depth, std::move(snap), lp.objective};

    const bool near_is_up = (v - floor_v) >= 0.5;
    if (near_is_up) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  finalize(result);
  if (have_incumbent) {
    result.status = search_truncated ? MipStatus::Feasible : MipStatus::Optimal;
  } else if (search_truncated) {
    result.status = watch.seconds() > options.time_limit_seconds
                        ? MipStatus::TimeLimit
                        : MipStatus::NodeLimit;
  } else {
    result.status = MipStatus::Infeasible;
  }
  if (have_incumbent) result.objective = incumbent_obj;
  return result;
}

}  // namespace aspe::opt
