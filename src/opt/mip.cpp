#include "opt/mip.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"
#include "obs/obs.hpp"
#include "opt/presolve.hpp"

namespace aspe::opt {

namespace {

/// Index of the integer variable whose LP value is most fractional;
/// model.num_variables() when the point is integral.
std::size_t most_fractional(const Model& model, const Vec& x, double tol) {
  std::size_t best = model.num_variables();
  double best_frac = tol;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).type == VarType::Continuous) continue;
    const double f = x[j] - std::floor(x[j]);
    const double frac = std::min(f, 1.0 - f);
    if (frac > best_frac) {
      best_frac = frac;
      best = j;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Cut separation
// ---------------------------------------------------------------------------

/// A separated-but-not-yet-appended cut over structural variables. Cuts live
/// in a pool; each round the most violated ones (by efficacy, violation over
/// coefficient norm) are appended as permanent model rows. The public
/// PoolCut carries exactly the fields the loop needs, so WarmCutPool
/// snapshots copy the pool verbatim.
using CandidateCut = PoolCut;

double cut_violation(const CandidateCut& cut, const Vec& x) {
  double lhs = 0.0;
  for (const auto& t : cut.terms) lhs += t.coef * x[t.var];
  return cut.sense == Sense::LessEqual ? lhs - cut.rhs : cut.rhs - lhs;
}

bool same_cut(const CandidateCut& a, const CandidateCut& b) {
  if (a.sense != b.sense || a.terms.size() != b.terms.size()) return false;
  if (std::abs(a.rhs - b.rhs) > 1e-9) return false;
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    if (a.terms[i].var != b.terms[i].var) return false;
    if (std::abs(a.terms[i].coef - b.terms[i].coef) > 1e-9) return false;
  }
  return true;
}

/// Gomory mixed-integer cut from tableau row r of the optimal factorization.
///
/// The basic variable of row r must be a structural integer variable with
/// fractional value beta; write f0 = frac(beta). Shifting every nonbasic
/// column to its bound (t_k = distance from the bound, t_k >= 0) the row
/// reads x_B = beta - sum_k abar_k t_k, and the GMI inequality
///   sum_k g_k t_k >= f0,
///     g_k = frac(abar_k)                       if t_k integral, frac <= f0
///         = f0 (1 - frac(abar_k)) / (1 - f0)   if t_k integral, frac >  f0
///         = abar_k                             if continuous, abar_k >= 0
///         = f0 (-abar_k) / (1 - f0)            if continuous, abar_k <  0
/// is valid for every integer point. Un-shifting maps t_k back to x_k, and
/// slack columns are eliminated through their defining row, so the final cut
/// involves structural variables only.
std::optional<CandidateCut> make_gomory_cut(const Model& model,
                                            const SimplexSolver& solver,
                                            std::size_t r, std::size_t seq) {
  const std::size_t n = model.num_variables();
  const std::size_t jb = solver.basis_column(r);
  if (jb >= n) return std::nullopt;
  if (model.variable(jb).type == VarType::Continuous) return std::nullopt;

  Vec alpha;
  double beta = 0.0;
  solver.tableau_row(r, alpha, beta);
  const double f0 = beta - std::floor(beta);
  if (f0 < 0.01 || f0 > 0.99) return std::nullopt;  // too weak / numerics

  const std::size_t total = solver.num_columns();
  const std::size_t slack_begin = solver.slack_begin();
  const std::size_t art_begin = solver.artificial_begin();

  Vec coef(n, 0.0);
  double rhs = f0;
  for (std::size_t k = 0; k < total; ++k) {
    if (k == jb) continue;
    if (solver.column_status(k) == VarStatus::Basic) continue;
    if (k >= art_begin) continue;  // artificials are pinned to zero
    const bool structural = k < n;
    const double lo = structural ? solver.lower_bound(k) : 0.0;
    const double hi = structural ? solver.upper_bound(k) : kInfinity;
    if (hi - lo < 1e-12) continue;  // fixed column: t == 0
    const bool at_upper = solver.column_status(k) == VarStatus::AtUpper;
    const double s = at_upper ? -1.0 : 1.0;
    const double abar = s * alpha[k];

    // t_k is integral when the column is an integer structural variable
    // shifted by an integral bound.
    bool integral = false;
    if (structural && model.variable(k).type != VarType::Continuous) {
      const double bound = at_upper ? hi : lo;
      integral =
          std::isfinite(bound) && std::abs(bound - std::round(bound)) < 1e-9;
    }
    double g;
    if (integral) {
      const double fk = abar - std::floor(abar);
      g = fk <= f0 + 1e-12 ? fk : f0 * (1.0 - fk) / (1.0 - f0);
    } else {
      g = abar >= 0.0 ? abar : f0 * (-abar) / (1.0 - f0);
    }
    if (g < 1e-13) {
      // Dropping the (nonnegative) term g * t_k from the left of the >= is
      // only valid after charging its worst case g * (hi - lo) to the rhs.
      if (std::isfinite(hi - lo)) rhs -= g * (hi - lo);
      // Unbounded t with truly tiny g: the term is numerically zero anyway.
      continue;
    }
    const double bound = at_upper ? hi : lo;
    if (structural) {
      // g * t = g*s*x - g*s*bound.
      coef[k] += g * s;
      rhs += g * s * bound;
    } else {
      // Slack of row i: slack = sign_i * (rhs_i - A_i x), nonbasic at its
      // lower bound 0 (upper is +inf), so s == +1 and the bound shift is 0.
      const std::size_t si = k - slack_begin;
      const Constraint& c = model.constraint(solver.slack_row(si));
      const double w = g * s * solver.slack_sign(si);
      for (const auto& t : c.terms) coef[t.var] -= w * t.coef;
      rhs -= w * c.rhs;
    }
  }
  if (!std::isfinite(rhs)) return std::nullopt;

  CandidateCut cut;
  cut.sense = Sense::GreaterEqual;
  double norm2 = 0.0;
  double max_abs = 0.0;
  double min_abs = kInfinity;
  for (std::size_t j = 0; j < n; ++j) {
    const double cj = coef[j];
    if (cj == 0.0) continue;
    if (std::abs(cj) < 1e-11) {
      // Drop the tiny term, charging its worst case over the box.
      const double worst =
          cj >= 0.0 ? cj * solver.upper_bound(j) : cj * solver.lower_bound(j);
      if (std::isfinite(worst)) {
        rhs -= worst;
        continue;
      }
    }
    cut.terms.push_back(Term{j, cj});
    norm2 += cj * cj;
    max_abs = std::max(max_abs, std::abs(cj));
    min_abs = std::min(min_abs, std::abs(cj));
  }
  if (cut.terms.empty() || !std::isfinite(rhs)) return std::nullopt;
  if (max_abs / min_abs > 1e7) return std::nullopt;  // ill-scaled
  cut.rhs = rhs;
  cut.norm = std::sqrt(norm2);
  if (cut.norm < 1e-12) return std::nullopt;
  cut.seq = seq;
  return cut;
}

/// Knapsack cover cuts: for each original model row with a binary knapsack
/// relaxation sum w_i z_i <= cap, a greedy minimal cover C (items picked by
/// LP value descending until the capacity is exceeded) yields the cut
/// sum_{C} z_i <= |C| - 1. Complemented items are mapped back to x.
/// Variables the relaxation forces to zero are reported as global fixings.
void separate_cover_cuts(const Model& model, const Vec& x,
                         std::size_t orig_rows,
                         std::vector<CandidateCut>& out, std::size_t& seq,
                         std::vector<GlobalBound>& fixings) {
  for (std::size_t row = 0; row < orig_rows; ++row) {
    const auto ks = binary_knapsack_relaxation(model, row);
    if (!ks) continue;
    for (std::size_t i = 0; i < ks->forced_zero_vars.size(); ++i) {
      const std::size_t v = ks->forced_zero_vars[i];
      const double val = ks->forced_zero_complemented[i] ? 1.0 : 0.0;
      fixings.push_back(GlobalBound{v, val, val});
    }
    const std::size_t items = ks->vars.size();
    if (items < 2) continue;

    // z* value of each item under the LP point.
    Vec z(items);
    for (std::size_t i = 0; i < items; ++i) {
      const double xv = std::clamp(x[ks->vars[i]], 0.0, 1.0);
      z[i] = ks->complemented[i] ? 1.0 - xv : xv;
    }
    std::vector<std::size_t> order(items);
    for (std::size_t i = 0; i < items; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return z[a] > z[b]; });

    std::vector<std::size_t> cover;
    double weight = 0.0;
    for (std::size_t i : order) {
      cover.push_back(i);
      weight += ks->weights[i];
      if (weight > ks->capacity + 1e-9) break;
    }
    if (weight <= ks->capacity + 1e-9) continue;  // no cover exists
    // Minimalize: peel items (lowest z* first) while still a cover.
    for (std::size_t i = cover.size(); i-- > 0;) {
      if (weight - ks->weights[cover[i]] > ks->capacity + 1e-9) {
        weight -= ks->weights[cover[i]];
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if (cover.size() < 2) continue;

    // sum_{C} z_i <= |C| - 1, un-complemented onto x.
    double zsum = 0.0;
    for (std::size_t i : cover) zsum += z[i];
    if (zsum <= static_cast<double>(cover.size()) - 1.0 + 1e-9) continue;

    CandidateCut cut;
    cut.sense = Sense::LessEqual;
    cut.rhs = static_cast<double>(cover.size()) - 1.0;
    std::sort(cover.begin(), cover.end(), [&](std::size_t a, std::size_t b) {
      return ks->vars[a] < ks->vars[b];
    });
    for (std::size_t i : cover) {
      if (ks->complemented[i]) {
        cut.terms.push_back(Term{ks->vars[i], -1.0});
        cut.rhs -= 1.0;
      } else {
        cut.terms.push_back(Term{ks->vars[i], 1.0});
      }
    }
    cut.norm = std::sqrt(static_cast<double>(cover.size()));
    cut.seq = seq++;
    out.push_back(std::move(cut));
  }
}

}  // namespace

MipResult solve_mip(Model model, const MipOptions& options) {
  SimplexSolver solver(model, options.lp);
  return solve_mip(model, solver, options);
}

MipResult solve_mip(Model& model, SimplexSolver& solver,
                    const MipOptions& options) {
  return solve_mip(model, solver, options, nullptr);
}

MipResult solve_mip(Model& model, SimplexSolver& solver,
                    const MipOptions& options, WarmCutPool* warm) {
  MipResult result;
  Stopwatch watch;
  obs::Span search_span("opt/solve_mip");
  const SolverStats entry_stats = solver.stats();

  // Warm root-state bookkeeping: rows/trail watermarks delimit what this
  // run's first cut loop contributes (and therefore what gets exported).
  const std::size_t rows_at_entry = model.num_constraints();
  const std::size_t trail_at_entry = model.global_bound_trail().size();
  const bool attach_warm = warm != nullptr && warm->has_basis;

  // B&B node-event tallies, accumulated locally (the search is serial) and
  // emitted as counters once at exit — near-zero cost per node.
  std::size_t pruned_parent_bound = 0;
  std::size_t pruned_bound = 0;
  std::size_t infeasible_nodes = 0;
  std::size_t incumbents_found = 0;
  std::size_t max_depth = 0;

  // A node's bound changes relative to the root are a persistent singly
  // linked path (shared between siblings and with the open list). The solver
  // mirrors one node's path at a time: switching nodes rewinds the applied
  // suffix past the common prefix and replays the rest — for a depth-first
  // dive this degenerates to "rewind abandoned branch, apply one delta",
  // exactly the historical trail behaviour.
  struct PathDelta {
    std::size_t var;
    double lb, ub;
    std::shared_ptr<const PathDelta> parent;
    std::size_t depth;  // deltas on the path including this one
  };
  using PathPtr = std::shared_ptr<const PathDelta>;
  struct Applied {
    const PathDelta* delta;
    double lb, ub;  // solver bounds before this delta
  };
  std::vector<Applied> applied;
  std::vector<const PathDelta*> target;  // scratch for switch_to

  const auto rewind_all = [&]() {
    while (!applied.empty()) {
      const Applied& a = applied.back();
      solver.set_bounds(a.delta->var, a.lb, a.ub);
      applied.pop_back();
    }
  };
  // Move the solver's bounds from the currently applied path to `path`.
  // Returns false (leaving the trail at the offending ancestor) when a delta
  // on the path is an empty interval.
  const auto switch_to = [&](const PathPtr& path) -> bool {
    target.clear();
    for (const PathDelta* d = path.get(); d; d = d->parent.get()) {
      target.push_back(d);
    }
    std::reverse(target.begin(), target.end());
    std::size_t common = 0;
    while (common < applied.size() && common < target.size() &&
           applied[common].delta == target[common]) {
      ++common;
    }
    while (applied.size() > common) {
      const Applied& a = applied.back();
      solver.set_bounds(a.delta->var, a.lb, a.ub);
      applied.pop_back();
    }
    for (std::size_t i = common; i < target.size(); ++i) {
      const PathDelta* d = target[i];
      if (d->lb > d->ub) return false;  // empty branch interval
      applied.push_back(
          {d, solver.lower_bound(d->var), solver.upper_bound(d->var)});
      solver.set_bounds(d->var, d->lb, d->ub);
    }
    return true;
  };

  const auto finalize = [&](MipResult& r) {
    rewind_all();
    r.seconds = watch.seconds();
    const SolverStats& s = solver.stats();
    r.lp_warm_solves = s.warm_solves - entry_stats.warm_solves;
    r.lp_cold_solves = s.cold_solves - entry_stats.cold_solves;
    if (obs::enabled()) {
      obs::counter_add("mip.bnb.nodes",
                       static_cast<double>(r.nodes_explored));
      obs::counter_add("mip.bnb.simplex_iterations",
                       static_cast<double>(r.simplex_iterations));
      obs::counter_add("mip.bnb.warm_solves",
                       static_cast<double>(r.lp_warm_solves));
      obs::counter_add("mip.bnb.cold_solves",
                       static_cast<double>(r.lp_cold_solves));
      obs::counter_add("mip.bnb.dual_fallbacks",
                       static_cast<double>(s.dual_fallbacks -
                                           entry_stats.dual_fallbacks));
      obs::counter_add("mip.bnb.pruned_parent_bound",
                       static_cast<double>(pruned_parent_bound));
      obs::counter_add("mip.bnb.pruned_bound",
                       static_cast<double>(pruned_bound));
      obs::counter_add("mip.bnb.infeasible_nodes",
                       static_cast<double>(infeasible_nodes));
      obs::counter_add("mip.bnb.incumbents",
                       static_cast<double>(incumbents_found));
      obs::gauge_set("mip.bnb.max_depth", static_cast<double>(max_depth));
      obs::counter_add("mip.cuts_added", static_cast<double>(r.cuts_added));
      obs::counter_add("mip.rc_fixings", static_cast<double>(r.rc_fixings));
      obs::counter_add("mip.strong_branches",
                       static_cast<double>(r.strong_branches));
      obs::counter_add("mip.restarts", static_cast<double>(r.restarts));
    }
  };

  if (options.use_presolve) {
    const PresolveResult pre = presolve(model);
    if (pre.infeasible) {
      result.status = MipStatus::Infeasible;
      finalize(result);
      return result;
    }
    solver.sync_bounds();
  }

  // ---- warm root-state replay --------------------------------------------
  // Re-apply the exporting run's first-cut-loop outcome to this (freshly
  // built, structurally identical) model: appended cut rows, global bound
  // tightenings, and the root basis. The counters the exporting run accrued
  // for that loop are credited too, so warm and cold telemetry agree on
  // everything except the skipped LP pivots.
  if (attach_warm) {
    for (const PoolCut& c : warm->applied) {
      model.add_cut_row(c.terms, c.sense, c.rhs);
      ++result.cuts_added;
    }
    if (!warm->applied.empty()) solver.append_model_rows();
    for (const GlobalBound& g : warm->tightenings) {
      model.record_global_tightening(g.var, g.lb, g.ub);
      ++result.rc_fixings;
    }
    if (!warm->tightenings.empty()) solver.sync_bounds();
    solver.warm_attach(warm->basis);
  }

  const std::size_t n = model.num_variables();
  double incumbent_obj = kInfinity;
  bool have_incumbent = false;
  bool search_truncated = false;

  // ---- root cut loop -----------------------------------------------------
  // Separate / select / append / re-optimize until no pool cut is violated
  // (or the round budget runs out). Appended cuts are permanent model rows,
  // mirrored into the solver with the warm basis kept.
  std::vector<CandidateCut> pool;
  std::size_t cut_seq = 0;
  if (attach_warm) {
    pool = warm->pool;
    cut_seq = warm->cut_seq;
  }
  const std::size_t orig_rows = model.num_constraints() - model.num_cut_rows();
  const bool cuts_enabled =
      (options.gomory_cuts || options.cover_cuts) &&
      model.has_integer_variables();

  // Returns true when the root LP proves the model infeasible.
  const auto run_cut_loop = [&]() -> bool {
    if (!cuts_enabled) return false;
    obs::Span cut_span("opt/mip_cut_loop");
    double prev_obj = -kInfinity;
    double prev_frac = kInfinity;
    for (std::size_t round = 0; round < options.max_cut_rounds; ++round) {
      if (watch.seconds() > options.time_limit_seconds) {
        search_truncated = true;
        return false;
      }
      LpResult lp = options.warm_start ? solver.solve_warm() : solver.solve();
      result.simplex_iterations += lp.iterations;
      if (lp.status == LpStatus::Infeasible) return true;
      if (lp.status == LpStatus::IterationLimit) {
        search_truncated = true;
        return false;
      }
      if (lp.status == LpStatus::Unbounded) {
        throw NumericalError("solve_mip: LP relaxation is unbounded");
      }
      if (most_fractional(model, lp.x, options.int_tol) == n) return false;

      // Stall detection: appending rows makes every later LP more expensive,
      // so stop once a round moved neither the bound (minimization: cuts can
      // only raise it) nor the total integer infeasibility. Under a zero
      // objective (pure feasibility) only the fractionality signal is live.
      double frac_total = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (model.variable(j).type == VarType::Continuous) continue;
        const double f = lp.x[j] - std::floor(lp.x[j]);
        frac_total += std::min(f, 1.0 - f);
      }
      if (round > 0) {
        const double obj_gain = lp.objective - prev_obj;
        const double frac_drop = prev_frac - frac_total;
        if (obj_gain < 1e-7 * std::max(1.0, std::fabs(lp.objective)) &&
            frac_drop < 1e-3) {
          return false;
        }
      }
      prev_obj = lp.objective;
      prev_frac = frac_total;

      // Separate fresh candidates into the pool.
      const std::size_t pool_before = pool.size();
      if (options.gomory_cuts && solver.factor_valid()) {
        for (std::size_t r = 0; r < solver.num_rows(); ++r) {
          const std::size_t jb = solver.basis_column(r);
          if (jb >= n) continue;
          if (model.variable(jb).type == VarType::Continuous) continue;
          const double v = lp.x[jb];
          const double f = v - std::floor(v);
          if (std::min(f, 1.0 - f) <= options.int_tol) continue;
          auto cut = make_gomory_cut(model, solver, r, cut_seq);
          if (cut) {
            pool.push_back(std::move(*cut));
            ++cut_seq;
          }
        }
      }
      std::vector<GlobalBound> fixings;
      if (options.cover_cuts) {
        separate_cover_cuts(model, lp.x, orig_rows, pool, cut_seq, fixings);
      }
      // Deduplicate fresh candidates against the existing pool.
      for (std::size_t i = pool.size(); i-- > pool_before;) {
        bool dup = false;
        for (std::size_t k = 0; k < i && !dup; ++k) {
          dup = same_cut(pool[i], pool[k]);
        }
        if (dup) pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
      }
      // Knapsack-forced fixings are valid for every integer point: apply
      // them globally (replayed by restarts via the model's bound trail).
      bool fixed_any = false;
      for (const GlobalBound& g : fixings) {
        const Variable& v = model.variable(g.var);
        if (v.ub - v.lb < 0.5) continue;  // already fixed
        model.record_global_tightening(g.var, g.lb, g.ub);
        ++result.rc_fixings;
        fixed_any = true;
      }
      if (fixed_any) solver.sync_bounds();

      // Violation-ranked selection from the pool.
      struct Scored {
        double eff;
        std::size_t idx;
      };
      std::vector<Scored> scored;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const double eff = cut_violation(pool[i], lp.x) / pool[i].norm;
        if (eff >= options.cut_min_violation) scored.push_back({eff, i});
      }
      if (scored.empty() && !fixed_any) return false;
      std::sort(scored.begin(), scored.end(),
                [&](const Scored& a, const Scored& b) {
                  if (a.eff != b.eff) return a.eff > b.eff;
                  return pool[a.idx].seq < pool[b.idx].seq;
                });
      if (scored.size() > options.max_cuts_per_round) {
        scored.resize(options.max_cuts_per_round);
      }
      std::vector<std::size_t> picked;
      for (const Scored& s : scored) picked.push_back(s.idx);
      std::sort(picked.begin(), picked.end());
      for (std::size_t i = picked.size(); i-- > 0;) {
        CandidateCut& cut = pool[picked[i]];
        model.add_cut_row(cut.terms, cut.sense, cut.rhs);
        ++result.cuts_added;
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(picked[i]));
      }
      if (!picked.empty()) solver.append_model_rows();
    }
    return false;
  };

  if (!attach_warm) {
    if (run_cut_loop()) {
      result.status = MipStatus::Infeasible;
      finalize(result);
      return result;
    }
    if (warm != nullptr) {
      // Export the first loop's outcome, then canonicalize the solver: a
      // later attach refactorizes B^{-1} from the restored basis, so this
      // run must enter the search from exactly that state or the two pivot
      // sequences (and results) could drift apart by ulps.
      warm->applied.clear();
      for (std::size_t i = rows_at_entry; i < model.num_constraints(); ++i) {
        const Constraint& c = model.constraint(i);
        warm->applied.push_back(PoolCut{c.terms, c.sense, c.rhs, 1.0, 0});
      }
      warm->pool = pool;
      warm->cut_seq = cut_seq;
      const auto& trail = model.global_bound_trail();
      warm->tightenings.assign(trail.begin() +
                                   static_cast<std::ptrdiff_t>(trail_at_entry),
                               trail.end());
      if (solver.has_basis()) {
        warm->basis = solver.basis();
        solver.restore(warm->basis);
        warm->has_basis = true;
      }
    }
  }
  // attach_warm: the first cut loop was replayed from the snapshot above;
  // restart-triggered cut loops still run live (with the replayed pool).

  // ---- pseudo-cost state ---------------------------------------------------
  Vec pc_sum_dn, pc_sum_up;
  std::vector<std::size_t> pc_cnt_dn, pc_cnt_up;
  if (options.pseudo_cost_branching) {
    pc_sum_dn.assign(n, 0.0);
    pc_sum_up.assign(n, 0.0);
    pc_cnt_dn.assign(n, 0);
    pc_cnt_up.assign(n, 0);
  }

  // ---- search ----------------------------------------------------------------
  constexpr std::size_t kNoVar = static_cast<std::size_t>(-1);
  struct Node {
    PathPtr path;                            // nullptr = root
    std::shared_ptr<const BasisState> warm;  // parent's optimal basis
    double parent_bound = -kInfinity;        // parent LP objective
    std::size_t branch_depth = 0;            // branchings above this node
    std::size_t branch_var = kNoVar;         // delta that created this node
    int branch_dir = 0;                      // -1 down child, +1 up child
    double branch_frac = 0.0;  // |child bound - parent LP value|
    std::size_t seq = 0;       // creation order (best-first FIFO ties)
  };
  struct NodeCompare {
    bool operator()(const Node& a, const Node& b) const {
      if (a.parent_bound != b.parent_bound) {
        return a.parent_bound > b.parent_bound;  // min-heap on the bound
      }
      return a.seq > b.seq;  // FIFO tie-break
    }
  };

  std::vector<Node> dive;  // LIFO: the DFS stack / best-first plunge stack
  std::priority_queue<Node, std::vector<Node>, NodeCompare> open;
  std::size_t node_seq = 0;
  std::size_t plunge_budget = options.plunge_depth;
  std::size_t nodes_since_improve = 0;
  const std::size_t restart_interval = options.restart_interval > 0
                                           ? options.restart_interval
                                           : 1000 + 10 * n;

  dive.push_back(Node{});
  // Snapshot the solver's in-memory basis currently corresponds to; when a
  // dive child's warm pointer matches, the restore is skipped entirely.
  std::shared_ptr<const BasisState> live;

  while (!dive.empty() || !open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      search_truncated = true;
      break;
    }
    if (watch.seconds() > options.time_limit_seconds) {
      search_truncated = true;
      break;
    }
    if (options.restarts && result.restarts < options.max_restarts &&
        nodes_since_improve >= restart_interval) {
      // Abandon the open tree, replay the learned global tightenings and the
      // cut loop at the root, and start over (pseudo-costs are kept).
      ++result.restarts;
      nodes_since_improve = 0;
      dive.clear();
      open = decltype(open)();
      rewind_all();
      solver.sync_bounds();  // global trail fixings recorded in the model
      live.reset();
      if (obs::enabled()) obs::instant("mip/restart");
      if (run_cut_loop()) {
        result.status = MipStatus::Infeasible;
        finalize(result);
        return result;
      }
      dive.push_back(Node{});
      continue;
    }

    Node node;
    if (!dive.empty()) {
      node = std::move(dive.back());
      dive.pop_back();
    } else {
      node = open.top();
      open.pop();
      plunge_budget = options.plunge_depth;
    }
    ++result.nodes_explored;
    ++nodes_since_improve;
    const std::size_t prior_depth = node.path ? node.path->depth - 1 : 0;
    max_depth = std::max(max_depth, prior_depth);

    // Move the solver onto this node's path (rewind + replay).
    if (!switch_to(node.path)) continue;  // empty branch interval
    PathPtr path = node.path;

    // The child LP bound can only be worse than the parent's: prune on the
    // parent objective before paying for the solve.
    if (have_incumbent && node.parent_bound >= incumbent_obj - 1e-9) {
      ++pruned_parent_bound;
      continue;
    }

    LpResult lp;
    if (options.warm_start) {
      if (node.warm && live != node.warm) solver.restore(*node.warm);
      lp = solver.solve_warm();  // cold when no basis exists yet
    } else {
      lp = solver.solve();
    }
    live.reset();
    result.simplex_iterations += lp.iterations;

    if (lp.status == LpStatus::Infeasible) {
      ++infeasible_nodes;
      continue;
    }
    if (lp.status == LpStatus::IterationLimit) {
      search_truncated = true;
      continue;
    }
    if (lp.status == LpStatus::Unbounded) {
      // Unbounded relaxation at the root of a minimization with integer
      // variables: treat as unbounded problem -> report via exception.
      throw NumericalError("solve_mip: LP relaxation is unbounded");
    }

    // Pseudo-cost update from the branching that created this node.
    if (options.pseudo_cost_branching && node.branch_var != kNoVar &&
        node.branch_frac > 1e-9) {
      const double gain =
          std::max(lp.objective - node.parent_bound, 0.0) / node.branch_frac;
      if (node.branch_dir < 0) {
        pc_sum_dn[node.branch_var] += gain;
        ++pc_cnt_dn[node.branch_var];
      } else {
        pc_sum_up[node.branch_var] += gain;
        ++pc_cnt_up[node.branch_var];
      }
    }

    // Bound pruning.
    if (have_incumbent && lp.objective >= incumbent_obj - 1e-9) {
      ++pruned_bound;
      continue;
    }

    const std::size_t frac = most_fractional(model, lp.x, options.int_tol);
    if (frac == n) {
      // Integer feasible.
      if (!have_incumbent || lp.objective < incumbent_obj) {
        have_incumbent = true;
        ++incumbents_found;
        nodes_since_improve = 0;
        if (obs::enabled()) obs::instant("mip/incumbent");
        incumbent_obj = lp.objective;
        result.x = lp.x;
        // Snap integer variables exactly.
        for (std::size_t j = 0; j < n; ++j) {
          if (model.variable(j).type != VarType::Continuous) {
            result.x[j] = std::round(result.x[j]);
          }
        }
        result.objective = incumbent_obj;
      }
      if (options.first_feasible) {
        result.status = MipStatus::Feasible;
        finalize(result);
        return result;
      }
      continue;
    }

    // Reduced-cost bound propagation: under an incumbent, a nonbasic integer
    // variable with reduced cost rc can move at most gap/rc from its bound
    // before the LP bound passes the incumbent — tighten the opposite bound.
    // The tightenings extend this node's path, so the whole subtree inherits
    // them and the trail rewinds them on backtrack.
    if (options.reduced_cost_fixing && have_incumbent &&
        solver.factor_valid()) {
      const double gap = (incumbent_obj - 1e-9) - lp.objective;
      if (gap > 0.0) {
        const Vec rc = solver.reduced_costs();
        for (std::size_t j = 0; j < n; ++j) {
          if (model.variable(j).type == VarType::Continuous) continue;
          const VarStatus st = solver.column_status(j);
          if (st == VarStatus::Basic) continue;
          const double lo = solver.lower_bound(j);
          const double hi = solver.upper_bound(j);
          if (hi - lo < 0.5) continue;  // already fixed
          double new_lo = lo;
          double new_hi = hi;
          if (st == VarStatus::AtLower && rc[j] > 1e-9) {
            new_hi = lo + std::floor(gap / rc[j] + options.int_tol);
          } else if (st == VarStatus::AtUpper && rc[j] < -1e-9) {
            new_lo = hi - std::floor(gap / (-rc[j]) + options.int_tol);
          } else {
            continue;
          }
          new_hi = std::min(new_hi, hi);
          new_lo = std::max(new_lo, lo);
          if (new_hi >= hi - 0.5 && new_lo <= lo + 0.5) continue;
          path = std::make_shared<const PathDelta>(PathDelta{
              j, new_lo, new_hi, path, (path ? path->depth : 0) + 1});
          applied.push_back({path.get(), lo, hi});
          solver.set_bounds(j, new_lo, new_hi);
          ++result.rc_fixings;
        }
      }
    }

    // ---- branching variable selection ------------------------------------
    std::size_t bvar = frac;
    bool node_pruned = false;
    if (options.pseudo_cost_branching) {
      struct BranchCand {
        std::size_t var;
        double frac;  // min-fractionality
      };
      std::vector<BranchCand> cands;
      for (std::size_t j = 0; j < n; ++j) {
        if (model.variable(j).type == VarType::Continuous) continue;
        const double f = lp.x[j] - std::floor(lp.x[j]);
        const double mf = std::min(f, 1.0 - f);
        if (mf > options.int_tol) cands.push_back({j, mf});
      }

      // Strong-branching probes seed unreliable pseudo-costs at shallow
      // depth: both bound directions are test-solved from this node's basis.
      if (node.branch_depth < options.strong_branch_depth &&
          options.strong_branch_candidates > 0) {
        std::vector<std::size_t> probe;  // indices into cands
        for (std::size_t i = 0; i < cands.size(); ++i) {
          const std::size_t j = cands[i].var;
          if (std::min(pc_cnt_dn[j], pc_cnt_up[j]) < options.reliability) {
            probe.push_back(i);
          }
        }
        std::stable_sort(probe.begin(), probe.end(),
                         [&](std::size_t a, std::size_t b) {
                           return cands[a].frac > cands[b].frac;
                         });
        if (probe.size() > options.strong_branch_candidates) {
          probe.resize(options.strong_branch_candidates);
        }
        if (!probe.empty()) {
          const BasisState probe_base = solver.basis();
          for (std::size_t pi : probe) {
            if (watch.seconds() > options.time_limit_seconds) break;
            BranchCand& cand = cands[pi];
            const std::size_t v = cand.var;
            const double xv = lp.x[v];
            const double fl = std::floor(xv);
            const double ce = fl + 1.0;
            const double lo = solver.lower_bound(v);
            const double hi = solver.upper_bound(v);
            bool down_inf = fl < lo - 1e-9;
            bool up_inf = ce > hi + 1e-9;
            if (!down_inf) {
              solver.set_bounds(v, lo, fl);
              const LpResult pd = solver.solve_warm();
              ++result.strong_branches;
              result.simplex_iterations += pd.iterations;
              if (pd.status == LpStatus::Optimal) {
                pc_sum_dn[v] +=
                    std::max(pd.objective - lp.objective, 0.0) / (xv - fl);
                ++pc_cnt_dn[v];
              } else if (pd.status == LpStatus::Infeasible) {
                down_inf = true;
              }
              solver.set_bounds(v, lo, hi);
              solver.restore(probe_base);
            }
            if (!up_inf) {
              solver.set_bounds(v, ce, hi);
              const LpResult pu = solver.solve_warm();
              ++result.strong_branches;
              result.simplex_iterations += pu.iterations;
              if (pu.status == LpStatus::Optimal) {
                pc_sum_up[v] +=
                    std::max(pu.objective - lp.objective, 0.0) / (ce - xv);
                ++pc_cnt_up[v];
              } else if (pu.status == LpStatus::Infeasible) {
                up_inf = true;
              }
              solver.set_bounds(v, lo, hi);
              solver.restore(probe_base);
            }
            if (down_inf && up_inf) {
              // Neither side admits a feasible LP: the subtree is dead.
              ++infeasible_nodes;
              node_pruned = true;
              break;
            }
            if (down_inf || up_inf) {
              // One side is infeasible — a domain reduction, not a branch.
              const double forced_lo = down_inf ? ce : lo;
              const double forced_hi = up_inf ? fl : hi;
              if (node.path == nullptr && applied.empty()) {
                // Root-level probe fixing: globally valid, goes on the
                // model's replayable trail.
                model.record_global_tightening(v, forced_lo, forced_hi);
                solver.set_bounds(v, forced_lo, forced_hi);
              } else {
                path = std::make_shared<const PathDelta>(PathDelta{
                    v, forced_lo, forced_hi, path,
                    (path ? path->depth : 0) + 1});
                applied.push_back({path.get(), lo, hi});
                solver.set_bounds(v, forced_lo, forced_hi);
              }
              ++result.rc_fixings;
              cand.frac = -1.0;  // exclude from selection
            }
          }
        }
      }
      if (node_pruned) continue;

      // Score: product of estimated objective gains per direction, falling
      // back to the average pseudo-cost for unobserved directions. Ties break
      // on larger fractionality, then the smaller variable index (ascending
      // scan keeps the first, i.e. smallest, index).
      double avg_dn = 0.0, avg_up = 0.0;
      std::size_t k_dn = 0, k_up = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (pc_cnt_dn.size() <= j) break;
        if (pc_cnt_dn[j] > 0) {
          avg_dn += pc_sum_dn[j] / static_cast<double>(pc_cnt_dn[j]);
          ++k_dn;
        }
        if (pc_cnt_up[j] > 0) {
          avg_up += pc_sum_up[j] / static_cast<double>(pc_cnt_up[j]);
          ++k_up;
        }
      }
      avg_dn = k_dn > 0 ? avg_dn / static_cast<double>(k_dn) : 0.0;
      avg_up = k_up > 0 ? avg_up / static_cast<double>(k_up) : 0.0;

      double best_score = -1.0;
      double best_frac = -1.0;
      std::size_t best_var = kNoVar;
      for (const BranchCand& cand : cands) {
        if (cand.frac < 0.0) continue;  // excluded by a probe fixing
        const std::size_t j = cand.var;
        const double f_dn = lp.x[j] - std::floor(lp.x[j]);
        const double f_up = 1.0 - f_dn;
        const double pc_dn = pc_cnt_dn[j] > 0
                                 ? pc_sum_dn[j] /
                                       static_cast<double>(pc_cnt_dn[j])
                                 : avg_dn;
        const double pc_up = pc_cnt_up[j] > 0
                                 ? pc_sum_up[j] /
                                       static_cast<double>(pc_cnt_up[j])
                                 : avg_up;
        const double score = std::max(pc_dn * f_dn, 1e-12) *
                             std::max(pc_up * f_up, 1e-12);
        if (score > best_score ||
            (score == best_score && cand.frac > best_frac)) {
          best_score = score;
          best_frac = cand.frac;
          best_var = j;
        }
      }
      if (best_var == kNoVar) {
        // Every candidate was fixed away by probes; the LP point is stale.
        // Re-queue the node (path now carries the fixings) and re-solve.
        dive.push_back(Node{path, options.warm_start
                                      ? std::make_shared<const BasisState>(
                                            solver.basis())
                                      : nullptr,
                            lp.objective, node.branch_depth, kNoVar, 0, 0.0,
                            node_seq++});
        continue;
      }
      bvar = best_var;
    }

    // Branch. Push the far child first so the near (nearest-integer) child is
    // explored next -> diving behaviour. Both children share one snapshot of
    // this node's optimal basis; the near child finds it still live in the
    // solver and dives without a restore.
    const double v = lp.x[bvar];
    const double floor_v = std::floor(v);
    const double ceil_v = floor_v + 1.0;
    const double eff_lb = solver.lower_bound(bvar);
    const double eff_ub = solver.upper_bound(bvar);
    std::shared_ptr<const BasisState> snap;
    if (options.warm_start) {
      snap = std::make_shared<const BasisState>(solver.basis());
      live = snap;
    }
    const std::size_t child_path_depth = (path ? path->depth : 0) + 1;
    auto down_path = std::make_shared<const PathDelta>(
        PathDelta{bvar, eff_lb, floor_v, path, child_path_depth});
    auto up_path = std::make_shared<const PathDelta>(
        PathDelta{bvar, ceil_v, eff_ub, path, child_path_depth});
    Node down{std::move(down_path), snap,           lp.objective,
              node.branch_depth + 1, bvar,          -1,
              v - floor_v,           0};
    Node up{std::move(up_path),    std::move(snap), lp.objective,
            node.branch_depth + 1, bvar,            +1,
            ceil_v - v,            0};

    const bool near_is_up = (v - floor_v) >= 0.5;
    Node& near = near_is_up ? up : down;
    Node& far = near_is_up ? down : up;
    near.seq = node_seq++;
    far.seq = node_seq++;
    if (options.node_selection == NodeSelection::DepthFirst) {
      dive.push_back(std::move(far));
      dive.push_back(std::move(near));
    } else {
      if (plunge_budget > 0) {
        --plunge_budget;
        open.push(std::move(far));
        dive.push_back(std::move(near));
      } else {
        open.push(std::move(near));
        open.push(std::move(far));
      }
    }
  }

  finalize(result);
  if (have_incumbent) {
    result.status = search_truncated ? MipStatus::Feasible : MipStatus::Optimal;
  } else if (search_truncated) {
    result.status = watch.seconds() > options.time_limit_seconds
                        ? MipStatus::TimeLimit
                        : MipStatus::NodeLimit;
  } else {
    result.status = MipStatus::Infeasible;
  }
  if (have_incumbent) result.objective = incumbent_obj;
  return result;
}

}  // namespace aspe::opt
