// Linear / mixed-integer programming model builder.
//
// This module (together with simplex.hpp and mip.hpp) is the in-tree
// substitute for the Gurobi solver used by the paper's MIP attack
// (Algorithm 2). The attack only needs feasibility search over a mixed
// binary/continuous linear system, which this stack provides.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace aspe::opt {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { LessEqual, GreaterEqual, Equal };
enum class VarType { Continuous, Binary, Integer };

/// One term `coef * x[var]` of a linear expression.
struct Term {
  std::size_t var;
  double coef;
};
using LinExpr = std::vector<Term>;

struct Variable {
  double lb = 0.0;
  double ub = kInfinity;
  VarType type = VarType::Continuous;
  std::string name;
};

struct Constraint {
  LinExpr terms;
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
};

/// One replayable global bound tightening (root reduced-cost fixing,
/// depth-0 probe fixing). `lb`/`ub` are the bounds *after* the tightening.
struct GlobalBound {
  std::size_t var;
  double lb;
  double ub;
};

/// A linear model: variables with bounds and types, linear constraints, and a
/// linear objective (minimized by convention; maximize by negating).
class Model {
 public:
  /// Add a variable; returns its index.
  std::size_t add_variable(double lb, double ub,
                           VarType type = VarType::Continuous,
                           std::string name = {});

  /// Convenience: binary variable in {0, 1}.
  std::size_t add_binary(std::string name = {}) {
    return add_variable(0.0, 1.0, VarType::Binary, std::move(name));
  }

  /// Add a constraint; returns its index. Duplicate variable indices in
  /// `terms` are allowed and are summed.
  std::size_t add_constraint(LinExpr terms, Sense sense, double rhs);

  /// Add a cutting-plane row (an inequality valid for every integer-feasible
  /// point, e.g. a Gomory or cover cut). Identical to add_constraint except
  /// the row is counted as a cut; a solver mirroring the rows picks it up
  /// via row_revision / SimplexSolver::append_model_rows.
  std::size_t add_cut_row(LinExpr terms, Sense sense, double rhs);

  /// Set the (minimization) objective. Default objective is 0, which turns
  /// solves into pure feasibility searches.
  void set_objective(LinExpr objective);

  [[nodiscard]] std::size_t num_variables() const { return vars_.size(); }
  [[nodiscard]] std::size_t num_constraints() const { return cons_.size(); }
  [[nodiscard]] const Variable& variable(std::size_t i) const {
    return vars_[i];
  }
  [[nodiscard]] const Constraint& constraint(std::size_t i) const {
    return cons_[i];
  }
  [[nodiscard]] const LinExpr& objective() const { return objective_; }

  /// True when any variable is Binary or Integer.
  [[nodiscard]] bool has_integer_variables() const;

  /// Objective value of a point.
  [[nodiscard]] double objective_value(const Vec& x) const;

  /// Max constraint violation of a point (0 when feasible w.r.t. rows; does
  /// not check bounds or integrality).
  [[nodiscard]] double max_violation(const Vec& x) const;

  /// Mutable variable bounds (used by branch & bound).
  void set_bounds(std::size_t var, double lb, double ub);

  /// Monotone counter bumped by every set_bounds call. Lets a solver that
  /// mirrors the bounds (SimplexSolver::sync_bounds) skip the re-mirror when
  /// nothing changed.
  [[nodiscard]] std::uint64_t bound_revision() const { return bound_revision_; }

  /// Monotone counter bumped by every add_constraint / add_cut_row call, so
  /// a solver mirroring the rows can detect appended cuts cheaply.
  [[nodiscard]] std::uint64_t row_revision() const { return row_revision_; }

  /// Rows added through add_cut_row (they sit at the end of the row list).
  [[nodiscard]] std::size_t num_cut_rows() const { return num_cut_rows_; }

  /// Tighten a variable's bounds *globally* — valid for the whole problem,
  /// not one subtree — and record the change on a replayable trail. Restart-
  /// based searches replay the trail after abandoning their open tree.
  void record_global_tightening(std::size_t var, double lb, double ub);

  [[nodiscard]] const std::vector<GlobalBound>& global_bound_trail() const {
    return global_trail_;
  }
  void clear_global_bound_trail() { global_trail_.clear(); }

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> cons_;
  LinExpr objective_;
  std::uint64_t bound_revision_ = 0;
  std::uint64_t row_revision_ = 0;
  std::size_t num_cut_rows_ = 0;
  std::vector<GlobalBound> global_trail_;
};

}  // namespace aspe::opt
