// The *previous* attack on ASPE from Xiao et al. [26], reproduced to
// demonstrate §III.A's claim that it is not effective.
//
// [26] assumes the adversary knows pairs (Q_j, T'_j) for d queries and
// proposes to learn the index I_i of a record from the "d linear equations"
//
//     I'_i^T T'_j = I_i^T T_j ,   T_j = r_j (Q_j^T, 1)^T .
//
// The paper's critique (§III.A): the system actually has 2d unknowns (the d
// random multipliers r_j are unknown too), and the (d+1)-th coordinate of
// I_i is the *quadratic* term -0.5||P_i||^2, so the equations are not a
// solvable linear system. To execute the attack at all, the adversary must
// guess the r_j (e.g. r_j = 1); this module implements exactly that and
// exposes the failure: the recovered index changes with the guess and
// violates the quadratic consistency I[d] = -0.5||P||^2.
#pragma once

#include <vector>

#include "scheme/plain_index.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::core {

struct NaiveAttackInput {
  /// Known queries Q_j (d-dimensional) with their ciphertext trapdoors.
  std::vector<Vec> known_queries;
  std::vector<scheme::CipherPair> cipher_trapdoors;
  /// The target record's ciphertext index I'_i.
  scheme::CipherPair cipher_index;
  /// The adversary's guess for the unknown multipliers r_j (resized with
  /// 1.0 if shorter than known_queries — the implicit assumption in [26]).
  Vec assumed_r;
};

struct NaiveAttackResult {
  Vec recovered_index;   // (d+1)-dimensional solution of the guessed system
  Vec recovered_record;  // its first d coordinates
  /// Whether the solution satisfies I[d] = -0.5||P||^2 (it should if the
  /// guess were right; §III.A predicts it will not).
  bool quadratic_consistent = false;
  /// |I[d] + 0.5||P||^2| — how badly the quadratic constraint is violated.
  double quadratic_gap = 0.0;
};

/// Execute the [26] attack under the given r-guess. Requires d+1 known
/// queries whose trapdoors (under the guess) are linearly independent; the
/// (d+1)-th equation is needed because I_i has d+1 coordinates.
/// Throws NumericalError when the guessed system is singular.
[[nodiscard]] NaiveAttackResult run_naive_attack(const NaiveAttackInput& input);

/// §III.A's non-uniqueness demonstration: run the attack under several
/// different r-guesses and return the maximum pairwise distance between the
/// recovered records. A well-posed attack would return ~0; the naive attack
/// returns a large value because every guess yields a different "solution".
[[nodiscard]] double naive_attack_solution_spread(
    const NaiveAttackInput& base, const std::vector<Vec>& r_guesses);

}  // namespace aspe::core
