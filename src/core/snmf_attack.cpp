#include "core/snmf_attack.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "linalg/kernels.hpp"
#include "linalg/svd.hpp"
#include "linalg/truncated_svd.hpp"
#include "obs/obs.hpp"
#include "par/parallel.hpp"
#include "rng/rng.hpp"

namespace aspe::core {

using linalg::Matrix;

namespace {

/// Stack one ciphertext half per row (pairs must share dimensions).
Matrix pack_half(const std::vector<scheme::CipherPair>& pairs,
                 std::size_t dim, bool first_half) {
  Matrix out(pairs.size(), dim);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Vec& half = first_half ? pairs[i].a : pairs[i].b;
    require(half.size() == dim, "build_score_matrix: ragged ciphertexts");
    std::copy(half.begin(), half.end(), out.row_ptr(i));
  }
  return out;
}

/// Output rows per shard such that one tile's working set — its slices of
/// the index halves, its output rows, and the (resident-throughout) trapdoor
/// halves — stays near ctx.memory_budget_bytes. 0 budget = one tile.
std::size_t score_tile_rows(std::size_t n, std::size_t m, std::size_t da,
                            std::size_t db, const ExecContext& ctx) {
  if (ctx.memory_budget_bytes == 0) return n;
  const std::size_t per_row = (da + db + m) * sizeof(double);
  const std::size_t resident = (da + db) * m * sizeof(double);
  const std::size_t spare = ctx.memory_budget_bytes > resident
                                ? ctx.memory_budget_bytes - resident
                                : 0;
  return std::clamp<std::size_t>(spare / std::max<std::size_t>(per_row, 1),
                                 1, n);
}

}  // namespace

Matrix build_score_matrix(linalg::ConstMatrixView index_a,
                          linalg::ConstMatrixView index_b,
                          linalg::ConstMatrixView trapdoor_a,
                          linalg::ConstMatrixView trapdoor_b,
                          const ExecContext& ctx) {
  require(index_a.rows() > 0 && trapdoor_a.rows() > 0,
          "build_score_matrix: need ciphertexts on both sides");
  require(index_a.rows() == index_b.rows() &&
              trapdoor_a.rows() == trapdoor_b.rows(),
          "build_score_matrix: a/b half row counts disagree");
  require(index_a.cols() == trapdoor_a.cols() &&
              index_b.cols() == trapdoor_b.cols(),
          "build_score_matrix: index/trapdoor dimensions disagree");
  const std::size_t n = index_a.rows();
  const std::size_t m = trapdoor_a.rows();
  const std::size_t da = index_a.cols();
  const std::size_t db = index_b.cols();
  Matrix r(n, m);
  // cipher_score(I, T) = I_a . T_a + I_b . T_b, so the all-pairs score
  // sweep is two gemms over the stacked ciphertext halves:
  // R = Ia Ta^T + Ib Tb^T (transposition is an op flag, never a copy).
  // Sharding tiles the *output rows*: every R entry is still written by
  // exactly one gemm pair, and the rounding below removes any
  // summation-order jitter between tile sizes, so the result is
  // bit-identical at any budget.
  const std::size_t tile = score_tile_rows(n, m, da, db, ctx);
  for (std::size_t r0 = 0; r0 < n; r0 += tile) {
    const std::size_t nr = std::min(tile, n - r0);
    obs::Span span("score/shard");
    obs::counter_add("shard.count", 1.0);
    auto block = r.view().block(r0, 0, nr, m);
    linalg::gemm(1.0, index_a.block(r0, 0, nr, da), linalg::Op::None,
                 trapdoor_a, linalg::Op::Transpose, 0.0, block, ctx.threads);
    linalg::gemm(1.0, index_b.block(r0, 0, nr, db), linalg::Op::None,
                 trapdoor_b, linalg::Op::Transpose, 1.0, block, ctx.threads);
    // I_i and T_j are binary, so I_i^T T_j is a non-negative integer;
    // rounding removes the encryption's floating-point noise (and any
    // summation-order jitter between the blocked and naive gemm paths).
    par::parallel_for(
        r0, r0 + nr, 1,
        [&](std::size_t i) {
          double* ri = r.row_ptr(i);
          for (std::size_t j = 0; j < m; ++j) {
            ri[j] = std::max(0.0, std::round(ri[j]));
          }
        },
        ctx.threads);
  }
  return r;
}

Matrix build_score_matrix(
    const std::vector<scheme::CipherPair>& cipher_indexes,
    const std::vector<scheme::CipherPair>& cipher_trapdoors,
    std::size_t threads) {
  require(!cipher_indexes.empty() && !cipher_trapdoors.empty(),
          "build_score_matrix: need ciphertexts on both sides");
  const std::size_t da = cipher_indexes[0].a.size();
  const std::size_t db = cipher_indexes[0].b.size();
  const Matrix ia = pack_half(cipher_indexes, da, true);
  const Matrix ib = pack_half(cipher_indexes, db, false);
  const Matrix ta = pack_half(cipher_trapdoors, da, true);
  const Matrix tb = pack_half(cipher_trapdoors, db, false);
  ExecContext ctx;
  ctx.threads = threads;
  return build_score_matrix(ia.cview(), ib.cview(), ta.cview(), tb.cview(),
                            ctx);
}

namespace {

// Score matrices whose small side is below this are ranked by the full
// Jacobi SVD directly — it is already fast there and the randomized path's
// fixed costs (sampling, QR, projected SVD) would not amortize.
constexpr std::size_t kTruncatedMinDim = 128;

/// Full-SVD rank with the convergence assert (a Jacobi factorization that
/// ran out of sweeps is a best-effort iterate, not an SVD; ranking on it
/// would silently return garbage).
std::size_t latent_rank_full(linalg::ConstMatrixView scores, Matrix* donate,
                             double rel_tol) {
  obs::Span span("svd/full");
  std::optional<linalg::Svd> svd;
  // One-sided Jacobi needs rows >= cols; rank is transpose-invariant, so
  // the wide case reads the scores through a transposed view straight into
  // the Svd working storage — no scores.transpose() temporary.
  if (scores.rows() >= scores.cols()) {
    if (donate != nullptr) {
      // The Jacobi sweep rotates in place; moving the caller's matrix into
      // the Svd avoids duplicating the full score matrix.
      svd.emplace(std::move(*donate));
    } else {
      svd.emplace(scores, linalg::Op::None);
    }
  } else {
    svd.emplace(scores, linalg::Op::Transpose);
  }
  if (!svd->converged()) {
    throw NumericalError(
        "estimate_latent_dimension: Jacobi SVD exhausted max_sweeps without "
        "converging; refusing to rank an unconverged factorization");
  }
  return svd->rank(rel_tol);
}

/// Escalating fresh-sample loop of the truncated path. On success the
/// certified TruncatedSvd is left in `state` (for incremental callers);
/// nullopt means no sample size could certify the gap.
std::optional<std::size_t> certified_truncated_rank(
    linalg::ConstMatrixView scores,
    std::optional<linalg::TruncatedSvd>& state, double rel_tol,
    const ExecContext& ctx) {
  const std::size_t minmn = std::min(scores.rows(), scores.cols());
  obs::Span span("svd/truncated");
  // Escalating sample size: start small (rank(R) <= d, typically far
  // below the matrix dimensions), double until the residual certificate
  // proves the count, and give up at ~minmn/2 — the crossover where the
  // randomized path stops being cheaper than one full Jacobi.
  for (std::size_t guess = 32; guess + 8 <= minmn / 2; guess *= 2) {
    linalg::TruncatedSvdOptions opts;
    opts.rank = guess;
    opts.oversample = 8;
    opts.power_iterations = 2;
    opts.seed = ctx.seed;
    opts.threads = ctx.resolved_threads();
    state.emplace(scores, linalg::Op::None, opts);
    obs::counter_add("svd.truncated_runs", 1.0);
    if (const auto rank = state->certified_rank(rel_tol)) {
      obs::gauge_set("svd.truncated_sample",
                     static_cast<double>(state->sample_size()));
      return rank;
    }
  }
  // Flat / ambiguous spectrum: no sample size could certify the gap.
  obs::counter_add("svd.truncated_fallbacks", 1.0);
  state.reset();
  return std::nullopt;
}

std::size_t latent_rank(linalg::ConstMatrixView scores, Matrix* donate,
                        double rel_tol, const ExecContext& ctx) {
  require(scores.rows() > 0 && scores.cols() > 0,
          "estimate_latent_dimension: empty score matrix");
  const std::size_t minmn = std::min(scores.rows(), scores.cols());
  if (minmn >= kTruncatedMinDim) {
    std::optional<linalg::TruncatedSvd> state;
    if (const auto rank =
            certified_truncated_rank(scores, state, rel_tol, ctx)) {
      return *rank;
    }
  }
  return latent_rank_full(scores, donate, rel_tol);
}

}  // namespace

std::size_t estimate_latent_dimension(const Matrix& scores, double rel_tol,
                                      const ExecContext& ctx) {
  return latent_rank(scores.cview(), nullptr, rel_tol, ctx);
}

std::size_t estimate_latent_dimension(Matrix&& scores, double rel_tol,
                                      const ExecContext& ctx) {
  return latent_rank(scores.cview(), &scores, rel_tol, ctx);
}

std::size_t estimate_latent_dimension(linalg::ConstMatrixView scores,
                                      double rel_tol, const ExecContext& ctx) {
  return latent_rank(scores, nullptr, rel_tol, ctx);
}

std::size_t estimate_latent_dimension(linalg::ConstMatrixView scores,
                                      std::optional<linalg::TruncatedSvd>& state,
                                      double rel_tol, const ExecContext& ctx) {
  require(scores.rows() > 0 && scores.cols() > 0,
          "estimate_latent_dimension: empty score matrix");
  const std::size_t minmn = std::min(scores.rows(), scores.cols());
  if (minmn < kTruncatedMinDim) {
    // Below the truncated crossover the full Jacobi decides; any carried
    // sample is from a different regime and would go stale.
    state.reset();
    return latent_rank_full(scores, nullptr, rel_tol);
  }
  if (state.has_value()) {
    const std::size_t m0 = state->u().rows();
    const std::size_t n0 = state->v().rows();
    if (m0 <= scores.rows() && n0 <= scores.cols()) {
      if (m0 < scores.rows() || n0 < scores.cols()) {
        // Fold the growth in: first the new trailing columns restricted to
        // the old rows, then the new full-width rows. Order matters — the
        // column update needs U's row count to match, the row update V's.
        obs::Span span("svd/update");
        if (n0 < scores.cols()) {
          state->update_cols(scores.block(0, n0, m0, scores.cols() - n0));
        }
        if (m0 < scores.rows()) {
          state->update_rows(
              scores.block(m0, 0, scores.rows() - m0, scores.cols()));
        }
        obs::counter_add("svd.updates", 1.0);
      }
      if (state->u().rows() == scores.rows() &&
          state->v().rows() == scores.cols()) {
        if (const auto rank = state->certified_rank(rel_tol)) {
          obs::gauge_set("svd.truncated_sample",
                         static_cast<double>(state->sample_size()));
          return *rank;
        }
        // Updated sample can no longer certify (rank grew past it, gap
        // closed): resample from scratch below.
        obs::counter_add("svd.update_recertify_failures", 1.0);
      }
    }
    // Stale (matrix shrank or shape mismatch) or uncertified state.
    state.reset();
  }
  if (const auto rank = certified_truncated_rank(scores, state, rel_tol, ctx)) {
    return *rank;
  }
  return latent_rank_full(scores, nullptr, rel_tol);
}

/// Best-of-L restarts from pre-drawn initializations (Algorithm 3's loop).
/// Restarts run in parallel; the winner is the lowest objective with ties
/// broken toward the smallest restart id, which is exactly what the serial
/// first-strictly-better scan selects.
SnmfSelection run_snmf_restarts(const Matrix& scores,
                                const SnmfAttackOptions& options,
                                std::vector<nmf::NmfInit> inits,
                                const ExecContext& ctx) {
  require(options.rank > 0, "SNMF attack: rank (d) must be set");
  require(!inits.empty(), "SNMF attack: need at least one restart");
  const std::size_t threads = ctx.resolved_threads();
  const std::size_t restarts = inits.size();
  // Group the restarts so the concurrently-live factor/temporary working
  // sets stay near ctx.memory_budget_bytes (one in-flight restart holds W,
  // H and update temporaries of the same shapes — ~4 * rank * (rows + cols)
  // doubles). Restarts are independent and the winner scan below is
  // order-free, so grouping never changes the selected factorization.
  std::size_t group = restarts;
  if (ctx.memory_budget_bytes > 0) {
    const std::size_t per_restart =
        4 * options.rank * (scores.rows() + scores.cols()) * sizeof(double);
    group = std::clamp<std::size_t>(
        ctx.memory_budget_bytes / std::max<std::size_t>(per_restart, 1), 1,
        restarts);
  }
  std::vector<nmf::NmfResult> runs(restarts);
  {
    obs::Span restarts_span("snmf/restarts");
    for (std::size_t g0 = 0; g0 < restarts; g0 += group) {
      const std::size_t g1 = std::min(restarts, g0 + group);
      obs::Span shard_span("snmf/restart_shard");
      obs::counter_add("shard.count", 1.0);
      par::parallel_for(
          g0, g1, 1,
          [&](std::size_t l) {
            // Inner NMF parallel sections serialize automatically when the
            // restart itself runs inside a pool chunk (nested fallback).
            obs::Span restart_span("snmf/restart");
            runs[l] = nmf::sparse_nmf_from_init(scores, options.rank,
                                                options.nmf,
                                                std::move(inits[l]), threads);
          },
          threads);
    }
  }

  std::size_t best = 0;
  for (std::size_t l = 1; l < restarts; ++l) {
    if (runs[l].objective < runs[best].objective) best = l;
  }
  std::size_t nmf_iterations = 0;
  for (std::size_t l = 0; l < restarts; ++l) {
    nmf_iterations += runs[l].iterations;
  }
  if (obs::enabled()) {
    // Per-restart fit errors, the quantity the best-of-L selection ranks.
    for (std::size_t l = 0; l < restarts; ++l) {
      const std::string name = "snmf.restart_fit_error." + std::to_string(l);
      obs::gauge_set(name.c_str(), runs[l].fit_error);
    }
  }

  SnmfSelection selection;
  selection.factorization = std::move(runs[best]);
  selection.selected_restart = best;
  selection.restarts_run = restarts;
  selection.nmf_iterations = nmf_iterations;
  return selection;
}

SnmfAttackResult binarize_snmf_selection(const SnmfSelection& selection,
                                         const SnmfAttackOptions& options) {
  obs::Span binarize_span("snmf/binarize");
  // Balancing rescales in place; work on copies so the caller's selection
  // stays a valid warm seed for the next resume.
  Matrix w = selection.factorization.w;
  Matrix h = selection.factorization.h;
  if (options.balance) nmf::balance_rows(w, h);
  const Matrix wb = nmf::to_binary(w, options.theta);
  const Matrix hb = nmf::to_binary(h, options.theta);

  SnmfAttackResult result;
  result.best_fit_error = selection.factorization.fit_error;
  result.telemetry.counters["snmf.restarts_run"] =
      static_cast<double>(selection.restarts_run);
  result.telemetry.counters["snmf.nmf_iterations"] =
      static_cast<double>(selection.nmf_iterations);
  result.telemetry.counters["snmf.selected_restart"] =
      static_cast<double>(selection.selected_restart);
  result.indexes.reserve(wb.cols());
  for (std::size_t i = 0; i < wb.cols(); ++i) {
    BitVec v(options.rank);
    for (std::size_t k = 0; k < options.rank; ++k) {
      v[k] = wb(k, i) != 0.0 ? 1 : 0;
    }
    result.indexes.push_back(std::move(v));
  }
  result.trapdoors.reserve(hb.cols());
  for (std::size_t j = 0; j < hb.cols(); ++j) {
    BitVec v(options.rank);
    for (std::size_t k = 0; k < options.rank; ++k) {
      v[k] = hb(k, j) != 0.0 ? 1 : 0;
    }
    result.trapdoors.push_back(std::move(v));
  }
  return result;
}

std::vector<nmf::NmfInit> draw_snmf_inits(const Matrix& scores,
                                          const SnmfAttackOptions& options,
                                          const ExecContext& ctx) {
  require(options.rank > 0, "SNMF attack: rank (d) must be set");
  require(options.restarts > 0, "SNMF attack: need at least one restart");
  obs::Span span("snmf/draw_inits");
  rng::Rng root_rng(ctx.seed);
  std::vector<nmf::NmfInit> inits;
  inits.reserve(options.restarts);
  if (ctx.deterministic) {
    // Restart order from one sequential stream: the NMF iterations consume
    // no randomness, so parallel restarts stay bit-identical to the serial
    // loop.
    for (std::size_t l = 0; l < options.restarts; ++l) {
      inits.push_back(
          nmf::nmf_initialize(scores, options.rank, options.nmf, root_rng));
    }
  } else {
    // Order-independent split streams: restart l is seeded by (seed, l)
    // alone. Still reproducible across thread counts, but a different
    // stream than the sequential draw.
    for (std::size_t l = 0; l < options.restarts; ++l) {
      rng::Rng stream = root_rng.split(l);
      inits.push_back(
          nmf::nmf_initialize(scores, options.rank, options.nmf, stream));
    }
  }
  return inits;
}

SnmfAttackResult run_snmf_attack(const sse::CoaView& view,
                                 const SnmfAttackOptions& options,
                                 const ExecContext& ctx) {
  Stopwatch watch;
  obs::ScopedRecording rec(ctx.sink);
  // Root span only when this overload owns the recording, so the trace has
  // exactly one "snmf/attack" root regardless of the entry point.
  std::optional<obs::Span> root;
  if (rec.active()) root.emplace("snmf/attack");

  Matrix scores;
  {
    obs::Span span("snmf/score_matrix");
    // Pack once, then go through the view overload so ctx's memory budget
    // shards the build exactly as the mapped out-of-core path would.
    require(!view.cipher_indexes.empty() && !view.cipher_trapdoors.empty(),
            "build_score_matrix: need ciphertexts on both sides");
    const std::size_t da = view.cipher_indexes[0].a.size();
    const std::size_t db = view.cipher_indexes[0].b.size();
    const Matrix ia = pack_half(view.cipher_indexes, da, true);
    const Matrix ib = pack_half(view.cipher_indexes, db, false);
    const Matrix ta = pack_half(view.cipher_trapdoors, da, true);
    const Matrix tb = pack_half(view.cipher_trapdoors, db, false);
    scores = build_score_matrix(ia.cview(), ib.cview(), ta.cview(),
                                tb.cview(), ctx);
  }
  SnmfAttackResult result = run_snmf_attack(scores, options, ctx);

  root.reset();
  result.telemetry.wall_seconds = watch.seconds();
  result.telemetry.absorb(rec.finish());
  return result;
}

SnmfAttackResult run_snmf_attack(const Matrix& scores,
                                 const SnmfAttackOptions& options,
                                 const ExecContext& ctx) {
  Stopwatch watch;
  obs::ScopedRecording rec(ctx.sink);
  std::optional<obs::Span> root;
  if (rec.active()) root.emplace("snmf/attack");

  std::vector<nmf::NmfInit> inits = draw_snmf_inits(scores, options, ctx);
  SnmfAttackResult result =
      run_snmf_attack(scores, std::move(inits), options, ctx);

  root.reset();
  result.telemetry.wall_seconds = watch.seconds();
  result.telemetry.absorb(rec.finish());
  return result;
}

SnmfAttackResult run_snmf_attack(const Matrix& scores,
                                 std::vector<nmf::NmfInit> inits,
                                 const SnmfAttackOptions& options,
                                 const ExecContext& ctx) {
  Stopwatch watch;
  obs::ScopedRecording rec(ctx.sink);
  std::optional<obs::Span> root;
  if (rec.active()) root.emplace("snmf/attack");

  SnmfSelection selection =
      run_snmf_restarts(scores, options, std::move(inits), ctx);
  SnmfAttackResult result = binarize_snmf_selection(selection, options);

  root.reset();
  result.telemetry.wall_seconds = watch.seconds();
  result.telemetry.absorb(rec.finish());
  return result;
}

namespace {

/// Everything a batched SNMF result depends on besides the (shared) score
/// matrix: the full option set plus the RNG seed. Thread width and memory
/// budget shape execution order only, never the outputs.
std::string snmf_job_identity(const SnmfBatchJob& job) {
  std::ostringstream key;
  key.precision(17);
  const SnmfAttackOptions& o = job.options;
  key << o.rank << '|' << o.theta << '|' << o.restarts << '|' << o.rank_tol
      << '|' << o.balance << '|' << o.resume_iterations << '|' << o.nmf.eta
      << '|' << o.nmf.lambda << '|' << o.nmf.max_iterations << '|'
      << o.nmf.rel_tol << '|' << static_cast<int>(o.nmf.algorithm) << '|'
      << static_cast<int>(o.nmf.init) << '|' << o.nmf.warm_start << '|'
      << o.nmf.truncated_init << '|' << o.nmf.resume_from_init << '|'
      << job.ctx.seed;
  return key.str();
}

}  // namespace

std::vector<SnmfAttackResult> run_snmf_attack_batch(
    const Matrix& scores, const std::vector<SnmfBatchJob>& jobs) {
  std::vector<SnmfAttackResult> out(jobs.size());
  if (jobs.empty()) return out;
  Stopwatch watch;
  obs::Span batch_span("snmf/batch");

  // 1. Per-job initializations, drawn with each job's own options and
  //    context — byte-for-byte the streams the solo path would draw. Jobs
  //    with identical (options, seed) factorize identically against the
  //    shared score matrix, so only the first of each identity class runs;
  //    the rest receive a copy of its result in the demux below.
  struct Slot {
    std::size_t job;
    std::size_t restart;
  };
  std::vector<std::vector<nmf::NmfInit>> inits(jobs.size());
  std::vector<Slot> slots;
  std::vector<std::size_t> rep_of(jobs.size());
  std::map<std::string, std::size_t> identity_rep;
  std::size_t sweep_threads = 1;
  std::size_t max_per_restart_bytes = 1;
  std::size_t min_budget = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const SnmfBatchJob& job = jobs[j];
    require(job.options.rank > 0,
            "run_snmf_attack_batch: rank (d) must be resolved per job");
    rep_of[j] = identity_rep.emplace(snmf_job_identity(job), j).first->second;
    sweep_threads = std::max(sweep_threads, job.ctx.resolved_threads());
    max_per_restart_bytes = std::max(
        max_per_restart_bytes, 4 * job.options.rank *
                                   (scores.rows() + scores.cols()) *
                                   sizeof(double));
    if (job.ctx.memory_budget_bytes > 0) {
      min_budget = min_budget == 0
                       ? job.ctx.memory_budget_bytes
                       : std::min(min_budget, job.ctx.memory_budget_bytes);
    }
    if (rep_of[j] != j) continue;  // duplicate: no restarts of its own
    inits[j] = draw_snmf_inits(scores, job.options, job.ctx);
    for (std::size_t l = 0; l < inits[j].size(); ++l) slots.push_back({j, l});
  }

  // 2. One merged restart pool across all jobs. Grouping (from the tightest
  //    job budget) and the outer width only shape execution order; every
  //    restart's factorization is a pure function of (scores, rank, nmf
  //    options, init), so the demuxed winners below match solo runs bitwise.
  std::size_t group = slots.size();
  if (min_budget > 0) {
    group = std::clamp<std::size_t>(min_budget / max_per_restart_bytes, 1,
                                    slots.size());
  }
  std::vector<std::vector<nmf::NmfResult>> runs(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) runs[j].resize(inits[j].size());
  for (std::size_t g0 = 0; g0 < slots.size(); g0 += group) {
    const std::size_t g1 = std::min(slots.size(), g0 + group);
    obs::Span shard_span("snmf/restart_shard");
    obs::counter_add("shard.count", 1.0);
    par::parallel_for(
        g0, g1, 1,
        [&](std::size_t i) {
          const Slot& s = slots[i];
          const SnmfBatchJob& job = jobs[s.job];
          obs::Span restart_span("snmf/restart");
          runs[s.job][s.restart] = nmf::sparse_nmf_from_init(
              scores, job.options.rank, job.options.nmf,
              std::move(inits[s.job][s.restart]), job.ctx.resolved_threads());
        },
        sweep_threads);
  }

  // 3. Per-job demux: the same first-strictly-better winner scan and
  //    binarization the solo path runs. Duplicates copy their identity
  //    class representative (always at a lower index, so already demuxed).
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (rep_of[j] != j) {
      out[j] = out[rep_of[j]];
      obs::counter_add("snmf.batch_deduped", 1.0);
      continue;
    }
    std::size_t best = 0;
    for (std::size_t l = 1; l < runs[j].size(); ++l) {
      if (runs[j][l].objective < runs[j][best].objective) best = l;
    }
    SnmfSelection selection;
    selection.selected_restart = best;
    selection.restarts_run = runs[j].size();
    for (const nmf::NmfResult& r : runs[j]) {
      selection.nmf_iterations += r.iterations;
    }
    selection.factorization = std::move(runs[j][best]);
    out[j] = binarize_snmf_selection(selection, jobs[j].options);
    out[j].telemetry.wall_seconds = watch.seconds();
  }
  return out;
}

}  // namespace aspe::core
