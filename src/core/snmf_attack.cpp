#include "core/snmf_attack.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/svd.hpp"

namespace aspe::core {

using linalg::Matrix;

Matrix build_score_matrix(
    const std::vector<scheme::CipherPair>& cipher_indexes,
    const std::vector<scheme::CipherPair>& cipher_trapdoors) {
  require(!cipher_indexes.empty() && !cipher_trapdoors.empty(),
          "build_score_matrix: need ciphertexts on both sides");
  Matrix r(cipher_indexes.size(), cipher_trapdoors.size());
  for (std::size_t i = 0; i < cipher_indexes.size(); ++i) {
    for (std::size_t j = 0; j < cipher_trapdoors.size(); ++j) {
      // I_i and T_j are binary, so I_i^T T_j is a non-negative integer;
      // rounding removes the encryption's floating-point noise.
      r(i, j) = std::max(
          0.0,
          std::round(cipher_score(cipher_indexes[i], cipher_trapdoors[j])));
    }
  }
  return r;
}

std::size_t estimate_latent_dimension(const Matrix& scores, double rel_tol) {
  require(scores.rows() > 0 && scores.cols() > 0,
          "estimate_latent_dimension: empty score matrix");
  // One-sided Jacobi SVD needs rows >= cols.
  if (scores.rows() >= scores.cols()) {
    return linalg::Svd(scores).rank(rel_tol);
  }
  return linalg::Svd(scores.transpose()).rank(rel_tol);
}

SnmfAttackResult run_snmf_attack(const sse::CoaView& view,
                                 const SnmfAttackOptions& options,
                                 rng::Rng& rng) {
  return run_snmf_attack(
      build_score_matrix(view.cipher_indexes, view.cipher_trapdoors), options,
      rng);
}

SnmfAttackResult run_snmf_attack(const Matrix& scores,
                                 const SnmfAttackOptions& options,
                                 rng::Rng& rng) {
  require(options.rank > 0, "SNMF attack: rank (d) must be set");
  require(options.restarts > 0, "SNMF attack: need at least one restart");

  // Best of L runs by the sparse-NMF objective (Algorithm 3's loop).
  nmf::NmfResult best;
  bool have_best = false;
  for (std::size_t l = 0; l < options.restarts; ++l) {
    nmf::NmfResult run = nmf::sparse_nmf(scores, options.rank, options.nmf, rng);
    if (!have_best || run.objective < best.objective) {
      best = std::move(run);
      have_best = true;
    }
  }

  if (options.balance) nmf::balance_rows(best.w, best.h);
  const Matrix wb = nmf::to_binary(best.w, options.theta);
  const Matrix hb = nmf::to_binary(best.h, options.theta);

  SnmfAttackResult result;
  result.best_fit_error = best.fit_error;
  result.restarts_run = options.restarts;
  result.indexes.reserve(wb.cols());
  for (std::size_t i = 0; i < wb.cols(); ++i) {
    BitVec v(options.rank);
    for (std::size_t k = 0; k < options.rank; ++k) {
      v[k] = wb(k, i) != 0.0 ? 1 : 0;
    }
    result.indexes.push_back(std::move(v));
  }
  result.trapdoors.reserve(hb.cols());
  for (std::size_t j = 0; j < hb.cols(); ++j) {
    BitVec v(options.rank);
    for (std::size_t k = 0; k < options.rank; ++k) {
      v[k] = hb(k, j) != 0.0 ? 1 : 0;
    }
    result.trapdoors.push_back(std::move(v));
  }
  return result;
}

}  // namespace aspe::core
