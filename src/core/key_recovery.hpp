// KPA key recovery against ASPE Scheme 1 (Theorem 4 of Wong et al. [25]).
//
// Scheme 1 encrypts deterministically with a single matrix (I' = M^T I), so
// d+1 linearly independent known pairs reveal M by solving A M = B — after
// which the adversary decrypts *everything*, including all trapdoors. This
// is the baseline break the Scheme-2 enhancement was designed to prevent
// (and which LEP shows it does not).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "scheme/plain_index.hpp"

namespace aspe::core {

/// What a Scheme-1 KPA adversary sees. Scheme-1 ciphertexts are plain
/// (d+1)-vectors, not share pairs.
struct Scheme1KpaView {
  /// Leaked plaintext records P_i with their ciphertext indexes I'_i.
  std::vector<Vec> known_records;
  std::vector<Vec> known_cipher_indexes;
  /// Everything stored / observed at the server.
  std::vector<Vec> cipher_indexes;
  std::vector<Vec> cipher_trapdoors;
};

struct KeyRecoveryResult {
  linalg::Matrix recovered_key;  // M
  /// Decryptions of every observed ciphertext.
  std::vector<Vec> records;      // P_i for each cipher index
  std::vector<Vec> queries;      // Q_j for each cipher trapdoor
  std::vector<double> query_multipliers;  // r_j
};

/// Run the Theorem-4 attack. Requires at least d+1 known pairs with linearly
/// independent plain indexes; throws NumericalError otherwise.
[[nodiscard]] KeyRecoveryResult run_scheme1_key_recovery(
    const Scheme1KpaView& view);

}  // namespace aspe::core
