#include "core/metrics.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "opt/hungarian.hpp"

namespace aspe::core {

PrecisionRecall binary_precision_recall(const BitVec& truth,
                                        const BitVec& recon) {
  require(truth.size() == recon.size(),
          "binary_precision_recall: length mismatch");
  std::size_t tp = 0, truth_ones = 0, recon_ones = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth[i] != 0;
    const bool r = recon[i] != 0;
    tp += (t && r);
    truth_ones += t;
    recon_ones += r;
  }
  PrecisionRecall pr;
  if (recon_ones > 0) {
    pr.precision = static_cast<double>(tp) / static_cast<double>(recon_ones);
    pr.precision_valid = true;
  }
  if (truth_ones > 0) {
    pr.recall = static_cast<double>(tp) / static_cast<double>(truth_ones);
    pr.recall_valid = true;
  }
  return pr;
}

PrecisionRecall average(const std::vector<PrecisionRecall>& prs) {
  PrecisionRecall out;
  std::size_t np = 0, nr = 0;
  for (const auto& pr : prs) {
    if (pr.precision_valid) {
      out.precision += pr.precision;
      ++np;
    }
    if (pr.recall_valid) {
      out.recall += pr.recall;
      ++nr;
    }
  }
  if (np > 0) {
    out.precision /= static_cast<double>(np);
    out.precision_valid = true;
  }
  if (nr > 0) {
    out.recall /= static_cast<double>(nr);
    out.recall_valid = true;
  }
  return out;
}

double jaccard(const BitVec& a, const BitVec& b) {
  require(a.size() == b.size(), "jaccard: length mismatch");
  std::size_t inter = 0, uni = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool x = a[i] != 0;
    const bool y = b[i] != 0;
    inter += (x && y);
    uni += (x || y);
  }
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::size_t hamming(const BitVec& a, const BitVec& b) {
  require(a.size() == b.size(), "hamming: length mismatch");
  std::size_t h = 0;
  for (std::size_t i = 0; i < a.size(); ++i) h += (a[i] != 0) != (b[i] != 0);
  return h;
}

std::vector<std::size_t> align_latent_dimensions(
    const std::vector<BitVec>& truth_indexes,
    const std::vector<BitVec>& truth_trapdoors,
    const std::vector<BitVec>& recon_indexes,
    const std::vector<BitVec>& recon_trapdoors) {
  require(truth_indexes.size() == recon_indexes.size(),
          "align_latent_dimensions: index count mismatch");
  require(truth_trapdoors.size() == recon_trapdoors.size(),
          "align_latent_dimensions: trapdoor count mismatch");
  require(!truth_indexes.empty() || !truth_trapdoors.empty(),
          "align_latent_dimensions: nothing to align");
  const std::size_t d = truth_indexes.empty() ? truth_trapdoors[0].size()
                                              : truth_indexes[0].size();

  // cost(s, r) = total Hamming mismatch when reconstructed position s is
  // relabeled as truth position r.
  linalg::Matrix cost(d, d, 0.0);
  auto accumulate = [&](const std::vector<BitVec>& truth,
                        const std::vector<BitVec>& recon) {
    for (std::size_t v = 0; v < truth.size(); ++v) {
      require(truth[v].size() == d && recon[v].size() == d,
              "align_latent_dimensions: inconsistent vector length");
      for (std::size_t s = 0; s < d; ++s) {
        const bool rv = recon[v][s] != 0;
        for (std::size_t r = 0; r < d; ++r) {
          cost(s, r) += (rv != (truth[v][r] != 0)) ? 1.0 : 0.0;
        }
      }
    }
  };
  accumulate(truth_indexes, recon_indexes);
  accumulate(truth_trapdoors, recon_trapdoors);

  return opt::solve_assignment(cost).row_to_col;
}

BitVec apply_permutation(const BitVec& v,
                         const std::vector<std::size_t>& perm) {
  require(v.size() == perm.size(), "apply_permutation: length mismatch");
  BitVec out(v.size(), 0);
  for (std::size_t k = 0; k < v.size(); ++k) out[perm[k]] = v[k];
  return out;
}

double top_k_overlap(const std::vector<std::size_t>& truth,
                     const std::vector<std::size_t>& result) {
  require(!truth.empty(), "top_k_overlap: empty truth");
  std::size_t hits = 0;
  for (auto id : result) {
    hits += std::count(truth.begin(), truth.end(), id) > 0;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

std::vector<std::pair<std::size_t, std::size_t>> top_frequencies(
    const std::vector<BitVec>& rows, std::size_t k) {
  std::map<BitVec, std::pair<std::size_t, std::size_t>> groups;  // vec -> (first, count)
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto it = groups.find(rows[i]);
    if (it == groups.end()) {
      groups.emplace(rows[i], std::make_pair(i, std::size_t{1}));
    } else {
      ++it->second.second;
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> out;  // (first idx, count)
  out.reserve(groups.size());
  for (const auto& [vec, info] : groups) out.push_back(info);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace aspe::core
