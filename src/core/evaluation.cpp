#include "core/evaluation.hpp"

#include "common/error.hpp"
#include "par/parallel.hpp"

namespace aspe::core {

SnmfEvaluation evaluate_snmf(const std::vector<BitVec>& truth_indexes,
                             const std::vector<BitVec>& truth_trapdoors,
                             const SnmfAttackResult& result) {
  require(truth_indexes.size() == result.indexes.size(),
          "evaluate_snmf: index count mismatch");
  require(truth_trapdoors.size() == result.trapdoors.size(),
          "evaluate_snmf: trapdoor count mismatch");

  SnmfEvaluation eval;
  eval.alignment = align_latent_dimensions(truth_indexes, truth_trapdoors,
                                           result.indexes, result.trapdoors);
  std::vector<PrecisionRecall> idx_prs, trap_prs, all_prs;
  for (std::size_t i = 0; i < truth_indexes.size(); ++i) {
    auto pr = binary_precision_recall(
        truth_indexes[i], apply_permutation(result.indexes[i], eval.alignment));
    idx_prs.push_back(pr);
    all_prs.push_back(pr);
  }
  for (std::size_t j = 0; j < truth_trapdoors.size(); ++j) {
    auto pr = binary_precision_recall(
        truth_trapdoors[j],
        apply_permutation(result.trapdoors[j], eval.alignment));
    trap_prs.push_back(pr);
    all_prs.push_back(pr);
  }
  eval.indexes = average(idx_prs);
  eval.trapdoors = average(trap_prs);
  eval.combined = average(all_prs);
  return eval;
}

MipBatchReport run_mip_attack_batch(const sse::MrseKpaView& view, double mu,
                                    double sigma,
                                    const std::vector<BitVec>& truth_queries,
                                    const MipAttackOptions& options) {
  ExecContext ctx;
  ctx.threads = 1;
  return run_mip_attack_batch(view, mu, sigma, truth_queries, options, ctx);
}

MipBatchReport run_mip_attack_batch(const sse::MrseKpaView& view, double mu,
                                    double sigma,
                                    const std::vector<BitVec>& truth_queries,
                                    const MipAttackOptions& options,
                                    const ExecContext& ctx) {
  const std::size_t n = view.observed.cipher_trapdoors.size();
  require(truth_queries.empty() || truth_queries.size() == n,
          "run_mip_attack_batch: truth/trapdoor count mismatch");

  MipBatchReport report;
  report.entries.assign(n, MipBatchEntry{});
  // The per-trapdoor attacks are independent: fan them out, then aggregate
  // the report sequentially in trapdoor order so counters and averages match
  // the serial loop exactly.
  par::parallel_for(
      0, n, 1,
      [&](std::size_t j) {
        report.entries[j].trapdoor_id = j;
        report.entries[j].attack = run_mip_attack(view, j, mu, sigma, options, ctx);
      },
      ctx.resolved_threads());

  std::vector<PrecisionRecall> prs;
  for (std::size_t j = 0; j < n; ++j) {
    MipBatchEntry& entry = report.entries[j];
    ++report.attempted;
    if (entry.attack.found) {
      ++report.solved;
      report.total_seconds += entry.attack.telemetry.wall_seconds;
      if (!truth_queries.empty()) {
        entry.accuracy =
            binary_precision_recall(truth_queries[j], entry.attack.query);
        prs.push_back(*entry.accuracy);
      }
    }
  }
  report.average_accuracy = average(prs);
  return report;
}

}  // namespace aspe::core
