// Evaluation metrics for the attacks (§VI "Metrics").
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace aspe::core {

/// Precision / recall of reconstructing the 1's of a binary vector.
/// precision = |v ∩ v*| / |v*|, recall = |v ∩ v*| / |v| (the paper's
/// definitions). When |v*| = 0 precision is undefined — `precision_valid`
/// is false (the paper prints "-"); likewise recall when |v| = 0.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  bool precision_valid = false;
  bool recall_valid = false;
};

[[nodiscard]] PrecisionRecall binary_precision_recall(const BitVec& truth,
                                                      const BitVec& recon);

/// Average of many precision/recall results, skipping invalid components.
[[nodiscard]] PrecisionRecall average(const std::vector<PrecisionRecall>& prs);

/// Jaccard similarity |a ∩ b| / |a ∪ b| (1 when both empty).
[[nodiscard]] double jaccard(const BitVec& a, const BitVec& b);

/// Hamming distance.
[[nodiscard]] std::size_t hamming(const BitVec& a, const BitVec& b);

/// Optimal relabeling of reconstructed latent dimensions.
///
/// R = I^T T is invariant under permutations of the d latent dimensions, so
/// any factorization recovers indexes/trapdoors only up to a global position
/// permutation. This computes the minimum-Hamming-cost assignment between
/// reconstructed positions and ground-truth positions over all supplied
/// vectors (Hungarian algorithm) and returns perm with
/// perm[recon_position] = truth_position.
[[nodiscard]] std::vector<std::size_t> align_latent_dimensions(
    const std::vector<BitVec>& truth_indexes,
    const std::vector<BitVec>& truth_trapdoors,
    const std::vector<BitVec>& recon_indexes,
    const std::vector<BitVec>& recon_trapdoors);

/// Apply a latent-dimension permutation to a reconstructed vector:
/// out[perm[k]] = v[k].
[[nodiscard]] BitVec apply_permutation(const BitVec& v,
                                       const std::vector<std::size_t>& perm);

/// Fraction of `truth` ids present in `result` (order-insensitive top-k
/// overlap). Used to quantify how much MRSE's noise distorts the ranking —
/// the usefulness side of the paper's noise/accuracy trade-off.
[[nodiscard]] double top_k_overlap(const std::vector<std::size_t>& truth,
                                   const std::vector<std::size_t>& result);

/// Frequency analysis (Table IV): group identical vectors and return
/// (representative first index, count) pairs of the `k` most frequent
/// vectors, descending by count (ties by first appearance).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> top_frequencies(
    const std::vector<BitVec>& rows, std::size_t k);

}  // namespace aspe::core
