#include "core/lep.hpp"

#include <optional>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "linalg/lu.hpp"
#include "linalg/solve.hpp"
#include "obs/obs.hpp"
#include "par/parallel.hpp"

namespace aspe::core {

using linalg::IndependenceTracker;
using linalg::LuDecomposition;
using linalg::Matrix;
using scheme::cipher_score;

LepResult run_lep_attack(const sse::KpaView& view, const LepOptions& options,
                         const ExecContext& ctx) {
  Stopwatch watch;
  obs::ScopedRecording rec(ctx.sink);
  std::optional<obs::Span> root;
  if (rec.active()) root.emplace("lep/attack");

  const std::size_t threads = ctx.resolved_threads();
  require(!view.known_pairs.empty(), "LEP: no known plaintext-ciphertext pairs");
  const std::size_t n = view.known_pairs[0].plain_index.size();  // d + 1

  // Select n known pairs with linearly independent plain indexes.
  std::vector<std::size_t> chosen;
  std::optional<LuDecomposition> a_lu;
  {
    obs::Span span("lep/select_known_basis");
    IndependenceTracker pair_tracker(n, options.independence_tol);
    for (std::size_t i = 0;
         i < view.known_pairs.size() && !pair_tracker.complete(); ++i) {
      require(view.known_pairs[i].plain_index.size() == n,
              "LEP: inconsistent known-pair dimensions");
      if (pair_tracker.try_add(view.known_pairs[i].plain_index)) {
        chosen.push_back(i);
      }
    }
    if (!pair_tracker.complete()) {
      throw NumericalError(
          "LEP: fewer than d+1 linearly independent known records (the "
          "paper's KPA assumption is not met)");
    }

    // Step 1 system matrix A: rows are the chosen plain indexes I_i.
    std::vector<Vec> a_rows;
    a_rows.reserve(n);
    for (auto i : chosen) a_rows.push_back(view.known_pairs[i].plain_index);
    a_lu.emplace(Matrix::from_rows(a_rows));
    if (a_lu->is_singular()) {
      throw NumericalError("LEP: known-pair system unexpectedly singular");
    }
  }

  LepResult result;
  const auto& trapdoor_ciphers = view.observed.cipher_trapdoors;

  // Recover every trapdoor. The per-trapdoor solves are independent, so they
  // fan out; the basis scan below stays sequential so the selected basis (and
  // trapdoors_scanned_for_basis) matches the serial implementation exactly.
  result.trapdoors.assign(trapdoor_ciphers.size(), Vec{});
  {
    obs::Span span("lep/recover_trapdoors");
    par::parallel_for(
        0, trapdoor_ciphers.size(), 1,
        [&](std::size_t j) {
          Vec rhs(n);
          for (std::size_t i = 0; i < n; ++i) {
            rhs[i] = cipher_score(view.known_pairs[chosen[i]].cipher,
                                  trapdoor_ciphers[j]);
          }
          result.trapdoors[j] = a_lu->solve(rhs);
        },
        threads);
  }

  std::size_t scanned_for_basis = 0;
  IndependenceTracker trapdoor_tracker(n, options.independence_tol);
  std::vector<std::size_t> basis_ids;
  {
    obs::Span span("lep/scan_trapdoor_basis");
    for (std::size_t j = 0;
         j < result.trapdoors.size() && !trapdoor_tracker.complete(); ++j) {
      scanned_for_basis = j + 1;
      if (trapdoor_tracker.try_add(result.trapdoors[j])) basis_ids.push_back(j);
    }
  }
  if (!trapdoor_tracker.complete()) {
    throw NumericalError(
        "LEP: fewer than d+1 linearly independent trapdoors observed; the "
        "adversary must wait for more queries");
  }

  // Recover Q_j, r_j from each T_j = r_j (Q_j, 1).
  std::optional<LuDecomposition> b_lu_storage;
  {
    obs::Span span("lep/unpack_queries");
    result.queries.reserve(result.trapdoors.size());
    result.query_multipliers.reserve(result.trapdoors.size());
    for (const auto& t : result.trapdoors) {
      auto rq = scheme::query_from_trapdoor(t);
      result.queries.push_back(std::move(rq.q));
      result.query_multipliers.push_back(rq.r);
    }

    // Step 2 system matrix B: rows are the basis trapdoors T_j.
    std::vector<Vec> b_rows;
    b_rows.reserve(n);
    for (auto j : basis_ids) b_rows.push_back(result.trapdoors[j]);
    b_lu_storage.emplace(Matrix::from_rows(b_rows));
    if (b_lu_storage->is_singular()) {
      throw NumericalError("LEP: trapdoor basis unexpectedly singular");
    }
  }
  const LuDecomposition& b_lu = *b_lu_storage;

  const auto& index_ciphers = view.observed.cipher_indexes;
  result.indexes.assign(index_ciphers.size(), Vec{});
  result.records.assign(index_ciphers.size(), Vec{});
  {
    obs::Span span("lep/recover_indexes");
    par::parallel_for(
        0, index_ciphers.size(), 1,
        [&](std::size_t idx) {
          Vec rhs(n);
          for (std::size_t k = 0; k < n; ++k) {
            rhs[k] = cipher_score(index_ciphers[idx],
                                  trapdoor_ciphers[basis_ids[k]]);
          }
          Vec index = b_lu.solve(rhs);
          result.records[idx] = scheme::record_from_index(index);
          result.indexes[idx] = std::move(index);
        },
        threads);
  }

  result.telemetry.counters["lep.dimension"] = static_cast<double>(n);
  result.telemetry.counters["lep.trapdoor_solves"] =
      static_cast<double>(trapdoor_ciphers.size());
  result.telemetry.counters["lep.index_solves"] =
      static_cast<double>(index_ciphers.size());
  result.telemetry.counters["lep.trapdoors_scanned_for_basis"] =
      static_cast<double>(scanned_for_basis);

  root.reset();
  result.telemetry.wall_seconds = watch.seconds();
  result.telemetry.absorb(rec.finish());
  return result;
}

}  // namespace aspe::core
