// The unified attack-layer API: one request/response vocabulary and one
// dispatch entry point shared by the CLI, the bench harnesses and the
// aspe::svc daemon.
//
// Before this layer, the three attacks exposed three differently-shaped
// signatures (run_lep_attack takes a KpaView, run_mip_attack a pair list +
// trapdoor + noise parameters, run_snmf_attack a CoaView), and every caller
// hand-rolled its own argument -> options translation. Now:
//
//   * `AttackRequest` is a tagged variant of LepRequest / MipRequest /
//     SnmfRequest. Each request references its corpora through `CorpusRef`s
//     — by file path (any io codec format, sniffed) or by inline payload —
//     so the same request type describes a CLI invocation over files, a
//     daemon job shipped over a socket, or an in-memory bench call.
//   * `dispatch_attack(request, ctx)` resolves the corpora, assembles the
//     adversary view, runs the attack, and returns an `AttackResponse`
//     carrying a status, a typed error code, and the result variant. It
//     never throws: failures are mapped onto the ErrorCode taxonomy so a
//     daemon can turn them into protocol status codes and the CLI into
//     distinct exit codes.
//
// The per-attack free functions (run_lep_attack / run_mip_attack /
// run_snmf_attack) remain as the type-specific kernels underneath dispatch —
// see docs/api.md for the migration note.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "core/exec_context.hpp"
#include "core/lep.hpp"
#include "core/mip_attack.hpp"
#include "core/score_cache.hpp"
#include "core/snmf_attack.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::core {

// ------------------------------------------------------------------ errors

/// The typed failure taxonomy of the attack API boundary. Every failure a
/// caller can observe through `dispatch_attack` (or the CLI's exit code, or
/// the svc protocol's status byte) is one of these four:
enum class ErrorCode : std::uint8_t {
  Ok = 0,
  /// The request itself is wrong: missing or malformed corpora, dimension
  /// mismatches, out-of-range parameters, unknown tags.
  BadInput = 1,
  /// The attack's preconditions are not met *yet*: fewer than d+1
  /// independent known pairs / trapdoors, a session still collecting its
  /// basis. Retrying with more observations can succeed.
  NotReady = 2,
  /// A resource budget was exhausted before the attack could run or finish:
  /// job deadline expired, queue overloaded, time/node limits.
  Budget = 3,
  /// Everything else — a bug or an unmodeled condition.
  Internal = 4,
};

/// Short stable name ("ok", "bad-input", "not-ready", "budget", "internal")
/// for logs, protocol dumps and CLI diagnostics.
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// Typed error thrown at the attack API boundary. Derives from aspe::Error
/// so existing catch sites keep working; new code should catch core::Error
/// and branch on `code` instead of parsing what().
class Error : public ::aspe::Error {
 public:
  Error(ErrorCode code, const std::string& what)
      : ::aspe::Error(what), code(code) {}

  ErrorCode code;
};

/// Classify any exception onto the taxonomy: core::Error reports its own
/// code; InvalidArgument and io::IoError are BadInput; NumericalError is
/// NotReady (the attack's mathematical preconditions were not met — more
/// observations may fix it); everything else is Internal.
[[nodiscard]] ErrorCode error_code_of(const std::exception& e);

/// Exit code the CLI maps `code` to: 0 Ok, 2 BadInput, 4 NotReady,
/// 5 Budget, 1 Internal. (3 is taken by "no feasible point" — see
/// AttackStatus::NoSolution.)
[[nodiscard]] int exit_code_for(ErrorCode code);

// ----------------------------------------------------------------- corpora

/// A reference to one corpus: either a file path (resolved through
/// io::open_reader, so both the text format and the io::v2 binary container
/// work, sniffed) or an inline payload. Inline payloads are held through
/// shared_ptr so a warm cache (the daemon's) can hand the same parsed corpus
/// to many jobs without copying.
struct CorpusRef {
  std::string path;  // non-empty => load from file
  std::shared_ptr<const std::vector<scheme::CipherPair>> ciphers;  // inline
  std::shared_ptr<const std::vector<Vec>> vecs;                    // inline

  [[nodiscard]] static CorpusRef from_path(std::string p);
  [[nodiscard]] static CorpusRef inline_ciphers(
      std::vector<scheme::CipherPair> db);
  [[nodiscard]] static CorpusRef inline_vecs(std::vector<Vec> v);

  /// True when the ref names no source at all (no path, no inline payload).
  [[nodiscard]] bool empty() const {
    return path.empty() && ciphers == nullptr && vecs == nullptr;
  }

  /// Resolve to a ciphertext database: the inline payload when present,
  /// otherwise the file at `path` read as a cipher database. Throws
  /// core::Error{BadInput} when the ref is empty or holds the wrong record
  /// kind, io errors surface as BadInput via dispatch.
  [[nodiscard]] std::shared_ptr<const std::vector<scheme::CipherPair>>
  load_ciphers(const char* what) const;

  /// Resolve to a list of real vectors (same rules).
  [[nodiscard]] std::shared_ptr<const std::vector<Vec>> load_vecs(
      const char* what) const;
};

// ---------------------------------------------------------------- requests

/// Algorithm 1 (LEP, §III.B). `known_plain` holds the leaked plaintext
/// *records* P_i, aligned with the first entries of `db`; dispatch derives
/// the plain indexes I_i and pairs them exactly as the CLI always did.
struct LepRequest {
  CorpusRef known_plain;  // vec corpus
  CorpusRef db;           // cipher corpus (indexes)
  CorpusRef trapdoors;    // cipher corpus
  LepOptions options;
};

/// Algorithm 2 (MIP, §IV.B) against one observed trapdoor.
struct MipRequest {
  CorpusRef known_plain;  // vec corpus; entries are binarized at 0.5
  CorpusRef db;           // cipher corpus, aligned with known_plain
  CorpusRef trapdoors;    // cipher corpus
  std::size_t trapdoor_id = 0;
  double mu = 1.0;
  double sigma = 0.5;
  MipAttackOptions options;
};

/// Algorithm 3 (SNMF, §V.B). options.rank == 0 estimates the latent
/// dimension from rank(R) before the factorization, recording the choice in
/// the response counter "snmf.estimated_rank".
struct SnmfRequest {
  CorpusRef db;         // cipher corpus (indexes)
  CorpusRef trapdoors;  // cipher corpus
  SnmfAttackOptions options;
  /// Daemon-only hint: when true, a daemon that still holds a warm
  /// CoaSession for the identical corpus may resume its factorization
  /// instead of running the cold restart sweep. The resumed result
  /// converges to the same fixed point but is *not* bitwise identical to
  /// the cold path; leave false (the default) for reproducible output.
  bool reuse_session = false;
};

enum class AttackKind : std::uint8_t { Lep = 1, Mip = 2, Snmf = 3 };

/// The unified job description. One tagged variant — the CLI builds it from
/// flags, the daemon decodes it from a Submit frame, benches construct it
/// directly.
struct AttackRequest {
  std::variant<LepRequest, MipRequest, SnmfRequest> request;

  [[nodiscard]] AttackKind kind() const {
    switch (request.index()) {
      case 0: return AttackKind::Lep;
      case 1: return AttackKind::Mip;
      default: return AttackKind::Snmf;
    }
  }
};

// ---------------------------------------------------------------- response

enum class AttackStatus : std::uint8_t {
  /// The attack ran and produced its result.
  Ok = 0,
  /// The attack ran to completion but found nothing (currently only MIP:
  /// no feasible query within the limits). The result variant still holds
  /// the typed result (found == false) so telemetry is available.
  NoSolution = 1,
  /// The attack failed; `error` / `message` say how, `result` is empty.
  Failed = 2,
};

struct AttackResponse {
  AttackStatus status = AttackStatus::Failed;
  ErrorCode error = ErrorCode::Internal;  // Ok unless status == Failed
  std::string message;                    // error text when Failed

  std::variant<std::monostate, LepResult, MipAttackResult, SnmfAttackResult>
      result;

  /// The result's telemetry block (wall time always; spans/counters merged
  /// when a sink was attached). Kept at top level so failed runs can still
  /// report cost, and so protocol encoders need not unpack the variant.
  AttackTelemetry telemetry;

  [[nodiscard]] bool ok() const { return status != AttackStatus::Failed; }

  [[nodiscard]] const LepResult& lep() const {
    return std::get<LepResult>(result);
  }
  [[nodiscard]] const MipAttackResult& mip() const {
    return std::get<MipAttackResult>(result);
  }
  [[nodiscard]] const SnmfAttackResult& snmf() const {
    return std::get<SnmfAttackResult>(result);
  }
};

// ------------------------------------------------------------------- hooks

/// Optional warm state a long-lived host (the svc daemon) threads through
/// dispatch. Everything here is an accelerator, never an input: a dispatch
/// with hooks returns bit-identical results to one without (the MIP warm
/// state differs only in skipped simplex pivots, which canonicalization
/// makes invisible — see core::MipWarmState).
struct DispatchHooks {
  /// Shared score-matrix cache for SNMF. Only consulted when `score_key` is
  /// non-empty; the key must identify the (db, trapdoors) corpus pair
  /// *content* — the daemon keys on stat fingerprints. The per-call
  /// ctx.memory_budget_bytes bounds the cache's resident bytes.
  ScoreMatrixCache* score_cache = nullptr;
  std::string score_key;

  /// Persistent MIP basis + cut-pool state, keyed by the caller (the daemon
  /// keys on corpus fingerprints + attack parameters). Dispatch hands it to
  /// the 7-arg run_mip_attack, which self-invalidates on model-digest
  /// mismatch. The caller owns lifetime and cross-job locking.
  MipWarmState* mip_warm = nullptr;
};

/// The single entry point the CLI, the daemon and the bench harnesses route
/// through: resolve corpora, assemble the adversary view, validate the
/// paper's preconditions, run the attack kernel, and map any failure onto
/// the ErrorCode taxonomy. Never throws; the response's status/error carry
/// the outcome. Results are bit-identical to calling the per-attack free
/// functions on the same resolved inputs (dispatch adds only corpus
/// resolution and, for SNMF with rank == 0, the same rank estimation the
/// CLI used to perform — at options.rank_tol, over a score matrix built
/// once and shared with the factorization).
[[nodiscard]] AttackResponse dispatch_attack(const AttackRequest& request,
                                             const ExecContext& ctx = {});

/// Hook-carrying overload for warm hosts (see DispatchHooks). Passing a
/// default-constructed hooks object is exactly the 2-arg form.
[[nodiscard]] AttackResponse dispatch_attack(const AttackRequest& request,
                                             const ExecContext& ctx,
                                             const DispatchHooks& hooks);

}  // namespace aspe::core
