// Algorithm 1 — Linear Equation Program (LEP): the KPA attack on ASPE
// Scheme 2 (§III.B, Security Risk 1).
//
// Given plaintext-ciphertext pairs (I_i, I'_i) for d+1 linearly independent
// records and the ciphertext trapdoors of processed queries:
//
//   Step 1: for each trapdoor T'_j, solve   I_i^T T_j = I'_i^T T'_j,
//           i = 1..d+1   — a (d+1)x(d+1) linear system with unique
//           solution T_j. Stop collecting once d+1 linearly independent
//           T_j are found.
//   Step 2: with those (T_j, T'_j) pairs, for each remaining ciphertext
//           index I'_i solve   T_j^T I_i = I'_i^T T'_j,  j = 1..d+1.
//
// Output: every processed query's plaintext Q_j (and its r_j) and every
// record's plaintext P_i — a complete disclosure of the database, with
// O((d+1)^3) Gaussian-elimination cost (Remark 1).
#pragma once

#include <optional>
#include <vector>

#include "core/exec_context.hpp"
#include "core/telemetry.hpp"
#include "scheme/plain_index.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::core {

struct LepOptions {
  /// Tolerance for the linear-independence checks.
  double independence_tol = 1e-9;
};

struct LepResult {
  /// Recovered plaintext trapdoors T_j, one per observed ciphertext trapdoor
  /// (same order as the input view).
  std::vector<Vec> trapdoors;
  /// Recovered queries Q_j and their random multipliers r_j.
  std::vector<Vec> queries;
  std::vector<double> query_multipliers;

  /// Recovered plaintext indexes I_i for the non-leaked ciphertext indexes
  /// (same order as the input), and the corresponding records P_i.
  std::vector<Vec> indexes;
  std::vector<Vec> records;

  /// Wall time, span summary and counter snapshot for this run. Driver
  /// counters: "lep.trapdoors_scanned_for_basis", "lep.trapdoor_solves",
  /// "lep.index_solves", "lep.dimension" (and "lep.warm_resolves" when the
  /// result was assembled by a LepSession).
  AttackTelemetry telemetry;
};

/// Run the LEP attack on a KPA view. Signature convention (docs/api.md):
/// inputs first, options next, ExecContext last, both defaulted — the
/// default ExecContext runs serially, matching the historical two-argument
/// form.
///
/// The per-trapdoor and per-index linear solves (the O((d+1)^3) bulk of
/// Remark 1) fan out over ctx.threads; the basis scan stays sequential, so
/// the result is bit-identical to the serial path. The attack consumes no
/// randomness; ctx.seed is unused.
///
/// Requirements (the paper's assumptions):
///  * view.known_pairs contains at least d+1 pairs whose plain indexes are
///    linearly independent (throws NumericalError otherwise — failure is
///    detected, never silent garbage);
///  * view.observed.cipher_trapdoors contains at least d+1 trapdoors with
///    linearly independent plaintexts (throws NumericalError otherwise).
[[nodiscard]] LepResult run_lep_attack(const sse::KpaView& view,
                                       const LepOptions& options = {},
                                       const ExecContext& ctx = {});

}  // namespace aspe::core
