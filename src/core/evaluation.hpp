// Shared evaluation harnesses for the attacks (used by tests, benches and
// downstream experiments).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/metrics.hpp"
#include "core/mip_attack.hpp"
#include "core/snmf_attack.hpp"

namespace aspe::core {

/// Aggregate view of a SNMF reconstruction against ground truth: average
/// precision/recall of indexes and trapdoors after the optimal latent
/// relabeling (DESIGN.md §4.5).
struct SnmfEvaluation {
  PrecisionRecall indexes;
  PrecisionRecall trapdoors;
  PrecisionRecall combined;
  /// The latent permutation used (recon position -> truth position).
  std::vector<std::size_t> alignment;
};

[[nodiscard]] SnmfEvaluation evaluate_snmf(
    const std::vector<BitVec>& truth_indexes,
    const std::vector<BitVec>& truth_trapdoors,
    const SnmfAttackResult& result);

/// One row of a batch MIP attack: the per-trapdoor outcome plus accuracy
/// against the true query when ground truth is supplied.
struct MipBatchEntry {
  std::size_t trapdoor_id = 0;
  MipAttackResult attack;
  std::optional<PrecisionRecall> accuracy;  // set when truth was provided
};

struct MipBatchReport {
  std::vector<MipBatchEntry> entries;
  std::size_t attempted = 0;
  std::size_t solved = 0;
  double total_seconds = 0.0;
  PrecisionRecall average_accuracy;  // over solved entries with truth

  [[nodiscard]] double solve_rate() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(solved) /
                                static_cast<double>(attempted);
  }
  [[nodiscard]] double average_seconds() const {
    return solved == 0 ? 0.0 : total_seconds / static_cast<double>(solved);
  }
};

/// Attack every observed trapdoor of a KPA view. `truth_queries`, when
/// non-empty, must parallel the observed trapdoors and enables accuracy
/// aggregation.
[[nodiscard]] MipBatchReport run_mip_attack_batch(
    const sse::MrseKpaView& view, double mu, double sigma,
    const std::vector<BitVec>& truth_queries = {},
    const MipAttackOptions& options = {});

/// ExecContext overload: per-trapdoor attacks fan out over ctx.threads (the
/// inner heuristics then run serially — one attack per pool chunk), and the
/// report is aggregated in trapdoor order. Every recovered query matches the
/// serial run bit for bit; only the wall-clock `seconds` fields differ.
[[nodiscard]] MipBatchReport run_mip_attack_batch(
    const sse::MrseKpaView& view, double mu, double sigma,
    const std::vector<BitVec>& truth_queries, const MipAttackOptions& options,
    const ExecContext& ctx);

}  // namespace aspe::core
