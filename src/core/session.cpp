#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "linalg/kernels.hpp"
#include "par/parallel.hpp"
#include "scheme/plain_index.hpp"

namespace aspe::core {

using linalg::Matrix;
using scheme::cipher_score;

namespace {

/// Append one ciphertext half per row onto a stacked-half matrix.
void append_half(Matrix& dest, const std::vector<scheme::CipherPair>& pairs,
                 std::size_t dim, bool first_half) {
  const std::size_t r0 = dest.rows();
  dest.conservative_resize(r0 + pairs.size(), dim);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Vec& half = first_half ? pairs[i].a : pairs[i].b;
    require(half.size() == dim, "CoaSession: ragged ciphertexts");
    std::copy(half.begin(), half.end(), dest.row_ptr(r0 + i));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CoaSession

CoaSession::CoaSession(SnmfAttackOptions options, ExecContext ctx)
    : options_(options), ctx_(ctx) {}

CoaSession::CoaSession(CoaSessionSnapshot snapshot, SnmfAttackOptions options,
                       ExecContext ctx)
    : options_(options), ctx_(ctx) {
  require(snapshot.index_a.rows() == snapshot.scores.rows() &&
              snapshot.index_b.rows() == snapshot.scores.rows(),
          "CoaSession: snapshot index halves disagree with the score matrix");
  require(snapshot.trapdoor_a.rows() == snapshot.scores.cols() &&
              snapshot.trapdoor_b.rows() == snapshot.scores.cols(),
          "CoaSession: snapshot trapdoor halves disagree with the score "
          "matrix");
  require(snapshot.index_a.cols() == snapshot.trapdoor_a.cols() &&
              snapshot.index_b.cols() == snapshot.trapdoor_b.cols(),
          "CoaSession: snapshot half dimensions disagree");
  if (snapshot.factorization) {
    const nmf::NmfResult& f = *snapshot.factorization;
    require(f.w.rows() == f.h.rows() &&
                f.w.cols() == snapshot.scores.rows() &&
                f.h.cols() == snapshot.scores.cols(),
            "CoaSession: snapshot factorization shape mismatch");
  }
  da_ = snapshot.index_a.cols();
  db_ = snapshot.index_b.cols();
  ia_ = std::move(snapshot.index_a);
  ib_ = std::move(snapshot.index_b);
  ta_ = std::move(snapshot.trapdoor_a);
  tb_ = std::move(snapshot.trapdoor_b);
  scores_ = std::move(snapshot.scores);
  factorization_ = std::move(snapshot.factorization);
}

void CoaSession::fold_recording(obs::ScopedRecording& rec, double seconds) {
  pending_seconds_ += seconds;
  obs::Summary s = rec.finish();
  for (const auto& [name, value] : s.counters) {
    pending_.counters[name] += value;
  }
  for (const auto& [name, value] : s.gauges) pending_.gauges[name] = value;
  pending_.spans.insert(pending_.spans.end(),
                        std::make_move_iterator(s.spans.begin()),
                        std::make_move_iterator(s.spans.end()));
}

void CoaSession::append_ciphertexts(const sse::CoaView& delta) {
  const std::size_t k = delta.cipher_indexes.size();
  const std::size_t c = delta.cipher_trapdoors.size();
  if (k == 0 && c == 0) return;
  Stopwatch watch;
  obs::ScopedRecording rec(ctx_.sink);
  {
    obs::Span root("coa/append");
    if (da_ == 0 && db_ == 0) {
      const scheme::CipherPair& probe =
          k > 0 ? delta.cipher_indexes[0] : delta.cipher_trapdoors[0];
      da_ = probe.a.size();
      db_ = probe.b.size();
      require(da_ > 0 || db_ > 0, "CoaSession: empty ciphertexts");
    }
    const std::size_t n_old = scores_.rows();
    const std::size_t m_old = scores_.cols();
    append_half(ia_, delta.cipher_indexes, da_, true);
    append_half(ib_, delta.cipher_indexes, db_, false);
    append_half(ta_, delta.cipher_trapdoors, da_, true);
    append_half(tb_, delta.cipher_trapdoors, db_, false);

    const std::size_t n = n_old + k;
    const std::size_t m = m_old + c;
    scores_.conservative_resize(n, m);

    // Column band: old indexes x new trapdoors. Row band: new indexes x
    // all trapdoors. Together they cover exactly the fresh entries; the
    // integer rounding below makes each entry bit-identical to the batch
    // build regardless of band shape or thread count.
    if (n_old > 0 && c > 0) {
      auto band = scores_.view().block(0, m_old, n_old, c);
      linalg::gemm(1.0, ia_.cview().block(0, 0, n_old, da_), linalg::Op::None,
                   ta_.cview().block(m_old, 0, c, da_), linalg::Op::Transpose,
                   0.0, band, ctx_.threads);
      linalg::gemm(1.0, ib_.cview().block(0, 0, n_old, db_), linalg::Op::None,
                   tb_.cview().block(m_old, 0, c, db_), linalg::Op::Transpose,
                   1.0, band, ctx_.threads);
    }
    if (k > 0 && m > 0) {
      auto band = scores_.view().block(n_old, 0, k, m);
      linalg::gemm(1.0, ia_.cview().block(n_old, 0, k, da_), linalg::Op::None,
                   ta_.cview(), linalg::Op::Transpose, 0.0, band,
                   ctx_.threads);
      linalg::gemm(1.0, ib_.cview().block(n_old, 0, k, db_), linalg::Op::None,
                   tb_.cview(), linalg::Op::Transpose, 1.0, band,
                   ctx_.threads);
    }
    par::parallel_for(
        0, n, 1,
        [&](std::size_t i) {
          double* ri = scores_.row_ptr(i);
          for (std::size_t j = i < n_old ? m_old : 0; j < m; ++j) {
            ri[j] = std::max(0.0, std::round(ri[j]));
          }
        },
        ctx_.threads);

    obs::counter_add("score.appended_rows", static_cast<double>(k));
    obs::counter_add("score.appended_cols", static_cast<double>(c));
  }
  const bool recorded = rec.active();
  fold_recording(rec, watch.seconds());
  if (!recorded) {
    pending_.counters["score.appended_rows"] += static_cast<double>(k);
    pending_.counters["score.appended_cols"] += static_cast<double>(c);
  }
}

std::size_t CoaSession::estimate_rank(double rel_tol) {
  require(scores_.rows() > 0 && scores_.cols() > 0,
          "CoaSession: no ciphertexts appended yet");
  Stopwatch watch;
  obs::ScopedRecording rec(ctx_.sink);
  std::size_t rank = 0;
  {
    obs::Span root("coa/estimate_rank");
    rank = estimate_latent_dimension(scores_.cview(), svd_state_, rel_tol,
                                     ctx_);
  }
  fold_recording(rec, watch.seconds());
  return rank;
}

void CoaSession::set_rank(std::size_t rank) {
  require(rank > 0, "CoaSession: rank must be positive");
  if (rank != options_.rank) factorization_.reset();
  options_.rank = rank;
}

SnmfAttackResult CoaSession::attack() {
  require(options_.rank > 0,
          "CoaSession: rank not set (call set_rank or estimate_rank first)");
  require(scores_.rows() > 0 && scores_.cols() > 0,
          "CoaSession: no ciphertexts appended yet");
  Stopwatch watch;
  obs::ScopedRecording rec(ctx_.sink);
  std::optional<obs::Span> root;
  if (rec.active()) root.emplace("snmf/attack");

  SnmfAttackResult result;
  const bool can_resume = factorization_ &&
                          factorization_->w.rows() == options_.rank &&
                          factorization_->w.cols() <= scores_.rows() &&
                          factorization_->h.cols() <= scores_.cols();
  if (can_resume) {
    nmf::SparseNmfOptions resume_opts = options_.nmf;
    if (options_.resume_iterations > 0) {
      resume_opts.max_iterations = options_.resume_iterations;
    }
    SnmfSelection selection;
    selection.factorization =
        nmf::sparse_nmf_resume(scores_, options_.rank, resume_opts,
                               *factorization_, ctx_.resolved_threads());
    selection.selected_restart = 0;
    selection.restarts_run = 1;
    selection.nmf_iterations = selection.factorization.iterations;
    result = binarize_snmf_selection(selection, options_);
    obs::counter_add("snmf.resumes", 1.0);
    result.telemetry.counters["snmf.resumes"] = 1.0;
    factorization_ = std::move(selection.factorization);
  } else {
    // Cold path — the exact batch pipeline, so a fresh session's first
    // attack is bit-identical to run_snmf_attack(scores, options, ctx).
    std::vector<nmf::NmfInit> inits = draw_snmf_inits(scores_, options_, ctx_);
    SnmfSelection selection =
        run_snmf_restarts(scores_, options_, std::move(inits), ctx_);
    result = binarize_snmf_selection(selection, options_);
    factorization_ = std::move(selection.factorization);
  }

  root.reset();
  result.telemetry.wall_seconds = watch.seconds();
  result.telemetry.absorb(rec.finish());

  // Fold in whatever the appends / rank estimates recorded since the last
  // attack: counters and prep time add, gauges keep their latest value,
  // span aggregates merge by name.
  for (const auto& [name, value] : pending_.counters) {
    result.telemetry.counters[name] += value;
  }
  for (const auto& [name, value] : pending_.gauges) {
    result.telemetry.gauges[name] = value;
  }
  if (!pending_.spans.empty()) {
    std::vector<obs::SpanStat> extra = obs::aggregate_spans(pending_.spans);
    for (obs::SpanStat& stat : extra) {
      auto it = std::find_if(
          result.telemetry.spans.begin(), result.telemetry.spans.end(),
          [&](const obs::SpanStat& s) { return s.name == stat.name; });
      if (it == result.telemetry.spans.end()) {
        result.telemetry.spans.push_back(std::move(stat));
      } else {
        it->count += stat.count;
        it->total_seconds += stat.total_seconds;
      }
    }
  }
  if (pending_seconds_ > 0.0) {
    result.telemetry.counters["session.prep_seconds"] += pending_seconds_;
  }
  pending_ = obs::Summary{};
  pending_seconds_ = 0.0;
  return result;
}

CoaSessionSnapshot CoaSession::snapshot() const {
  CoaSessionSnapshot s;
  s.index_a = ia_;
  s.index_b = ib_;
  s.trapdoor_a = ta_;
  s.trapdoor_b = tb_;
  s.scores = scores_;
  s.factorization = factorization_;
  return s;
}

// ---------------------------------------------------------------------------
// LepSession

LepSession::LepSession(LepOptions options, ExecContext ctx)
    : options_(options), ctx_(ctx) {}

LepSession::LepSession(LepSessionSnapshot snapshot, LepOptions options,
                       ExecContext ctx)
    : options_(options), ctx_(ctx) {
  n_ = snapshot.dimension;
  warm_resolves_ = snapshot.warm_resolves;
  if (n_ == 0) {
    require(snapshot.chosen_pairs.empty() && snapshot.trapdoors.empty() &&
                snapshot.indexes.empty(),
            "LepSession: snapshot has solves but no dimension");
    trapdoor_ciphers_ = std::move(snapshot.trapdoor_ciphers);
    index_ciphers_ = std::move(snapshot.index_ciphers);
    return;
  }
  pair_tracker_.emplace(n_, options_.independence_tol);
  trapdoor_tracker_.emplace(n_, options_.independence_tol);
  require(snapshot.chosen_pairs.size() <= n_,
          "LepSession: snapshot has more basis pairs than the dimension");
  for (const auto& pair : snapshot.chosen_pairs) {
    require(pair.plain_index.size() == n_ &&
                pair_tracker_->try_add(pair.plain_index),
            "LepSession: snapshot basis pairs are not independent");
    chosen_.push_back(pair);
  }
  trapdoor_ciphers_ = std::move(snapshot.trapdoor_ciphers);
  index_ciphers_ = std::move(snapshot.index_ciphers);
  if (pair_tracker_->complete()) {
    factor_pair_basis();
    require(snapshot.trapdoors.size() == trapdoor_ciphers_.size(),
            "LepSession: snapshot trapdoor solves are incomplete");
  } else {
    require(snapshot.trapdoors.empty() && snapshot.indexes.empty(),
            "LepSession: snapshot has solves without a complete pair basis");
  }
  trapdoors_ = std::move(snapshot.trapdoors);
  // Unpacked queries and the trapdoor basis are pure functions of the
  // solved trapdoors — replay them instead of trusting the snapshot.
  queries_.reserve(trapdoors_.size());
  query_multipliers_.reserve(trapdoors_.size());
  for (const Vec& t : trapdoors_) {
    require(t.size() == n_, "LepSession: snapshot trapdoor dimension");
    auto rq = scheme::query_from_trapdoor(t);
    queries_.push_back(std::move(rq.q));
    query_multipliers_.push_back(rq.r);
  }
  scan_trapdoor_basis();
  if (b_lu_) {
    require(snapshot.indexes.size() == index_ciphers_.size(),
            "LepSession: snapshot index solves are incomplete");
  } else {
    require(snapshot.indexes.empty(),
            "LepSession: snapshot has index solves without a trapdoor basis");
  }
  indexes_ = std::move(snapshot.indexes);
  records_.reserve(indexes_.size());
  for (const Vec& index : indexes_) {
    require(index.size() == n_, "LepSession: snapshot index dimension");
    records_.push_back(scheme::record_from_index(index));
  }
}

void LepSession::factor_pair_basis() {
  std::vector<Vec> a_rows;
  a_rows.reserve(n_);
  for (const auto& pair : chosen_) a_rows.push_back(pair.plain_index);
  a_lu_.emplace(Matrix::from_rows(a_rows));
  if (a_lu_->is_singular()) {
    throw NumericalError("LEP: known-pair system unexpectedly singular");
  }
}

void LepSession::add_known_pairs(
    const std::vector<sse::KnownIndexPair>& pairs) {
  if (pairs.empty() || a_lu_) return;
  obs::ScopedRecording rec(ctx_.sink);
  {
    obs::Span root("lep/append");
    {
      obs::Span span("lep/select_known_basis");
      for (const auto& pair : pairs) {
        if (a_lu_) break;  // basis complete; ignore the rest (batch scan)
        if (n_ == 0) {
          n_ = pair.plain_index.size();
          require(n_ > 0, "LEP: empty known-pair index");
          pair_tracker_.emplace(n_, options_.independence_tol);
          trapdoor_tracker_.emplace(n_, options_.independence_tol);
        }
        require(pair.plain_index.size() == n_,
                "LEP: inconsistent known-pair dimensions");
        if (pair_tracker_->try_add(pair.plain_index)) {
          chosen_.push_back(pair);
          if (pair_tracker_->complete()) factor_pair_basis();
        }
      }
    }
    // Queued ciphertexts drain cold: they were pending, not re-solved.
    advance(false, false);
  }
  rec.finish();
}

void LepSession::advance(bool trap_warm, bool idx_warm) {
  if (a_lu_ && trapdoors_.size() < trapdoor_ciphers_.size()) {
    const std::size_t j0 = trapdoors_.size();
    const std::size_t j1 = trapdoor_ciphers_.size();
    trapdoors_.resize(j1);
    {
      obs::Span span("lep/recover_trapdoors");
      par::parallel_for(
          j0, j1, 1,
          [&](std::size_t j) {
            Vec rhs(n_);
            for (std::size_t i = 0; i < n_; ++i) {
              rhs[i] = cipher_score(chosen_[i].cipher, trapdoor_ciphers_[j]);
            }
            trapdoors_[j] = a_lu_->solve(rhs);
          },
          ctx_.resolved_threads());
    }
    if (trap_warm) warm_resolves_ += j1 - j0;
    queries_.reserve(j1);
    query_multipliers_.reserve(j1);
    for (std::size_t j = j0; j < j1; ++j) {
      auto rq = scheme::query_from_trapdoor(trapdoors_[j]);
      queries_.push_back(std::move(rq.q));
      query_multipliers_.push_back(rq.r);
    }
  }
  scan_trapdoor_basis();
  if (b_lu_ && indexes_.size() < index_ciphers_.size()) {
    const std::size_t i0 = indexes_.size();
    const std::size_t i1 = index_ciphers_.size();
    indexes_.resize(i1);
    records_.resize(i1);
    {
      obs::Span span("lep/recover_indexes");
      par::parallel_for(
          i0, i1, 1,
          [&](std::size_t idx) {
            Vec rhs(n_);
            for (std::size_t k = 0; k < n_; ++k) {
              rhs[k] = cipher_score(index_ciphers_[idx],
                                    trapdoor_ciphers_[basis_ids_[k]]);
            }
            Vec index = b_lu_->solve(rhs);
            records_[idx] = scheme::record_from_index(index);
            indexes_[idx] = std::move(index);
          },
          ctx_.resolved_threads());
    }
    if (idx_warm) warm_resolves_ += i1 - i0;
  }
}

void LepSession::scan_trapdoor_basis() {
  if (n_ == 0 || b_lu_) return;
  {
    obs::Span span("lep/scan_trapdoor_basis");
    for (std::size_t j = scanned_for_basis_;
         j < trapdoors_.size() && !trapdoor_tracker_->complete(); ++j) {
      scanned_for_basis_ = j + 1;
      if (trapdoor_tracker_->try_add(trapdoors_[j])) basis_ids_.push_back(j);
    }
  }
  if (!trapdoor_tracker_->complete()) return;
  std::vector<Vec> b_rows;
  b_rows.reserve(n_);
  for (auto j : basis_ids_) b_rows.push_back(trapdoors_[j]);
  b_lu_.emplace(Matrix::from_rows(b_rows));
  if (b_lu_->is_singular()) {
    throw NumericalError("LEP: trapdoor basis unexpectedly singular");
  }
}

void LepSession::append_ciphertexts(const sse::CoaView& delta) {
  if (delta.cipher_trapdoors.empty() && delta.cipher_indexes.empty()) return;
  obs::ScopedRecording rec(ctx_.sink);
  {
    obs::Span root("lep/append");
    // Warm re-solves are the marginal cost of staying current: solves made
    // while the session was already ready() at entry — both LU bases
    // stored, result() attainable — are work a batch pipeline would redo
    // from scratch. Anything before that point (initial drains, basis
    // completion inside this call) counts cold.
    const bool warm = ready();
    trapdoor_ciphers_.insert(trapdoor_ciphers_.end(),
                             delta.cipher_trapdoors.begin(),
                             delta.cipher_trapdoors.end());
    index_ciphers_.insert(index_ciphers_.end(), delta.cipher_indexes.begin(),
                          delta.cipher_indexes.end());
    advance(warm, warm);
    obs::counter_add("lep.appended_trapdoors",
                     static_cast<double>(delta.cipher_trapdoors.size()));
    obs::counter_add("lep.appended_indexes",
                     static_cast<double>(delta.cipher_indexes.size()));
  }
  rec.finish();
}

LepResult LepSession::result() const {
  Stopwatch watch;
  require(n_ > 0, "LEP: no known plaintext-ciphertext pairs");
  if (!a_lu_) {
    throw NumericalError(
        "LEP: fewer than d+1 linearly independent known records (the "
        "paper's KPA assumption is not met)");
  }
  if (!b_lu_) {
    throw NumericalError(
        "LEP: fewer than d+1 linearly independent trapdoors observed; the "
        "adversary must wait for more queries");
  }
  LepResult result;
  result.trapdoors = trapdoors_;
  result.queries = queries_;
  result.query_multipliers = query_multipliers_;
  result.indexes = indexes_;
  result.records = records_;
  result.telemetry.counters["lep.dimension"] = static_cast<double>(n_);
  result.telemetry.counters["lep.trapdoor_solves"] =
      static_cast<double>(trapdoors_.size());
  result.telemetry.counters["lep.index_solves"] =
      static_cast<double>(indexes_.size());
  result.telemetry.counters["lep.trapdoors_scanned_for_basis"] =
      static_cast<double>(scanned_for_basis_);
  result.telemetry.counters["lep.warm_resolves"] =
      static_cast<double>(warm_resolves_);
  result.telemetry.wall_seconds = watch.seconds();
  return result;
}

LepSessionSnapshot LepSession::snapshot() const {
  LepSessionSnapshot s;
  s.dimension = n_;
  s.chosen_pairs = chosen_;
  s.trapdoor_ciphers = trapdoor_ciphers_;
  s.trapdoors = trapdoors_;
  s.index_ciphers = index_ciphers_;
  s.indexes = indexes_;
  s.warm_resolves = warm_resolves_;
  return s;
}

}  // namespace aspe::core
