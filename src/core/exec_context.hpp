// ExecContext — the uniform execution-policy parameter of the attack entry
// points (run_lep_attack / run_mip_attack / run_snmf_attack).
//
// One struct carries everything that is about *how* an attack runs rather
// than *what* it computes: the thread budget, the RNG seed, the determinism
// contract, and the telemetry sink. All attacks guarantee bit-identical
// results across thread counts for a fixed seed — and with or without a
// sink attached (telemetry fields excluded); see README "Parallelism" and
// "Observability" for how that is achieved.
#pragma once

#include <cstddef>
#include <cstdint>

#include "par/thread_pool.hpp"

namespace aspe::obs {
class Sink;
}  // namespace aspe::obs

namespace aspe::core {

struct ExecContext {
  /// Thread budget for the attack's parallel sections. 0 = the process-wide
  /// default (par::set_default_threads / hardware_concurrency); 1 = serial.
  std::size_t threads = 1;

  /// Root seed for every randomized component of the attack.
  std::uint64_t seed = 2017;

  /// When true (the default), randomized attacks draw their per-restart
  /// initial states in restart order from the single root stream — exactly
  /// the RNG-consumption schedule of the legacy serial path — so the result
  /// is bit-identical both across thread counts and to the pre-ExecContext
  /// overloads for the same seed. When false, restart l derives its state
  /// from Rng(seed).split(l) instead: still reproducible and still
  /// thread-count independent, but a different (order-independent) stream
  /// than the legacy one.
  bool deterministic = true;

  /// Approximate working-set budget in bytes for shardable stages: the
  /// score-matrix build tiles its output rows and the SNMF driver groups its
  /// restarts so the in-flight working set stays near the budget (out-of-core
  /// runs over io::MappedCorpus views let the kernel pages be evicted between
  /// tiles). 0 — the default — means unsharded: one tile, one group. The
  /// budget shapes execution order only; attack outputs are bit-identical at
  /// any budget, as they are at any thread count.
  std::size_t memory_budget_bytes = 0;

  /// Telemetry sink for this run (see src/obs/). Null — the default — means
  /// no recording: the instrumented paths reduce to an inert branch and the
  /// attack result's telemetry carries only the driver's own counters.
  /// Telemetry is observational: attaching a sink never changes attack
  /// output. The sink must outlive the attack call; the caller owns it.
  obs::Sink* sink = nullptr;

  /// The width parallel sections should use (resolves the 0 default).
  [[nodiscard]] std::size_t resolved_threads() const {
    return threads == 0 ? par::default_threads() : threads;
  }
};

}  // namespace aspe::core
