// Downstream exploitation of the SNMF reconstruction (§VI-B2).
//
// "Learning I_i and T_j does not directly lead to the disclosure of
// plaintext P_i or Q_j", but the deterministic LSH/PRF pipeline implies that
// similar reconstructed indexes come from similar plaintexts with high
// probability. The paper's anecdote: reconstructed I*_365 and I*_380 are
// identical; the adversary who learns that P_365 contains "application
// approved" concludes P_380 does too — and is right.
//
// This module packages that inference: near-duplicate detection over the
// reconstructed indexes and label propagation from a handful of documents
// whose content the adversary knows out-of-band.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aspe::core {

struct SimilarPair {
  std::size_t a = 0;
  std::size_t b = 0;
  double jaccard = 0.0;
};

/// All pairs (a < b) whose Jaccard similarity is at least `threshold`,
/// sorted by descending similarity. O(n^2 d) — fine at attack scales.
[[nodiscard]] std::vector<SimilarPair> find_similar_pairs(
    const std::vector<BitVec>& indexes, double threshold);

struct PropagatedLabel {
  std::string label;       // empty = unknown
  double confidence = 0.0; // Jaccard similarity to the labeled source
  std::size_t source = 0;  // index of the known record the label came from
};

/// Propagate `known` labels (record id -> label) to every record whose
/// reconstructed index has Jaccard similarity >= `threshold` with a labeled
/// one. Each record receives the label of its most similar labeled source;
/// labeled records keep their own label with confidence 1.
[[nodiscard]] std::vector<PropagatedLabel> propagate_labels(
    const std::vector<BitVec>& indexes,
    const std::map<std::size_t, std::string>& known, double threshold);

}  // namespace aspe::core
