#include "core/naive_attack.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "linalg/vector_ops.hpp"

namespace aspe::core {

using linalg::LuDecomposition;
using linalg::Matrix;
using scheme::cipher_score;

NaiveAttackResult run_naive_attack(const NaiveAttackInput& input) {
  require(!input.known_queries.empty(), "naive attack: no known queries");
  const std::size_t d = input.known_queries[0].size();
  require(input.known_queries.size() == input.cipher_trapdoors.size(),
          "naive attack: query/trapdoor count mismatch");
  require(input.known_queries.size() >= d + 1,
          "naive attack: need at least d+1 known queries to even attempt a "
          "square system over the (d+1)-dimensional index");

  Vec assumed_r = input.assumed_r;
  assumed_r.resize(input.known_queries.size(), 1.0);

  // Build the guessed linear system: row j is T_j^T = r_j (Q_j^T, 1) under
  // the guessed r_j; RHS is the observable ciphertext score.
  std::vector<Vec> rows;
  Vec rhs;
  for (std::size_t j = 0; j < d + 1; ++j) {
    require(input.known_queries[j].size() == d,
            "naive attack: inconsistent query dimensions");
    rows.push_back(
        scheme::make_trapdoor(input.known_queries[j], assumed_r[j]));
    rhs.push_back(
        cipher_score(input.cipher_index, input.cipher_trapdoors[j]));
  }
  const LuDecomposition lu{Matrix::from_rows(rows)};
  if (lu.is_singular()) {
    throw NumericalError(
        "naive attack: guessed trapdoor system is singular (queries "
        "linearly dependent)");
  }

  NaiveAttackResult result;
  result.recovered_index = lu.solve(rhs);
  result.recovered_record = scheme::record_from_index(result.recovered_index);
  const double expected =
      -0.5 * linalg::norm_squared(result.recovered_record);
  result.quadratic_gap = std::abs(result.recovered_index.back() - expected);
  result.quadratic_consistent =
      result.quadratic_gap <=
      1e-6 * std::max(1.0, std::abs(expected));
  return result;
}

double naive_attack_solution_spread(const NaiveAttackInput& base,
                                    const std::vector<Vec>& r_guesses) {
  require(r_guesses.size() >= 2,
          "naive_attack_solution_spread: need at least two guesses");
  std::vector<Vec> solutions;
  for (const auto& guess : r_guesses) {
    NaiveAttackInput input = base;
    input.assumed_r = guess;
    solutions.push_back(run_naive_attack(input).recovered_record);
  }
  double spread = 0.0;
  for (std::size_t a = 0; a < solutions.size(); ++a) {
    for (std::size_t b = a + 1; b < solutions.size(); ++b) {
      spread = std::max(
          spread, linalg::norm(linalg::sub(solutions[a], solutions[b])));
    }
  }
  return spread;
}

}  // namespace aspe::core
