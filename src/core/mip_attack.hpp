// Algorithm 2 — Mixed Integer Linear Program (MIP): the KPA attack on MRSE
// (§IV.B, Security Risk 2).
//
// The adversary holds m pairs (P_i, I'_i) with binary P_i, the ciphertext
// trapdoor T'_j of one query, and the public noise parameters (mu, sigma).
// Rewriting Eq. (12) as
//
//   E_i.V_j = rhat * I'_i^T T'_j - that - P_i.Q_j     (rhat = 1/r, that = t/r)
//
// and using that E_i.V_j ~ N(mu, sigma^2), the attack searches for
// (rhat > 0, that > 0, Q_j in {0,1}^d, sum Q_j >= 1) such that each noise
// term lies in [mu - l*sigma, mu + l*sigma] (Eq. (14)). Any feasible point
// is returned; the paper sets l = 3 (99% coverage).
//
// The Gurobi solver of the paper is replaced by opt::solve_mip (see
// DESIGN.md §4.1).
#pragma once

#include <cstdint>
#include <optional>

#include "core/exec_context.hpp"
#include "core/telemetry.hpp"
#include "opt/mip.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::core {

/// How the primal heuristic ranks candidate keywords.
enum class RootOrdering {
  /// LP when the model is small enough, correlation otherwise.
  Auto,
  /// Solve the LP relaxation of Eq. (14) at the root (faithful to a
  /// B&B solver's root node, cost grows with the simplex basis ~ (2m)^2).
  LpRelaxation,
  /// Rank keyword k by the empirical correlation between P_i[k] and the
  /// observed scores c_i — records containing a true query keyword score
  /// higher. O(m d), scales to the paper's d = 1000 settings.
  Correlation,
};

struct MipAttackOptions {
  double l = 3.0;  // noise interval half width, in sigmas
  RootOrdering root_ordering = RootOrdering::Auto;
  /// Bounds making the continuous variables finite for the LP relaxation;
  /// rhat = 1/r and that = t/r with r in [0.5, 2], t in [0.1, 1] under the
  /// reference trapdoor generator, so these are generous.
  double rhat_min = 1e-4;
  double rhat_max = 1e4;
  double that_min = 1e-6;
  double that_max = 1e4;
  /// Try the primal heuristic (LP rounding + exact 2-variable refit + greedy
  /// bit-flip repair) before branch and bound. This mirrors the rounding/
  /// diving heuristics a commercial solver such as Gurobi runs at the root
  /// node, and is what makes paper-scale instances tractable.
  bool use_heuristic = true;
  /// Cap on greedy repair flips (0 selects 3d automatically).
  std::size_t max_repair_flips = 0;
  opt::MipOptions solver = default_solver();

  [[nodiscard]] static opt::MipOptions default_solver() {
    opt::MipOptions s;
    s.first_feasible = true;  // Algorithm 2 wants any feasible point
    s.time_limit_seconds = 20.0;
    // Propagation techniques that pay off on the Eq. (14) band models: the
    // root cut loop tightens the polytope toward the integer hull before the
    // dive, and shallow strong-branching probes convert one-side-infeasible
    // branchings into domain reductions. Reduced-cost fixing is enabled for
    // completeness but is inert under first_feasible's zero objective.
    s.gomory_cuts = true;
    s.cover_cuts = true;
    s.pseudo_cost_branching = true;
    s.reduced_cost_fixing = true;
    return s;
  }
};

struct MipAttackResult {
  bool found = false;
  BitVec query;        // reconstructed Q_j
  double rhat = 0.0;   // 1 / r_j
  double that = 0.0;   // t_j / r_j
  /// How the feasible point (or failure) was produced: Heuristic when the
  /// primal heuristic answered and branch and bound never ran; NotRun only
  /// in a default-constructed result.
  opt::MipStatus status = opt::MipStatus::NotRun;
  /// Wall time, span summary and counter snapshot for this run. Driver
  /// counters: "mip.bnb.nodes", "mip.bnb.simplex_iterations",
  /// "mip.heuristic.fit_probes", "mip.model_rows", plus the propagation
  /// tallies "mip.cuts_added", "mip.rc_fixings", "mip.strong_branches" and
  /// "mip.restarts" (all zero when the heuristic answers).
  AttackTelemetry telemetry;
};

/// Persistent cross-job warm state for run_mip_attack: the root-LP basis of
/// the primal heuristic plus the branch-and-bound root snapshot
/// (opt::WarmCutPool). Keyed by a digest over the *full* numeric content of
/// the built model — two jobs warm-share state only when their models are
/// identical down to every coefficient bit, which (with a deterministic
/// solver) makes the warm answer bit-identical to the cold one. A digest
/// mismatch resets the state and re-exports from the current job.
///
/// The attack canonicalizes its root LP whether or not a state is attached
/// (basis exported, restored, re-solved warm), so solo runs, exporting runs
/// and attaching runs all follow one pivot sequence.
struct MipWarmState {
  std::uint64_t model_digest = 0;
  bool has_root_basis = false;
  opt::BasisState root_basis;  // heuristic root-LP basis
  opt::WarmCutPool bnb;        // branch-and-bound root snapshot
};

/// FNV-1a digest over a model's complete numeric content (variable bounds,
/// types, constraint terms, senses, right-hand sides, objective). Used to
/// key MipWarmState.
[[nodiscard]] std::uint64_t mip_model_digest(const opt::Model& model);

/// Attack one ciphertext trapdoor using the KPA view's known pairs.
/// `mu` and `sigma` are MRSE's public noise parameters.
///
/// Signature convention (docs/api.md): inputs first, options next,
/// ExecContext last, both defaulted — the default ExecContext runs serially,
/// matching the historical options-only form.
///
/// The primal heuristic's candidate evaluations (the per-keyword fit_rt /
/// SSE probes that dominate Algorithm 2's runtime) fan out over ctx.threads,
/// with selection done serially in keyword order — the recovered query is
/// bit-identical to the serial path. The attack consumes no randomness;
/// ctx.seed is unused. Only telemetry (wall clock) varies across thread
/// counts.
[[nodiscard]] MipAttackResult run_mip_attack(
    const std::vector<sse::KnownBinaryPair>& known_pairs,
    const scheme::CipherPair& cipher_trapdoor, double mu, double sigma,
    const MipAttackOptions& options = {}, const ExecContext& ctx = {});

/// Variant with a persistent warm state (see MipWarmState): a repeated job
/// whose model digest matches skips the cold root LP and the first root cut
/// loop, bit-identically. Pass nullptr for the plain behaviour.
[[nodiscard]] MipAttackResult run_mip_attack(
    const std::vector<sse::KnownBinaryPair>& known_pairs,
    const scheme::CipherPair& cipher_trapdoor, double mu, double sigma,
    const MipAttackOptions& options, const ExecContext& ctx,
    MipWarmState* warm);

/// Convenience: attack the j-th observed trapdoor of an MRSE KPA view.
[[nodiscard]] MipAttackResult run_mip_attack(
    const sse::MrseKpaView& view, std::size_t trapdoor_id, double mu,
    double sigma, const MipAttackOptions& options = {},
    const ExecContext& ctx = {});

/// Build the Eq. (14) feasibility model (exposed for tests and ablations).
[[nodiscard]] opt::Model build_mip_attack_model(
    const std::vector<sse::KnownBinaryPair>& known_pairs,
    const scheme::CipherPair& cipher_trapdoor, double mu, double sigma,
    const MipAttackOptions& options);

}  // namespace aspe::core
