// core::AttackTelemetry — the shared cost-accounting block embedded in every
// attack result (LepResult, MipAttackResult, SnmfAttackResult), replacing
// the per-attack one-off fields of earlier releases.
//
// Counters are always populated by the attack drivers (they are cheap
// scalars). The span summary is filled only when the run was recorded, i.e.
// when ExecContext::sink was set; with no sink the vector stays empty and
// the instrumented paths cost nothing.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace aspe::core {

struct AttackTelemetry {
  /// End-to-end wall time of the attack entry point, in seconds. Always set.
  double wall_seconds = 0.0;

  /// Per-span-name (count, total seconds) rows, descending by total time.
  /// Empty unless a sink was attached to the ExecContext.
  std::vector<obs::SpanStat> spans;

  /// Named work counters ("lep.trapdoor_solves", "mip.bnb.nodes", ...).
  /// The driver's own counters are always present; with a sink attached the
  /// snapshot additionally includes everything the lower layers recorded
  /// (simplex pivots, NMF iterations, GEMM flops, pool steals, ...).
  std::map<std::string, double> counters;

  /// Gauge snapshot (last write wins). Populated only when recorded.
  std::map<std::string, double> gauges;

  [[nodiscard]] double counter(const std::string& name,
                               double fallback = 0.0) const {
    auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }

  /// Fold a finished recording into this telemetry block: span aggregates
  /// replace, counters/gauges merge (recorded values win on name clashes).
  void absorb(const obs::Summary& summary) {
    if (summary.empty()) return;
    spans = obs::aggregate_spans(summary.spans);
    for (const auto& [name, value] : summary.counters)
      counters[name] = value;
    for (const auto& [name, value] : summary.gauges) gauges[name] = value;
  }
};

}  // namespace aspe::core
