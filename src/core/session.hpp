// Incremental attack sessions — the online counterparts of the batch attack
// drivers, for the deployment reality the paper's adversary actually faces:
// the ciphertext corpus *grows* (new records are inserted, new queries are
// processed) and the attacker updates their reconstruction after every
// batch of observations instead of recomputing from scratch.
//
//   CoaSession — Algorithm 3 (SNMF, §V.B) over a growing CoaView. The score
//     matrix R grows in place by gemm row/column bands (bit-identical to a
//     batch build_score_matrix of the concatenated view — the integer
//     rounding removes all summation-order jitter), the rank estimate is
//     maintained through TruncatedSvd::update_rows/update_cols with the
//     residual certificate re-checked after every append, and the sparse-NMF
//     factorization warm-restarts from the previous W/H via
//     nmf::sparse_nmf_resume. The *first* attack() of a fresh session is
//     bit-identical to run_snmf_attack on the same data; subsequent resumed
//     attacks converge to the same fixed point up to solver tolerance.
//
//   LepSession — Algorithm 1 (LEP, §III.B) over a growing KpaView. Known
//     pairs extend the pair basis until d+1 independent rows are found, at
//     which point the system matrix A is LU-factored once; every trapdoor
//     or index ciphertext that arrives afterwards costs a single warm
//     back-substitution against the stored factorization (counter
//     "lep.warm_resolves") instead of a fresh attack. result() is
//     bit-identical to run_lep_attack on the concatenated view.
//
// Both sessions carry an ExecContext fixed at construction; appends and
// attacks record under it (spans "coa/append", "svd/update", "lep/append")
// and the telemetry accumulated between attacks is folded into the next
// result. Sessions snapshot to plain data (io/session_io.hpp persists them)
// and restore deterministically.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/exec_context.hpp"
#include "core/lep.hpp"
#include "core/snmf_attack.hpp"
#include "core/telemetry.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/truncated_svd.hpp"
#include "nmf/nmf.hpp"
#include "obs/obs.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::core {

/// Plain-data state of a CoaSession (io/session_io.hpp round-trips it).
/// The truncated-SVD rank state is deliberately absent: it is a cache,
/// re-derived from the score matrix on the first estimate_rank() after a
/// restore.
struct CoaSessionSnapshot {
  linalg::Matrix index_a, index_b;      // stacked index ciphertext halves
  linalg::Matrix trapdoor_a, trapdoor_b;
  linalg::Matrix scores;                // indexes x trapdoors
  std::optional<nmf::NmfResult> factorization;  // warm seed, if attacked
};

/// Online Algorithm 3: grow the score matrix, maintain the rank estimate,
/// warm-restart the factorization. Not thread-safe; parallelism lives in
/// the kernels under the session's ExecContext.
class CoaSession {
 public:
  explicit CoaSession(SnmfAttackOptions options, ExecContext ctx = {});

  /// Restore from a snapshot. Throws InvalidArgument on inconsistent
  /// shapes (half/score row counts, factorization dimensions).
  CoaSession(CoaSessionSnapshot snapshot, SnmfAttackOptions options,
             ExecContext ctx = {});

  /// Fold a batch of new ciphertexts in: stacks the halves, grows the score
  /// matrix by a column band (old indexes x new trapdoors) and a row band
  /// (new indexes x all trapdoors) — two gemms plus the integer rounding,
  /// so the grown matrix is bit-identical to a batch build of the
  /// concatenated view at any thread count. An empty delta is a no-op.
  /// Span "coa/append"; counters "score.appended_rows" /
  /// "score.appended_cols".
  void append_ciphertexts(const sse::CoaView& delta);

  /// Estimate d from the current score matrix, updating the cached
  /// truncated-SVD state incrementally when possible (span "svd/update";
  /// falls back to a fresh sample — and then the full Jacobi SVD — exactly
  /// like the stateless estimate_latent_dimension, returning the identical
  /// rank). Does not modify options().rank; pair with set_rank().
  [[nodiscard]] std::size_t estimate_rank(double rel_tol = 1e-8);

  /// Set the factorization rank d for subsequent attack() calls. Changing
  /// the rank invalidates the warm seed (the next attack runs cold).
  void set_rank(std::size_t rank);

  /// Run Algorithm 3 on the current corpus. The first call of a fresh
  /// session runs the batch restart sweep (bit-identical to
  /// run_snmf_attack for the same options/ctx); later calls warm-restart
  /// from the stored factorization via nmf::sparse_nmf_resume (counter
  /// "snmf.resumes") under the options().resume_iterations budget.
  /// Telemetry accumulated by appends/rank estimates since the previous
  /// attack is folded into the result.
  [[nodiscard]] SnmfAttackResult attack();

  [[nodiscard]] std::size_t num_indexes() const { return scores_.rows(); }
  [[nodiscard]] std::size_t num_trapdoors() const { return scores_.cols(); }
  [[nodiscard]] const linalg::Matrix& scores() const { return scores_; }
  [[nodiscard]] const SnmfAttackOptions& options() const { return options_; }
  [[nodiscard]] const std::optional<nmf::NmfResult>& factorization() const {
    return factorization_;
  }

  [[nodiscard]] CoaSessionSnapshot snapshot() const;

 private:
  void fold_recording(obs::ScopedRecording& rec, double seconds);

  SnmfAttackOptions options_;
  ExecContext ctx_;
  std::size_t da_ = 0, db_ = 0;  // ciphertext half dimensions
  linalg::Matrix ia_, ib_;       // index halves, one ciphertext per row
  linalg::Matrix ta_, tb_;       // trapdoor halves
  linalg::Matrix scores_;
  std::optional<linalg::TruncatedSvd> svd_state_;
  std::optional<nmf::NmfResult> factorization_;
  // Telemetry recorded by appends / rank estimates since the last attack().
  obs::Summary pending_;
  double pending_seconds_ = 0.0;
};

/// Plain-data state of a LepSession. Only raw observations and solved
/// plaintexts are stored; trackers, LU factorizations and the unpacked
/// queries/records are replayed deterministically on restore.
struct LepSessionSnapshot {
  std::size_t dimension = 0;  // d + 1 (0 until the first known pair)
  std::vector<sse::KnownIndexPair> chosen_pairs;  // accepted basis pairs
  std::vector<scheme::CipherPair> trapdoor_ciphers;
  std::vector<Vec> trapdoors;  // solved plaintext trapdoors (all or none)
  std::vector<scheme::CipherPair> index_ciphers;
  std::vector<Vec> indexes;    // solved plaintext indexes (all or none)
  std::size_t warm_resolves = 0;
};

/// Online Algorithm 1: known pairs and ciphertexts stream in; once each
/// basis completes its LU factorization is kept and every later arrival is
/// recovered by one warm back-substitution. Ciphertexts arriving before
/// the respective basis is ready queue up and are drained the moment it
/// completes.
class LepSession {
 public:
  explicit LepSession(LepOptions options = {}, ExecContext ctx = {});

  /// Restore from a snapshot. Throws InvalidArgument on inconsistent
  /// sizes and NumericalError when a replayed basis is singular.
  LepSession(LepSessionSnapshot snapshot, LepOptions options = {},
             ExecContext ctx = {});

  /// Feed leaked plaintext-ciphertext pairs in arrival order. Pairs beyond
  /// a complete basis are ignored (exactly like the batch scan). When the
  /// basis completes, A is factored and all queued trapdoors are solved.
  void add_known_pairs(const std::vector<sse::KnownIndexPair>& pairs);

  /// Feed newly observed ciphertexts. Solves performed while the session
  /// was already ready() at call entry — both LU bases stored — count as
  /// warm re-solves (counter "lep.warm_resolves"): the marginal
  /// back-substitutions a batch pipeline would redo from scratch. Span
  /// "lep/append".
  void append_ciphertexts(const sse::CoaView& delta);

  [[nodiscard]] bool pair_basis_complete() const { return a_lu_.has_value(); }
  [[nodiscard]] bool trapdoor_basis_complete() const {
    return b_lu_.has_value();
  }
  /// True when result() will succeed.
  [[nodiscard]] bool ready() const {
    return pair_basis_complete() && trapdoor_basis_complete();
  }
  [[nodiscard]] std::size_t dimension() const { return n_; }
  [[nodiscard]] std::size_t num_trapdoors() const {
    return trapdoor_ciphers_.size();
  }
  [[nodiscard]] std::size_t num_indexes() const {
    return index_ciphers_.size();
  }
  [[nodiscard]] std::size_t warm_resolves() const { return warm_resolves_; }

  /// Assemble the full LepResult for the corpus observed so far —
  /// bit-identical (trapdoors, queries, multipliers, indexes, records) to
  /// run_lep_attack on the concatenated view. Throws the batch attack's
  /// NumericalError messages when a basis is still incomplete. Counters
  /// additionally report "lep.warm_resolves".
  [[nodiscard]] LepResult result() const;

  [[nodiscard]] LepSessionSnapshot snapshot() const;

 private:
  void factor_pair_basis();
  /// Solve everything newly solvable: queued trapdoors (if the pair basis
  /// is ready), then the sequential basis scan, then queued indexes (if the
  /// trapdoor basis is ready). `trap_warm` / `idx_warm` say whether the
  /// triggering public call found the session ready() on entry — only
  /// those solves count as warm re-solves.
  void advance(bool trap_warm, bool idx_warm);
  void scan_trapdoor_basis();

  LepOptions options_;
  ExecContext ctx_;
  std::size_t n_ = 0;  // d + 1, fixed by the first known pair
  // Trackers materialize with the dimension (IndependenceTracker rejects 0).
  std::optional<linalg::IndependenceTracker> pair_tracker_;
  std::vector<sse::KnownIndexPair> chosen_;
  std::optional<linalg::LuDecomposition> a_lu_;

  std::vector<scheme::CipherPair> trapdoor_ciphers_;
  std::vector<Vec> trapdoors_;  // solved prefix == all of them once a_lu_
  std::vector<Vec> queries_;
  std::vector<double> query_multipliers_;
  std::optional<linalg::IndependenceTracker> trapdoor_tracker_;
  std::vector<std::size_t> basis_ids_;
  std::size_t scanned_for_basis_ = 0;
  std::optional<linalg::LuDecomposition> b_lu_;

  std::vector<scheme::CipherPair> index_ciphers_;
  std::vector<Vec> indexes_;
  std::vector<Vec> records_;
  std::size_t warm_resolves_ = 0;
};

}  // namespace aspe::core
