#include "core/score_cache.hpp"

#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace aspe::core {

namespace {

std::size_t matrix_bytes(const linalg::Matrix& m) {
  return m.rows() * m.cols() * sizeof(double);
}

}  // namespace

std::shared_ptr<const linalg::Matrix> ScoreMatrixCache::get_or_build(
    const std::string& key, std::size_t memory_budget_bytes,
    const Builder& build) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;
    if (it->second.matrix != nullptr) {
      ++stats_.hits;
      it->second.last_use = ++tick_;
      obs::counter_add("score_cache.hits", 1.0);
      return it->second.matrix;
    }
    // Another caller is building this key: wait for it rather than paying
    // for a duplicate O(n^2 d) build. The builder may also fail and erase
    // the entry, in which case the loop falls through to a fresh build.
    build_cv_.wait(lock);
  }

  ++stats_.misses;
  obs::counter_add("score_cache.misses", 1.0);
  entries_.emplace(key, Entry{});  // building marker
  lock.unlock();

  std::shared_ptr<const linalg::Matrix> built;
  try {
    built = std::make_shared<const linalg::Matrix>(build());
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    build_cv_.notify_all();
    throw;
  }

  lock.lock();
  Entry& entry = entries_[key];
  entry.matrix = built;
  entry.bytes = matrix_bytes(*built);
  entry.last_use = ++tick_;
  stats_.resident_bytes += entry.bytes;
  if (memory_budget_bytes > 0) evict_to_budget(memory_budget_bytes);
  build_cv_.notify_all();
  return built;
}

std::shared_ptr<const linalg::Matrix> ScoreMatrixCache::peek(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.matrix == nullptr) return nullptr;
  return it->second.matrix;
}

ScoreMatrixCache::Stats ScoreMatrixCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ScoreMatrixCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.matrix == nullptr) {
      ++it;  // never drop a building marker from under its builder
    } else {
      stats_.resident_bytes -= it->second.bytes;
      it = entries_.erase(it);
    }
  }
}

void ScoreMatrixCache::evict_to_budget(std::size_t budget) {
  while (stats_.resident_bytes > budget) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.matrix == nullptr) continue;          // building
      if (it->second.matrix.use_count() > 1) continue;     // held by a job
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything resident is in use
    stats_.resident_bytes -= victim->second.bytes;
    ++stats_.evictions;
    obs::counter_add("score_cache.evictions", 1.0);
    entries_.erase(victim);
  }
}

}  // namespace aspe::core
