// Shared, fingerprint-keyed cache of score matrices (R[i][j] = I'_i^T T'_j).
//
// Every SNMF-family consumer of a corpus pair — the rank estimate, the
// restart sweep, a CoaSession being warmed up — needs the same O(n^2 d)
// score matrix. A daemon serving many jobs over one corpus rebuilds it per
// job without this cache; with it, the first job builds and every later job
// (and every stage within one job) shares the build through a
// shared_ptr<const Matrix>.
//
// Contract (docs/api.md, "Score-matrix cache"):
//   * Keys are caller-chosen strings; the daemon keys on corpus
//     *fingerprints* (path + size + mtime), so an edited corpus never
//     resurfaces a stale matrix.
//   * get_or_build returns a shared_ptr that stays valid for as long as the
//     caller holds it, eviction or not.
//   * Eviction is memory-budget-aware and refcount-safe: only entries no
//     caller holds (use_count() == 1) are evicted, least-recently-used
//     first, until resident bytes fit the per-call budget
//     (ExecContext::memory_budget_bytes; 0 = unbounded).
//   * The cache stores whatever the builder returns — it never alters a
//     matrix — so a cache hit is bit-identical to a rebuild by construction
//     (score-matrix builds are deterministic at any thread count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "linalg/matrix.hpp"

namespace aspe::core {

class ScoreMatrixCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t resident_bytes = 0;
  };

  using Builder = std::function<linalg::Matrix()>;

  /// Return the matrix cached under `key`, running `build` on a miss.
  /// Concurrent callers of the same key block until the one builder
  /// finishes (and count as hits); different keys build concurrently.
  /// After inserting, entries are evicted (LRU, unreferenced only) until
  /// resident bytes fit `memory_budget_bytes` (0 = no limit).
  [[nodiscard]] std::shared_ptr<const linalg::Matrix> get_or_build(
      const std::string& key, std::size_t memory_budget_bytes,
      const Builder& build);

  /// Probe without building; nullptr on miss (does not count toward stats).
  [[nodiscard]] std::shared_ptr<const linalg::Matrix> peek(
      const std::string& key) const;

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const linalg::Matrix> matrix;  // null while building
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;
  };

  /// Evict LRU entries nobody references until resident fits the budget.
  /// Caller holds mu_.
  void evict_to_budget(std::size_t budget);

  mutable std::mutex mu_;
  std::condition_variable build_cv_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace aspe::core
