#include "core/mip_attack.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <tuple>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "obs/obs.hpp"
#include "opt/simplex.hpp"
#include "par/parallel.hpp"

namespace aspe::core {

using opt::LinExpr;
using opt::Model;
using opt::Sense;
using scheme::cipher_score;

Model build_mip_attack_model(
    const std::vector<sse::KnownBinaryPair>& known_pairs,
    const scheme::CipherPair& cipher_trapdoor, double mu, double sigma,
    const MipAttackOptions& options) {
  require(!known_pairs.empty(), "MIP attack: no known pairs");
  require(sigma > 0.0, "MIP attack: sigma must be positive");
  const std::size_t d = known_pairs[0].record.size();

  Model model;
  const std::size_t rhat = model.add_variable(options.rhat_min,
                                              options.rhat_max,
                                              opt::VarType::Continuous, "rhat");
  const std::size_t that = model.add_variable(options.that_min,
                                              options.that_max,
                                              opt::VarType::Continuous, "that");
  std::vector<std::size_t> q(d);
  for (std::size_t k = 0; k < d; ++k) q[k] = model.add_binary();

  // Constraint 4: the query has at least one keyword.
  LinExpr at_least_one;
  for (std::size_t k = 0; k < d; ++k) at_least_one.push_back({q[k], 1.0});
  model.add_constraint(at_least_one, Sense::GreaterEqual, 1.0);

  // Constraint 5, one band per known pair:
  //   mu - l sigma <= rhat*c_i - that - P_i.Q <= mu + l sigma
  const double lo = mu - options.l * sigma;
  const double hi = mu + options.l * sigma;
  for (const auto& pair : known_pairs) {
    require(pair.record.size() == d, "MIP attack: inconsistent record length");
    const double c = cipher_score(pair.cipher, cipher_trapdoor);
    LinExpr expr;
    expr.push_back({rhat, c});
    expr.push_back({that, -1.0});
    for (std::size_t k = 0; k < d; ++k) {
      if (pair.record[k] != 0) expr.push_back({q[k], -1.0});
    }
    model.add_constraint(expr, Sense::GreaterEqual, lo);
    model.add_constraint(std::move(expr), Sense::LessEqual, hi);
  }
  return model;
}

std::uint64_t mip_model_digest(const Model& model) {
  // FNV-1a over every numeric fact of the model. Full-content keying is
  // deliberate: two same-shaped models with different coefficients can land
  // on different optimal vertices under the attack's zero objective, so a
  // shape-only key would let a warm basis change the answer.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_double = [&](double x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof bits);
    mix(bits);
  };
  mix(model.num_variables());
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const opt::Variable& v = model.variable(j);
    mix(static_cast<std::uint64_t>(v.type));
    mix_double(v.lb);
    mix_double(v.ub);
  }
  mix(model.num_constraints());
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const opt::Constraint& c = model.constraint(i);
    mix(static_cast<std::uint64_t>(c.sense));
    mix_double(c.rhs);
    mix(c.terms.size());
    for (const opt::Term& t : c.terms) {
      mix(t.var);
      mix_double(t.coef);
    }
  }
  mix(model.objective().size());
  for (const opt::Term& t : model.objective()) {
    mix(t.var);
    mix_double(t.coef);
  }
  return h;
}

namespace {

/// Result of fitting the two continuous variables for a *fixed* binary Q.
struct RtFit {
  bool feasible = false;
  double rhat = 0.0;
  double that = 0.0;
  /// max(0, -g(rhat*)): how far the best (rhat, that) is from satisfying all
  /// bands; 0 exactly when feasible.
  double violation = 0.0;
};

/// With Q fixed, constraint i pins  that in
/// [rhat*c_i - a_i - (mu + l sigma), rhat*c_i - a_i - (mu - l sigma)].
/// g(rhat) = min_i hi_i - max_i lo_i (clipped by the that bounds) is concave
/// piecewise-linear in rhat; maximize it by ternary search.
RtFit fit_rt(const Vec& c, const Vec& a, double mu, double lsigma,
             const MipAttackOptions& options) {
  const auto gap = [&](double rhat, double* mid) {
    double hi = options.that_max;
    double lo = options.that_min;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double center = rhat * c[i] - a[i] - mu;
      hi = std::min(hi, center + lsigma);
      lo = std::max(lo, center - lsigma);
    }
    if (mid != nullptr) *mid = 0.5 * (lo + hi);
    return hi - lo;
  };
  double lo = options.rhat_min;
  double hi = options.rhat_max;
  for (int it = 0; it < 200; ++it) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (gap(m1, nullptr) < gap(m2, nullptr)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  RtFit fit;
  const double rhat = 0.5 * (lo + hi);
  double mid = 0.0;
  const double g = gap(rhat, &mid);
  fit.rhat = rhat;
  fit.that = std::clamp(mid, options.that_min, options.that_max);
  fit.feasible = g >= 0.0 && fit.that > 0.0;
  fit.violation = std::max(0.0, -g);
  return fit;
}

/// Choose a chunk grain so each chunk carries enough work to amortize the
/// dispatch cost. Depends only on the per-item work estimate, never on the
/// thread count, so chunk boundaries (and results) stay deterministic.
std::size_t grain_for(std::size_t work_per_item) {
  constexpr std::size_t kGrainWork = std::size_t{1} << 14;
  return std::max<std::size_t>(
      1, kGrainWork / std::max<std::size_t>(work_per_item, 1));
}

/// Root-LP rounding + exact (rhat, that) refit + greedy bit-flip repair.
/// Returns a feasible point when it finds one. Candidate evaluations fan out
/// over `threads`; every selection scan stays in ascending keyword order, so
/// the result is bit-identical to the serial implementation (all candidate
/// inputs are small-integer vectors — exact in doubles under any grouping).
std::optional<MipAttackResult> primal_heuristic(
    const std::vector<sse::KnownBinaryPair>& known_pairs, const Vec& c,
    double mu, double sigma, const MipAttackOptions& options,
    const Model& model, std::optional<opt::SimplexSolver>& solver,
    std::size_t threads, std::size_t& fit_probes, MipWarmState& warm) {
  const std::size_t d = known_pairs[0].record.size();
  const std::size_t m = known_pairs.size();
  const double lsigma = options.l * sigma;

  // a +/- delta on the rows whose record contains keyword k — the O(m)
  // incremental form of inner_products after flipping bit k.
  const auto add_column = [&](Vec& a, std::size_t k, double delta) {
    for (std::size_t i = 0; i < m; ++i) {
      if (known_pairs[i].record[k] != 0) a[i] += delta;
    }
  };

  const bool use_lp =
      options.root_ordering == RootOrdering::LpRelaxation ||
      (options.root_ordering == RootOrdering::Auto && m <= 300);

  Vec relaxed_q(d, 0.0);
  if (use_lp) {
    obs::Span span("mip/root_relaxation");
    // The solver outlives the heuristic: when rounding/repair fails, branch
    // and bound reuses both the built tableau and the root-LP basis.
    if (!solver.has_value()) solver.emplace(model, options.solver.lp);
    opt::LpResult root;
    if (warm.has_root_basis) {
      solver->warm_attach(warm.root_basis);
      root = solver->solve_warm();
    } else {
      root = solver->solve();
      if (root.status == opt::LpStatus::Optimal) {
        // Canonicalize the cold solve: export the basis, restore it and
        // re-solve warm. A restore refactorizes B^{-1}, which can differ
        // from the cold solve's incrementally-updated inverse by ulps — so
        // the point every run uses is the refactorized one, whether the
        // basis came from this run or an earlier job's.
        warm.root_basis = solver->basis();
        solver->restore(warm.root_basis);
        root = solver->solve_warm();
        warm.has_root_basis = root.status == opt::LpStatus::Optimal;
      }
    }
    if (root.status == opt::LpStatus::Infeasible) return std::nullopt;
    if (root.status == opt::LpStatus::Optimal) {
      for (std::size_t k = 0; k < d; ++k) relaxed_q[k] = root.x[2 + k];
    }
  } else {
    obs::Span span("mip/correlation_ordering");
    // Correlation ordering: corr(P_.k , c) per keyword, shifted into [0, 1]
    // so the grow phase's LP-support preference still works.
    double cbar = 0.0;
    for (std::size_t i = 0; i < m; ++i) cbar += c[i];
    cbar /= static_cast<double>(m);
    double cvar = 0.0;
    for (std::size_t i = 0; i < m; ++i) cvar += (c[i] - cbar) * (c[i] - cbar);
    // Each keyword's correlation writes one disjoint slot of relaxed_q.
    par::parallel_for(
        0, d, grain_for(3 * m),
        [&](std::size_t k) {
          double pbar = 0.0;
          for (std::size_t i = 0; i < m; ++i) pbar += known_pairs[i].record[k];
          pbar /= static_cast<double>(m);
          double cov = 0.0, pvar = 0.0;
          for (std::size_t i = 0; i < m; ++i) {
            const double pk = known_pairs[i].record[k] - pbar;
            cov += pk * (c[i] - cbar);
            pvar += pk * pk;
          }
          const double denom = std::sqrt(std::max(pvar * cvar, 1e-30));
          relaxed_q[k] = 0.5 + 0.5 * (cov / denom);  // corr in [-1,1] -> [0,1]
        },
        threads);
  }

  const auto inner_products = [&](const BitVec& q) {
    Vec a(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const BitVec& p = known_pairs[i].record;
      double s = 0.0;
      for (std::size_t k = 0; k < d; ++k) s += (p[k] && q[k]) ? 1.0 : 0.0;
      a[i] = s;
    }
    return a;
  };

  // Grow phase: a first feasible point is often a *subset* of the true query
  // (dropping a keyword only shifts the few constraints whose record
  // contains it). Greedily add keywords that keep the point feasible,
  // preferring high LP-relaxation values, so the returned point is maximal —
  // empirically much closer to the true Q (recall) at no precision cost.
  auto grow = [&](BitVec q, RtFit fit) {
    Vec a = inner_products(q);
    std::vector<RtFit> fits(d);
    for (std::size_t round = 0; round < d; ++round) {
      fit_probes += d;
      // Evaluate every candidate addition in parallel (each probe refits the
      // two continuous variables against a + column_k — exact integers, so
      // identical to the serial recomputation)...
      par::parallel_for(
          0, d, grain_for(200 * m),
          [&](std::size_t k) {
            if (q[k] != 0) {
              fits[k] = RtFit{};
              return;
            }
            Vec a2 = a;
            add_column(a2, k, 1.0);
            fits[k] = fit_rt(c, a2, mu, lsigma, options);
          },
          threads);
      // ...then select in ascending keyword order, exactly like the serial
      // scan did.
      std::size_t arg = d;
      double best_score = -opt::kInfinity;
      for (std::size_t k = 0; k < d; ++k) {
        if (q[k] != 0 || !fits[k].feasible) continue;
        // Prefer LP-supported coordinates; break ties toward additions that
        // leave the most slack in the noise bands.
        const double score = relaxed_q[k] - 0.01 * fits[k].violation;
        if (score > best_score) {
          best_score = score;
          arg = k;
        }
      }
      if (arg == d) break;
      q[arg] = 1;
      add_column(a, arg, 1.0);
      fit = fits[arg];
    }
    return std::make_pair(std::move(q), fit);
  };

  // Maximum-likelihood polish. Every point in the Eq. (14) feasible set is a
  // valid output of Algorithm 2, but the set can be loose at small m; the
  // true query is the feasible point whose implied noise terms
  // rhat*c_i - that - a_i look most like N(mu, sigma^2). Coordinate-descent
  // on the residual sum of squares (with (rhat, that) refit by closed-form
  // regression of a_i + mu on c_i), accepting only feasibility-preserving
  // flips, pulls an arbitrary feasible point toward the true one.
  const auto regression_sse = [&](const Vec& a) {
    const std::size_t n = c.size();
    double cbar = 0.0, bbar = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cbar += c[i];
      bbar += a[i] + mu;
    }
    cbar /= static_cast<double>(n);
    bbar /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sxy += (c[i] - cbar) * (a[i] + mu - bbar);
      sxx += (c[i] - cbar) * (c[i] - cbar);
    }
    const double rhat =
        std::clamp(sxx > 0.0 ? sxy / sxx : options.rhat_min, options.rhat_min,
                   options.rhat_max);
    const double that =
        std::clamp(rhat * cbar - bbar, options.that_min, options.that_max);
    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = rhat * c[i] - that - (a[i] + mu);
      sse += e * e;
    }
    return sse;
  };

  // Unconstrained descent: the feasibility requirement is dropped while
  // walking (the SSE valley between a shrunk feasible point and the true
  // query passes through infeasible intermediates); only the *final* point
  // must satisfy Eq. (14).
  auto polish = [&](BitVec q) {
    Vec a = inner_products(q);
    double cur = regression_sse(a);
    std::vector<double> sse(d);
    for (std::size_t round = 0; round < 6 * d; ++round) {
      const std::size_t ones = popcount(q);
      // Probe every single-bit flip in parallel; each probe's a2 is exact,
      // so sse[k] matches the serial recomputation bit for bit.
      par::parallel_for(
          0, d, grain_for(4 * m),
          [&](std::size_t k) {
            if (q[k] != 0 && ones == 1) {  // keep >= 1 keyword
              sse[k] = opt::kInfinity;
              return;
            }
            Vec a2 = a;
            add_column(a2, k, q[k] != 0 ? -1.0 : 1.0);
            sse[k] = regression_sse(a2);
          },
          threads);
      double best_sse = cur;
      std::size_t arg = d;
      for (std::size_t k = 0; k < d; ++k) {
        if (sse[k] < best_sse - 1e-9) {
          best_sse = sse[k];
          arg = k;
        }
      }
      if (arg == d) break;  // local minimum
      add_column(a, arg, q[arg] != 0 ? -1.0 : 1.0);
      q[arg] ^= 1;
      cur = best_sse;
    }
    return q;
  };

  auto package = [&](BitVec q, RtFit fit) {
    MipAttackResult res;
    res.found = true;
    // The point came from the primal heuristic; branch and bound never ran.
    res.status = opt::MipStatus::Heuristic;
    res.query = std::move(q);
    res.rhat = fit.rhat;
    res.that = fit.that;
    return res;
  };

  const std::size_t max_flips =
      options.max_repair_flips > 0 ? options.max_repair_flips : 3 * d;

  // Prefix scan: order coordinates by LP value and test every prefix
  // {top-1, top-2, ..., top-d} as a rounding candidate. This subsumes any
  // fixed threshold and finds a feasible support size directly.
  std::vector<std::size_t> order(d);
  for (std::size_t k = 0; k < d; ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return relaxed_q[a] > relaxed_q[b];
  });

  // Fit every prefix in parallel. A chunk rebuilds the prefix inner products
  // at its start (a_s is a 0/1 column sum — exact in doubles under any
  // grouping) and then extends incrementally, so fits[s] is bit-identical to
  // the serial one-prefix-at-a-time recomputation. The grain is a function
  // of d alone; 16-ish chunks keep the rebuild cost a small fraction of the
  // fit_rt work.
  std::vector<RtFit> prefix_fits(d);
  fit_probes += d;
  {
    obs::Span span("mip/prefix_scan");
    par::default_pool().run_chunked(
        0, d, std::max<std::size_t>(1, (d + 15) / 16),
        [&](std::size_t lo, std::size_t hi) {
          Vec a(m, 0.0);
          for (std::size_t s = 0; s < lo; ++s) add_column(a, order[s], 1.0);
          for (std::size_t s = lo; s < hi; ++s) {
            add_column(a, order[s], 1.0);
            prefix_fits[s] = fit_rt(c, a, mu, lsigma, options);
          }
        },
        threads);
  }

  BitVec first_feasible;
  RtFit first_feasible_fit;
  bool have_feasible = false;
  BitVec best_q;
  double best_violation = opt::kInfinity;
  BitVec q_prefix(d, 0);
  for (std::size_t s = 0; s < d; ++s) {
    q_prefix[order[s]] = 1;
    const RtFit& fit = prefix_fits[s];
    if (fit.feasible && !have_feasible) {
      first_feasible = q_prefix;
      first_feasible_fit = fit;
      have_feasible = true;
    }
    if (fit.violation < best_violation) {
      best_violation = fit.violation;
      best_q = q_prefix;
    }
  }

  // Multi-start maximum-likelihood descent: the SSE landscape has scale
  // local minima (a shrunk-support point with a proportionally shrunk rhat
  // fits well), so descend from a ladder of support sizes and keep the
  // global minimum.
  {
    obs::Span span("mip/ml_descent");
    BitVec best_ml;
    double best_sse = opt::kInfinity;
    std::size_t s = 1;
    while (s <= d) {
      BitVec q0(d, 0);
      for (std::size_t i = 0; i < s; ++i) q0[order[i]] = 1;
      BitVec qd = polish(std::move(q0));
      const double sse = regression_sse(inner_products(qd));
      if (sse < best_sse) {
        best_sse = sse;
        best_ml = std::move(qd);
      }
      s = std::max(s + 1, s + s / 3);  // geometric-ish ladder
    }
    if (!best_ml.empty()) {
      fit_probes += 1;
      const RtFit fit = fit_rt(c, inner_products(best_ml), mu, lsigma, options);
      if (fit.feasible) return package(std::move(best_ml), fit);
    }
  }

  if (have_feasible) {
    obs::Span span("mip/grow");
    auto [q, fit] = grow(std::move(first_feasible), first_feasible_fit);
    return package(std::move(q), fit);
  }

  // Greedy repair from the best rounding: flip the single bit that most
  // reduces the violation; stop at feasibility or a local minimum. Candidate
  // flips are probed in parallel, selected in ascending keyword order.
  obs::Span repair_span("mip/repair");
  BitVec q = std::move(best_q);
  Vec a = inner_products(q);
  std::vector<RtFit> flip_fits(d);
  for (std::size_t flip = 0; flip < max_flips; ++flip) {
    const std::size_t ones = popcount(q);
    fit_probes += d;
    par::parallel_for(
        0, d, grain_for(200 * m),
        [&](std::size_t k) {
          const std::size_t flipped = q[k] != 0 ? ones - 1 : ones + 1;
          if (flipped < 1) {
            flip_fits[k] = RtFit{};
            flip_fits[k].violation = opt::kInfinity;
            return;
          }
          Vec a2 = a;
          add_column(a2, k, q[k] != 0 ? -1.0 : 1.0);
          flip_fits[k] = fit_rt(c, a2, mu, lsigma, options);
        },
        threads);
    double cur = best_violation;
    std::size_t arg = d;
    for (std::size_t k = 0; k < d; ++k) {
      if (flip_fits[k].violation < cur - 1e-12) {
        cur = flip_fits[k].violation;
        arg = k;
      }
    }
    if (arg == d) break;  // local minimum
    add_column(a, arg, q[arg] != 0 ? -1.0 : 1.0);
    q[arg] ^= 1;
    best_violation = cur;
    if (flip_fits[arg].feasible) return package(q, flip_fits[arg]);
  }
  return std::nullopt;
}

}  // namespace

MipAttackResult run_mip_attack(
    const std::vector<sse::KnownBinaryPair>& known_pairs,
    const scheme::CipherPair& cipher_trapdoor, double mu, double sigma,
    const MipAttackOptions& options, const ExecContext& ctx) {
  return run_mip_attack(known_pairs, cipher_trapdoor, mu, sigma, options, ctx,
                        nullptr);
}

MipAttackResult run_mip_attack(
    const std::vector<sse::KnownBinaryPair>& known_pairs,
    const scheme::CipherPair& cipher_trapdoor, double mu, double sigma,
    const MipAttackOptions& options, const ExecContext& ctx,
    MipWarmState* warm) {
  Stopwatch watch;
  obs::ScopedRecording rec(ctx.sink);
  // Root span only when this overload owns the recording, so the trace has
  // exactly one "mip/attack" root regardless of the entry point.
  std::optional<obs::Span> root;
  if (rec.active()) root.emplace("mip/attack");

  Model model;
  {
    obs::Span span("mip/build_model");
    model = build_mip_attack_model(known_pairs, cipher_trapdoor, mu, sigma,
                                   options);
  }

  // One solver for the whole attack: the heuristic's root LP builds the
  // tableau and leaves an optimal basis, which then warm-starts the root of
  // branch and bound. Constructed lazily — the correlation-ordering
  // heuristic path usually returns without ever touching the simplex.
  std::optional<opt::SimplexSolver> solver;

  // Every run goes through the warm-state code path — callers without a
  // persistent state get a throwaway one — so a run that exports, a run
  // that attaches and a plain solo run share one pivot sequence and one
  // answer. A digest mismatch means the cached state belongs to a different
  // model: drop it and re-export from this job.
  MipWarmState scratch;
  MipWarmState* ws = warm != nullptr ? warm : &scratch;
  const std::uint64_t digest = mip_model_digest(model);
  if (ws->model_digest != digest) {
    *ws = MipWarmState{};
    ws->model_digest = digest;
  }

  MipAttackResult result;
  std::size_t fit_probes = 0;
  bool answered = false;
  if (options.use_heuristic) {
    obs::Span span("mip/heuristic");
    Vec c(known_pairs.size());
    for (std::size_t i = 0; i < known_pairs.size(); ++i) {
      c[i] = cipher_score(known_pairs[i].cipher, cipher_trapdoor);
    }
    auto heuristic =
        primal_heuristic(known_pairs, c, mu, sigma, options, model, solver,
                         ctx.resolved_threads(), fit_probes, *ws);
    if (heuristic.has_value()) {
      result = *std::move(heuristic);
      answered = true;
      obs::instant("mip/heuristic_feasible");
    }
  }

  std::size_t bnb_nodes = 0;
  std::size_t bnb_pivots = 0;
  std::size_t bnb_cuts = 0;
  std::size_t bnb_rc_fixings = 0;
  std::size_t bnb_strong_branches = 0;
  std::size_t bnb_restarts = 0;
  if (!answered) {
    obs::Span span("mip/branch_and_bound");
    if (!solver.has_value()) solver.emplace(model, options.solver.lp);
    const opt::MipResult mip =
        opt::solve_mip(model, *solver, options.solver, &ws->bnb);
    result.status = mip.status;
    bnb_nodes = mip.nodes_explored;
    bnb_pivots = mip.simplex_iterations;
    bnb_cuts = mip.cuts_added;
    bnb_rc_fixings = mip.rc_fixings;
    bnb_strong_branches = mip.strong_branches;
    bnb_restarts = mip.restarts;
    if (mip.has_solution()) {
      result.found = true;
      result.rhat = mip.x[0];
      result.that = mip.x[1];
      const std::size_t d = known_pairs[0].record.size();
      result.query.resize(d);
      for (std::size_t k = 0; k < d; ++k) {
        result.query[k] = mip.x[2 + k] > 0.5 ? 1 : 0;
      }
    }
  }

  result.telemetry.counters["mip.model_rows"] =
      static_cast<double>(model.num_constraints());
  result.telemetry.counters["mip.model_cols"] =
      static_cast<double>(model.num_variables());
  result.telemetry.counters["mip.heuristic.fit_probes"] =
      static_cast<double>(fit_probes);
  result.telemetry.counters["mip.bnb.nodes"] = static_cast<double>(bnb_nodes);
  result.telemetry.counters["mip.bnb.simplex_iterations"] =
      static_cast<double>(bnb_pivots);
  result.telemetry.counters["mip.cuts_added"] = static_cast<double>(bnb_cuts);
  result.telemetry.counters["mip.rc_fixings"] =
      static_cast<double>(bnb_rc_fixings);
  result.telemetry.counters["mip.strong_branches"] =
      static_cast<double>(bnb_strong_branches);
  result.telemetry.counters["mip.restarts"] =
      static_cast<double>(bnb_restarts);

  root.reset();
  result.telemetry.wall_seconds = watch.seconds();
  result.telemetry.absorb(rec.finish());
  return result;
}

MipAttackResult run_mip_attack(const sse::MrseKpaView& view,
                               std::size_t trapdoor_id, double mu, double sigma,
                               const MipAttackOptions& options,
                               const ExecContext& ctx) {
  require(trapdoor_id < view.observed.cipher_trapdoors.size(),
          "MIP attack: no such trapdoor");
  return run_mip_attack(view.known_pairs,
                        view.observed.cipher_trapdoors[trapdoor_id], mu, sigma,
                        options, ctx);
}

}  // namespace aspe::core
