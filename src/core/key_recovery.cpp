#include "core/key_recovery.hpp"

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "linalg/solve.hpp"

namespace aspe::core {

using linalg::IndependenceTracker;
using linalg::LuDecomposition;
using linalg::Matrix;

KeyRecoveryResult run_scheme1_key_recovery(const Scheme1KpaView& view) {
  require(!view.known_records.empty(), "key recovery: no known pairs");
  require(view.known_records.size() == view.known_cipher_indexes.size(),
          "key recovery: pair count mismatch");
  const std::size_t d = view.known_records[0].size();
  const std::size_t n = d + 1;

  // Select n pairs with linearly independent plain indexes.
  IndependenceTracker tracker(n);
  std::vector<Vec> plain_rows, cipher_rows;
  for (std::size_t i = 0;
       i < view.known_records.size() && !tracker.complete(); ++i) {
    require(view.known_records[i].size() == d,
            "key recovery: inconsistent record dimensions");
    Vec index = scheme::make_index(view.known_records[i]);
    if (tracker.try_add(index)) {
      plain_rows.push_back(std::move(index));
      require(view.known_cipher_indexes[i].size() == n,
              "key recovery: inconsistent ciphertext dimensions");
      cipher_rows.push_back(view.known_cipher_indexes[i]);
    }
  }
  if (!tracker.complete()) {
    throw NumericalError(
        "key recovery: fewer than d+1 linearly independent known records");
  }

  KeyRecoveryResult result;
  // A M = B with A rows = plain indexes, B rows = cipher indexes.
  const LuDecomposition a_lu{Matrix::from_rows(plain_rows)};
  if (a_lu.is_singular()) {
    throw NumericalError("key recovery: known-pair system singular");
  }
  result.recovered_key = a_lu.solve(Matrix::from_rows(cipher_rows));

  // Decrypt indexes: I = (M^T)^{-1} I'.
  const LuDecomposition mt_lu{result.recovered_key.transpose()};
  if (mt_lu.is_singular()) {
    throw NumericalError("key recovery: recovered key singular");
  }
  for (const auto& cipher : view.cipher_indexes) {
    require(cipher.size() == n, "key recovery: bad ciphertext length");
    result.records.push_back(
        scheme::record_from_index(mt_lu.solve(cipher)));
  }
  // Decrypt trapdoors: T = M T'.
  for (const auto& cipher : view.cipher_trapdoors) {
    require(cipher.size() == n, "key recovery: bad trapdoor length");
    const auto rq = scheme::query_from_trapdoor(
        result.recovered_key.apply(cipher));
    result.queries.push_back(rq.q);
    result.query_multipliers.push_back(rq.r);
  }
  return result;
}

}  // namespace aspe::core
