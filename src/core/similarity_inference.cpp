#include "core/similarity_inference.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/metrics.hpp"

namespace aspe::core {

std::vector<SimilarPair> find_similar_pairs(const std::vector<BitVec>& indexes,
                                            double threshold) {
  require(threshold >= 0.0 && threshold <= 1.0,
          "find_similar_pairs: threshold must be in [0, 1]");
  std::vector<SimilarPair> pairs;
  for (std::size_t a = 0; a < indexes.size(); ++a) {
    for (std::size_t b = a + 1; b < indexes.size(); ++b) {
      const double j = jaccard(indexes[a], indexes[b]);
      if (j >= threshold) pairs.push_back({a, b, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const SimilarPair& x, const SimilarPair& y) {
              if (x.jaccard != y.jaccard) return x.jaccard > y.jaccard;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return pairs;
}

std::vector<PropagatedLabel> propagate_labels(
    const std::vector<BitVec>& indexes,
    const std::map<std::size_t, std::string>& known, double threshold) {
  require(threshold >= 0.0 && threshold <= 1.0,
          "propagate_labels: threshold must be in [0, 1]");
  for (const auto& [id, label] : known) {
    require(id < indexes.size(), "propagate_labels: unknown record id");
    require(!label.empty(), "propagate_labels: empty label");
  }
  std::vector<PropagatedLabel> out(indexes.size());
  for (std::size_t i = 0; i < indexes.size(); ++i) {
    const auto self = known.find(i);
    if (self != known.end()) {
      out[i] = {self->second, 1.0, i};
      continue;
    }
    for (const auto& [id, label] : known) {
      const double j = jaccard(indexes[i], indexes[id]);
      if (j >= threshold && j > out[i].confidence) {
        out[i] = {label, j, id};
      }
    }
  }
  return out;
}

}  // namespace aspe::core
