// Algorithm 3 — Sparse Non-negative Matrix Factorization (SNMF): the COA
// attack on MKFSE (§V.B, Security Risk 3).
//
// From ciphertexts alone the adversary computes the inner-product matrix
// R[i][j] = I'_i^T T'_j = I_i^T T_j (Eq. (16)), factorizes R ~= I^T T into
// two d-row non-negative matrices with the sparse-NMF objective (Eq. (18)),
// keeps the best of L restarts, and binarizes at threshold theta = 0.5.
// The columns of the factors are the reconstructed indexes I*_i and
// trapdoors T*_j.
//
// Signature convention (docs/api.md): inputs first, options next, the
// ExecContext (threads / seed / determinism / telemetry sink) last, both
// defaulted.
#pragma once

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/exec_context.hpp"
#include "core/telemetry.hpp"
#include "linalg/matrix.hpp"
#include "nmf/nmf.hpp"
#include "rng/rng.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::core {

struct SnmfAttackOptions {
  std::size_t rank = 0;      // d — dimensionality of indexes/trapdoors
  double theta = 0.5;        // binarization threshold (the paper's choice)
  std::size_t restarts = 3;  // L — number of sparse_NMF runs
  nmf::SparseNmfOptions nmf;
  /// Rescale latent rows before thresholding (W^T H invariant); makes the
  /// fixed theta meaningful under NMF's diagonal-scale ambiguity.
  bool balance = true;
};

struct SnmfAttackResult {
  std::vector<BitVec> indexes;    // I*_i, one per ciphertext index
  std::vector<BitVec> trapdoors;  // T*_j, one per ciphertext trapdoor
  double best_fit_error = 0.0;    // ||R - W^T H||_F of the selected run
  /// Wall time, span summary and counter snapshot for this run. Driver
  /// counters: "snmf.restarts_run", "snmf.nmf_iterations",
  /// "snmf.selected_restart".
  AttackTelemetry telemetry;
  /// Deprecated alias of telemetry.counter("snmf.restarts_run"); still
  /// populated for one release.
  [[deprecated("read telemetry.counter(\"snmf.restarts_run\") instead")]]
  std::size_t restarts_run = 0;

  // Defaulted explicitly so copying the deprecated alias above does not
  // warn at every implicit special-member instantiation.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  SnmfAttackResult() = default;
  SnmfAttackResult(const SnmfAttackResult&) = default;
  SnmfAttackResult(SnmfAttackResult&&) = default;
  SnmfAttackResult& operator=(const SnmfAttackResult&) = default;
  SnmfAttackResult& operator=(SnmfAttackResult&&) = default;
  ~SnmfAttackResult() = default;
#pragma GCC diagnostic pop
};

/// R[i][j] = I'_i^T T'_j — all the COA adversary needs. The all-pairs sweep
/// fans rows out over `threads` (0 = process default); every entry is
/// written exactly once, so the result is identical at any width.
[[nodiscard]] linalg::Matrix build_score_matrix(
    const std::vector<scheme::CipherPair>& cipher_indexes,
    const std::vector<scheme::CipherPair>& cipher_trapdoors,
    std::size_t threads = 0);

/// Zero-copy / out-of-core overload over pre-stacked ciphertext halves —
/// exactly the views an io::MappedCorpus cipher database exposes
/// (corpus.a_half() / corpus.b_half()), so the gemms read the mapped pages
/// directly. The output is built in row tiles sized from
/// ctx.memory_budget_bytes (one tile when 0); each tile runs under a
/// "score/shard" span and bumps the "shard.count" counter. Rounding to the
/// underlying integer scores makes the result bit-identical at any tile
/// size and thread count.
[[nodiscard]] linalg::Matrix build_score_matrix(
    linalg::ConstMatrixView index_a, linalg::ConstMatrixView index_b,
    linalg::ConstMatrixView trapdoor_a, linalg::ConstMatrixView trapdoor_b,
    const ExecContext& ctx = {});

/// Estimate the latent dimension d from the score matrix alone:
/// R = I^T T has rank <= d, with equality once enough (dense-enough)
/// indexes and trapdoors are observed. Lets a COA adversary run Algorithm 3
/// without knowing the scheme's bloom-filter length a priori.
///
/// Large inputs go through the randomized truncated SVD
/// (linalg::TruncatedSvd) with an escalating sample size, returning as soon
/// as the residual certificate *proves* the rank at rel_tol; ambiguous
/// spectra (and small inputs) run the full Jacobi SVD, whose convergence is
/// asserted (NumericalError on max_sweeps exhaustion — a silent
/// half-converged factorization would rank garbage). ctx supplies the
/// Gaussian sample stream (ctx.seed) and the gemm/QR thread budget; the
/// estimate is bit-identical at any thread count.
[[nodiscard]] std::size_t estimate_latent_dimension(
    const linalg::Matrix& scores, double rel_tol = 1e-8,
    const ExecContext& ctx = {});

/// Rvalue overload: donates the caller's matrix to the SVD working storage
/// on the full-SVD rows >= cols path, skipping the full-matrix copy.
[[nodiscard]] std::size_t estimate_latent_dimension(linalg::Matrix&& scores,
                                                    double rel_tol = 1e-8,
                                                    const ExecContext& ctx = {});

/// View overload for mapped / non-owning score matrices (e.g. an
/// io::MappedCorpus score-matrix container): the truncated path samples the
/// view in place; the full-SVD fallback copies once into working storage.
[[nodiscard]] std::size_t estimate_latent_dimension(
    linalg::ConstMatrixView scores, double rel_tol = 1e-8,
    const ExecContext& ctx = {});

/// Run Algorithm 3 on a ciphertext-only view. For a fixed ctx.seed the
/// result is bit-identical for every ctx.threads and with or without a
/// telemetry sink; with ctx.deterministic (the default) it also matches the
/// deprecated rng::Rng& overload seeded with rng::Rng(ctx.seed).
[[nodiscard]] SnmfAttackResult run_snmf_attack(const sse::CoaView& view,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx = {});

/// Run Algorithm 3 on a precomputed score matrix.
[[nodiscard]] SnmfAttackResult run_snmf_attack(const linalg::Matrix& scores,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx = {});

/// Expert entry point: best-of-L restarts from caller-supplied
/// initializations (options.restarts is ignored; inits.size() rules).
/// ctx contributes threads and the sink only — no randomness is drawn.
[[nodiscard]] SnmfAttackResult run_snmf_attack(const linalg::Matrix& scores,
                                               std::vector<nmf::NmfInit> inits,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx = {});

namespace detail {

/// Shared body of the deprecated rng::Rng& entry points: validate in the
/// legacy order, draw the L initializations serially from the caller's
/// stream, and run the restarts single-threaded — RNG consumption and output
/// are unchanged from the pre-ExecContext implementation.
inline SnmfAttackResult snmf_attack_legacy(const linalg::Matrix& scores,
                                           const SnmfAttackOptions& options,
                                           rng::Rng& rng) {
  require(options.rank > 0, "SNMF attack: rank (d) must be set");
  require(options.restarts > 0, "SNMF attack: need at least one restart");
  std::vector<nmf::NmfInit> inits;
  inits.reserve(options.restarts);
  for (std::size_t l = 0; l < options.restarts; ++l) {
    inits.push_back(nmf::nmf_initialize(scores, options.rank, options.nmf, rng));
  }
  ExecContext ctx;
  ctx.threads = 1;
  return run_snmf_attack(scores, std::move(inits), options, ctx);
}

}  // namespace detail

/// Legacy entry point: serial restarts drawing from the caller's stream.
[[deprecated(
    "use run_snmf_attack(view, options, ExecContext{...}) — ExecContext{1, "
    "seed} reproduces this overload bit-for-bit")]]
inline SnmfAttackResult run_snmf_attack(const sse::CoaView& view,
                                        const SnmfAttackOptions& options,
                                        rng::Rng& rng) {
  return detail::snmf_attack_legacy(
      build_score_matrix(view.cipher_indexes, view.cipher_trapdoors), options,
      rng);
}

/// Legacy entry point on a precomputed score matrix (tests/ablations).
[[deprecated(
    "use run_snmf_attack(scores, options, ExecContext{...}) — ExecContext{1, "
    "seed} reproduces this overload bit-for-bit")]]
inline SnmfAttackResult run_snmf_attack(const linalg::Matrix& scores,
                                        const SnmfAttackOptions& options,
                                        rng::Rng& rng) {
  return detail::snmf_attack_legacy(scores, options, rng);
}

}  // namespace aspe::core
