// Algorithm 3 — Sparse Non-negative Matrix Factorization (SNMF): the COA
// attack on MKFSE (§V.B, Security Risk 3).
//
// From ciphertexts alone the adversary computes the inner-product matrix
// R[i][j] = I'_i^T T'_j = I_i^T T_j (Eq. (16)), factorizes R ~= I^T T into
// two d-row non-negative matrices with the sparse-NMF objective (Eq. (18)),
// keeps the best of L restarts, and binarizes at threshold theta = 0.5.
// The columns of the factors are the reconstructed indexes I*_i and
// trapdoors T*_j.
#pragma once

#include <vector>

#include "core/exec_context.hpp"
#include "linalg/matrix.hpp"
#include "nmf/nmf.hpp"
#include "rng/rng.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::core {

struct SnmfAttackOptions {
  std::size_t rank = 0;      // d — dimensionality of indexes/trapdoors
  double theta = 0.5;        // binarization threshold (the paper's choice)
  std::size_t restarts = 3;  // L — number of sparse_NMF runs
  nmf::SparseNmfOptions nmf;
  /// Rescale latent rows before thresholding (W^T H invariant); makes the
  /// fixed theta meaningful under NMF's diagonal-scale ambiguity.
  bool balance = true;
};

struct SnmfAttackResult {
  std::vector<BitVec> indexes;    // I*_i, one per ciphertext index
  std::vector<BitVec> trapdoors;  // T*_j, one per ciphertext trapdoor
  double best_fit_error = 0.0;    // ||R - W^T H||_F of the selected run
  std::size_t restarts_run = 0;
};

/// R[i][j] = I'_i^T T'_j — all the COA adversary needs. The all-pairs sweep
/// fans rows out over `threads` (0 = process default); every entry is
/// written exactly once, so the result is identical at any width.
[[nodiscard]] linalg::Matrix build_score_matrix(
    const std::vector<scheme::CipherPair>& cipher_indexes,
    const std::vector<scheme::CipherPair>& cipher_trapdoors,
    std::size_t threads = 0);

/// Estimate the latent dimension d from the score matrix alone:
/// R = I^T T has rank <= d, with equality once enough (dense-enough)
/// indexes and trapdoors are observed. Lets a COA adversary run Algorithm 3
/// without knowing the scheme's bloom-filter length a priori.
[[nodiscard]] std::size_t estimate_latent_dimension(
    const linalg::Matrix& scores, double rel_tol = 1e-8);

/// Rvalue overload: donates the caller's matrix to the SVD working storage
/// on the rows >= cols path, skipping the full-matrix copy.
[[nodiscard]] std::size_t estimate_latent_dimension(linalg::Matrix&& scores,
                                                    double rel_tol = 1e-8);

/// Run Algorithm 3 on a ciphertext-only view with an explicit execution
/// policy. For a fixed ctx.seed the result is bit-identical for every
/// ctx.threads, and (with ctx.deterministic, the default) also to the
/// legacy rng::Rng& overload seeded with rng::Rng(ctx.seed).
[[nodiscard]] SnmfAttackResult run_snmf_attack(const sse::CoaView& view,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx);

/// Run Algorithm 3 on a precomputed score matrix with an execution policy.
[[nodiscard]] SnmfAttackResult run_snmf_attack(const linalg::Matrix& scores,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx);

/// Legacy entry point: serial restarts drawing from the caller's stream.
/// Thin wrapper over the ExecContext path; behavior (and RNG consumption)
/// is unchanged from the pre-ExecContext versions.
[[nodiscard]] SnmfAttackResult run_snmf_attack(const sse::CoaView& view,
                                               const SnmfAttackOptions& options,
                                               rng::Rng& rng);

/// Legacy entry point on a precomputed score matrix (tests/ablations).
[[nodiscard]] SnmfAttackResult run_snmf_attack(const linalg::Matrix& scores,
                                               const SnmfAttackOptions& options,
                                               rng::Rng& rng);

}  // namespace aspe::core
