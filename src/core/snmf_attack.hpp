// Algorithm 3 — Sparse Non-negative Matrix Factorization (SNMF): the COA
// attack on MKFSE (§V.B, Security Risk 3).
//
// From ciphertexts alone the adversary computes the inner-product matrix
// R[i][j] = I'_i^T T'_j = I_i^T T_j (Eq. (16)), factorizes R ~= I^T T into
// two d-row non-negative matrices with the sparse-NMF objective (Eq. (18)),
// keeps the best of L restarts, and binarizes at threshold theta = 0.5.
// The columns of the factors are the reconstructed indexes I*_i and
// trapdoors T*_j.
//
// Signature convention (docs/api.md): inputs first, options next, the
// ExecContext (threads / seed / determinism / telemetry sink) last, both
// defaulted.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/exec_context.hpp"
#include "core/telemetry.hpp"
#include "linalg/matrix.hpp"
#include "linalg/truncated_svd.hpp"
#include "nmf/nmf.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::core {

struct SnmfAttackOptions {
  std::size_t rank = 0;      // d — dimensionality of indexes/trapdoors
  double theta = 0.5;        // binarization threshold (the paper's choice)
  std::size_t restarts = 3;  // L — number of sparse_NMF runs
  nmf::SparseNmfOptions nmf;
  /// Relative tolerance of the latent-dimension estimate used when
  /// rank == 0 (forwarded to estimate_latent_dimension). Part of the
  /// estimation identity: anything caching an estimated rank must key on it
  /// alongside the corpus fingerprint and seed.
  double rank_tol = 1e-8;
  /// Rescale latent rows before thresholding (W^T H invariant); makes the
  /// fixed theta meaningful under NMF's diagonal-scale ambiguity.
  bool balance = true;
  /// ANLS iteration budget of one warm resume (CoaSession's incremental
  /// attack; 0 = nmf.max_iterations). A warm seed restarts one run instead
  /// of the L-restart sweep, and every appended batch buys it another
  /// budget's worth of polish on nearly the same matrix — so a small
  /// per-delta budget amortizes to at least the batch pipeline's quality
  /// (by its own objective) at a fraction of the iterations.
  std::size_t resume_iterations = 40;
};

struct SnmfAttackResult {
  std::vector<BitVec> indexes;    // I*_i, one per ciphertext index
  std::vector<BitVec> trapdoors;  // T*_j, one per ciphertext trapdoor
  double best_fit_error = 0.0;    // ||R - W^T H||_F of the selected run
  /// Wall time, span summary and counter snapshot for this run. Driver
  /// counters: "snmf.restarts_run", "snmf.nmf_iterations",
  /// "snmf.selected_restart" (and "snmf.resumes" on the CoaSession resume
  /// path).
  AttackTelemetry telemetry;
};

/// R[i][j] = I'_i^T T'_j — all the COA adversary needs. The all-pairs sweep
/// fans rows out over `threads` (0 = process default); every entry is
/// written exactly once, so the result is identical at any width.
[[nodiscard]] linalg::Matrix build_score_matrix(
    const std::vector<scheme::CipherPair>& cipher_indexes,
    const std::vector<scheme::CipherPair>& cipher_trapdoors,
    std::size_t threads = 0);

/// Zero-copy / out-of-core overload over pre-stacked ciphertext halves —
/// exactly the views an io::MappedCorpus cipher database exposes
/// (corpus.a_half() / corpus.b_half()), so the gemms read the mapped pages
/// directly. The output is built in row tiles sized from
/// ctx.memory_budget_bytes (one tile when 0); each tile runs under a
/// "score/shard" span and bumps the "shard.count" counter. Rounding to the
/// underlying integer scores makes the result bit-identical at any tile
/// size and thread count.
[[nodiscard]] linalg::Matrix build_score_matrix(
    linalg::ConstMatrixView index_a, linalg::ConstMatrixView index_b,
    linalg::ConstMatrixView trapdoor_a, linalg::ConstMatrixView trapdoor_b,
    const ExecContext& ctx = {});

/// Estimate the latent dimension d from the score matrix alone:
/// R = I^T T has rank <= d, with equality once enough (dense-enough)
/// indexes and trapdoors are observed. Lets a COA adversary run Algorithm 3
/// without knowing the scheme's bloom-filter length a priori.
///
/// Large inputs go through the randomized truncated SVD
/// (linalg::TruncatedSvd) with an escalating sample size, returning as soon
/// as the residual certificate *proves* the rank at rel_tol; ambiguous
/// spectra (and small inputs) run the full Jacobi SVD, whose convergence is
/// asserted (NumericalError on max_sweeps exhaustion — a silent
/// half-converged factorization would rank garbage). ctx supplies the
/// Gaussian sample stream (ctx.seed) and the gemm/QR thread budget; the
/// estimate is bit-identical at any thread count.
[[nodiscard]] std::size_t estimate_latent_dimension(
    const linalg::Matrix& scores, double rel_tol = 1e-8,
    const ExecContext& ctx = {});

/// Rvalue overload: donates the caller's matrix to the SVD working storage
/// on the full-SVD rows >= cols path, skipping the full-matrix copy.
[[nodiscard]] std::size_t estimate_latent_dimension(linalg::Matrix&& scores,
                                                    double rel_tol = 1e-8,
                                                    const ExecContext& ctx = {});

/// View overload for mapped / non-owning score matrices (e.g. an
/// io::MappedCorpus score-matrix container): the truncated path samples the
/// view in place; the full-SVD fallback copies once into working storage.
[[nodiscard]] std::size_t estimate_latent_dimension(
    linalg::ConstMatrixView scores, double rel_tol = 1e-8,
    const ExecContext& ctx = {});

/// Stateful overload for growing score matrices (CoaSession): when `state`
/// holds the truncated factorization of a leading block of `scores`, the new
/// trailing columns and rows are folded in through TruncatedSvd::update_cols
/// / update_rows (span "svd/update") and the residual certificate is
/// re-checked — an O((l+k)^2 (m+n)) update instead of a fresh O(m n l)
/// sample. Only when the updated certificate fails does it fall back to the
/// escalating fresh-sample loop (and then the full Jacobi SVD), storing
/// whatever certified state it ends with back into `state` (reset when the
/// full SVD decided, or when the input is below the truncated crossover).
/// The returned rank always equals the stateless overloads'.
[[nodiscard]] std::size_t estimate_latent_dimension(
    linalg::ConstMatrixView scores,
    std::optional<linalg::TruncatedSvd>& state, double rel_tol = 1e-8,
    const ExecContext& ctx = {});

/// Run Algorithm 3 on a ciphertext-only view. For a fixed ctx.seed the
/// result is bit-identical for every ctx.threads and with or without a
/// telemetry sink.
[[nodiscard]] SnmfAttackResult run_snmf_attack(const sse::CoaView& view,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx = {});

/// Run Algorithm 3 on a precomputed score matrix.
[[nodiscard]] SnmfAttackResult run_snmf_attack(const linalg::Matrix& scores,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx = {});

/// Expert entry point: best-of-L restarts from caller-supplied
/// initializations (options.restarts is ignored; inits.size() rules).
/// ctx contributes threads and the sink only — no randomness is drawn.
[[nodiscard]] SnmfAttackResult run_snmf_attack(const linalg::Matrix& scores,
                                               std::vector<nmf::NmfInit> inits,
                                               const SnmfAttackOptions& options,
                                               const ExecContext& ctx = {});

/// One job of a fused multi-job restart sweep (run_snmf_attack_batch).
/// options.rank must be resolved (> 0) by the caller — a shared rank
/// estimate is exactly what batching is for.
struct SnmfBatchJob {
  SnmfAttackOptions options;
  ExecContext ctx;
};

/// Run several SNMF attacks over ONE score matrix as a single fused restart
/// sweep: each job's initializations are drawn with that job's own options
/// and context (the exact streams the solo path draws), all restarts run in
/// one merged pool, and per-job winners are selected by the same
/// first-strictly-better scan run_snmf_restarts uses. Every per-restart
/// factorization is a pure function of (scores, rank, nmf options, init) —
/// bit-identical at any thread count — so result j equals
/// run_snmf_attack(scores, jobs[j].options, jobs[j].ctx) bit for bit
/// (telemetry wall time excepted).
[[nodiscard]] std::vector<SnmfAttackResult> run_snmf_attack_batch(
    const linalg::Matrix& scores, const std::vector<SnmfBatchJob>& jobs);

// ---- Decomposed restart machinery (shared by run_snmf_attack and
// core::CoaSession, which must keep the selected factorization alive as the
// warm seed of its next incremental resume).

/// The winner of a best-of-L restart sweep, before balancing/thresholding.
struct SnmfSelection {
  nmf::NmfResult factorization;      // un-balanced W/H of the selected run
  std::size_t selected_restart = 0;  // restart id of the winner
  std::size_t restarts_run = 0;
  std::size_t nmf_iterations = 0;  // summed over all restarts
};

/// Draw the L restart initializations exactly as run_snmf_attack(scores,
/// options, ctx) does: sequentially from rng::Rng(ctx.seed) when
/// ctx.deterministic, from per-restart split streams otherwise.
[[nodiscard]] std::vector<nmf::NmfInit> draw_snmf_inits(
    const linalg::Matrix& scores, const SnmfAttackOptions& options,
    const ExecContext& ctx = {});

/// Best-of-L restarts from pre-drawn initializations (Algorithm 3's loop):
/// runs in parallel under ctx, selects the lowest objective (ties toward the
/// smallest restart id), and returns the winning factorization un-binarized.
[[nodiscard]] SnmfSelection run_snmf_restarts(const linalg::Matrix& scores,
                                              const SnmfAttackOptions& options,
                                              std::vector<nmf::NmfInit> inits,
                                              const ExecContext& ctx = {});

/// Balance + threshold a selection into the attack result (Algorithm 3's
/// ConvertToBinaryMatrix step) and populate the driver counters. The
/// selection's factors are copied, not consumed — sessions keep them.
[[nodiscard]] SnmfAttackResult binarize_snmf_selection(
    const SnmfSelection& selection, const SnmfAttackOptions& options);

}  // namespace aspe::core
