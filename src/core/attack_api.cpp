#include "core/attack_api.hpp"

#include <utility>

#include "io/codec.hpp"
#include "io/format.hpp"
#include "scheme/plain_index.hpp"
#include "sse/adversary_view.hpp"

namespace aspe::core {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return "ok";
    case ErrorCode::BadInput: return "bad-input";
    case ErrorCode::NotReady: return "not-ready";
    case ErrorCode::Budget: return "budget";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

ErrorCode error_code_of(const std::exception& e) {
  if (const auto* typed = dynamic_cast<const Error*>(&e)) return typed->code;
  if (dynamic_cast<const InvalidArgument*>(&e) != nullptr ||
      dynamic_cast<const io::IoError*>(&e) != nullptr) {
    return ErrorCode::BadInput;
  }
  if (dynamic_cast<const NumericalError*>(&e) != nullptr) {
    return ErrorCode::NotReady;
  }
  return ErrorCode::Internal;
}

int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return 0;
    case ErrorCode::BadInput: return 2;
    case ErrorCode::NotReady: return 4;
    case ErrorCode::Budget: return 5;
    case ErrorCode::Internal: return 1;
  }
  return 1;
}

// ----------------------------------------------------------------- corpora

CorpusRef CorpusRef::from_path(std::string p) {
  CorpusRef ref;
  ref.path = std::move(p);
  return ref;
}

CorpusRef CorpusRef::inline_ciphers(std::vector<scheme::CipherPair> db) {
  CorpusRef ref;
  ref.ciphers = std::make_shared<const std::vector<scheme::CipherPair>>(
      std::move(db));
  return ref;
}

CorpusRef CorpusRef::inline_vecs(std::vector<Vec> v) {
  CorpusRef ref;
  ref.vecs = std::make_shared<const std::vector<Vec>>(std::move(v));
  return ref;
}

std::shared_ptr<const std::vector<scheme::CipherPair>> CorpusRef::load_ciphers(
    const char* what) const {
  if (ciphers != nullptr) return ciphers;
  if (vecs != nullptr) {
    throw Error(ErrorCode::BadInput,
                std::string(what) + ": expected a ciphertext corpus, got an "
                                    "inline vector payload");
  }
  if (path.empty()) {
    throw Error(ErrorCode::BadInput,
                std::string(what) + ": corpus reference is empty");
  }
  return std::make_shared<const std::vector<scheme::CipherPair>>(
      io::open_reader(path)->read_cipher_database());
}

std::shared_ptr<const std::vector<Vec>> CorpusRef::load_vecs(
    const char* what) const {
  if (vecs != nullptr) return vecs;
  if (ciphers != nullptr) {
    throw Error(ErrorCode::BadInput,
                std::string(what) + ": expected a vector corpus, got an "
                                    "inline ciphertext payload");
  }
  if (path.empty()) {
    throw Error(ErrorCode::BadInput,
                std::string(what) + ": corpus reference is empty");
  }
  return std::make_shared<const std::vector<Vec>>(
      io::open_reader(path)->read_vecs());
}

// ---------------------------------------------------------------- dispatch

namespace {

AttackResponse dispatch_lep(const LepRequest& req, const ExecContext& ctx) {
  const auto known = req.known_plain.load_vecs("lep known-plain");
  const auto db = req.db.load_ciphers("lep db");
  const auto trapdoors = req.trapdoors.load_ciphers("lep trapdoors");
  if (known->size() > db->size()) {
    throw Error(ErrorCode::BadInput,
                "lep: more known records than ciphertexts");
  }

  sse::KpaView view;
  view.known_pairs.reserve(known->size());
  for (std::size_t i = 0; i < known->size(); ++i) {
    view.known_pairs.push_back(
        {scheme::make_index((*known)[i]), (*db)[i]});
  }
  view.observed.cipher_indexes = *db;
  view.observed.cipher_trapdoors = *trapdoors;

  AttackResponse resp;
  auto res = run_lep_attack(view, req.options, ctx);
  resp.telemetry = res.telemetry;
  resp.result = std::move(res);
  resp.status = AttackStatus::Ok;
  resp.error = ErrorCode::Ok;
  return resp;
}

AttackResponse dispatch_mip(const MipRequest& req, const ExecContext& ctx,
                            const DispatchHooks& hooks) {
  const auto known = req.known_plain.load_vecs("mip known-plain");
  const auto db = req.db.load_ciphers("mip db");
  const auto trapdoors = req.trapdoors.load_ciphers("mip trapdoors");
  if (known->size() > db->size()) {
    throw Error(ErrorCode::BadInput,
                "mip: more known records than ciphertexts");
  }
  if (trapdoors->empty()) {
    throw Error(ErrorCode::BadInput, "mip: no trapdoors");
  }
  if (req.trapdoor_id >= trapdoors->size()) {
    throw Error(ErrorCode::BadInput, "mip: trapdoor id out of range");
  }

  std::vector<sse::KnownBinaryPair> pairs;
  pairs.reserve(known->size());
  for (std::size_t i = 0; i < known->size(); ++i) {
    const Vec& rec = (*known)[i];
    BitVec bits(rec.size());
    for (std::size_t k = 0; k < rec.size(); ++k) {
      bits[k] = rec[k] > 0.5 ? 1 : 0;
    }
    pairs.push_back({std::move(bits), (*db)[i]});
  }

  AttackResponse resp;
  auto res = run_mip_attack(pairs, (*trapdoors)[req.trapdoor_id], req.mu,
                            req.sigma, req.options, ctx, hooks.mip_warm);
  resp.status = res.found ? AttackStatus::Ok : AttackStatus::NoSolution;
  resp.error = ErrorCode::Ok;
  resp.telemetry = res.telemetry;
  resp.result = std::move(res);
  return resp;
}

AttackResponse dispatch_snmf(const SnmfRequest& req, const ExecContext& ctx,
                             const DispatchHooks& hooks) {
  const auto db = req.db.load_ciphers("snmf db");
  const auto trapdoors = req.trapdoors.load_ciphers("snmf trapdoors");

  // Build (or fetch) the score matrix exactly once per request: the rank
  // estimate and the restart sweep read the same R. Pre-hooks dispatch
  // built it twice on the rank == 0 path — once for the estimate, once
  // inside run_snmf_attack(view, ...). The build is deterministic at any
  // thread count, so a cache hit is bit-identical to a rebuild.
  std::shared_ptr<const linalg::Matrix> scores;
  const auto build = [&] {
    return build_score_matrix(*db, *trapdoors, ctx.threads);
  };
  if (hooks.score_cache != nullptr && !hooks.score_key.empty()) {
    scores = hooks.score_cache->get_or_build(
        hooks.score_key, ctx.memory_budget_bytes, build);
  } else {
    scores = std::make_shared<const linalg::Matrix>(build());
  }

  SnmfAttackOptions options = req.options;
  bool estimated = false;
  if (options.rank == 0) {
    options.rank = estimate_latent_dimension(*scores, options.rank_tol, ctx);
    if (options.rank == 0) {
      throw Error(ErrorCode::NotReady,
                  "snmf: rank estimation found a zero matrix");
    }
    estimated = true;
  }

  AttackResponse resp;
  auto res = run_snmf_attack(*scores, options, ctx);
  if (estimated) {
    // Recorded whether or not a sink was attached, like the driver's own
    // counters, so callers (the CLI's report line, the daemon's rank cache)
    // can read the choice back.
    res.telemetry.counters["snmf.estimated_rank"] =
        static_cast<double>(options.rank);
  }
  resp.telemetry = res.telemetry;
  resp.result = std::move(res);
  resp.status = AttackStatus::Ok;
  resp.error = ErrorCode::Ok;
  return resp;
}

}  // namespace

AttackResponse dispatch_attack(const AttackRequest& request,
                               const ExecContext& ctx) {
  return dispatch_attack(request, ctx, DispatchHooks{});
}

AttackResponse dispatch_attack(const AttackRequest& request,
                               const ExecContext& ctx,
                               const DispatchHooks& hooks) {
  try {
    return std::visit(
        [&](const auto& req) -> AttackResponse {
          using T = std::decay_t<decltype(req)>;
          if constexpr (std::is_same_v<T, LepRequest>) {
            return dispatch_lep(req, ctx);
          } else if constexpr (std::is_same_v<T, MipRequest>) {
            return dispatch_mip(req, ctx, hooks);
          } else {
            return dispatch_snmf(req, ctx, hooks);
          }
        },
        request.request);
  } catch (const std::exception& e) {
    AttackResponse resp;
    resp.status = AttackStatus::Failed;
    resp.error = error_code_of(e);
    resp.message = e.what();
    return resp;
  }
}

}  // namespace aspe::core
