#include "io/key_io.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "io/serialization.hpp"

namespace aspe::io {

void write_split_encryptor(std::ostream& os,
                           const scheme::SplitEncryptor& encryptor) {
  os << "split_encryptor_key_v1\n";
  detail::write_bitvec(os, encryptor.split_string());
  detail::write_matrix(os, encryptor.m1());
  detail::write_matrix(os, encryptor.m2());
}

scheme::SplitEncryptor read_split_encryptor(std::istream& is) {
  std::string tag;
  if (!(is >> tag)) throw IoError("empty key stream");
  if (tag != "split_encryptor_key_v1") {
    throw IoError("unrecognized key format: " + tag);
  }
  BitVec split = detail::read_bitvec(is);
  linalg::Matrix m1 = detail::read_matrix(is);
  linalg::Matrix m2 = detail::read_matrix(is);
  return scheme::SplitEncryptor(std::move(split), std::move(m1),
                                std::move(m2));
}

}  // namespace aspe::io
