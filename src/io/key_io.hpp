// Persistence for scheme key material.
//
// The data owner generates the ASPE key once and must reuse it across
// sessions (new records must be encrypted under the same (S, M1, M2) or the
// server-side scores break). This module round-trips the SplitEncryptor —
// the key apparatus shared by Scheme 2, MRSE and MKFSE.
//
// The serialized form contains the *secret key*; treat the stream like a key
// file.
#pragma once

#include <iosfwd>

#include "scheme/split_encryptor.hpp"

namespace aspe::io {

void write_split_encryptor(std::ostream& os,
                           const scheme::SplitEncryptor& encryptor);

/// Throws IoError on malformed input, NumericalError if a persisted key
/// matrix is singular.
[[nodiscard]] scheme::SplitEncryptor read_split_encryptor(std::istream& is);

}  // namespace aspe::io
