#include "io/session_io.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "io/serialization.hpp"

namespace aspe::io {

namespace {

constexpr int kSnapshotVersion = 1;

void write_frame(std::ostream& os, const char* tag) {
  os << tag << ' ' << kSnapshotVersion << '\n';
}

void read_frame(std::istream& is, const std::string& want) {
  std::string tag;
  int version = 0;
  if (!(is >> tag) || tag != want) {
    throw IoError("session snapshot: expected '" + want + "' frame");
  }
  if (!(is >> version) || version != kSnapshotVersion) {
    throw IoError("session snapshot: unsupported version");
  }
}

/// Counts and flags ride in single-element vec records; a count must be a
/// non-negative integer small enough to index with.
void write_count(std::ostream& os, std::size_t n) {
  detail::write_vec(os, {static_cast<double>(n)});
}

std::size_t read_count(std::istream& is, const char* what) {
  const Vec v = detail::read_vec(is);
  if (v.size() != 1 || !(v[0] >= 0.0) || v[0] != std::floor(v[0]) ||
      v[0] > 9e15) {
    throw IoError(std::string("session snapshot: malformed count for ") +
                  what);
  }
  return static_cast<std::size_t>(v[0]);
}

}  // namespace

// --------------------------------------------------------------- CoaSession

void save_coa_session(std::ostream& os, const core::CoaSessionSnapshot& s) {
  write_frame(os, "coa_session");
  detail::write_matrix(os, s.index_a);
  detail::write_matrix(os, s.index_b);
  detail::write_matrix(os, s.trapdoor_a);
  detail::write_matrix(os, s.trapdoor_b);
  detail::write_matrix(os, s.scores);
  write_count(os, s.factorization ? 1 : 0);
  if (s.factorization) {
    detail::write_matrix(os, s.factorization->w);
    detail::write_matrix(os, s.factorization->h);
    detail::write_vec(os, {s.factorization->objective,
                           s.factorization->fit_error,
                           static_cast<double>(s.factorization->iterations)});
  }
  if (!os) throw IoError("session snapshot: write failed");
}

core::CoaSessionSnapshot load_coa_session(std::istream& is) {
  read_frame(is, "coa_session");
  core::CoaSessionSnapshot s;
  s.index_a = detail::read_matrix(is);
  s.index_b = detail::read_matrix(is);
  s.trapdoor_a = detail::read_matrix(is);
  s.trapdoor_b = detail::read_matrix(is);
  s.scores = detail::read_matrix(is);
  const std::size_t has_factorization = read_count(is, "factorization flag");
  if (has_factorization > 1) {
    throw IoError("session snapshot: factorization flag must be 0 or 1");
  }
  if (has_factorization == 1) {
    nmf::NmfResult f;
    f.w = detail::read_matrix(is);
    f.h = detail::read_matrix(is);
    const Vec scalars = detail::read_vec(is);
    if (scalars.size() != 3 || scalars[2] < 0.0 ||
        scalars[2] != std::floor(scalars[2])) {
      throw IoError("session snapshot: malformed factorization scalars");
    }
    f.objective = scalars[0];
    f.fit_error = scalars[1];
    f.iterations = static_cast<std::size_t>(scalars[2]);
    s.factorization = std::move(f);
  }
  return s;
}

void save_coa_session(const std::string& path,
                      const core::CoaSessionSnapshot& s) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open output file: " + path);
  save_coa_session(os, s);
}

core::CoaSessionSnapshot load_coa_session(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open input file: " + path);
  return load_coa_session(is);
}

// --------------------------------------------------------------- LepSession

void save_lep_session(std::ostream& os, const core::LepSessionSnapshot& s) {
  write_frame(os, "lep_session");
  detail::write_vec(os, {static_cast<double>(s.dimension),
                         static_cast<double>(s.warm_resolves)});
  write_count(os, s.chosen_pairs.size());
  for (const auto& pair : s.chosen_pairs) {
    detail::write_vec(os, pair.plain_index);
    detail::write_cipher_pair(os, pair.cipher);
  }
  write_count(os, s.trapdoor_ciphers.size());
  for (const auto& c : s.trapdoor_ciphers) detail::write_cipher_pair(os, c);
  write_count(os, s.trapdoors.size());
  for (const auto& t : s.trapdoors) detail::write_vec(os, t);
  write_count(os, s.index_ciphers.size());
  for (const auto& c : s.index_ciphers) detail::write_cipher_pair(os, c);
  write_count(os, s.indexes.size());
  for (const auto& v : s.indexes) detail::write_vec(os, v);
  if (!os) throw IoError("session snapshot: write failed");
}

core::LepSessionSnapshot load_lep_session(std::istream& is) {
  read_frame(is, "lep_session");
  core::LepSessionSnapshot s;
  const Vec scalars = detail::read_vec(is);
  if (scalars.size() != 2 || scalars[0] < 0.0 || scalars[1] < 0.0 ||
      scalars[0] != std::floor(scalars[0]) ||
      scalars[1] != std::floor(scalars[1])) {
    throw IoError("session snapshot: malformed lep_session scalars");
  }
  s.dimension = static_cast<std::size_t>(scalars[0]);
  s.warm_resolves = static_cast<std::size_t>(scalars[1]);
  const std::size_t num_pairs = read_count(is, "known pairs");
  s.chosen_pairs.reserve(num_pairs);
  for (std::size_t i = 0; i < num_pairs; ++i) {
    sse::KnownIndexPair pair;
    pair.plain_index = detail::read_vec(is);
    pair.cipher = detail::read_cipher_pair(is);
    s.chosen_pairs.push_back(std::move(pair));
  }
  const std::size_t num_trapdoor_ciphers = read_count(is, "cipher trapdoors");
  s.trapdoor_ciphers.reserve(num_trapdoor_ciphers);
  for (std::size_t i = 0; i < num_trapdoor_ciphers; ++i) {
    s.trapdoor_ciphers.push_back(detail::read_cipher_pair(is));
  }
  const std::size_t num_trapdoors = read_count(is, "solved trapdoors");
  s.trapdoors.reserve(num_trapdoors);
  for (std::size_t i = 0; i < num_trapdoors; ++i) {
    s.trapdoors.push_back(detail::read_vec(is));
  }
  const std::size_t num_index_ciphers = read_count(is, "cipher indexes");
  s.index_ciphers.reserve(num_index_ciphers);
  for (std::size_t i = 0; i < num_index_ciphers; ++i) {
    s.index_ciphers.push_back(detail::read_cipher_pair(is));
  }
  const std::size_t num_indexes = read_count(is, "solved indexes");
  s.indexes.reserve(num_indexes);
  for (std::size_t i = 0; i < num_indexes; ++i) {
    s.indexes.push_back(detail::read_vec(is));
  }
  return s;
}

void save_lep_session(const std::string& path,
                      const core::LepSessionSnapshot& s) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open output file: " + path);
  save_lep_session(os, s);
}

core::LepSessionSnapshot load_lep_session(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open input file: " + path);
  return load_lep_session(is);
}

}  // namespace aspe::io
