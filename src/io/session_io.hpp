// Persistence for incremental attack sessions (core/session.hpp).
//
// A snapshot is plain data — stacked ciphertext halves, the score matrix,
// the warm factorization seed (CoaSession), or the raw observations and
// solved plaintexts (LepSession) — serialized in the io text record grammar
// (io::detail, serialization.hpp) under a tagged, versioned frame:
//
//   coa_session 1            lep_session 1
//   matrix ...  (x5)         vec 2  <dimension> <warm_resolves>
//   vec 1 <has_fact>         vec 1 <n>  then n x (vec, cipher) known pairs
//   [matrix w, matrix h,     vec 1 <n>  then n cipher trapdoors
//    vec 3 obj fit iters]    vec 1 <n>  then n solved trapdoor vecs
//                            vec 1 <n>  then n cipher indexes
//                            vec 1 <n>  then n solved index vecs
//
// Loading validates the frame and every count strictly (IoError on
// malformed input); the session constructors then re-validate shape
// consistency and replay the derived state (trackers, LU factorizations,
// unpacked queries), so a tampered-but-well-formed snapshot fails loudly
// rather than yielding a corrupt session.
#pragma once

#include <iosfwd>
#include <string>

#include "core/session.hpp"

namespace aspe::io {

void save_coa_session(std::ostream& os, const core::CoaSessionSnapshot& s);
void save_coa_session(const std::string& path,
                      const core::CoaSessionSnapshot& s);
[[nodiscard]] core::CoaSessionSnapshot load_coa_session(std::istream& is);
[[nodiscard]] core::CoaSessionSnapshot load_coa_session(
    const std::string& path);

void save_lep_session(std::ostream& os, const core::LepSessionSnapshot& s);
void save_lep_session(const std::string& path,
                      const core::LepSessionSnapshot& s);
[[nodiscard]] core::LepSessionSnapshot load_lep_session(std::istream& is);
[[nodiscard]] core::LepSessionSnapshot load_lep_session(
    const std::string& path);

}  // namespace aspe::io
