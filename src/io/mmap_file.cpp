#include "io/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/obs.hpp"

namespace aspe::io {

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot open input file: " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("fstat failed for " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw IoError("mmap failed for " + path + ": " + std::strerror(err));
    }
    addr_ = addr;
  }
  ::close(fd);  // the established mapping keeps the pages alive
  obs::counter_add("io.mmap_bytes", static_cast<double>(size_));
}

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedCorpus::MappedCorpus(const std::string& path) : file_(path) {
  if (file_.size() < v2::kHeaderBytes) {
    throw IoError("io::v2: file shorter than the 64-byte header");
  }
  header_ = v2::decode_header(file_.data(), file_.size());
  sections_ =
      v2::decode_section_table(file_.data() + header_.table_offset, header_);
  v2::validate_sections(header_, sections_);
}

linalg::ConstMatrixView MappedCorpus::section_view(std::size_t i) const {
  if (header_.dtype != v2::DType::F64) {
    throw IoError("io::v2: section_view wants an f64 container");
  }
  const auto& s = sections_.at(i);
  return {reinterpret_cast<const double*>(file_.data() + s.offset),
          static_cast<std::size_t>(s.rows), static_cast<std::size_t>(s.cols),
          static_cast<std::size_t>(s.cols)};
}

linalg::ConstMatrixView MappedCorpus::matrix() const {
  if (header_.kind != v2::ContentKind::Matrix &&
      header_.kind != v2::ContentKind::ScoreMatrix) {
    throw IoError("io::v2: container does not hold a matrix");
  }
  return section_view(0);
}

linalg::ConstMatrixView MappedCorpus::a_half() const {
  if (header_.kind != v2::ContentKind::CipherDatabase) {
    throw IoError("io::v2: container does not hold a cipher database");
  }
  return section_view(0);
}

linalg::ConstMatrixView MappedCorpus::b_half() const {
  if (header_.kind != v2::ContentKind::CipherDatabase) {
    throw IoError("io::v2: container does not hold a cipher database");
  }
  return section_view(1);
}

std::vector<Vec> MappedCorpus::to_vecs() const {
  if (header_.kind != v2::ContentKind::VecList) {
    throw IoError("io::v2: container does not hold a vector list");
  }
  std::vector<Vec> out;
  out.reserve(record_count());
  if (sections_.size() == 1 && !sections_.empty()) {
    const auto view = section_view(0);
    for (std::size_t r = 0; r < view.rows(); ++r) {
      out.emplace_back(view.row_ptr(r), view.row_ptr(r) + view.cols());
    }
    return out;
  }
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const auto view = section_view(i);
    out.emplace_back(view.row_ptr(0), view.row_ptr(0) + view.cols());
  }
  return out;
}

std::vector<BitVec> MappedCorpus::to_bitvecs() const {
  if (header_.kind != v2::ContentKind::BitVecList) {
    throw IoError("io::v2: container does not hold a bit-vector list");
  }
  std::vector<BitVec> out;
  out.reserve(record_count());
  for (std::size_t i = 0; i < record_count(); ++i) {
    const auto& s = sections_.size() == 1 ? sections_[0] : sections_[i];
    const std::size_t row = sections_.size() == 1 ? i : 0;
    const unsigned char* ptr = file_.data() + s.offset + row * s.cols;
    out.emplace_back(ptr, ptr + s.cols);
  }
  return out;
}

std::vector<scheme::CipherPair> MappedCorpus::to_cipher_database() const {
  const auto a = a_half();
  const auto b = b_half();
  std::vector<scheme::CipherPair> db(record_count());
  for (std::size_t i = 0; i < db.size(); ++i) {
    db[i].a.assign(a.row_ptr(i), a.row_ptr(i) + a.cols());
    db[i].b.assign(b.row_ptr(i), b.row_ptr(i) + b.cols());
  }
  return db;
}

}  // namespace aspe::io
