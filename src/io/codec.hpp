// Format-agnostic corpus serialization: the CorpusReader / CorpusWriter
// codec interface, its Text and Binary implementations, and the
// `open_reader` / `open_writer` factories.
//
// One pair of abstract classes replaces the per-type free functions that
// io/serialization.hpp once exported (its record grammar now lives in
// io::detail): a CorpusReader iterates records with `read_next()` regardless
// of on-disk encoding, a CorpusWriter accepts the same record vocabulary,
// and the factories pick the codec from a Format selector — `Format::Auto` sniffs the io::v2 magic
// bytes, so every CLI command reads either encoding transparently.
//
//   auto in  = io::open_reader(path);                  // sniffs text vs v2
//   auto db  = in->read_cipher_database();
//   auto out = io::open_writer(path2, io::Format::Binary);
//   out->write_cipher_database(db);
//   out->finish();
//
// The binary codec materializes records through the same validated header
// path as io::MappedCorpus (mmap_file.hpp) — use MappedCorpus when you want
// zero-copy views instead of owned objects.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/format.hpp"
#include "linalg/matrix.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::io {

/// Discriminator for the record vocabulary both codecs share.
enum class RecordKind : std::uint8_t { Vec, BitVec, Matrix, CipherPair };

/// One corpus record. Only the member selected by `kind` is meaningful.
struct Record {
  RecordKind kind = RecordKind::Vec;
  Vec vec;
  BitVec bits;
  linalg::Matrix matrix;
  scheme::CipherPair cipher;
};

/// Streaming read side of a codec. `read_next()` yields records in file
/// order and std::nullopt at end of corpus; malformed input throws IoError
/// at the offending record, never yielding a partially-filled object.
class CorpusReader {
 public:
  virtual ~CorpusReader() = default;

  [[nodiscard]] virtual std::optional<Record> read_next() = 0;

  /// Re-probe the underlying source for records appended since the reader
  /// was opened (an incremental attack session tailing a growing corpus).
  /// Returns true when further read_next() calls will yield new records.
  /// The text reader clears a sticky EOF and peeks for fresh bytes; the
  /// path-opened binary reader re-opens and re-validates the container
  /// (which must still hold the same content kind — IoError otherwise) and
  /// keeps its record cursor. The default — and the stream-opened binary
  /// reader, whose stream was consumed on open — reports no new data.
  [[nodiscard]] virtual bool refresh() { return false; }

  // Whole-corpus conveniences over read_next(). Each enforces the expected
  // record kinds (IoError otherwise) and accounts the wall time spent
  // parsing to the "io.parse_seconds" obs counter.

  /// All remaining records as real vectors.
  [[nodiscard]] std::vector<Vec> read_vecs();
  /// All remaining records as binary vectors.
  [[nodiscard]] std::vector<BitVec> read_bitvecs();
  /// All remaining records as ciphertext pairs (text framing
  /// `encrypted_db n` is consumed transparently).
  [[nodiscard]] std::vector<scheme::CipherPair> read_cipher_database();
  /// Exactly one matrix record.
  [[nodiscard]] linalg::Matrix read_matrix();
};

/// Write side of a codec. Records may be streamed one at a time; `finish()`
/// completes the container (the binary codec writes its header, section
/// table and payload there) and must be called before the output is usable.
/// Destruction without finish() is allowed but the file contents are then
/// unspecified (e.g. an error path abandoning a partial write).
class CorpusWriter {
 public:
  virtual ~CorpusWriter() = default;

  virtual void write_vec(const Vec& v) = 0;
  virtual void write_bitvec(const BitVec& v) = 0;
  virtual void write_matrix(const linalg::Matrix& m) = 0;
  /// A whole encrypted database (framed in the text encoding, stacked-half
  /// sections in the binary one — which is why the count comes up front).
  virtual void write_cipher_database(
      const std::vector<scheme::CipherPair>& db) = 0;
  virtual void write_record(const Record& r);
  virtual void finish() = 0;
};

/// The line-based text codec (the original io/ format, unchanged on disk).
struct TextCodec {
  [[nodiscard]] static std::unique_ptr<CorpusReader> reader(std::istream& is);
  [[nodiscard]] static std::unique_ptr<CorpusReader> reader(
      const std::string& path);
  [[nodiscard]] static std::unique_ptr<CorpusWriter> writer(std::ostream& os);
  [[nodiscard]] static std::unique_ptr<CorpusWriter> writer(
      const std::string& path);
};

/// The io::v2 binary container codec (format.hpp). The writer buffers
/// sections and emits header + table + 64-byte-aligned payloads at
/// finish(); the reader validates the complete header and section table
/// before materializing any record.
struct BinaryCodec {
  [[nodiscard]] static std::unique_ptr<CorpusReader> reader(std::istream& is);
  [[nodiscard]] static std::unique_ptr<CorpusReader> reader(
      const std::string& path);
  [[nodiscard]] static std::unique_ptr<CorpusWriter> writer(std::ostream& os);
  [[nodiscard]] static std::unique_ptr<CorpusWriter> writer(
      const std::string& path);
};

/// Open `path` for reading. Format::Auto (the default) sniffs the v2 magic
/// bytes and falls back to text. Throws IoError when the file cannot be
/// opened or the requested format does not match the content.
[[nodiscard]] std::unique_ptr<CorpusReader> open_reader(
    const std::string& path, Format format = Format::Auto);

/// Stream variant (the stream must be seekable for Format::Auto / Binary).
[[nodiscard]] std::unique_ptr<CorpusReader> open_reader(
    std::istream& is, Format format = Format::Auto);

/// Open `path` for writing in an explicit format (Auto is invalid here —
/// a writer cannot guess an encoding).
[[nodiscard]] std::unique_ptr<CorpusWriter> open_writer(
    const std::string& path, Format format);

[[nodiscard]] std::unique_ptr<CorpusWriter> open_writer(std::ostream& os,
                                                        Format format);

/// Parse a `--format` flag value: "text" / "bin" / "binary" (and "auto" when
/// `allow_auto`). Throws InvalidArgument otherwise.
[[nodiscard]] Format parse_format(const std::string& name,
                                  bool allow_auto = false);

/// True when the stream positioned at `is`'s current offset starts with the
/// io::v2 magic; the stream position is restored.
[[nodiscard]] bool sniff_binary(std::istream& is);

}  // namespace aspe::io
