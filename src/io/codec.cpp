#include "io/codec.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/stopwatch.hpp"
#include "io/serialization.hpp"
#include "obs/obs.hpp"

namespace aspe::io {

// ------------------------------------------------------------- v2 envelope

namespace v2 {

namespace {

template <class T>
void put(unsigned char* buf, std::size_t offset, T value) {
  std::memcpy(buf + offset, &value, sizeof(T));
}

template <class T>
[[nodiscard]] T get(const unsigned char* buf, std::size_t offset) {
  T value;
  std::memcpy(&value, buf + offset, sizeof(T));
  return value;
}

}  // namespace

void encode_header(unsigned char* buf, const Header& h) {
  std::memset(buf, 0, kHeaderBytes);
  std::memcpy(buf, kMagic, sizeof(kMagic));
  put<std::uint32_t>(buf, 8, h.version);
  put<std::uint32_t>(buf, 12, kEndianTag);
  put<std::uint32_t>(buf, 16, static_cast<std::uint32_t>(h.kind));
  put<std::uint32_t>(buf, 20, static_cast<std::uint32_t>(h.dtype));
  put<std::uint64_t>(buf, 24, h.section_count);
  put<std::uint64_t>(buf, 32, h.table_offset);
  put<std::uint64_t>(buf, 40, h.file_bytes);
  put<std::uint64_t>(buf, 48, h.record_count);
}

void encode_section(unsigned char* buf, const SectionEntry& s) {
  put<std::uint64_t>(buf, 0, s.offset);
  put<std::uint64_t>(buf, 8, s.bytes);
  put<std::uint64_t>(buf, 16, s.rows);
  put<std::uint64_t>(buf, 24, s.cols);
}

Header decode_header(const unsigned char* buf, std::size_t actual_bytes) {
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0) {
    throw IoError("io::v2: bad magic (not a binary corpus file)");
  }
  Header h;
  h.version = get<std::uint32_t>(buf, 8);
  if (h.version != kVersion) {
    throw IoError("io::v2: unsupported format version " +
                  std::to_string(h.version));
  }
  const auto endian = get<std::uint32_t>(buf, 12);
  if (endian != kEndianTag) {
    throw IoError(
        "io::v2: endianness tag mismatch (file written on a foreign-endian "
        "host)");
  }
  const auto kind = get<std::uint32_t>(buf, 16);
  if (kind < 1 || kind > 5) {
    throw IoError("io::v2: unknown content kind " + std::to_string(kind));
  }
  h.kind = static_cast<ContentKind>(kind);
  const auto dtype = get<std::uint32_t>(buf, 20);
  if (dtype < 1 || dtype > 2) {
    throw IoError("io::v2: unknown dtype " + std::to_string(dtype));
  }
  h.dtype = static_cast<DType>(dtype);
  h.section_count = get<std::uint64_t>(buf, 24);
  h.table_offset = get<std::uint64_t>(buf, 32);
  h.file_bytes = get<std::uint64_t>(buf, 40);
  h.record_count = get<std::uint64_t>(buf, 48);
  if (get<std::uint64_t>(buf, 56) != 0) {
    throw IoError("io::v2: reserved header bytes not zero");
  }
  if (h.table_offset != kHeaderBytes) {
    throw IoError("io::v2: section table must follow the header");
  }
  if (actual_bytes != 0 && h.file_bytes != actual_bytes) {
    throw IoError("io::v2: truncated file (header claims " +
                  std::to_string(h.file_bytes) + " bytes, file holds " +
                  std::to_string(actual_bytes) + ")");
  }
  // Bounded section count: the table itself must fit inside the file.
  const std::size_t table_bytes = checked_mul(
      static_cast<std::size_t>(h.section_count), kSectionEntryBytes,
      "io::v2 section table");
  if (checked_add(h.table_offset, table_bytes, "io::v2 section table") >
      h.file_bytes) {
    throw IoError("io::v2: section table exceeds file size");
  }
  return h;
}

std::vector<SectionEntry> decode_section_table(const unsigned char* table,
                                               const Header& h) {
  std::vector<SectionEntry> sections(h.section_count);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const unsigned char* e = table + i * kSectionEntryBytes;
    sections[i] = {get<std::uint64_t>(e, 0), get<std::uint64_t>(e, 8),
                   get<std::uint64_t>(e, 16), get<std::uint64_t>(e, 24)};
  }
  return sections;
}

void validate_sections(const Header& h,
                       const std::vector<SectionEntry>& sections) {
  const std::size_t elem = dtype_bytes(h.dtype);
  for (const auto& s : sections) {
    if (s.offset % kPayloadAlign != 0) {
      throw IoError("io::v2: payload section not 64-byte aligned");
    }
    const std::size_t expect = checked_mul(
        checked_mul(s.rows, s.cols, "io::v2 section shape"), elem,
        "io::v2 section bytes");
    if (s.bytes != expect) {
      throw IoError("io::v2: section byte size disagrees with its shape");
    }
    if (checked_add(s.offset, s.bytes, "io::v2 section extent") >
        h.file_bytes) {
      throw IoError("io::v2: payload section exceeds file size");
    }
  }
  switch (h.kind) {
    case ContentKind::Matrix:
    case ContentKind::ScoreMatrix:
      if (sections.size() != 1 || h.dtype != DType::F64) {
        throw IoError("io::v2: matrix container wants one f64 section");
      }
      break;
    case ContentKind::CipherDatabase:
      if (sections.size() != 2 || h.dtype != DType::F64) {
        throw IoError(
            "io::v2: cipher database wants two f64 sections (a/b halves)");
      }
      if (sections[0].rows != h.record_count ||
          sections[1].rows != h.record_count) {
        throw IoError(
            "io::v2: cipher half row counts disagree with the record count");
      }
      break;
    case ContentKind::VecList:
    case ContentKind::BitVecList: {
      const DType want =
          h.kind == ContentKind::VecList ? DType::F64 : DType::U8;
      if (h.dtype != want) {
        throw IoError("io::v2: vector list dtype mismatch");
      }
      if (sections.size() == 1 && h.record_count == sections[0].rows) {
        break;  // uniform: one record per row
      }
      if (sections.size() != h.record_count) {
        throw IoError(
            "io::v2: ragged vector list wants one section per record");
      }
      for (const auto& s : sections) {
        if (s.rows != 1) {
          throw IoError("io::v2: ragged vector sections must be single rows");
        }
      }
      break;
    }
  }
}

}  // namespace v2

// ------------------------------------------------------------- base class

std::vector<Vec> CorpusReader::read_vecs() {
  Stopwatch watch;
  std::vector<Vec> out;
  while (auto r = read_next()) {
    if (r->kind != RecordKind::Vec) {
      throw IoError("corpus: expected vec records");
    }
    out.push_back(std::move(r->vec));
  }
  obs::counter_add("io.parse_seconds", watch.seconds());
  return out;
}

std::vector<BitVec> CorpusReader::read_bitvecs() {
  Stopwatch watch;
  std::vector<BitVec> out;
  while (auto r = read_next()) {
    if (r->kind != RecordKind::BitVec) {
      throw IoError("corpus: expected bits records");
    }
    out.push_back(std::move(r->bits));
  }
  obs::counter_add("io.parse_seconds", watch.seconds());
  return out;
}

std::vector<scheme::CipherPair> CorpusReader::read_cipher_database() {
  Stopwatch watch;
  std::vector<scheme::CipherPair> out;
  while (auto r = read_next()) {
    if (r->kind != RecordKind::CipherPair) {
      throw IoError("corpus: expected cipher records");
    }
    out.push_back(std::move(r->cipher));
  }
  obs::counter_add("io.parse_seconds", watch.seconds());
  return out;
}

linalg::Matrix CorpusReader::read_matrix() {
  Stopwatch watch;
  auto r = read_next();
  if (!r || r->kind != RecordKind::Matrix) {
    throw IoError("corpus: expected a matrix record");
  }
  obs::counter_add("io.parse_seconds", watch.seconds());
  return std::move(r->matrix);
}

void CorpusWriter::write_record(const Record& r) {
  switch (r.kind) {
    case RecordKind::Vec: write_vec(r.vec); break;
    case RecordKind::BitVec: write_bitvec(r.bits); break;
    case RecordKind::Matrix: write_matrix(r.matrix); break;
    case RecordKind::CipherPair: write_cipher_database({r.cipher}); break;
  }
}

// -------------------------------------------------------------- text codec

namespace {

class TextReader final : public CorpusReader {
 public:
  explicit TextReader(std::istream& is) : is_(&is) {}
  explicit TextReader(const std::string& path)
      : file_(std::make_unique<std::ifstream>(path)), is_(file_.get()) {
    if (!*file_) throw IoError("cannot open input file: " + path);
  }

  std::optional<Record> read_next() override {
    std::istream& is = *is_;
    while (true) {
      if (pending_pairs_ > 0) {
        --pending_pairs_;
        Record r;
        r.kind = RecordKind::CipherPair;
        r.cipher = detail::read_cipher_pair(is);
        return r;
      }
      is >> std::ws;
      if (is.peek() == std::char_traits<char>::eof()) return std::nullopt;
      std::string tag;
      is >> tag;
      Record r;
      if (tag == "vec") {
        r.kind = RecordKind::Vec;
        r.vec = detail::read_vec_body(is);
      } else if (tag == "bits") {
        r.kind = RecordKind::BitVec;
        r.bits = detail::read_bitvec_body(is);
      } else if (tag == "matrix") {
        r.kind = RecordKind::Matrix;
        r.matrix = detail::read_matrix_body(is);
      } else if (tag == "cipher") {
        r.kind = RecordKind::CipherPair;
        r.cipher = detail::read_cipher_pair_body(is);
      } else if (tag == "encrypted_db") {
        long long n = 0;
        if (!(is >> n) || n < 0) {
          throw IoError("malformed size for encrypted_db");
        }
        // The frame only announces the count; loop back for the records
        // themselves (an empty database frames zero of them).
        pending_pairs_ = static_cast<std::size_t>(n);
        continue;
      } else {
        throw IoError("unknown record tag '" + tag + "'");
      }
      return r;
    }
  }

  bool refresh() override {
    // A reader that drained the stream carries a sticky eof/fail state;
    // clear it and peek so records appended to the file since then parse.
    is_->clear();
    is_->peek();
    if (is_->eof()) {
      is_->clear();
      return false;
    }
    return is_->good();
  }

 private:
  std::unique_ptr<std::ifstream> file_;
  std::istream* is_;
  std::size_t pending_pairs_ = 0;
};

class TextWriter final : public CorpusWriter {
 public:
  explicit TextWriter(std::ostream& os) : os_(&os) {}
  explicit TextWriter(const std::string& path)
      : file_(std::make_unique<std::ofstream>(path)), os_(file_.get()) {
    if (!*file_) throw IoError("cannot open output file: " + path);
  }

  void write_vec(const Vec& v) override { detail::write_vec(*os_, v); }
  void write_bitvec(const BitVec& v) override {
    detail::write_bitvec(*os_, v);
  }
  void write_matrix(const linalg::Matrix& m) override {
    detail::write_matrix(*os_, m);
  }
  void write_cipher_database(
      const std::vector<scheme::CipherPair>& db) override {
    detail::write_encrypted_database(*os_, db);
  }
  void finish() override {
    os_->flush();
    if (!*os_) throw IoError("text corpus write failed");
  }

 private:
  std::unique_ptr<std::ofstream> file_;
  std::ostream* os_;
};

// ------------------------------------------------------------ binary codec

/// Buffer the record stream, lay the container out at finish(): header,
/// section table, then 64-byte-aligned payload sections in order.
class BinaryWriter final : public CorpusWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(&os) {}
  explicit BinaryWriter(const std::string& path)
      : file_(std::make_unique<std::ofstream>(path, std::ios::binary)),
        os_(file_.get()) {
    if (!*file_) throw IoError("cannot open output file: " + path);
  }

  void write_vec(const Vec& v) override {
    set_kind(v2::ContentKind::VecList);
    vecs_.push_back(v);
  }
  void write_bitvec(const BitVec& v) override {
    set_kind(v2::ContentKind::BitVecList);
    bits_.push_back(v);
  }
  void write_matrix(const linalg::Matrix& m) override {
    set_kind(v2::ContentKind::Matrix);
    if (matrix_.has_value()) {
      throw IoError("binary corpus: only one matrix record per container");
    }
    matrix_ = m;
  }
  void write_cipher_database(
      const std::vector<scheme::CipherPair>& db) override {
    set_kind(v2::ContentKind::CipherDatabase);
    db_.insert(db_.end(), db.begin(), db.end());
  }

  void finish() override {
    if (finished_) return;
    finished_ = true;
    switch (kind_.value_or(v2::ContentKind::VecList)) {
      case v2::ContentKind::VecList: finish_vec_list(); break;
      case v2::ContentKind::BitVecList: finish_bitvec_list(); break;
      case v2::ContentKind::Matrix:
      case v2::ContentKind::ScoreMatrix: finish_matrix(); break;
      case v2::ContentKind::CipherDatabase: finish_cipher_db(); break;
    }
    os_->flush();
    if (!*os_) throw IoError("binary corpus write failed");
  }

 private:
  void set_kind(v2::ContentKind kind) {
    if (finished_) throw IoError("binary corpus: write after finish()");
    if (!kind_.has_value()) kind_ = kind;
    if (*kind_ != kind) {
      throw IoError("binary corpus: a container holds one record kind");
    }
  }

  struct PendingSection {
    const void* data;
    v2::SectionEntry entry;  // offset filled during layout
  };

  /// Assign aligned offsets, then emit header + table + padded payloads.
  void emit(v2::ContentKind kind, v2::DType dtype, std::uint64_t record_count,
            std::vector<PendingSection> sections) {
    const std::size_t table_bytes =
        checked_mul(sections.size(), v2::kSectionEntryBytes, "section table");
    std::size_t cursor = v2::align_up(
        checked_add(v2::kHeaderBytes, table_bytes, "binary layout"));
    for (auto& s : sections) {
      s.entry.offset = cursor;
      cursor = v2::align_up(
          checked_add(cursor, s.entry.bytes, "binary layout"));
    }
    // File ends right after the last payload byte (no trailing pad).
    std::size_t file_bytes = v2::kHeaderBytes + table_bytes;
    if (!sections.empty()) {
      const auto& last = sections.back().entry;
      file_bytes = static_cast<std::size_t>(last.offset + last.bytes);
    }

    v2::Header h;
    h.kind = kind;
    h.dtype = dtype;
    h.section_count = sections.size();
    h.file_bytes = file_bytes;
    h.record_count = record_count;
    unsigned char header_buf[v2::kHeaderBytes];
    v2::encode_header(header_buf, h);
    write_bytes(header_buf, v2::kHeaderBytes);
    for (const auto& s : sections) {
      unsigned char entry_buf[v2::kSectionEntryBytes];
      v2::encode_section(entry_buf, s.entry);
      write_bytes(entry_buf, v2::kSectionEntryBytes);
    }
    std::size_t written = v2::kHeaderBytes + table_bytes;
    for (const auto& s : sections) {
      pad_to(s.entry.offset, written);
      write_bytes(s.data, static_cast<std::size_t>(s.entry.bytes));
      written = static_cast<std::size_t>(s.entry.offset + s.entry.bytes);
    }
  }

  void finish_vec_list() {
    const bool uniform =
        std::all_of(vecs_.begin(), vecs_.end(), [&](const Vec& v) {
          return v.size() == vecs_.front().size();
        });
    if (!vecs_.empty() && uniform) {
      flat_.reserve(vecs_.size() * vecs_.front().size());
      for (const auto& v : vecs_) {
        flat_.insert(flat_.end(), v.begin(), v.end());
      }
      emit(v2::ContentKind::VecList, v2::DType::F64, vecs_.size(),
           {{flat_.data(),
             {0, flat_.size() * sizeof(double), vecs_.size(),
              vecs_.front().size()}}});
      return;
    }
    std::vector<PendingSection> sections;
    sections.reserve(vecs_.size());
    for (const auto& v : vecs_) {
      sections.push_back(
          {v.data(), {0, v.size() * sizeof(double), 1, v.size()}});
    }
    emit(v2::ContentKind::VecList, v2::DType::F64, vecs_.size(),
         std::move(sections));
  }

  void finish_bitvec_list() {
    const bool uniform =
        std::all_of(bits_.begin(), bits_.end(), [&](const BitVec& v) {
          return v.size() == bits_.front().size();
        });
    if (!bits_.empty() && uniform) {
      flat_u8_.reserve(bits_.size() * bits_.front().size());
      for (const auto& v : bits_) {
        flat_u8_.insert(flat_u8_.end(), v.begin(), v.end());
      }
      emit(v2::ContentKind::BitVecList, v2::DType::U8, bits_.size(),
           {{flat_u8_.data(),
             {0, flat_u8_.size(), bits_.size(), bits_.front().size()}}});
      return;
    }
    std::vector<PendingSection> sections;
    sections.reserve(bits_.size());
    for (const auto& v : bits_) {
      sections.push_back({v.data(), {0, v.size(), 1, v.size()}});
    }
    emit(v2::ContentKind::BitVecList, v2::DType::U8, bits_.size(),
         std::move(sections));
  }

  void finish_matrix() {
    const linalg::Matrix& m = *matrix_;
    emit(v2::ContentKind::Matrix, v2::DType::F64, 1,
         {{m.data().data(),
           {0, m.data().size() * sizeof(double), m.rows(), m.cols()}}});
  }

  void finish_cipher_db() {
    const std::size_t da = db_.empty() ? 0 : db_.front().a.size();
    const std::size_t db_dim = db_.empty() ? 0 : db_.front().b.size();
    flat_.reserve(db_.size() * (da + db_dim));
    for (const auto& c : db_) {
      if (c.a.size() != da || c.b.size() != db_dim) {
        throw IoError("binary corpus: ragged cipher pairs");
      }
      flat_.insert(flat_.end(), c.a.begin(), c.a.end());
    }
    const std::size_t a_elems = flat_.size();
    for (const auto& c : db_) {
      flat_.insert(flat_.end(), c.b.begin(), c.b.end());
    }
    emit(v2::ContentKind::CipherDatabase, v2::DType::F64, db_.size(),
         {{flat_.data(), {0, a_elems * sizeof(double), db_.size(), da}},
          {flat_.data() + a_elems,
           {0, (flat_.size() - a_elems) * sizeof(double), db_.size(),
            db_dim}}});
  }

  void write_bytes(const void* data, std::size_t n) {
    if (n == 0) return;  // empty sections may carry a null payload pointer
    os_->write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }

  void pad_to(std::uint64_t offset, std::size_t written) {
    static constexpr char kZeros[v2::kPayloadAlign] = {};
    while (written < offset) {
      const std::size_t chunk =
          std::min<std::size_t>(offset - written, sizeof(kZeros));
      write_bytes(kZeros, chunk);
      written += chunk;
    }
  }

  std::unique_ptr<std::ofstream> file_;
  std::ostream* os_;
  std::optional<v2::ContentKind> kind_;
  std::vector<Vec> vecs_;
  std::vector<BitVec> bits_;
  std::optional<linalg::Matrix> matrix_;
  std::vector<scheme::CipherPair> db_;
  Vec flat_;  // finish()-time flattened payload (outlives emit())
  std::vector<std::uint8_t> flat_u8_;
  bool finished_ = false;
};

/// Stream-based binary reader: loads the container into an owned buffer,
/// validates the envelope, then materializes records on demand. The
/// zero-copy alternative is io::MappedCorpus.
class BinaryReader final : public CorpusReader {
 public:
  explicit BinaryReader(std::istream& is) { load(is); }
  explicit BinaryReader(const std::string& path) : path_(path) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw IoError("cannot open input file: " + path);
    load(f);
  }

  bool refresh() override {
    // v2 containers are finished atomically (header last write wins), so a
    // grown corpus means a *rewritten* container: re-open, re-validate, and
    // keep the record cursor. Only a path-opened reader can do this.
    if (path_.empty()) return false;
    std::ifstream f(path_, std::ios::binary);
    if (!f) throw IoError("cannot open input file: " + path_);
    const v2::ContentKind kind = header_.kind;
    const std::size_t seen = header_.record_count;
    load(f);
    if (header_.kind != kind) {
      throw IoError("io::v2: refreshed container changed its content kind");
    }
    if (header_.record_count < seen) {
      throw IoError("io::v2: refreshed container lost records");
    }
    return next_ < header_.record_count;
  }

  std::optional<Record> read_next() override {
    if (next_ >= header_.record_count) return std::nullopt;
    const std::size_t i = next_++;
    Record r;
    switch (header_.kind) {
      case v2::ContentKind::Matrix:
      case v2::ContentKind::ScoreMatrix: {
        r.kind = RecordKind::Matrix;
        const auto& s = sections_[0];
        linalg::Matrix m(s.rows, s.cols);
        std::memcpy(m.data().data(), payload(s),
                    static_cast<std::size_t>(s.bytes));
        r.matrix = std::move(m);
        break;
      }
      case v2::ContentKind::VecList: {
        r.kind = RecordKind::Vec;
        const auto [ptr, len] = row_f64(i);
        r.vec.assign(ptr, ptr + len);
        break;
      }
      case v2::ContentKind::BitVecList: {
        r.kind = RecordKind::BitVec;
        const auto& s = sections_.size() == 1 ? sections_[0] : sections_[i];
        const std::size_t row = sections_.size() == 1 ? i : 0;
        const auto* ptr = payload(s) + row * s.cols;
        r.bits.assign(ptr, ptr + s.cols);
        break;
      }
      case v2::ContentKind::CipherDatabase: {
        r.kind = RecordKind::CipherPair;
        const auto* a = reinterpret_cast<const double*>(payload(sections_[0]));
        const auto* b = reinterpret_cast<const double*>(payload(sections_[1]));
        const std::size_t da = sections_[0].cols;
        const std::size_t db = sections_[1].cols;
        r.cipher.a.assign(a + i * da, a + (i + 1) * da);
        r.cipher.b.assign(b + i * db, b + (i + 1) * db);
        break;
      }
    }
    return r;
  }

 private:
  void load(std::istream& is) {
    buf_.assign(std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>());
    if (buf_.size() < v2::kHeaderBytes) {
      throw IoError("io::v2: file shorter than the 64-byte header");
    }
    const auto* bytes = reinterpret_cast<const unsigned char*>(buf_.data());
    header_ = v2::decode_header(bytes, buf_.size());
    sections_ = v2::decode_section_table(bytes + header_.table_offset,
                                         header_);
    v2::validate_sections(header_, sections_);
  }

  [[nodiscard]] const unsigned char* payload(
      const v2::SectionEntry& s) const {
    return reinterpret_cast<const unsigned char*>(buf_.data()) + s.offset;
  }

  /// Row `i` of a (uniform or ragged) f64 vector list.
  [[nodiscard]] std::pair<const double*, std::size_t> row_f64(
      std::size_t i) const {
    const auto& s = sections_.size() == 1 ? sections_[0] : sections_[i];
    const std::size_t row = sections_.size() == 1 ? i : 0;
    return {reinterpret_cast<const double*>(payload(s)) + row * s.cols,
            s.cols};
  }

  std::string path_;  // empty for stream-opened readers (no refresh)
  std::vector<char> buf_;
  v2::Header header_;
  std::vector<v2::SectionEntry> sections_;
  std::size_t next_ = 0;
};

}  // namespace

// --------------------------------------------------------------- factories

std::unique_ptr<CorpusReader> TextCodec::reader(std::istream& is) {
  return std::make_unique<TextReader>(is);
}
std::unique_ptr<CorpusReader> TextCodec::reader(const std::string& path) {
  return std::make_unique<TextReader>(path);
}
std::unique_ptr<CorpusWriter> TextCodec::writer(std::ostream& os) {
  return std::make_unique<TextWriter>(os);
}
std::unique_ptr<CorpusWriter> TextCodec::writer(const std::string& path) {
  return std::make_unique<TextWriter>(path);
}

std::unique_ptr<CorpusReader> BinaryCodec::reader(std::istream& is) {
  return std::make_unique<BinaryReader>(is);
}
std::unique_ptr<CorpusReader> BinaryCodec::reader(const std::string& path) {
  return std::make_unique<BinaryReader>(path);
}
std::unique_ptr<CorpusWriter> BinaryCodec::writer(std::ostream& os) {
  return std::make_unique<BinaryWriter>(os);
}
std::unique_ptr<CorpusWriter> BinaryCodec::writer(const std::string& path) {
  return std::make_unique<BinaryWriter>(path);
}

bool sniff_binary(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  char head[sizeof(v2::kMagic)] = {};
  is.read(head, sizeof(head));
  const bool complete = is.gcount() == sizeof(head);
  is.clear();
  is.seekg(pos);
  return complete && std::memcmp(head, v2::kMagic, sizeof(head)) == 0;
}

std::unique_ptr<CorpusReader> open_reader(std::istream& is, Format format) {
  if (format == Format::Auto) {
    format = sniff_binary(is) ? Format::Binary : Format::Text;
  }
  return format == Format::Binary ? BinaryCodec::reader(is)
                                  : TextCodec::reader(is);
}

std::unique_ptr<CorpusReader> open_reader(const std::string& path,
                                          Format format) {
  if (format == Format::Auto) {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) throw IoError("cannot open input file: " + path);
    format = sniff_binary(probe) ? Format::Binary : Format::Text;
  }
  return format == Format::Binary ? BinaryCodec::reader(path)
                                  : TextCodec::reader(path);
}

std::unique_ptr<CorpusWriter> open_writer(std::ostream& os, Format format) {
  require(format != Format::Auto,
          "open_writer: a writer needs an explicit format");
  return format == Format::Binary ? BinaryCodec::writer(os)
                                  : TextCodec::writer(os);
}

std::unique_ptr<CorpusWriter> open_writer(const std::string& path,
                                          Format format) {
  require(format != Format::Auto,
          "open_writer: a writer needs an explicit format");
  return format == Format::Binary ? BinaryCodec::writer(path)
                                  : TextCodec::writer(path);
}

Format parse_format(const std::string& name, bool allow_auto) {
  if (name == "text") return Format::Text;
  if (name == "bin" || name == "binary") return Format::Binary;
  if (allow_auto && name == "auto") return Format::Auto;
  throw InvalidArgument("--format expects 'text' or 'bin', got '" + name +
                        "'");
}

}  // namespace aspe::io
