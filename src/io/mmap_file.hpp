// Zero-copy access to io::v2 binary containers (io/format.hpp) via POSIX
// memory mapping.
//
// MmapFile is the RAII mapping of a whole file; MappedCorpus layers the v2
// envelope validation on top and exposes the payload sections as
// linalg::ConstMatrixView — no bytes are copied, so the packed-gemm kernels,
// TruncatedSvd and build_score_matrix operate directly on the mapped pages.
// Payload sections are 64-byte aligned on disk and mappings are
// page-aligned, so the views satisfy the kernels' alignment expectations.
//
//   io::MappedCorpus corpus("db.aspeio");        // validates the envelope
//   auto r = attack::build_score_matrix(corpus.a_half(), corpus.b_half(),
//                                       trap_a, trap_b, ctx);
//
// The `to_*` conveniences materialize owned copies when a caller needs
// objects rather than views (e.g. the deprecated free-function paths).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "io/format.hpp"
#include "linalg/matrix_view.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::io {

/// Read-only memory mapping of a whole file. Move-only; the mapping (and
/// therefore every view derived from it) lives until destruction. Each
/// successful map adds the file size to the "io.mmap_bytes" obs counter.
class MmapFile {
 public:
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  [[nodiscard]] const unsigned char* data() const {
    return static_cast<const unsigned char*>(addr_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

/// A validated v2 container mapped into memory. The constructor checks the
/// complete envelope (header, section table, alignment, bounds) before any
/// accessor can hand out a view; accessors additionally enforce the content
/// kind they serve, throwing IoError on mismatch.
class MappedCorpus {
 public:
  explicit MappedCorpus(const std::string& path);

  [[nodiscard]] const v2::Header& header() const { return header_; }
  [[nodiscard]] v2::ContentKind kind() const { return header_.kind; }
  [[nodiscard]] std::size_t record_count() const {
    return static_cast<std::size_t>(header_.record_count);
  }
  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }
  [[nodiscard]] const v2::SectionEntry& section(std::size_t i) const {
    return sections_.at(i);
  }

  /// Dense f64 section `i` as a zero-copy view over the mapped pages.
  [[nodiscard]] linalg::ConstMatrixView section_view(std::size_t i) const;

  /// The matrix payload (kind Matrix or ScoreMatrix).
  [[nodiscard]] linalg::ConstMatrixView matrix() const;

  /// Stacked ciphertext halves (kind CipherDatabase): all `a` shares as an
  /// n x da view and all `b` shares as an n x db view — exactly the operand
  /// shapes the score-matrix gemms consume.
  [[nodiscard]] linalg::ConstMatrixView a_half() const;
  [[nodiscard]] linalg::ConstMatrixView b_half() const;

  // Materializing conveniences (owned copies off the mapped pages).

  [[nodiscard]] std::vector<Vec> to_vecs() const;
  [[nodiscard]] std::vector<BitVec> to_bitvecs() const;
  [[nodiscard]] std::vector<scheme::CipherPair> to_cipher_database() const;

 private:
  MmapFile file_;
  v2::Header header_;
  std::vector<v2::SectionEntry> sections_;
};

}  // namespace aspe::io
