// The aspe::io::v2 on-disk container format — constants, header layout and
// overflow-safe size arithmetic shared by the binary codec (io/codec.hpp)
// and the zero-copy mapped reader (io/mmap_file.hpp).
//
// A v2 file is:
//
//   [ 64-byte header | 32-byte section entries ... | 64-byte-aligned payload
//     sections ... ]
//
// Header (little-through-native endianness; the endian tag detects foreign
// byte order), byte-level layout:
//
//   offset size  field
//   0      8    magic "ASPEIO2\0"
//   8      4    u32 format version (currently 2)
//   12     4    u32 endianness tag 0x01020304, written in native order
//   16     4    u32 content kind (ContentKind)
//   20     4    u32 element dtype (DType)
//   24     8    u64 section count
//   32     8    u64 section-table offset (== 64, immediately after header)
//   40     8    u64 total file size in bytes (truncation check)
//   48     8    u64 logical record count (#vectors, #pairs, or 1 for a matrix)
//   56     8    u64 reserved, must be 0
//
// Section entry (32 bytes): u64 payload offset (64-byte aligned), u64 payload
// byte size, u64 rows, u64 cols. Payload is a dense row-major array of
// rows x cols elements of the file's dtype; byte size must equal
// rows * cols * sizeof(element) exactly.
//
// Content layouts:
//   Matrix / ScoreMatrix : 1 f64 section, rows x cols.
//   VecList              : uniform dims -> 1 f64 section (record per row);
//                          ragged -> 1 section per vector (rows == 1).
//   BitVecList           : same shapes with dtype u8.
//   CipherDatabase       : 2 f64 sections — all `a` halves stacked row-wise,
//                          then all `b` halves — so a mapped file exposes the
//                          exact stacked-half matrices the score-matrix gemms
//                          consume, with no per-pair materialization.
//
// Every reader validates the complete header and section table (magic,
// version, endianness, dtype, alignment, in-bounds offsets, overflow-checked
// element counts) before touching any payload byte, so malformed input can
// never produce a partially-filled object or an attacker-sized allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace aspe::io {

/// Thrown on malformed input or stream failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Serialization format selector for the codec factories (io/codec.hpp).
/// `Auto` sniffs the v2 magic bytes on read and is invalid for writers.
enum class Format : std::uint8_t { Auto, Text, Binary };

namespace v2 {

/// "ASPEIO2\0" — the first eight bytes of every v2 container.
inline constexpr unsigned char kMagic[8] = {'A', 'S', 'P', 'E',
                                            'I', 'O', '2', '\0'};
inline constexpr std::uint32_t kVersion = 2;
/// Written in native byte order; a reader on a foreign-endian host sees the
/// byte-reversed value and rejects the file instead of loading garbage.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kSectionEntryBytes = 32;
/// Payload sections start on 64-byte boundaries (cache line / widest vector
/// register), so mapped `ConstMatrixView`s are aligned for the gemm kernels.
inline constexpr std::size_t kPayloadAlign = 64;

enum class ContentKind : std::uint32_t {
  VecList = 1,
  BitVecList = 2,
  Matrix = 3,
  CipherDatabase = 4,
  ScoreMatrix = 5,
};

enum class DType : std::uint32_t {
  F64 = 1,
  U8 = 2,
};

[[nodiscard]] inline std::size_t dtype_bytes(DType t) {
  return t == DType::F64 ? 8 : 1;
}

struct SectionEntry {
  std::uint64_t offset = 0;  // absolute file offset, kPayloadAlign-aligned
  std::uint64_t bytes = 0;   // payload size; == rows * cols * dtype size
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
};

struct Header {
  std::uint32_t version = kVersion;
  ContentKind kind = ContentKind::VecList;
  DType dtype = DType::F64;
  std::uint64_t section_count = 0;
  std::uint64_t table_offset = kHeaderBytes;
  std::uint64_t file_bytes = 0;
  std::uint64_t record_count = 0;
};

/// `x` rounded up to the next multiple of kPayloadAlign (overflow-checked).
[[nodiscard]] std::size_t align_up(std::size_t x);

// Envelope encode/decode shared by the binary codec and the mapped reader.

/// Serialize `h` into a kHeaderBytes buffer (native byte order).
void encode_header(unsigned char* buf, const Header& h);

/// Serialize one section entry into a kSectionEntryBytes buffer.
void encode_section(unsigned char* buf, const SectionEntry& s);

/// Parse + validate a kHeaderBytes block: magic, version, endianness tag,
/// kind/dtype ranges, table placement, and — when `actual_bytes` is nonzero —
/// the header's claimed file size against it. Throws IoError on any mismatch.
[[nodiscard]] Header decode_header(const unsigned char* buf,
                                   std::size_t actual_bytes);

/// Parse the section table (`table` points at the first entry).
[[nodiscard]] std::vector<SectionEntry> decode_section_table(
    const unsigned char* table, const Header& h);

/// Validate alignment, shape/byte-size agreement, in-bounds extents and
/// kind-specific section layout. Throws IoError.
void validate_sections(const Header& h,
                       const std::vector<SectionEntry>& sections);

}  // namespace v2

/// a * b with overflow detection — the guard every reader applies to
/// advertised dimension fields before sizing an allocation or an offset.
/// Throws IoError naming `what` on overflow.
[[nodiscard]] std::size_t checked_mul(std::size_t a, std::size_t b,
                                      const char* what);

/// a + b with overflow detection; throws IoError naming `what`.
[[nodiscard]] std::size_t checked_add(std::size_t a, std::size_t b,
                                      const char* what);

}  // namespace aspe::io
