// Plain-text serialization for the library's value types.
//
// A deployed SSE system persists its encrypted database and ships
// ciphertexts over the wire; this module provides a simple, versioned,
// locale-independent text format for vectors, matrices and ciphertext
// pairs, with strict parsing (malformed input throws aspe::IoError, never
// yields partially-filled objects).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::io {

/// Thrown on malformed input or stream failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

// Each writer emits a tagged, self-delimiting record; each reader validates
// the tag and the advertised sizes.

void write_vec(std::ostream& os, const Vec& v);
[[nodiscard]] Vec read_vec(std::istream& is);

void write_bitvec(std::ostream& os, const BitVec& v);
[[nodiscard]] BitVec read_bitvec(std::istream& is);

void write_matrix(std::ostream& os, const linalg::Matrix& m);
[[nodiscard]] linalg::Matrix read_matrix(std::istream& is);

void write_cipher_pair(std::ostream& os, const scheme::CipherPair& c);
[[nodiscard]] scheme::CipherPair read_cipher_pair(std::istream& is);

/// An encrypted database: ciphertext indexes in upload order.
void write_encrypted_database(std::ostream& os,
                              const std::vector<scheme::CipherPair>& db);
[[nodiscard]] std::vector<scheme::CipherPair> read_encrypted_database(
    std::istream& is);

/// Unframed record lists: consecutive records until end of stream (the CLI
/// file format for plaintext vectors / binary vectors).
void write_vec_list(std::ostream& os, const std::vector<Vec>& vs);
[[nodiscard]] std::vector<Vec> read_vec_list(std::istream& is);
void write_bitvec_list(std::ostream& os, const std::vector<BitVec>& vs);
[[nodiscard]] std::vector<BitVec> read_bitvec_list(std::istream& is);

}  // namespace aspe::io
