// Plain-text serialization for the library's value types — now the *text
// codec* behind the format-agnostic corpus API in io/codec.hpp.
//
// A deployed SSE system persists its encrypted database and ships
// ciphertexts over the wire; this module provides a simple, versioned,
// locale-independent text format for vectors, matrices and ciphertext
// pairs, with strict parsing (malformed input throws aspe::IoError, never
// yields partially-filled objects, and never sizes an allocation from an
// unvalidated header field).
//
// The free read_*/write_* functions below are the original public surface;
// they are now thin [[deprecated]] forwarders over the io::detail
// implementations that io::TextCodec shares. New code opens a
// CorpusReader/CorpusWriter via io::open_reader / io::open_writer (or
// io::TextCodec / io::BinaryCodec directly) — see docs/io.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/format.hpp"
#include "linalg/matrix.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::io {

namespace detail {

// Non-deprecated implementations — the text codec's record grammar. Each
// writer emits a tagged, self-delimiting record; each reader validates the
// tag and every advertised size before filling the result (allocation growth
// is capped, so a lying size field fails as IoError, not bad_alloc).

void write_vec(std::ostream& os, const Vec& v);
[[nodiscard]] Vec read_vec(std::istream& is);

void write_bitvec(std::ostream& os, const BitVec& v);
[[nodiscard]] BitVec read_bitvec(std::istream& is);

void write_matrix(std::ostream& os, const linalg::Matrix& m);
[[nodiscard]] linalg::Matrix read_matrix(std::istream& is);

void write_cipher_pair(std::ostream& os, const scheme::CipherPair& c);
[[nodiscard]] scheme::CipherPair read_cipher_pair(std::istream& is);

void write_encrypted_database(std::ostream& os,
                              const std::vector<scheme::CipherPair>& db);
[[nodiscard]] std::vector<scheme::CipherPair> read_encrypted_database(
    std::istream& is);

void write_vec_list(std::ostream& os, const std::vector<Vec>& vs);
[[nodiscard]] std::vector<Vec> read_vec_list(std::istream& is);
void write_bitvec_list(std::ostream& os, const std::vector<BitVec>& vs);
[[nodiscard]] std::vector<BitVec> read_bitvec_list(std::istream& is);

// Body parsers — the grammar after the record tag has already been consumed.
// The streaming text reader (io::TextCodec) dispatches on the tag token and
// hands the rest of the record to these.
[[nodiscard]] Vec read_vec_body(std::istream& is);
[[nodiscard]] BitVec read_bitvec_body(std::istream& is);
[[nodiscard]] linalg::Matrix read_matrix_body(std::istream& is);
[[nodiscard]] scheme::CipherPair read_cipher_pair_body(std::istream& is);

}  // namespace detail

// --------------------------------------------------------------------------
// Deprecated free-function surface (one release, mirroring the PR 4/5
// deprecate-then-migrate pattern). Each forwards to the detail:: text-codec
// implementation unchanged.

[[deprecated("open an io::CorpusWriter (io/codec.hpp) instead")]]
inline void write_vec(std::ostream& os, const Vec& v) {
  detail::write_vec(os, v);
}
[[deprecated("open an io::CorpusReader (io/codec.hpp) instead")]]
[[nodiscard]] inline Vec read_vec(std::istream& is) {
  return detail::read_vec(is);
}

[[deprecated("open an io::CorpusWriter (io/codec.hpp) instead")]]
inline void write_bitvec(std::ostream& os, const BitVec& v) {
  detail::write_bitvec(os, v);
}
[[deprecated("open an io::CorpusReader (io/codec.hpp) instead")]]
[[nodiscard]] inline BitVec read_bitvec(std::istream& is) {
  return detail::read_bitvec(is);
}

[[deprecated("open an io::CorpusWriter (io/codec.hpp) instead")]]
inline void write_matrix(std::ostream& os, const linalg::Matrix& m) {
  detail::write_matrix(os, m);
}
[[deprecated("open an io::CorpusReader (io/codec.hpp) instead")]]
[[nodiscard]] inline linalg::Matrix read_matrix(std::istream& is) {
  return detail::read_matrix(is);
}

[[deprecated("open an io::CorpusWriter (io/codec.hpp) instead")]]
inline void write_cipher_pair(std::ostream& os, const scheme::CipherPair& c) {
  detail::write_cipher_pair(os, c);
}
[[deprecated("open an io::CorpusReader (io/codec.hpp) instead")]]
[[nodiscard]] inline scheme::CipherPair read_cipher_pair(std::istream& is) {
  return detail::read_cipher_pair(is);
}

/// An encrypted database: ciphertext indexes in upload order.
[[deprecated("open an io::CorpusWriter (io/codec.hpp) instead")]]
inline void write_encrypted_database(
    std::ostream& os, const std::vector<scheme::CipherPair>& db) {
  detail::write_encrypted_database(os, db);
}
[[deprecated("open an io::CorpusReader (io/codec.hpp) instead")]]
[[nodiscard]] inline std::vector<scheme::CipherPair> read_encrypted_database(
    std::istream& is) {
  return detail::read_encrypted_database(is);
}

/// Unframed record lists: consecutive records until end of stream (the CLI
/// file format for plaintext vectors / binary vectors).
[[deprecated("open an io::CorpusWriter (io/codec.hpp) instead")]]
inline void write_vec_list(std::ostream& os, const std::vector<Vec>& vs) {
  detail::write_vec_list(os, vs);
}
[[deprecated("open an io::CorpusReader (io/codec.hpp) instead")]]
[[nodiscard]] inline std::vector<Vec> read_vec_list(std::istream& is) {
  return detail::read_vec_list(is);
}
[[deprecated("open an io::CorpusWriter (io/codec.hpp) instead")]]
inline void write_bitvec_list(std::ostream& os,
                              const std::vector<BitVec>& vs) {
  detail::write_bitvec_list(os, vs);
}
[[deprecated("open an io::CorpusReader (io/codec.hpp) instead")]]
[[nodiscard]] inline std::vector<BitVec> read_bitvec_list(std::istream& is) {
  return detail::read_bitvec_list(is);
}

}  // namespace aspe::io
