// Plain-text serialization for the library's value types — now the *text
// codec* behind the format-agnostic corpus API in io/codec.hpp.
//
// A deployed SSE system persists its encrypted database and ships
// ciphertexts over the wire; this module provides a simple, versioned,
// locale-independent text format for vectors, matrices and ciphertext
// pairs, with strict parsing (malformed input throws aspe::IoError, never
// yields partially-filled objects, and never sizes an allocation from an
// unvalidated header field).
//
// The io::detail functions are the text codec's record grammar, shared by
// io::TextCodec and the session snapshot format (io/session_io.hpp). The
// public surface is the format-agnostic corpus API: open a
// CorpusReader/CorpusWriter via io::open_reader / io::open_writer (or
// io::TextCodec / io::BinaryCodec directly) — see docs/io.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/format.hpp"
#include "linalg/matrix.hpp"
#include "scheme/split_encryptor.hpp"

namespace aspe::io {

namespace detail {

// Non-deprecated implementations — the text codec's record grammar. Each
// writer emits a tagged, self-delimiting record; each reader validates the
// tag and every advertised size before filling the result (allocation growth
// is capped, so a lying size field fails as IoError, not bad_alloc).

void write_vec(std::ostream& os, const Vec& v);
[[nodiscard]] Vec read_vec(std::istream& is);

void write_bitvec(std::ostream& os, const BitVec& v);
[[nodiscard]] BitVec read_bitvec(std::istream& is);

void write_matrix(std::ostream& os, const linalg::Matrix& m);
[[nodiscard]] linalg::Matrix read_matrix(std::istream& is);

void write_cipher_pair(std::ostream& os, const scheme::CipherPair& c);
[[nodiscard]] scheme::CipherPair read_cipher_pair(std::istream& is);

void write_encrypted_database(std::ostream& os,
                              const std::vector<scheme::CipherPair>& db);
[[nodiscard]] std::vector<scheme::CipherPair> read_encrypted_database(
    std::istream& is);

void write_vec_list(std::ostream& os, const std::vector<Vec>& vs);
[[nodiscard]] std::vector<Vec> read_vec_list(std::istream& is);
void write_bitvec_list(std::ostream& os, const std::vector<BitVec>& vs);
[[nodiscard]] std::vector<BitVec> read_bitvec_list(std::istream& is);

// Body parsers — the grammar after the record tag has already been consumed.
// The streaming text reader (io::TextCodec) dispatches on the tag token and
// hands the rest of the record to these.
[[nodiscard]] Vec read_vec_body(std::istream& is);
[[nodiscard]] BitVec read_bitvec_body(std::istream& is);
[[nodiscard]] linalg::Matrix read_matrix_body(std::istream& is);
[[nodiscard]] scheme::CipherPair read_cipher_pair_body(std::istream& is);

}  // namespace detail

}  // namespace aspe::io
