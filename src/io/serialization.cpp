#include "io/serialization.hpp"

#include <istream>
#include <limits>
#include <ostream>

namespace aspe::io {

namespace {

constexpr int kDoubleDigits = std::numeric_limits<double>::max_digits10;

void expect_tag(std::istream& is, const std::string& tag) {
  std::string got;
  if (!(is >> got)) throw IoError("unexpected end of input, wanted " + tag);
  if (got != tag) throw IoError("expected tag '" + tag + "', got '" + got + "'");
}

std::size_t read_size(std::istream& is, const char* what) {
  long long n = 0;
  if (!(is >> n) || n < 0) {
    throw IoError(std::string("malformed size for ") + what);
  }
  return static_cast<std::size_t>(n);
}

double read_double(std::istream& is, const char* what) {
  double x = 0.0;
  if (!(is >> x)) throw IoError(std::string("malformed value in ") + what);
  return x;
}

}  // namespace

void write_vec(std::ostream& os, const Vec& v) {
  os.precision(kDoubleDigits);
  os << "vec " << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

Vec read_vec(std::istream& is) {
  expect_tag(is, "vec");
  const std::size_t n = read_size(is, "vec");
  Vec v(n);
  for (auto& x : v) x = read_double(is, "vec");
  return v;
}

void write_bitvec(std::ostream& os, const BitVec& v) {
  os << "bits " << v.size() << ' ';
  for (auto b : v) os << (b != 0 ? '1' : '0');
  os << '\n';
}

BitVec read_bitvec(std::istream& is) {
  expect_tag(is, "bits");
  const std::size_t n = read_size(is, "bits");
  std::string payload;
  if (n > 0 && !(is >> payload)) throw IoError("truncated bit vector");
  if (n == 0) payload.clear();
  if (payload.size() != n) throw IoError("bit vector length mismatch");
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (payload[i] != '0' && payload[i] != '1') {
      throw IoError("bit vector contains non-binary character");
    }
    v[i] = payload[i] == '1' ? 1 : 0;
  }
  return v;
}

void write_matrix(std::ostream& os, const linalg::Matrix& m) {
  os.precision(kDoubleDigits);
  os << "matrix " << m.rows() << ' ' << m.cols();
  for (double x : m.data()) os << ' ' << x;
  os << '\n';
}

linalg::Matrix read_matrix(std::istream& is) {
  expect_tag(is, "matrix");
  const std::size_t rows = read_size(is, "matrix rows");
  const std::size_t cols = read_size(is, "matrix cols");
  linalg::Matrix m(rows, cols);
  for (auto& x : m.data()) x = read_double(is, "matrix");
  return m;
}

void write_cipher_pair(std::ostream& os, const scheme::CipherPair& c) {
  os << "cipher\n";
  write_vec(os, c.a);
  write_vec(os, c.b);
}

scheme::CipherPair read_cipher_pair(std::istream& is) {
  expect_tag(is, "cipher");
  scheme::CipherPair c;
  c.a = read_vec(is);
  c.b = read_vec(is);
  return c;
}

void write_encrypted_database(std::ostream& os,
                              const std::vector<scheme::CipherPair>& db) {
  os << "encrypted_db " << db.size() << '\n';
  for (const auto& c : db) write_cipher_pair(os, c);
}

std::vector<scheme::CipherPair> read_encrypted_database(std::istream& is) {
  expect_tag(is, "encrypted_db");
  const std::size_t n = read_size(is, "encrypted_db");
  std::vector<scheme::CipherPair> db;
  db.reserve(n);
  for (std::size_t i = 0; i < n; ++i) db.push_back(read_cipher_pair(is));
  return db;
}

void write_vec_list(std::ostream& os, const std::vector<Vec>& vs) {
  for (const auto& v : vs) write_vec(os, v);
}

std::vector<Vec> read_vec_list(std::istream& is) {
  std::vector<Vec> out;
  while (true) {
    is >> std::ws;
    if (is.peek() == std::char_traits<char>::eof()) break;
    out.push_back(read_vec(is));
  }
  return out;
}

void write_bitvec_list(std::ostream& os, const std::vector<BitVec>& vs) {
  for (const auto& v : vs) write_bitvec(os, v);
}

std::vector<BitVec> read_bitvec_list(std::istream& is) {
  std::vector<BitVec> out;
  while (true) {
    is >> std::ws;
    if (is.peek() == std::char_traits<char>::eof()) break;
    out.push_back(read_bitvec(is));
  }
  return out;
}

}  // namespace aspe::io
