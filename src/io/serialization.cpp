#include "io/serialization.hpp"

#include <istream>
#include <limits>
#include <ostream>

namespace aspe::io {

std::size_t checked_mul(std::size_t a, std::size_t b, const char* what) {
  if (a != 0 && b > std::numeric_limits<std::size_t>::max() / a) {
    throw IoError(std::string(what) + ": size overflows size_t");
  }
  return a * b;
}

std::size_t checked_add(std::size_t a, std::size_t b, const char* what) {
  if (a > std::numeric_limits<std::size_t>::max() - b) {
    throw IoError(std::string(what) + ": size overflows size_t");
  }
  return a + b;
}

namespace v2 {

std::size_t align_up(std::size_t x) {
  const std::size_t r = x % kPayloadAlign;
  return r == 0 ? x : checked_add(x, kPayloadAlign - r, "align_up");
}

}  // namespace v2

namespace detail {

namespace {

constexpr int kDoubleDigits = std::numeric_limits<double>::max_digits10;

// Eager-allocation cap: a reader never sizes a buffer beyond this from an
// advertised count alone — the stream must actually produce the elements
// before the container grows past it, so "vec 9999999999" fails as a clean
// IoError on the missing payload instead of an attacker-sized bad_alloc.
constexpr std::size_t kEagerReserveElements = std::size_t{1} << 16;

std::size_t capped_reserve(std::size_t advertised) {
  return std::min(advertised, kEagerReserveElements);
}

void expect_tag(std::istream& is, const std::string& tag) {
  std::string got;
  if (!(is >> got)) throw IoError("unexpected end of input, wanted " + tag);
  if (got != tag) throw IoError("expected tag '" + tag + "', got '" + got + "'");
}

std::size_t read_size(std::istream& is, const char* what) {
  long long n = 0;
  if (!(is >> n) || n < 0) {
    throw IoError(std::string("malformed size for ") + what);
  }
  return static_cast<std::size_t>(n);
}

double read_double(std::istream& is, const char* what) {
  double x = 0.0;
  if (!(is >> x)) throw IoError(std::string("malformed value in ") + what);
  return x;
}

/// `count` whitespace-separated doubles, validated element by element so the
/// buffer only ever grows as far as the stream actually delivers.
Vec read_doubles(std::istream& is, std::size_t count, const char* what) {
  Vec buf;
  buf.reserve(capped_reserve(count));
  for (std::size_t i = 0; i < count; ++i) {
    buf.push_back(read_double(is, what));
  }
  return buf;
}

}  // namespace

void write_vec(std::ostream& os, const Vec& v) {
  os.precision(kDoubleDigits);
  os << "vec " << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

Vec read_vec_body(std::istream& is) {
  const std::size_t n = read_size(is, "vec");
  return read_doubles(is, n, "vec");
}

Vec read_vec(std::istream& is) {
  expect_tag(is, "vec");
  return read_vec_body(is);
}

void write_bitvec(std::ostream& os, const BitVec& v) {
  os << "bits " << v.size() << ' ';
  for (auto b : v) os << (b != 0 ? '1' : '0');
  os << '\n';
}

BitVec read_bitvec_body(std::istream& is) {
  const std::size_t n = read_size(is, "bits");
  std::string payload;
  if (n > 0 && !(is >> payload)) throw IoError("truncated bit vector");
  if (n == 0) payload.clear();
  // The payload token is bounded by the stream's real content, so comparing
  // before allocating keeps a lying size field from sizing anything.
  if (payload.size() != n) throw IoError("bit vector length mismatch");
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (payload[i] != '0' && payload[i] != '1') {
      throw IoError("bit vector contains non-binary character");
    }
    v[i] = payload[i] == '1' ? 1 : 0;
  }
  return v;
}

BitVec read_bitvec(std::istream& is) {
  expect_tag(is, "bits");
  return read_bitvec_body(is);
}

void write_matrix(std::ostream& os, const linalg::Matrix& m) {
  os.precision(kDoubleDigits);
  os << "matrix " << m.rows() << ' ' << m.cols();
  for (double x : m.data()) os << ' ' << x;
  os << '\n';
}

linalg::Matrix read_matrix_body(std::istream& is) {
  const std::size_t rows = read_size(is, "matrix rows");
  const std::size_t cols = read_size(is, "matrix cols");
  const std::size_t elems = checked_mul(rows, cols, "matrix dimensions");
  // Parse every element before sizing the matrix: the full allocation only
  // happens once the stream has proven it holds rows * cols doubles.
  Vec buf = read_doubles(is, elems, "matrix");
  linalg::Matrix m(rows, cols);
  std::copy(buf.begin(), buf.end(), m.data().begin());
  return m;
}

linalg::Matrix read_matrix(std::istream& is) {
  expect_tag(is, "matrix");
  return read_matrix_body(is);
}

void write_cipher_pair(std::ostream& os, const scheme::CipherPair& c) {
  os << "cipher\n";
  write_vec(os, c.a);
  write_vec(os, c.b);
}

scheme::CipherPair read_cipher_pair_body(std::istream& is) {
  scheme::CipherPair c;
  c.a = read_vec(is);
  c.b = read_vec(is);
  return c;
}

scheme::CipherPair read_cipher_pair(std::istream& is) {
  expect_tag(is, "cipher");
  return read_cipher_pair_body(is);
}

void write_encrypted_database(std::ostream& os,
                              const std::vector<scheme::CipherPair>& db) {
  os << "encrypted_db " << db.size() << '\n';
  for (const auto& c : db) write_cipher_pair(os, c);
}

std::vector<scheme::CipherPair> read_encrypted_database(std::istream& is) {
  expect_tag(is, "encrypted_db");
  const std::size_t n = read_size(is, "encrypted_db");
  std::vector<scheme::CipherPair> db;
  db.reserve(capped_reserve(n));
  for (std::size_t i = 0; i < n; ++i) db.push_back(read_cipher_pair(is));
  return db;
}

void write_vec_list(std::ostream& os, const std::vector<Vec>& vs) {
  for (const auto& v : vs) write_vec(os, v);
}

std::vector<Vec> read_vec_list(std::istream& is) {
  std::vector<Vec> out;
  while (true) {
    is >> std::ws;
    if (is.peek() == std::char_traits<char>::eof()) break;
    out.push_back(read_vec(is));
  }
  return out;
}

void write_bitvec_list(std::ostream& os, const std::vector<BitVec>& vs) {
  for (const auto& v : vs) write_bitvec(os, v);
}

std::vector<BitVec> read_bitvec_list(std::istream& is) {
  std::vector<BitVec> out;
  while (true) {
    is >> std::ws;
    if (is.peek() == std::char_traits<char>::eof()) break;
    out.push_back(read_bitvec(is));
  }
  return out;
}

}  // namespace detail
}  // namespace aspe::io
