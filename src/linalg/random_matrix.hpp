// Random matrix generation for scheme key material.
#pragma once

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace aspe::linalg {

/// n x n matrix with iid uniform entries in [lo, hi).
[[nodiscard]] Matrix random_matrix(std::size_t n, rng::Rng& rng,
                                   double lo = -1.0, double hi = 1.0);

/// Random invertible n x n matrix with a bounded condition heuristic: entries
/// iid uniform, resampled until |det| is comfortably away from zero. This is
/// the secret-key generator for ASPE's M, M1, M2.
[[nodiscard]] Matrix random_invertible(std::size_t n, rng::Rng& rng);

/// Random invertible matrix together with its inverse (one LU factorization).
struct InvertiblePair {
  Matrix m;
  Matrix m_inv;
};
[[nodiscard]] InvertiblePair random_invertible_pair(std::size_t n,
                                                    rng::Rng& rng);

}  // namespace aspe::linalg
