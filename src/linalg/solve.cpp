#include "linalg/solve.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"

namespace aspe::linalg {

Vec solve(const Matrix& a, const Vec& b) { return LuDecomposition(a).solve(b); }

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

std::size_t rank(Matrix a, double rel_tol) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double tol = rel_tol * std::max(a.max_abs(), 1.0);
  std::size_t rank = 0;
  std::size_t row = 0;
  for (std::size_t col = 0; col < n && row < m; ++col) {
    std::size_t pivot = row;
    double best = std::abs(a(row, col));
    for (std::size_t r = row + 1; r < m; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= tol) continue;
    if (pivot != row) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(row, c), a(pivot, c));
    }
    const double inv = 1.0 / a(row, col);
    for (std::size_t r = row + 1; r < m; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(row, c);
    }
    ++row;
    ++rank;
  }
  return rank;
}

Vec solve_least_squares(const Matrix& a, const Vec& b, double ridge) {
  require(a.rows() == b.size(), "solve_least_squares: dimension mismatch");
  const std::size_t n = a.cols();
  // Normal equations: (A^T A + ridge I) x = A^T b.
  Matrix ata(n, n, 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row_ptr(r);
    for (std::size_t i = 0; i < n; ++i) {
      const double ari = ar[i];
      if (ari == 0.0) continue;
      double* row = ata.row_ptr(i);
      for (std::size_t j = i; j < n; ++j) row[j] += ari * ar[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    ata(i, i) += ridge;
    for (std::size_t j = 0; j < i; ++j) ata(i, j) = ata(j, i);
  }
  const Vec atb = a.apply_transposed(b);
  return Cholesky(ata).solve(atb);
}

IndependenceTracker::IndependenceTracker(std::size_t dim, double tol)
    : dim_(dim), tol_(tol) {
  require(dim > 0, "IndependenceTracker: dimension must be positive");
}

bool IndependenceTracker::try_add(const Vec& v) {
  require(v.size() == dim_, "IndependenceTracker: dimension mismatch");
  if (complete()) return false;
  // Reduce v against the current echelon basis.
  Vec r = v;
  const double scale = std::max(max_abs(v), 1.0);
  for (std::size_t i = 0; i < basis_.size(); ++i) {
    const std::size_t p = pivot_cols_[i];
    if (r[p] == 0.0) continue;
    const double f = r[p] / basis_[i][p];
    axpy(-f, basis_[i], r);
    r[p] = 0.0;  // cancel exactly to avoid drift
  }
  // Find the largest remaining entry as the new pivot.
  std::size_t pivot = 0;
  double best = 0.0;
  for (std::size_t c = 0; c < dim_; ++c) {
    const double x = std::abs(r[c]);
    if (x > best) {
      best = x;
      pivot = c;
    }
  }
  if (best <= tol_ * scale) return false;  // dependent on accepted vectors
  basis_.push_back(std::move(r));
  pivot_cols_.push_back(pivot);
  ++count_;
  return true;
}

}  // namespace aspe::linalg
