#include "linalg/vector_ops.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aspe::linalg {

double dot(const Vec& a, const Vec& b) {
  require(a.size() == b.size(), "dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vec& v) { return std::sqrt(norm_squared(v)); }

double norm_squared(const Vec& v) {
  double s = 0.0;
  for (auto x : v) s += x * x;
  return s;
}

double norm1(const Vec& v) {
  double s = 0.0;
  for (auto x : v) s += std::abs(x);
  return s;
}

double max_abs(const Vec& v) {
  double m = 0.0;
  for (auto x : v) m = std::max(m, std::abs(x));
  return m;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  require(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vec add(const Vec& a, const Vec& b) {
  require(a.size() == b.size(), "add: length mismatch");
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

Vec sub(const Vec& a, const Vec& b) {
  require(a.size() == b.size(), "sub: length mismatch");
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

Vec scale(double alpha, const Vec& v) {
  Vec c(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) c[i] = alpha * v[i];
  return c;
}

Vec concat(const Vec& a, const Vec& b) {
  Vec c;
  c.reserve(a.size() + b.size());
  c.insert(c.end(), a.begin(), a.end());
  c.insert(c.end(), b.begin(), b.end());
  return c;
}

bool approx_equal(const Vec& a, const Vec& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace aspe::linalg
