// Non-owning strided views over dense double storage.
//
// A view is a pointer plus shape plus stride — no allocation, no copy.
// `MatrixView` / `ConstMatrixView` describe a row-major block whose rows are
// `row_stride()` apart (>= cols(), so sub-blocks of a larger matrix are
// views too). `VecView` / `ConstVecView` describe a strided 1-D range, which
// is how a matrix column (stride = row_stride) or row (stride = 1) is passed
// to a kernel without materializing it.
//
// Lifetime: a view never outlives the storage it points into. Views taken
// from a `Matrix` are invalidated by anything that reallocates the matrix
// (assignment, move-from, resize via `operator=`). The kernel layer
// (`linalg/kernels.hpp`) requires that output views do not alias input views;
// inputs may freely alias each other (e.g. gemm(A, A^T)).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace aspe::linalg {

/// Transposition flag for the kernel layer: op(A) = A or A^T. Transposition
/// is interpretation, never a materialized copy.
enum class Op : std::uint8_t { None, Transpose };

/// Read-only strided range of doubles.
class ConstVecView {
 public:
  ConstVecView() = default;
  ConstVecView(const double* data, std::size_t size, std::size_t stride = 1)
      : data_(data), size_(size), stride_(stride) {}
  // NOLINTNEXTLINE(google-explicit-constructor): a Vec is naturally a view.
  ConstVecView(const Vec& v) : data_(v.data()), size_(v.size()), stride_(1) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] bool contiguous() const { return stride_ == 1; }
  [[nodiscard]] const double* data() const { return data_; }

  double operator[](std::size_t i) const { return data_[i * stride_]; }

  /// View of elements [offset, offset + count).
  [[nodiscard]] ConstVecView subvec(std::size_t offset,
                                    std::size_t count) const {
    require(offset + count <= size_, "ConstVecView::subvec: out of range");
    return {data_ + offset * stride_, count, stride_};
  }

  /// Materialize into an owning Vec (tests / slow paths only).
  [[nodiscard]] Vec to_vec() const {
    Vec v(size_);
    for (std::size_t i = 0; i < size_; ++i) v[i] = (*this)[i];
    return v;
  }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t stride_ = 1;
};

/// Mutable strided range of doubles.
class VecView {
 public:
  VecView() = default;
  VecView(double* data, std::size_t size, std::size_t stride = 1)
      : data_(data), size_(size), stride_(stride) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  VecView(Vec& v) : data_(v.data()), size_(v.size()), stride_(1) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] bool contiguous() const { return stride_ == 1; }
  [[nodiscard]] double* data() const { return data_; }

  double& operator[](std::size_t i) const { return data_[i * stride_]; }

  [[nodiscard]] VecView subvec(std::size_t offset, std::size_t count) const {
    require(offset + count <= size_, "VecView::subvec: out of range");
    return {data_ + offset * stride_, count, stride_};
  }

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator ConstVecView() const { return {data_, size_, stride_}; }

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t stride_ = 1;
};

/// Read-only row-major matrix block: element (r, c) lives at
/// data[r * row_stride + c], row_stride >= cols.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t row_stride)
      : data_(data), rows_(rows), cols_(cols), stride_(row_stride) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t row_stride() const { return stride_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * stride_ + c];
  }
  [[nodiscard]] const double* row_ptr(std::size_t r) const {
    return data_ + r * stride_;
  }

  [[nodiscard]] ConstVecView row(std::size_t r) const {
    require(r < rows_, "ConstMatrixView::row: index out of range");
    return {row_ptr(r), cols_, 1};
  }
  [[nodiscard]] ConstVecView col(std::size_t c) const {
    require(c < cols_, "ConstMatrixView::col: index out of range");
    return {data_ + c, rows_, stride_};
  }

  /// Sub-block [r0, r0+nr) x [c0, c0+nc).
  [[nodiscard]] ConstMatrixView block(std::size_t r0, std::size_t c0,
                                      std::size_t nr, std::size_t nc) const {
    require(r0 + nr <= rows_ && c0 + nc <= cols_,
            "ConstMatrixView::block: out of range");
    return {data_ + r0 * stride_ + c0, nr, nc, stride_};
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Mutable row-major matrix block.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, std::size_t rows, std::size_t cols,
             std::size_t row_stride)
      : data_(data), rows_(rows), cols_(cols), stride_(row_stride) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t row_stride() const { return stride_; }
  [[nodiscard]] double* data() const { return data_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) const {
    return data_[r * stride_ + c];
  }
  [[nodiscard]] double* row_ptr(std::size_t r) const {
    return data_ + r * stride_;
  }

  [[nodiscard]] VecView row(std::size_t r) const {
    require(r < rows_, "MatrixView::row: index out of range");
    return {row_ptr(r), cols_, 1};
  }
  [[nodiscard]] VecView col(std::size_t c) const {
    require(c < cols_, "MatrixView::col: index out of range");
    return {data_ + c, rows_, stride_};
  }

  [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0,
                                 std::size_t nr, std::size_t nc) const {
    require(r0 + nr <= rows_ && c0 + nc <= cols_,
            "MatrixView::block: out of range");
    return {data_ + r0 * stride_ + c0, nr, nc, stride_};
  }

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator ConstMatrixView() const { return {data_, rows_, cols_, stride_}; }

 private:
  double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Logical row count of op(A).
inline std::size_t op_rows(const ConstMatrixView& a, Op op) {
  return op == Op::None ? a.rows() : a.cols();
}
/// Logical column count of op(A).
inline std::size_t op_cols(const ConstMatrixView& a, Op op) {
  return op == Op::None ? a.cols() : a.rows();
}
/// Element (r, c) of op(A).
inline double op_at(const ConstMatrixView& a, Op op, std::size_t r,
                    std::size_t c) {
  return op == Op::None ? a(r, c) : a(c, r);
}

}  // namespace aspe::linalg
