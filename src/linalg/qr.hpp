// Householder QR decomposition.
//
// Used for numerically robust least squares (the normal-equation path in
// solve.hpp squares the condition number; QR does not), for rank checks on
// tall matrices, and as the orthonormalization step of the randomized
// truncated SVD (truncated_svd.hpp). A = Q R with Q orthonormal (m x n,
// thin) and R upper triangular (n x n).
//
// The factorization is blocked: each panel of `QrOptions::block` columns is
// factored with the classic per-column Householder loop, then the trailing
// columns are updated at once through the compact-WY representation
// Q_panel = I - V T V^T — two gemm calls through the shared kernel layer
// instead of one rank-1 update per column. A matrix with cols <= block runs
// the unblocked arithmetic unchanged (bit-for-bit the pre-blocked result).
#pragma once

#include "linalg/matrix.hpp"

namespace aspe::linalg {

struct QrOptions {
  /// Panel width of the blocked factorization. Trailing-column updates go
  /// through gemm once per panel; within a panel the update is per-column.
  std::size_t block = 32;
  /// Thread budget for the trailing-update gemms (0 = process default).
  /// The result is bit-identical at any width (gemm's contract).
  std::size_t threads = 0;
};

class QrDecomposition {
 public:
  /// Factor an m x n matrix with m >= n.
  explicit QrDecomposition(Matrix a, const QrOptions& options = {});

  /// Least-squares solution of min ||A x - b||_2.
  /// Throws NumericalError when A is (numerically) rank deficient.
  [[nodiscard]] Vec solve(const Vec& b) const;

  /// The triangular factor R (n x n).
  [[nodiscard]] Matrix r() const;

  /// The thin orthonormal factor Q (m x n), formed explicitly by applying
  /// the Householder panels to the identity in reverse order. Needed when Q
  /// is reused as a dense operand (randomized range finder); prefer
  /// apply_qt when only Q^T b is wanted.
  [[nodiscard]] Matrix thin_q() const;

  /// Apply Q^T to a length-m vector.
  [[nodiscard]] Vec apply_qt(const Vec& b) const;

  /// Numerical rank from |R_ii| relative to the largest diagonal.
  [[nodiscard]] std::size_t rank(double rel_tol = 1e-10) const;

  [[nodiscard]] std::size_t rows() const { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const { return qr_.cols(); }

 private:
  void factor();
  /// Materialize the compact-WY pair (V, T) of the panel starting at column
  /// k0: V is (m - k0) x kb unit lower-trapezoidal, T is kb x kb upper
  /// triangular with Q_panel = I - V T V^T.
  void build_panel(std::size_t k0, std::size_t kb, Matrix& v, Matrix& t) const;

  Matrix qr_;  // Householder vectors below the diagonal, R on and above
  Vec tau_;    // Householder coefficients
  QrOptions options_;
};

/// Least squares via QR (preferred over solve_least_squares for
/// ill-conditioned systems).
[[nodiscard]] Vec solve_least_squares_qr(const Matrix& a, const Vec& b);

}  // namespace aspe::linalg
