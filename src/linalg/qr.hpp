// Householder QR decomposition.
//
// Used for numerically robust least squares (the normal-equation path in
// solve.hpp squares the condition number; QR does not) and for rank checks
// on tall matrices. A = Q R with Q orthonormal (m x n, thin) and R upper
// triangular (n x n).
#pragma once

#include "linalg/matrix.hpp"

namespace aspe::linalg {

class QrDecomposition {
 public:
  /// Factor an m x n matrix with m >= n.
  explicit QrDecomposition(Matrix a);

  /// Least-squares solution of min ||A x - b||_2.
  /// Throws NumericalError when A is (numerically) rank deficient.
  [[nodiscard]] Vec solve(const Vec& b) const;

  /// The triangular factor R (n x n).
  [[nodiscard]] Matrix r() const;

  /// Apply Q^T to a length-m vector.
  [[nodiscard]] Vec apply_qt(const Vec& b) const;

  /// Numerical rank from |R_ii| relative to the largest diagonal.
  [[nodiscard]] std::size_t rank(double rel_tol = 1e-10) const;

  [[nodiscard]] std::size_t rows() const { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const { return qr_.cols(); }

 private:
  Matrix qr_;  // Householder vectors below the diagonal, R on and above
  Vec tau_;    // Householder coefficients
};

/// Least squares via QR (preferred over solve_least_squares for
/// ill-conditioned systems).
[[nodiscard]] Vec solve_least_squares_qr(const Matrix& a, const Vec& b);

}  // namespace aspe::linalg
