#include "linalg/random_matrix.hpp"

#include <cmath>

#include "linalg/lu.hpp"

namespace aspe::linalg {

Matrix random_matrix(std::size_t n, rng::Rng& rng, double lo, double hi) {
  require(n > 0, "random_matrix: dimension must be positive");
  Matrix m(n, n);
  for (auto& x : m.data()) x = rng.uniform(lo, hi);
  return m;
}

Matrix random_invertible(std::size_t n, rng::Rng& rng) {
  return random_invertible_pair(n, rng).m;
}

InvertiblePair random_invertible_pair(std::size_t n, rng::Rng& rng) {
  // A random continuous matrix is invertible with probability 1; the loop
  // guards against numerically borderline draws.
  for (int attempt = 0; attempt < 64; ++attempt) {
    Matrix m = random_matrix(n, rng);
    LuDecomposition lu(m);
    // Reject draws with tiny pivots relative to the matrix scale; keeps the
    // inverse well conditioned so ciphertext arithmetic stays accurate.
    if (lu.is_singular() || lu.pivot_ratio() < 1e-9) continue;
    return {std::move(m), lu.inverse()};
  }
  throw NumericalError(
      "random_invertible_pair: failed to draw an invertible matrix");
}

}  // namespace aspe::linalg
