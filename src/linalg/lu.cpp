#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

namespace aspe::linalg {

namespace {
constexpr double kPivotTolerance = 1e-12;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  require(lu_.rows() == lu_.cols(), "LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  const double scale = std::max(lu_.max_abs(), 1.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest remaining entry in column k.
    std::size_t pivot_row = k;
    double pivot_val = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > pivot_val) {
        pivot_val = v;
        pivot_row = r;
      }
    }
    if (pivot_val <= kPivotTolerance * scale) {
      singular_ = true;
      continue;  // keep factoring remaining columns for rank queries
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      sign_ = -sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      const double* uk = lu_.row_ptr(k);
      double* ur = lu_.row_ptr(r);
      for (std::size_t c = k + 1; c < n; ++c) ur[c] -= factor * uk[c];
    }
  }
}

Vec LuDecomposition::solve(const Vec& b) const {
  const std::size_t n = dim();
  require(b.size() == n, "LuDecomposition::solve: dimension mismatch");
  if (singular_) {
    throw NumericalError("LuDecomposition::solve: matrix is singular");
  }
  // Forward substitution on the permuted RHS (L has unit diagonal).
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    const double* li = lu_.row_ptr(i);
    for (std::size_t j = 0; j < i; ++j) s -= li[j] * y[j];
    y[i] = s;
  }
  // Back substitution on U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    const double* ui = lu_.row_ptr(ii);
    for (std::size_t j = ii + 1; j < n; ++j) s -= ui[j] * y[j];
    y[ii] = s / ui[ii];
  }
  return y;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  require(b.rows() == dim(), "LuDecomposition::solve: dimension mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) x.set_col(c, solve(b.col(c)));
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(dim()));
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = sign_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

double LuDecomposition::pivot_ratio() const {
  if (singular_ || dim() == 0) return 0.0;
  double lo = std::abs(lu_(0, 0));
  double hi = lo;
  for (std::size_t i = 1; i < dim(); ++i) {
    const double p = std::abs(lu_(i, i));
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return hi == 0.0 ? 0.0 : lo / hi;
}

}  // namespace aspe::linalg
