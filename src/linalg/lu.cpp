#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

#include "linalg/kernels.hpp"

namespace aspe::linalg {

namespace {
constexpr double kPivotTolerance = 1e-12;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  require(lu_.rows() == lu_.cols(), "LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  const double scale = std::max(lu_.max_abs(), 1.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest remaining entry in column k.
    std::size_t pivot_row = k;
    double pivot_val = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > pivot_val) {
        pivot_val = v;
        pivot_row = r;
      }
    }
    if (pivot_val <= kPivotTolerance * scale) {
      singular_ = true;
      continue;  // keep factoring remaining columns for rank queries
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      sign_ = -sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    // Rank-1 trailing update, row by row: U_r[k+1:] -= factor * U_k[k+1:].
    const ConstVecView pivot_tail =
        lu_.row_view(k).subvec(k + 1, n - k - 1);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      axpy(-factor, pivot_tail, lu_.row_view(r).subvec(k + 1, n - k - 1));
    }
  }
}

Vec LuDecomposition::solve(const Vec& b) const {
  const std::size_t n = dim();
  require(b.size() == n, "LuDecomposition::solve: dimension mismatch");
  Vec y(n);
  solve_into(ConstVecView(b), VecView(y));
  return y;
}

void LuDecomposition::solve_into(ConstVecView b, VecView x) const {
  const std::size_t n = dim();
  require(b.size() == n && x.size() == n,
          "LuDecomposition::solve_into: dimension mismatch");
  if (singular_) {
    throw NumericalError("LuDecomposition::solve: matrix is singular");
  }
  // Forward substitution on the permuted RHS (L has unit diagonal).
  Vec y(n);
  const ConstVecView yv(y);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = b[perm_[i]] - dot(lu_.row_view(i).subvec(0, i), yv.subvec(0, i));
  }
  // Back substitution on U.
  for (std::size_t ii = n; ii-- > 0;) {
    const double s =
        y[ii] - dot(lu_.row_view(ii).subvec(ii + 1, n - ii - 1),
                    yv.subvec(ii + 1, n - ii - 1));
    y[ii] = s / lu_(ii, ii);
  }
  for (std::size_t i = 0; i < n; ++i) x[i] = y[i];
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  require(b.rows() == dim(), "LuDecomposition::solve: dimension mismatch");
  // Column views on both sides: no per-column copies in or out.
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    solve_into(b.col_view(c), x.col_view(c));
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(dim()));
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = sign_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

double LuDecomposition::pivot_ratio() const {
  if (singular_ || dim() == 0) return 0.0;
  double lo = std::abs(lu_(0, 0));
  double hi = lo;
  for (std::size_t i = 1; i < dim(); ++i) {
    const double p = std::abs(lu_(i, i));
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return hi == 0.0 ? 0.0 : lo / hi;
}

}  // namespace aspe::linalg
