#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "linalg/kernels.hpp"
#include "par/parallel.hpp"

namespace aspe::linalg {

namespace {

// Scans smaller than this are not worth the pool dispatch.
constexpr std::size_t kParallelFlopThreshold = std::size_t{1} << 18;

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    require(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

Vec Matrix::row(std::size_t r) const {
  require(r < rows_, "Matrix::row: index out of range");
  return Vec(row_ptr(r), row_ptr(r) + cols_);
}

Vec Matrix::col(std::size_t c) const {
  require(c < cols_, "Matrix::col: index out of range");
  Vec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vec& v) {
  require(r < rows_ && v.size() == cols_, "Matrix::set_row: bad row");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const Vec& v) {
  require(c < cols_ && v.size() == rows_, "Matrix::set_col: bad column");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

void Matrix::conservative_resize(std::size_t new_rows, std::size_t new_cols,
                                 double fill) {
  if (new_rows == rows_ && new_cols == cols_) return;
  if (new_cols == cols_) {
    data_.resize(new_rows * new_cols, fill);
    rows_ = new_rows;
    return;
  }
  Vec grown(new_rows * new_cols, fill);
  const std::size_t copy_rows = std::min(rows_, new_rows);
  const std::size_t copy_cols = std::min(cols_, new_cols);
  for (std::size_t r = 0; r < copy_rows; ++r) {
    std::copy_n(row_ptr(r), copy_cols, grown.data() + r * new_cols);
  }
  data_ = std::move(grown);
  rows_ = new_rows;
  cols_ = new_cols;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  transpose_copy(cview(), t.view());
  return t;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  require(rows_ == o.rows_ && cols_ == o.cols_, "Matrix::+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  require(rows_ == o.rows_ && cols_ == o.cols_, "Matrix::-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "Matrix::*: inner dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  gemm(1.0, a.cview(), Op::None, b.cview(), Op::None, 0.0, c.view());
  return c;
}

Vec Matrix::apply(const Vec& x) const {
  require(x.size() == cols_, "Matrix::apply: dimension mismatch");
  Vec y(rows_, 0.0);
  gemv(1.0, cview(), Op::None, ConstVecView(x), 0.0, VecView(y));
  return y;
}

Vec Matrix::apply_transposed(const Vec& x) const {
  require(x.size() == rows_, "Matrix::apply_transposed: dimension mismatch");
  Vec y(cols_, 0.0);
  gemv(1.0, cview(), Op::Transpose, ConstVecView(x), 0.0, VecView(y));
  return y;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_columns(const std::vector<Vec>& cols) {
  require(!cols.empty(), "Matrix::from_columns: no columns");
  const std::size_t n = cols[0].size();
  Matrix m(n, cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    require(cols[c].size() == n, "Matrix::from_columns: ragged columns");
    m.set_col(c, cols[c]);
  }
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vec>& rows) {
  require(!rows.empty(), "Matrix::from_rows: no rows");
  const std::size_t n = rows[0].size();
  Matrix m(rows.size(), n);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    require(rows[r].size() == n, "Matrix::from_rows: ragged rows");
    m.set_row(r, rows[r]);
  }
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (auto x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  // max is exact under any grouping, so the parallel reduction is
  // bit-identical to the serial scan regardless of chunking.
  if (data_.size() >= kParallelFlopThreshold) {
    return par::parallel_reduce(
        std::size_t{0}, data_.size(), std::size_t{1} << 16, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double m = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            m = std::max(m, std::abs(data_[i]));
          }
          return m;
        },
        [](double a, double b) { return std::max(a, b); });
  }
  double m = 0.0;
  for (auto x : data_) m = std::max(m, std::abs(x));
  return m;
}

bool Matrix::approx_equal(const Matrix& o, double tol) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - o.data_[i]) > tol) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[\n";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << "  ";
    for (std::size_t c = 0; c < m.cols(); ++c) os << m(r, c) << ' ';
    os << '\n';
  }
  return os << ']';
}

}  // namespace aspe::linalg
