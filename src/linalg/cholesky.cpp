#include "linalg/cholesky.hpp"

#include <cmath>

namespace aspe::linalg {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols(), 0.0) {
  require(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* lj = l_.row_ptr(j);
    for (std::size_t k = 0; k < j; ++k) diag -= lj[k] * lj[k];
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      throw NumericalError("Cholesky: matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = l_.row_ptr(i);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l_(i, j) = s / ljj;
    }
  }
}

Vec Cholesky::solve(const Vec& b) const {
  const std::size_t n = dim();
  require(b.size() == n, "Cholesky::solve: dimension mismatch");
  // L y = b
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l_.row_ptr(i);
    for (std::size_t j = 0; j < i; ++j) s -= li[j] * y[j];
    y[i] = s / li[i];
  }
  // L^T x = y
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * y[j];
    y[ii] = s / l_(ii, ii);
  }
  return y;
}

}  // namespace aspe::linalg
