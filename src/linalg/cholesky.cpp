#include "linalg/cholesky.hpp"

#include <cmath>

#include "linalg/kernels.hpp"

namespace aspe::linalg {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols(), 0.0) {
  require(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    const ConstVecView lj = l_.row_view(j).subvec(0, j);
    const double diag = a(j, j) - dot(lj, lj);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      throw NumericalError("Cholesky: matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      const double s = a(i, j) - dot(l_.row_view(i).subvec(0, j), lj);
      l_(i, j) = s / ljj;
    }
  }
}

Vec Cholesky::solve(const Vec& b) const {
  const std::size_t n = dim();
  require(b.size() == n, "Cholesky::solve: dimension mismatch");
  // L y = b
  Vec y(n);
  const ConstVecView yv(y);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = b[i] - dot(l_.row_view(i).subvec(0, i), yv.subvec(0, i));
    y[i] = s / l_(i, i);
  }
  // L^T x = y (columns of L read through strided views)
  for (std::size_t ii = n; ii-- > 0;) {
    const std::size_t tail = n - ii - 1;
    const double s = y[ii] - dot(l_.col_view(ii).subvec(ii + 1, tail),
                                 yv.subvec(ii + 1, tail));
    y[ii] = s / l_(ii, ii);
  }
  return y;
}

}  // namespace aspe::linalg
