#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/kernels.hpp"

namespace aspe::linalg {

namespace {

/// The three Gram entries of a column pair in one fused pass (the Jacobi
/// convergence test needs all of app, aqq, apq; one traversal of the two
/// strided columns instead of three dot calls).
void gram_pair(ConstVecView up, ConstVecView uq, double& app, double& aqq,
               double& apq) {
  app = aqq = apq = 0.0;
  for (std::size_t i = 0; i < up.size(); ++i) {
    const double a = up[i];
    const double b = uq[i];
    app += a * a;
    aqq += b * b;
    apq += a * b;
  }
}

}  // namespace

Svd::Svd(Matrix a, const SvdOptions& options) : u_(std::move(a)) {
  factor(options);
}

Svd::Svd(ConstMatrixView a, Op op, const SvdOptions& options)
    : u_(op_rows(a, op), op_cols(a, op)) {
  if (op == Op::None) {
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const double* src = a.row_ptr(r);
      std::copy(src, src + a.cols(), u_.row_ptr(r));
    }
  } else {
    transpose_copy(a, u_.view());
  }
  factor(options);
}

void Svd::factor(const SvdOptions& options) {
  const std::size_t m = u_.rows();
  const std::size_t n = u_.cols();
  require(m >= n, "Svd: need rows >= cols");
  require(n > 0, "Svd: empty matrix");
  v_ = Matrix::identity(n);

  // One-sided Jacobi: rotate column pairs of U until all are orthogonal.
  // Columns are strided views; the rotation is the shared rot kernel.
  const double scale = std::max(u_.max_abs(), 1e-300);
  converged_ = false;
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        gram_pair(u_.col_view(p), u_.col_view(q), app, aqq, apq);
        if (std::abs(apq) <=
            options.tol * scale * scale + options.tol * std::sqrt(app * aqq)) {
          continue;
        }
        converged = false;
        // Jacobi rotation zeroing the (p, q) Gram entry.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        rot(u_.col_view(p), u_.col_view(q), c, s);
        rot(v_.col_view(p), v_.col_view(q), c, s);
      }
    }
    if (converged) {
      converged_ = true;
      break;
    }
  }

  // Singular values = column norms; normalize U.
  s_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const VecView col = u_.col_view(j);
    s_[j] = std::sqrt(dot(col, col));
    if (s_[j] > 0.0) scal(1.0 / s_[j], col);
  }

  // Sort descending (stable permutation applied to U, S, V).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a1, std::size_t b1) {
                     return s_[a1] > s_[b1];
                   });
  Matrix u_sorted(m, n), v_sorted(n, n);
  Vec s_sorted(n);
  for (std::size_t j = 0; j < n; ++j) {
    s_sorted[j] = s_[order[j]];
    for (std::size_t i = 0; i < m; ++i) u_sorted(i, j) = u_(i, order[j]);
    for (std::size_t i = 0; i < n; ++i) v_sorted(i, j) = v_(i, order[j]);
  }
  u_ = std::move(u_sorted);
  s_ = std::move(s_sorted);
  v_ = std::move(v_sorted);
}

std::size_t Svd::rank(double rel_tol) const {
  if (s_.empty() || s_[0] == 0.0) return 0;
  std::size_t r = 0;
  for (double sv : s_) r += sv > rel_tol * s_[0];
  return r;
}

double Svd::condition_number() const {
  if (s_.empty() || s_.back() == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return s_[0] / s_.back();
}

Matrix Svd::reconstruct(std::size_t rank_limit) const {
  const std::size_t m = u_.rows();
  const std::size_t n = u_.cols();
  const std::size_t k = rank_limit == 0 ? n : std::min(rank_limit, n);
  Matrix out(m, n, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t i = 0; i < m; ++i) {
      const double us = u_(i, r) * s_[r];
      if (us == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) out(i, j) += us * v_(j, r);
    }
  }
  return out;
}

}  // namespace aspe::linalg
