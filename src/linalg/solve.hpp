// High-level linear-system helpers built on the LU and Cholesky kernels.
#pragma once

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace aspe::linalg {

/// Solve A x = b for square A (throws NumericalError when singular).
[[nodiscard]] Vec solve(const Matrix& a, const Vec& b);

/// A^{-1} (throws NumericalError when singular).
[[nodiscard]] Matrix inverse(const Matrix& a);

/// Numerical rank via Gaussian elimination with partial pivoting.
/// `rel_tol` scales with the largest entry of the matrix.
[[nodiscard]] std::size_t rank(Matrix a, double rel_tol = 1e-9);

/// Least-squares solution of min ||A x - b||_2 via normal equations with a
/// small Tikhonov ridge for robustness (A must have full column rank or be
/// close to it). Suitable for the modest condition numbers that arise here.
[[nodiscard]] Vec solve_least_squares(const Matrix& a, const Vec& b,
                                      double ridge = 0.0);

/// Incremental linear-independence tracker. Used by the LEP attack to stop
/// collecting trapdoors as soon as d+1 linearly independent ones are found.
class IndependenceTracker {
 public:
  /// Track vectors of length `dim`.
  explicit IndependenceTracker(std::size_t dim, double tol = 1e-9);

  /// Try to add `v`. Returns true (and keeps it) when v is linearly
  /// independent of everything accepted so far; false otherwise.
  bool try_add(const Vec& v);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] bool complete() const { return count_ == dim_; }

 private:
  std::size_t dim_;
  double tol_;
  std::size_t count_ = 0;
  // Row-echelon basis of the accepted vectors; pivot_cols_[r] is the pivot
  // column of basis_ row r.
  std::vector<Vec> basis_;
  std::vector<std::size_t> pivot_cols_;
};

}  // namespace aspe::linalg
