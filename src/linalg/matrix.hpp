// Dense row-major matrix of doubles.
//
// This is the numerical base of the whole library: key matrices of the
// encryption schemes, the linear systems of the LEP attack, simplex tableaus
// and NMF factors are all `Matrix` values. Eigen is deliberately not used —
// the substrate is part of the reproduction.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>

#include "common/error.hpp"
#include "common/types.hpp"
#include "linalg/matrix_view.hpp"

namespace aspe::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Brace construction from rows: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws InvalidArgument when out of range).
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Raw storage, row-major.
  [[nodiscard]] const Vec& data() const { return data_; }
  Vec& data() { return data_; }

  /// Pointer to the start of row r.
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row_ptr(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] Vec row(std::size_t r) const;
  [[nodiscard]] Vec col(std::size_t c) const;
  void set_row(std::size_t r, const Vec& v);
  void set_col(std::size_t c, const Vec& v);

  // ---- Non-owning views (see linalg/matrix_view.hpp for lifetime rules).

  [[nodiscard]] MatrixView view() {
    return {data_.data(), rows_, cols_, cols_};
  }
  [[nodiscard]] ConstMatrixView view() const { return cview(); }
  [[nodiscard]] ConstMatrixView cview() const {
    return {data_.data(), rows_, cols_, cols_};
  }

  // NOLINTNEXTLINE(google-explicit-constructor): a Matrix is its own view.
  operator MatrixView() { return view(); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator ConstMatrixView() const { return cview(); }

  /// Sub-block [r0, r0+nr) x [c0, c0+nc) as a strided view.
  [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0,
                                 std::size_t nr, std::size_t nc) {
    return view().block(r0, c0, nr, nc);
  }
  [[nodiscard]] ConstMatrixView block(std::size_t r0, std::size_t c0,
                                      std::size_t nr, std::size_t nc) const {
    return cview().block(r0, c0, nr, nc);
  }

  /// Row r as a contiguous view (unlike row(), no copy).
  [[nodiscard]] VecView row_view(std::size_t r) { return view().row(r); }
  [[nodiscard]] ConstVecView row_view(std::size_t r) const {
    return cview().row(r);
  }

  /// Column c as a strided view (stride = cols()); unlike col(), no copy.
  [[nodiscard]] VecView col_view(std::size_t c) { return view().col(c); }
  [[nodiscard]] ConstVecView col_view(std::size_t c) const {
    return cview().col(c);
  }

  /// Grow (or shrink) in place to new_rows x new_cols, preserving the
  /// overlapping top-left block; fresh entries read `fill`. Row-only growth
  /// appends storage without moving existing data; column changes re-stride
  /// every surviving row once. Outstanding views are invalidated.
  void conservative_resize(std::size_t new_rows, std::size_t new_cols,
                           double fill = 0.0);

  [[nodiscard]] Matrix transpose() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product (throws on inner-dimension mismatch).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product A x.
  [[nodiscard]] Vec apply(const Vec& x) const;

  /// Transposed matrix-vector product A^T x (no explicit transpose formed).
  [[nodiscard]] Vec apply_transposed(const Vec& x) const;

  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Matrix whose columns are the given vectors (all the same length).
  [[nodiscard]] static Matrix from_columns(const std::vector<Vec>& cols);

  /// Matrix whose rows are the given vectors.
  [[nodiscard]] static Matrix from_rows(const std::vector<Vec>& rows);

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Largest |a_ij|.
  [[nodiscard]] double max_abs() const;

  /// Elementwise comparison within absolute tolerance.
  [[nodiscard]] bool approx_equal(const Matrix& o, double tol) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vec data_;
};

/// Human-readable print (tests/debugging; not a serialization format).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace aspe::linalg
