#include "linalg/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/obs.hpp"
#include "par/parallel.hpp"

namespace aspe::linalg {

namespace {

// Products smaller than this many scalar multiply-adds are not worth the
// pool dispatch; measured crossover is a few hundred thousand flops. The
// same bound gates the packed-GEMM path, so small fixtures keep the exact
// arithmetic order of the pre-view triple loop.
constexpr std::size_t kParallelFlopThreshold = std::size_t{1} << 18;

// Packed-GEMM blocking. The micro-kernel computes an MR x NR tile of C from
// panels packed k-major; MC/KC size the A block to L2 and the B panel rows
// to L1 reuse, NC caps the packed-B footprint. Fixed for a given problem
// size, so the block decomposition (and with it the floating-point
// accumulation order) never depends on the thread count.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;
constexpr std::size_t kMc = 96;
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 2048;

std::size_t row_grain(std::size_t rows, std::size_t flops_per_row) {
  const std::size_t grain =
      kParallelFlopThreshold / std::max<std::size_t>(flops_per_row, 1);
  return std::clamp<std::size_t>(grain, 1, std::max<std::size_t>(rows, 1));
}

void scale_output(double beta, MatrixView c) {
  for (std::size_t r = 0; r < c.rows(); ++r) {
    double* cr = c.row_ptr(r);
    if (beta == 0.0) {
      std::fill(cr, cr + c.cols(), 0.0);
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < c.cols(); ++j) cr[j] *= beta;
    }
  }
}

/// Plain i-k-j product for small shapes: identical inner order to the
/// historical Matrix::operator* (alpha = 1, Op::None) so small fixtures stay
/// bit-for-bit. Assumes C was already scaled by beta.
void gemm_naive(double alpha, ConstMatrixView a, Op opa, ConstMatrixView b,
                Op opb, MatrixView c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = op_cols(a, opa);
  if (opb == Op::None) {
    for (std::size_t i = 0; i < m; ++i) {
      double* ci = c.row_ptr(i);
      for (std::size_t p = 0; p < k; ++p) {
        const double av = alpha * op_at(a, opa, i, p);
        if (av == 0.0) continue;
        const double* bp = b.row_ptr(p);
        for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
    return;
  }
  // op(B) = B^T: rows of op(B) are columns of B, so the j loop runs over
  // contiguous rows of B and each (i, j) entry is a dot product.
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.row_ptr(j);
      double s = 0.0;
      if (opa == Op::None) {
        const double* ai = a.row_ptr(i);
        for (std::size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      } else {
        for (std::size_t p = 0; p < k; ++p) s += a(p, i) * bj[p];
      }
      ci[j] += alpha * s;
    }
  }
}

/// Pack rows [i0, i0+mb) x [k0, k0+kb) of op(A) into MR-tall k-major panels:
/// panel p holds logical rows i0 + p*MR .., element (r, k) at [k*MR + r].
/// Short panels are zero-padded so the micro-kernel runs fixed-trip loops.
void pack_a(ConstMatrixView a, Op opa, std::size_t i0, std::size_t mb,
            std::size_t k0, std::size_t kb, double* ap) {
  const std::size_t panels = (mb + kMr - 1) / kMr;
  for (std::size_t p = 0; p < panels; ++p) {
    double* dst = ap + p * kMr * kb;
    const std::size_t base = i0 + p * kMr;
    const std::size_t mr = std::min(kMr, i0 + mb - base);
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t r = 0; r < kMr; ++r) {
        dst[k * kMr + r] =
            r < mr ? op_at(a, opa, base + r, k0 + k) : 0.0;
      }
    }
  }
}

/// Pack rows [k0, k0+kb) x cols [j0, j0+nb) of op(B) into NR-wide k-major
/// panels: panel q holds logical cols j0 + q*NR .., element (k, j) at
/// [k*NR + j], zero-padded on the right edge.
void pack_b(ConstMatrixView b, Op opb, std::size_t k0, std::size_t kb,
            std::size_t j0, std::size_t nb, double* bp) {
  const std::size_t panels = (nb + kNr - 1) / kNr;
  for (std::size_t q = 0; q < panels; ++q) {
    double* dst = bp + q * kNr * kb;
    const std::size_t base = j0 + q * kNr;
    const std::size_t nr = std::min(kNr, j0 + nb - base);
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t j = 0; j < kNr; ++j) {
        dst[k * kNr + j] =
            j < nr ? op_at(b, opb, k0 + k, base + j) : 0.0;
      }
    }
  }
}

// The build stays baseline x86-64 (SSE2); the micro-kernel alone is
// multiversioned so the loader picks an AVX2+FMA or AVX-512 clone when the
// CPU has one. Clone choice is per-machine, never per-thread-count, so the
// determinism contract is unaffected. Disabled under sanitizers: the ifunc
// resolver target_clones emits runs at relocation time, before the TSan
// runtime initializes, and crashes the instrumented binary at load.
#if defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__) &&        \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define ASPE_KERNEL_CLONES                                                    \
  __attribute__((noinline,                                                    \
                 target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#define ASPE_KERNEL_CLONES_ACTIVE 1
#else
#define ASPE_KERNEL_CLONES
#endif

/// C[0..mr) x [0..nr) += alpha * Ap Bp for one packed MR x NR tile. The
/// accumulators cover the full padded tile (fixed trip counts vectorize);
/// only the live mr x nr corner is written back.
ASPE_KERNEL_CLONES
void micro_kernel(std::size_t kb, const double* ap, const double* bp,
                  double alpha, double* c, std::size_t ldc, std::size_t mr,
                  std::size_t nr) {
  double acc[kMr][kNr] = {};
  for (std::size_t k = 0; k < kb; ++k) {
    const double* arow = ap + k * kMr;
    const double* brow = bp + k * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const double av = arow[r];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t j = 0; j < nr; ++j) c[r * ldc + j] += alpha * acc[r][j];
  }
}

/// Cache-blocked packed GEMM. Loop order jc -> kc -> ic: B panels are packed
/// once per (jc, kc) and shared by every row block; row blocks fan out over
/// the pool. Each C tile is owned by one task and the kc panels accumulate
/// in serial outer-loop order, so results are thread-count invariant.
void gemm_blocked(double alpha, ConstMatrixView a, Op opa, ConstMatrixView b,
                  Op opb, MatrixView c, std::size_t threads) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t kdim = op_cols(a, opa);
  // pack_b zero-pads the right edge to a whole NR panel, so the buffer must
  // round the column block up to a kNr multiple (nb = 300, kNr = 8 would
  // otherwise overrun by (304 - 300) * kb doubles).
  const std::size_t nc = std::min(n, kNc);
  std::vector<double> bpack(kKc * ((nc + kNr - 1) / kNr) * kNr);
  const std::size_t ic_blocks = (m + kMc - 1) / kMc;

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nb = std::min(kNc, n - jc);
    for (std::size_t kc = 0; kc < kdim; kc += kKc) {
      const std::size_t kb = std::min(kKc, kdim - kc);
      pack_b(b, opb, kc, kb, jc, nb, bpack.data());
      const std::size_t b_panels = (nb + kNr - 1) / kNr;

      par::parallel_for(
          0, ic_blocks, 1,
          [&](std::size_t blk) {
            const std::size_t i0 = blk * kMc;
            const std::size_t mb = std::min(kMc, m - i0);
            std::vector<double> apack(((mb + kMr - 1) / kMr) * kMr * kb);
            pack_a(a, opa, i0, mb, kc, kb, apack.data());
            for (std::size_t q = 0; q < b_panels; ++q) {
              const std::size_t j0 = jc + q * kNr;
              const std::size_t nr = std::min(kNr, jc + nb - j0);
              const double* bq = bpack.data() + q * kNr * kb;
              const std::size_t a_panels = (mb + kMr - 1) / kMr;
              for (std::size_t p = 0; p < a_panels; ++p) {
                const std::size_t r0 = i0 + p * kMr;
                const std::size_t mr = std::min(kMr, i0 + mb - r0);
                micro_kernel(kb, apack.data() + p * kMr * kb, bq, alpha,
                             c.row_ptr(r0) + j0, c.row_stride(), mr, nr);
              }
            }
          },
          threads);
    }
  }
}

}  // namespace

double dot(ConstVecView x, ConstVecView y) {
  require(x.size() == y.size(), "dot: length mismatch");
  double s = 0.0;
  if (x.contiguous() && y.contiguous()) {
    const double* xp = x.data();
    const double* yp = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) s += xp[i] * yp[i];
    return s;
  }
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, ConstVecView x, VecView y) {
  require(x.size() == y.size(), "axpy: length mismatch");
  if (alpha == 0.0) return;
  if (x.contiguous() && y.contiguous()) {
    const double* xp = x.data();
    double* yp = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) yp[i] += alpha * xp[i];
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, VecView x) {
  if (x.contiguous()) {
    double* xp = x.data();
    for (std::size_t i = 0; i < x.size(); ++i) xp[i] *= alpha;
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= alpha;
}

void rot(VecView x, VecView y, double c, double s) {
  require(x.size() == y.size(), "rot: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

void gemv(double alpha, ConstMatrixView a, Op opa, ConstVecView x, double beta,
          VecView y, std::size_t threads) {
  require(x.size() == op_cols(a, opa), "gemv: dimension mismatch");
  require(y.size() == op_rows(a, opa), "gemv: output size mismatch");
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();

  if (opa == Op::None) {
    const auto compute_row = [&](std::size_t r) {
      const double s = dot(a.row(r), x);
      y[r] = beta == 0.0 ? alpha * s : beta * y[r] + alpha * s;
    };
    if (rows * cols >= kParallelFlopThreshold && rows > 1) {
      par::parallel_for(0, rows, row_grain(rows, cols), compute_row, threads);
    } else {
      for (std::size_t r = 0; r < rows; ++r) compute_row(r);
    }
    return;
  }

  // op(A) = A^T: stream A row-major once, each task owning a disjoint block
  // of output columns so accumulation per element is thread-count invariant.
  const auto compute_col_block = [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      y[c] = beta == 0.0 ? 0.0 : beta * y[c];
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double xa = alpha * x[r];
      if (xa == 0.0) continue;
      const double* ar = a.row_ptr(r);
      for (std::size_t c = c0; c < c1; ++c) y[c] += xa * ar[c];
    }
  };
  constexpr std::size_t kColBlock = 1024;
  if (rows * cols >= kParallelFlopThreshold && cols > kColBlock) {
    const std::size_t blocks = (cols + kColBlock - 1) / kColBlock;
    par::parallel_for(
        0, blocks, 1,
        [&](std::size_t blk) {
          const std::size_t c0 = blk * kColBlock;
          compute_col_block(c0, std::min(c0 + kColBlock, cols));
        },
        threads);
  } else {
    compute_col_block(0, cols);
  }
}

int gemm_dispatch_arch_level() {
#ifdef ASPE_KERNEL_CLONES_ACTIVE
  // Mirror the loader's clone choice: the v4 clone needs the AVX-512
  // x86-64-v4 feature set, the v3 clone AVX2+FMA. Feature probes are listed
  // individually so this compiles on GCC versions without the
  // "x86-64-v4" __builtin_cpu_supports alias.
  static const int level = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512bw")) {
      return 2;
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return 1;
    }
    return 0;
  }();
  return level;
#else
  return 0;
#endif
}

void gemm(double alpha, ConstMatrixView a, Op opa, ConstMatrixView b, Op opb,
          double beta, MatrixView c, std::size_t threads) {
  const std::size_t m = op_rows(a, opa);
  const std::size_t n = op_cols(b, opb);
  const std::size_t kdim = op_cols(a, opa);
  require(kdim == op_rows(b, opb), "gemm: inner dimension mismatch");
  require(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");

  scale_output(beta, c);
  if (m == 0 || n == 0 || kdim == 0 || alpha == 0.0) return;

  const std::size_t flops = m * n * kdim;
  if (obs::enabled()) {
    obs::counter_add("linalg.gemm.calls", 1.0);
    // 2 mnk: one multiply + one add per inner-product term.
    obs::counter_add("linalg.gemm.flops", 2.0 * static_cast<double>(flops));
    obs::gauge_set("linalg.gemm.arch_level",
                   static_cast<double>(gemm_dispatch_arch_level()));
  }
  if (flops < kParallelFlopThreshold) {
    gemm_naive(alpha, a, opa, b, opb, c);
  } else {
    gemm_blocked(alpha, a, opa, b, opb, c, threads);
  }
}

void gram(ConstMatrixView a, MatrixView g, std::size_t threads) {
  const std::size_t d = a.rows();
  require(g.rows() == d && g.cols() == d, "gram: output shape mismatch");
  const auto compute_row = [&](std::size_t i) {
    for (std::size_t j = i; j < d; ++j) {
      const double s = dot(a.row(i), a.row(j));
      g(i, j) = s;
      g(j, i) = s;
    }
  };
  const std::size_t flops_per_row = d * a.cols() / 2 + 1;
  if (d > 1 && d * flops_per_row >= kParallelFlopThreshold) {
    par::parallel_for(0, d, row_grain(d, flops_per_row), compute_row, threads);
  } else {
    for (std::size_t i = 0; i < d; ++i) compute_row(i);
  }
}

void transpose_copy(ConstMatrixView a, MatrixView out) {
  require(out.rows() == a.cols() && out.cols() == a.rows(),
          "transpose_copy: output shape mismatch");
  // Square tiles keep one side of the exchange cache-resident.
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += kTile) {
    const std::size_t r1 = std::min(r0 + kTile, a.rows());
    for (std::size_t c0 = 0; c0 < a.cols(); c0 += kTile) {
      const std::size_t c1 = std::min(c0 + kTile, a.cols());
      for (std::size_t r = r0; r < r1; ++r) {
        const double* ar = a.row_ptr(r);
        for (std::size_t c = c0; c < c1; ++c) out(c, r) = ar[c];
      }
    }
  }
}

}  // namespace aspe::linalg
