#include "linalg/truncated_svd.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/kernels.hpp"
#include "linalg/qr.hpp"
#include "rng/rng.hpp"

namespace aspe::linalg {

namespace {

double fro2(const Matrix& m) {
  double s = 0.0;
  for (double x : m.data()) s += x * x;
  return s;
}

/// Orthonormalize the columns of y in place (thin Q of its blocked QR).
Matrix orthonormalize(Matrix y, std::size_t threads) {
  QrOptions qo;
  qo.threads = threads;
  return QrDecomposition(std::move(y), qo).thin_q();
}

}  // namespace

TruncatedSvd::TruncatedSvd(ConstMatrixView a, Op op,
                           const TruncatedSvdOptions& options)
    : options_(options) {
  const std::size_t m = op_rows(a, op);
  const std::size_t n = op_cols(a, op);
  require(m > 0 && n > 0, "TruncatedSvd: empty matrix");
  require(options.rank > 0, "TruncatedSvd: rank must be positive");
  const std::size_t l = std::min(options.rank + options.oversample,
                                 std::min(m, n));
  sample_ = l;
  const std::size_t threads = options.threads;
  const Op op_t = op == Op::None ? Op::Transpose : Op::None;

  // ||A||_F is op-invariant; one pass over the underlying view.
  double a_fro2 = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_ptr(r);
    for (std::size_t c = 0; c < a.cols(); ++c) a_fro2 += row[c] * row[c];
  }

  // Gaussian test matrix Omega (n x l). Column j draws from
  // Rng(seed).split(j): each column's stream depends only on (seed, j), so
  // the sample is reproducible no matter how the work is scheduled.
  Matrix omega(n, l);
  const rng::Rng base(options.seed);
  for (std::size_t j = 0; j < l; ++j) {
    rng::Rng column_rng = base.split(j);
    for (std::size_t i = 0; i < n; ++i) {
      omega(i, j) = column_rng.normal(0.0, 1.0);
    }
  }

  // Range finder: Q = orth(op(A) Omega), refined by q power iterations
  // with re-orthonormalization after every product (plain powering of
  // A A^T squares the condition number per step and loses the small
  // directions to roundoff).
  Matrix y(m, l);
  gemm(1.0, a, op, omega.cview(), Op::None, 0.0, y.view(), threads);
  Matrix q = orthonormalize(std::move(y), threads);
  for (std::size_t it = 0; it < options.power_iterations; ++it) {
    Matrix z(n, l);
    gemm(1.0, a, op_t, q.cview(), Op::None, 0.0, z.view(), threads);
    z = orthonormalize(std::move(z), threads);
    Matrix y2(m, l);
    gemm(1.0, a, op, z.cview(), Op::None, 0.0, y2.view(), threads);
    q = orthonormalize(std::move(y2), threads);
  }

  // Projected problem: B = Q^T op(A) (l x n), factored exactly by the
  // one-sided Jacobi on B^T (n x l, tall). B^T = V~ S U~^T gives
  // V = V~ and U = Q U~.
  Matrix b(l, n);
  gemm(1.0, q.cview(), Op::Transpose, a, op, 0.0, b.view(), threads);
  const double b_fro2 = fro2(b);
  const Svd small(b.cview(), Op::Transpose, options.jacobi);
  jacobi_converged_ = small.converged();
  s_ = small.singular_values();
  v_ = small.u();
  u_ = Matrix(m, l);
  gemm(1.0, q.cview(), Op::None, small.v().cview(), Op::None, 0.0, u_.view(),
       threads);

  // Residual: Q^T Q = I makes ||A - Q Q^T A||_F^2 = ||A||_F^2 - ||B||_F^2,
  // but that difference is cancellation-limited to ~eps * ||A||_F^2 — a
  // residual floor of ~sqrt(eps) * ||A||_F, the same order as the
  // certificate threshold at rel_tol ~ 1e-8. A difference comfortably above
  // the noise band is trusted as-is; one inside it (the near-exact-capture
  // case, where certification actually matters) is replaced by measuring
  // ||A - Q B||_F directly: one extra gemm, error floor ~eps * ||A||_F.
  const double diff = std::max(0.0, a_fro2 - b_fro2);
  if (diff > 1e-10 * a_fro2) {
    residual_fro_ = std::sqrt(diff);
  } else {
    Matrix qb(m, n);
    gemm(1.0, q.cview(), Op::None, b.cview(), Op::None, 0.0, qb.view(),
         threads);
    double r2 = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double* qb_row = qb.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double aij = op == Op::None ? a(i, j) : a(j, i);
        const double d = aij - qb_row[j];
        r2 += d * d;
      }
    }
    residual_fro_ = std::sqrt(r2);
  }
}

void TruncatedSvd::update_rows(ConstMatrixView e) {
  const std::size_t k = e.rows();
  if (k == 0) return;
  const std::size_t m = u_.rows();
  const std::size_t n = v_.rows();
  const std::size_t l = sample_;
  require(e.cols() == n, "TruncatedSvd::update_rows: column count mismatch");
  const std::size_t threads = options_.threads;

  // The grown matrix factors exactly as blkdiag(U, I_k) * B_new + [R; 0]
  // with B_new = [diag(s) V^T; E] and R the old out-of-subspace residual.
  // The basis is orthonormal, so the exact SVD of the small B_new
  // re-diagonalizes everything the sample captured plus the new rows.
  Matrix b(l + k, n);
  for (std::size_t i = 0; i < l; ++i) {
    double* row = b.row_ptr(i);
    const double si = s_[i];
    for (std::size_t j = 0; j < n; ++j) row[j] = si * v_(j, i);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const double* src = e.row_ptr(i);
    std::copy(src, src + n, b.row_ptr(l + i));
  }

  // Exact Jacobi on the small problem; the one-sided sweep needs the tall
  // orientation, so transpose when B_new is wide.
  const Op small_op = n >= l + k ? Op::Transpose : Op::None;
  const Svd small(b.cview(), small_op, options_.jacobi);
  jacobi_converged_ = jacobi_converged_ && small.converged();
  const Matrix& u2 = small_op == Op::Transpose ? small.v() : small.u();
  const Matrix& v2 = small_op == Op::Transpose ? small.u() : small.v();
  const Vec& s2 = small.singular_values();
  const std::size_t keep = std::min(l, s2.size());

  // U' = blkdiag(U, I_k) * U2, truncated to the leading `keep` triplets —
  // a product of orthonormal factors, so updates compose without drift.
  Matrix u_new(m + k, keep);
  gemm(1.0, u_.cview(), Op::None, u2.block(0, 0, l, keep), Op::None, 0.0,
       u_new.block(0, 0, m, keep), threads);
  for (std::size_t i = 0; i < k; ++i) {
    const double* src = u2.row_ptr(l + i);
    std::copy(src, src + keep, u_new.row_ptr(m + i));
  }
  Matrix v_new(n, keep);
  for (std::size_t j = 0; j < n; ++j) {
    const double* src = v2.row_ptr(j);
    std::copy(src, src + keep, v_new.row_ptr(j));
  }

  // Dropped Ritz directions live in range(blkdiag(U, I_k)) and the old
  // residual is orthogonal to it, so the certificate norms add exactly in
  // quadrature: residual'^2 = residual^2 + sum of truncated tail values^2.
  double tail2 = 0.0;
  for (std::size_t i = keep; i < s2.size(); ++i) tail2 += s2[i] * s2[i];
  residual_fro_ = std::sqrt(residual_fro_ * residual_fro_ + tail2);

  u_ = std::move(u_new);
  v_ = std::move(v_new);
  s_.assign(s2.begin(), s2.begin() + static_cast<std::ptrdiff_t>(keep));
  sample_ = keep;
}

void TruncatedSvd::update_cols(ConstMatrixView c) {
  const std::size_t c_new = c.cols();
  if (c_new == 0) return;
  const std::size_t m = u_.rows();
  const std::size_t n = v_.rows();
  const std::size_t l = sample_;
  require(c.rows() == m, "TruncatedSvd::update_cols: row count mismatch");
  const std::size_t threads = options_.threads;

  // Split the new columns into the captured part P = U^T C and the
  // out-of-subspace remainder C - U P. The captured part joins the small
  // problem B_new = [diag(s) V^T, P]; the remainder can only be accounted
  // by the certificate, so its norm joins the residual in quadrature.
  Matrix p(l, c_new);
  gemm(1.0, u_.cview(), Op::Transpose, c, Op::None, 0.0, p.view(), threads);
  Matrix up(m, c_new);
  gemm(1.0, u_.cview(), Op::None, p.cview(), Op::None, 0.0, up.view(),
       threads);
  // Measured entrywise: the Pythagoras form ||C||^2 - ||P||^2 cancels to
  // noise exactly in the near-captured case the certificate cares about.
  double miss2 = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double* up_row = up.row_ptr(i);
    for (std::size_t j = 0; j < c_new; ++j) {
      const double d = c(i, j) - up_row[j];
      miss2 += d * d;
    }
  }

  Matrix b(l, n + c_new);
  for (std::size_t i = 0; i < l; ++i) {
    double* row = b.row_ptr(i);
    const double si = s_[i];
    for (std::size_t j = 0; j < n; ++j) row[j] = si * v_(j, i);
    const double* p_row = p.row_ptr(i);
    std::copy(p_row, p_row + c_new, row + n);
  }

  // l <= n always, so B_new is wide: factor the transpose (tall).
  const Svd small(b.cview(), Op::Transpose, options_.jacobi);
  jacobi_converged_ = jacobi_converged_ && small.converged();
  const Matrix& u2 = small.v();  // l x t
  const Matrix& v2 = small.u();  // (n + c_new) x t
  const Vec& s2 = small.singular_values();
  const std::size_t keep = std::min(l, s2.size());

  Matrix u_new(m, keep);
  gemm(1.0, u_.cview(), Op::None, u2.block(0, 0, l, keep), Op::None, 0.0,
       u_new.view(), threads);
  Matrix v_new(n + c_new, keep);
  for (std::size_t j = 0; j < n + c_new; ++j) {
    const double* src = v2.row_ptr(j);
    std::copy(src, src + keep, v_new.row_ptr(j));
  }

  double tail2 = 0.0;
  for (std::size_t i = keep; i < s2.size(); ++i) tail2 += s2[i] * s2[i];
  residual_fro_ =
      std::sqrt(residual_fro_ * residual_fro_ + miss2 + tail2);

  u_ = std::move(u_new);
  v_ = std::move(v_new);
  s_.assign(s2.begin(), s2.begin() + static_cast<std::ptrdiff_t>(keep));
  sample_ = keep;
}

std::optional<std::size_t> TruncatedSvd::certified_rank(double rel_tol) const {
  if (!jacobi_converged_) return std::nullopt;
  const double s_max = s_.empty() ? 0.0 : s_[0];
  if (s_max <= 0.0) {
    // Nothing projected: certified zero only when the residual shows the
    // whole matrix is exactly zero too.
    if (residual_fro_ == 0.0) return std::size_t{0};
    return std::nullopt;
  }
  const double threshold = rel_tol * s_max;
  std::size_t count = 0;
  for (double sv : s_) count += sv > threshold;
  // Tail bound: every singular value outside the sampled subspace is at
  // most residual_fro; demand it sit far below the threshold so no
  // above-threshold value can be hiding there.
  if (residual_fro_ > 0.25 * threshold) return std::nullopt;
  // rank >= sample size: the spectrum may continue past what we computed.
  if (count == sample_) return std::nullopt;
  // Clean gap around the cut (factor 4 both sides), so the count is stable
  // against the O(eps)-relative differences between Rayleigh-Ritz values
  // and the full SVD's.
  if (count > 0 && s_[count - 1] <= 4.0 * threshold) return std::nullopt;
  if (s_[count] > 0.25 * threshold) return std::nullopt;
  return count;
}

}  // namespace aspe::linalg
