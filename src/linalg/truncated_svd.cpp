#include "linalg/truncated_svd.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/kernels.hpp"
#include "linalg/qr.hpp"
#include "rng/rng.hpp"

namespace aspe::linalg {

namespace {

double fro2(const Matrix& m) {
  double s = 0.0;
  for (double x : m.data()) s += x * x;
  return s;
}

/// Orthonormalize the columns of y in place (thin Q of its blocked QR).
Matrix orthonormalize(Matrix y, std::size_t threads) {
  QrOptions qo;
  qo.threads = threads;
  return QrDecomposition(std::move(y), qo).thin_q();
}

}  // namespace

TruncatedSvd::TruncatedSvd(ConstMatrixView a, Op op,
                           const TruncatedSvdOptions& options) {
  const std::size_t m = op_rows(a, op);
  const std::size_t n = op_cols(a, op);
  require(m > 0 && n > 0, "TruncatedSvd: empty matrix");
  require(options.rank > 0, "TruncatedSvd: rank must be positive");
  const std::size_t l = std::min(options.rank + options.oversample,
                                 std::min(m, n));
  sample_ = l;
  const std::size_t threads = options.threads;
  const Op op_t = op == Op::None ? Op::Transpose : Op::None;

  // ||A||_F is op-invariant; one pass over the underlying view.
  double a_fro2 = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_ptr(r);
    for (std::size_t c = 0; c < a.cols(); ++c) a_fro2 += row[c] * row[c];
  }

  // Gaussian test matrix Omega (n x l). Column j draws from
  // Rng(seed).split(j): each column's stream depends only on (seed, j), so
  // the sample is reproducible no matter how the work is scheduled.
  Matrix omega(n, l);
  const rng::Rng base(options.seed);
  for (std::size_t j = 0; j < l; ++j) {
    rng::Rng column_rng = base.split(j);
    for (std::size_t i = 0; i < n; ++i) {
      omega(i, j) = column_rng.normal(0.0, 1.0);
    }
  }

  // Range finder: Q = orth(op(A) Omega), refined by q power iterations
  // with re-orthonormalization after every product (plain powering of
  // A A^T squares the condition number per step and loses the small
  // directions to roundoff).
  Matrix y(m, l);
  gemm(1.0, a, op, omega.cview(), Op::None, 0.0, y.view(), threads);
  Matrix q = orthonormalize(std::move(y), threads);
  for (std::size_t it = 0; it < options.power_iterations; ++it) {
    Matrix z(n, l);
    gemm(1.0, a, op_t, q.cview(), Op::None, 0.0, z.view(), threads);
    z = orthonormalize(std::move(z), threads);
    Matrix y2(m, l);
    gemm(1.0, a, op, z.cview(), Op::None, 0.0, y2.view(), threads);
    q = orthonormalize(std::move(y2), threads);
  }

  // Projected problem: B = Q^T op(A) (l x n), factored exactly by the
  // one-sided Jacobi on B^T (n x l, tall). B^T = V~ S U~^T gives
  // V = V~ and U = Q U~.
  Matrix b(l, n);
  gemm(1.0, q.cview(), Op::Transpose, a, op, 0.0, b.view(), threads);
  const double b_fro2 = fro2(b);
  const Svd small(b.cview(), Op::Transpose, options.jacobi);
  jacobi_converged_ = small.converged();
  s_ = small.singular_values();
  v_ = small.u();
  u_ = Matrix(m, l);
  gemm(1.0, q.cview(), Op::None, small.v().cview(), Op::None, 0.0, u_.view(),
       threads);

  // Residual: Q^T Q = I makes ||A - Q Q^T A||_F^2 = ||A||_F^2 - ||B||_F^2,
  // but that difference is cancellation-limited to ~eps * ||A||_F^2 — a
  // residual floor of ~sqrt(eps) * ||A||_F, the same order as the
  // certificate threshold at rel_tol ~ 1e-8. A difference comfortably above
  // the noise band is trusted as-is; one inside it (the near-exact-capture
  // case, where certification actually matters) is replaced by measuring
  // ||A - Q B||_F directly: one extra gemm, error floor ~eps * ||A||_F.
  const double diff = std::max(0.0, a_fro2 - b_fro2);
  if (diff > 1e-10 * a_fro2) {
    residual_fro_ = std::sqrt(diff);
  } else {
    Matrix qb(m, n);
    gemm(1.0, q.cview(), Op::None, b.cview(), Op::None, 0.0, qb.view(),
         threads);
    double r2 = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double* qb_row = qb.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double aij = op == Op::None ? a(i, j) : a(j, i);
        const double d = aij - qb_row[j];
        r2 += d * d;
      }
    }
    residual_fro_ = std::sqrt(r2);
  }
}

std::optional<std::size_t> TruncatedSvd::certified_rank(double rel_tol) const {
  if (!jacobi_converged_) return std::nullopt;
  const double s_max = s_.empty() ? 0.0 : s_[0];
  if (s_max <= 0.0) {
    // Nothing projected: certified zero only when the residual shows the
    // whole matrix is exactly zero too.
    if (residual_fro_ == 0.0) return std::size_t{0};
    return std::nullopt;
  }
  const double threshold = rel_tol * s_max;
  std::size_t count = 0;
  for (double sv : s_) count += sv > threshold;
  // Tail bound: every singular value outside the sampled subspace is at
  // most residual_fro; demand it sit far below the threshold so no
  // above-threshold value can be hiding there.
  if (residual_fro_ > 0.25 * threshold) return std::nullopt;
  // rank >= sample size: the spectrum may continue past what we computed.
  if (count == sample_) return std::nullopt;
  // Clean gap around the cut (factor 4 both sides), so the count is stable
  // against the O(eps)-relative differences between Rayleigh-Ritz values
  // and the full SVD's.
  if (count > 0 && s_[count - 1] <= 4.0 * threshold) return std::nullopt;
  if (s_[count] > 0.25 * threshold) return std::nullopt;
  return count;
}

}  // namespace aspe::linalg
