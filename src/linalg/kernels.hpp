// Free-function linear-algebra kernels over views (the BLAS-shaped layer).
//
// Every dense product in the library funnels through these entry points:
// `Matrix::operator*`, `apply`, `apply_transposed` and the NMF / simplex /
// attack hot loops all call gemm / gemv / gram / dot / axpy on views, so
// transposition is an `Op` flag and sub-blocks are strides — never copies.
//
// Determinism contract (same as aspe::par): for a fixed problem size the
// result is bit-identical at any thread count. gemm achieves this with a
// fixed block decomposition — each output tile is accumulated by exactly one
// task, and the k-panel order is a serial outer loop — so only the wall
// clock moves with the thread count.
//
// Aliasing: input views may alias each other (gemm(A, A) is how gram works);
// output views must not alias any input.
#pragma once

#include "linalg/matrix_view.hpp"

namespace aspe::linalg {

/// Inner product sum_i x[i] * y[i], accumulated in ascending index order.
[[nodiscard]] double dot(ConstVecView x, ConstVecView y);

/// y += alpha * x.
void axpy(double alpha, ConstVecView x, VecView y);

/// x *= alpha.
void scal(double alpha, VecView x);

/// Plane rotation: (x[i], y[i]) <- (c x[i] - s y[i], s x[i] + c y[i]).
/// The Givens/Jacobi workhorse; column views make it strided.
void rot(VecView x, VecView y, double c, double s);

/// y = alpha * op(a) x + beta * y. Deterministic at any thread count
/// (`threads` caps the fan-out; 0 = process default).
void gemv(double alpha, ConstMatrixView a, Op opa, ConstVecView x, double beta,
          VecView y, std::size_t threads = 0);

/// c = alpha * op(a) op(b) + beta * c.
///
/// Large products run a cache-blocked packed kernel: A and B panels are
/// packed into contiguous tiles and multiplied by an MR x NR register
/// micro-kernel, parallel over row blocks of C. Small products use the
/// plain i-k-j loop (identical to the pre-view implementation, so small
/// fixtures keep bit-identical results).
void gemm(double alpha, ConstMatrixView a, Op opa, ConstMatrixView b, Op opb,
          double beta, MatrixView c, std::size_t threads = 0);

/// g = a a^T (row Gram matrix, g must be a.rows() x a.rows()). Computes the
/// upper triangle by contiguous row dots and mirrors it — the symmetric
/// half-cost path the NMF updates rely on.
void gram(ConstMatrixView a, MatrixView g, std::size_t threads = 0);

/// out = op(a) elementwise (cache-blocked copy; out must not alias a).
void transpose_copy(ConstMatrixView a, MatrixView out);

/// The micro-architecture level the multiversioned GEMM micro-kernel
/// dispatches to on this machine: 0 = baseline x86-64 (or clones compiled
/// out, e.g. under sanitizers / non-GCC), 1 = x86-64-v3 (AVX2+FMA),
/// 2 = x86-64-v4 (AVX-512). Exposed for telemetry ("linalg.gemm.arch_level"
/// gauge) and bench provenance.
[[nodiscard]] int gemm_dispatch_arch_level();

}  // namespace aspe::linalg
