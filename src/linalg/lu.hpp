// LU decomposition with partial pivoting.
//
// Workhorse for the LEP attack (Algorithm 1 solves (d+1)x(d+1) systems with
// Gaussian elimination, the complexity the paper quotes in Remark 1) and for
// key-matrix inversion in the encryption schemes.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace aspe::linalg {

class LuDecomposition {
 public:
  /// Factor PA = LU. Does not throw on singular input; check is_singular().
  explicit LuDecomposition(Matrix a);

  /// True when a pivot below `tolerance * max_abs` was hit. Solving with a
  /// singular factorization throws NumericalError.
  [[nodiscard]] bool is_singular() const { return singular_; }

  /// Solve A x = b.
  [[nodiscard]] Vec solve(const Vec& b) const;

  /// Solve A x = b through strided views (b and x may be matrix columns;
  /// they must not alias each other).
  void solve_into(ConstVecView b, VecView x) const;

  /// Solve A X = B column by column (via column views, no copies).
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// A^{-1} (throws NumericalError when singular).
  [[nodiscard]] Matrix inverse() const;

  /// det(A) (0 when singular was detected). Beware: over/underflows for
  /// large well-conditioned matrices; prefer pivot_ratio() for conditioning.
  [[nodiscard]] double determinant() const;

  /// min|U_ii| / max|U_ii| — a cheap conditioning proxy that does not
  /// over/underflow. Returns 0 when singular.
  [[nodiscard]] double pivot_ratio() const;

  [[nodiscard]] std::size_t dim() const { return lu_.rows(); }

 private:
  Matrix lu_;                      // packed L (unit diag) and U
  std::vector<std::size_t> perm_;  // row permutation
  int sign_ = 1;                   // permutation sign for determinant
  bool singular_ = false;
};

}  // namespace aspe::linalg
