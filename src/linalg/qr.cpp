#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"

namespace aspe::linalg {

QrDecomposition::QrDecomposition(Matrix a, const QrOptions& options)
    : qr_(std::move(a)), options_(options) {
  require(qr_.rows() >= qr_.cols(), "QrDecomposition: need rows >= cols");
  require(qr_.cols() > 0, "QrDecomposition: empty matrix");
  factor();
}

void QrDecomposition::factor() {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  tau_.assign(n, 0.0);
  const std::size_t nb = std::max<std::size_t>(1, options_.block);

  Matrix v_panel, t_panel, work;
  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t kb = std::min(nb, n - k0);

    // Panel factorization: the classic unblocked loop restricted to columns
    // [k0, k0 + kb). Within the panel, trailing columns are updated
    // per-column — identical arithmetic to the unblocked algorithm, so a
    // single-panel matrix (n <= block) reproduces it bit-for-bit.
    for (std::size_t k = k0; k < k0 + kb; ++k) {
      // Householder vector for column k below row k (a strided panel view).
      const VecView panel_k = qr_.col_view(k).subvec(k, m - k);
      const double norm = std::sqrt(dot(panel_k, panel_k));
      if (norm == 0.0) {
        tau_[k] = 0.0;  // zero column; R_kk = 0 marks rank deficiency
        continue;
      }
      const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
      // v = x - alpha e1 (stored in place, normalized so v[0] = 1).
      const double v0 = qr_(k, k) - alpha;
      qr_(k, k) = alpha;
      const VecView v = qr_.col_view(k).subvec(k + 1, m - k - 1);
      for (std::size_t i = 0; i < v.size(); ++i) v[i] /= v0;
      tau_[k] = -v0 / alpha;  // beta = 2 / (v^T v) expressed via v0 and alpha

      // Apply H = I - tau v v^T to the remaining columns of the panel.
      for (std::size_t j = k + 1; j < k0 + kb; ++j) {
        const VecView cj = qr_.col_view(j).subvec(k + 1, m - k - 1);
        double s = tau_[k] * (qr_(k, j) + dot(v, cj));
        qr_(k, j) -= s;
        axpy(-s, v, cj);
      }
    }

    // Trailing update via compact-WY: C -= V (T^T (V^T C)), applying
    // H_{kb-1} ... H_0 = Q_panel^T to every column right of the panel with
    // two gemms instead of kb rank-1 passes.
    const std::size_t trailing = n - (k0 + kb);
    if (trailing == 0) continue;
    build_panel(k0, kb, v_panel, t_panel);
    const MatrixView c = qr_.block(k0, k0 + kb, m - k0, trailing);
    work = Matrix(kb, trailing);
    gemm(1.0, v_panel.cview(), Op::Transpose, ConstMatrixView(c), Op::None,
         0.0, work.view(), options_.threads);
    Matrix work2(kb, trailing);
    gemm(1.0, t_panel.cview(), Op::Transpose, work.cview(), Op::None, 0.0,
         work2.view(), options_.threads);
    gemm(-1.0, v_panel.cview(), Op::None, work2.cview(), Op::None, 1.0, c,
         options_.threads);
  }
}

void QrDecomposition::build_panel(std::size_t k0, std::size_t kb, Matrix& v,
                                  Matrix& t) const {
  const std::size_t mk = qr_.rows() - k0;
  // V: unit diagonal, Householder tails below, zeros above.
  v = Matrix(mk, kb, 0.0);
  for (std::size_t j = 0; j < kb; ++j) {
    v(j, j) = 1.0;
    for (std::size_t i = j + 1; i < mk; ++i) {
      v(i, j) = qr_(k0 + i, k0 + j);
    }
  }
  // T: forward accumulation of the triangular WY factor,
  //   T_j = [ T_{j-1}  -tau_j T_{j-1} (V_{j-1}^T v_j) ]
  //         [    0                tau_j               ]
  // A tau of zero (zero column) makes H_j = I and the whole column of T
  // zero, which the recurrence produces naturally.
  t = Matrix(kb, kb, 0.0);
  Vec y(kb);
  for (std::size_t j = 0; j < kb; ++j) {
    const double tau = tau_[k0 + j];
    // y = V(:, 0..j)^T v_j; columns overlap only from row j down.
    for (std::size_t c = 0; c < j; ++c) {
      y[c] = dot(v.cview().col(c).subvec(j, mk - j),
                 v.cview().col(j).subvec(j, mk - j));
    }
    for (std::size_t rr = 0; rr < j; ++rr) {
      double s = 0.0;
      for (std::size_t c = rr; c < j; ++c) s += t(rr, c) * y[c];
      t(rr, j) = -tau * s;
    }
    t(j, j) = tau;
  }
}

Matrix QrDecomposition::thin_q() const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  // Q = (I - V_0 T_0 V_0^T) ... (I - V_p T_p V_p^T) I_{m x n}: apply the
  // panels to the identity in reverse order; panel k0 only touches rows
  // k0 and below.
  Matrix q(m, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) q(i, i) = 1.0;
  const std::size_t nb = std::max<std::size_t>(1, options_.block);
  const std::size_t panels = (n + nb - 1) / nb;
  Matrix v_panel, t_panel;
  for (std::size_t p = panels; p-- > 0;) {
    const std::size_t k0 = p * nb;
    const std::size_t kb = std::min(nb, n - k0);
    build_panel(k0, kb, v_panel, t_panel);
    const MatrixView c = q.block(k0, 0, m - k0, n);
    Matrix work(kb, n);
    gemm(1.0, v_panel.cview(), Op::Transpose, ConstMatrixView(c), Op::None,
         0.0, work.view(), options_.threads);
    Matrix work2(kb, n);
    gemm(1.0, t_panel.cview(), Op::None, work.cview(), Op::None, 0.0,
         work2.view(), options_.threads);
    gemm(-1.0, v_panel.cview(), Op::None, work2.cview(), Op::None, 1.0, c,
         options_.threads);
  }
  return q;
}

Vec QrDecomposition::apply_qt(const Vec& b) const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  require(b.size() == m, "QrDecomposition::apply_qt: dimension mismatch");
  Vec y = b;
  const VecView yv(y);
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    const ConstVecView v = qr_.col_view(k).subvec(k + 1, m - k - 1);
    const VecView tail = yv.subvec(k + 1, m - k - 1);
    const double s = tau_[k] * (y[k] + dot(v, tail));
    y[k] -= s;
    axpy(-s, v, tail);
  }
  return y;
}

Vec QrDecomposition::solve(const Vec& b) const {
  const std::size_t n = cols();
  Vec y = apply_qt(b);
  // Back substitution on R.
  const double scale = std::max(qr_.max_abs(), 1.0);
  Vec x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n; ++j) s -= qr_(kk, j) * x[j];
    const double rkk = qr_(kk, kk);
    if (std::abs(rkk) <= 1e-12 * scale) {
      throw NumericalError("QrDecomposition::solve: rank-deficient system");
    }
    x[kk] = s / rkk;
  }
  return x;
}

Matrix QrDecomposition::r() const {
  const std::size_t n = cols();
  Matrix out(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

std::size_t QrDecomposition::rank(double rel_tol) const {
  const std::size_t n = cols();
  double largest = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    largest = std::max(largest, std::abs(qr_(i, i)));
  }
  if (largest == 0.0) return 0;
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(qr_(i, i)) > rel_tol * largest) ++r;
  }
  return r;
}

Vec solve_least_squares_qr(const Matrix& a, const Vec& b) {
  require(a.rows() == b.size(), "solve_least_squares_qr: dimension mismatch");
  return QrDecomposition(a).solve(b);
}

}  // namespace aspe::linalg
