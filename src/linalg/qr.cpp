#include "linalg/qr.hpp"

#include <cmath>

#include "linalg/kernels.hpp"

namespace aspe::linalg {

QrDecomposition::QrDecomposition(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  require(m >= n, "QrDecomposition: need rows >= cols");
  require(n > 0, "QrDecomposition: empty matrix");
  tau_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k below row k (a strided panel view).
    const VecView panel_k = qr_.col_view(k).subvec(k, m - k);
    const double norm = std::sqrt(dot(panel_k, panel_k));
    if (norm == 0.0) {
      tau_[k] = 0.0;  // zero column; R_kk = 0 marks rank deficiency
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha e1 (stored in place, normalized so v[0] = 1).
    const double v0 = qr_(k, k) - alpha;
    qr_(k, k) = alpha;
    const VecView v = qr_.col_view(k).subvec(k + 1, m - k - 1);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] /= v0;
    tau_[k] = -v0 / alpha;  // beta = 2 / (v^T v) expressed via v0 and alpha

    // Apply H = I - tau v v^T to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      const VecView cj = qr_.col_view(j).subvec(k + 1, m - k - 1);
      double s = tau_[k] * (qr_(k, j) + dot(v, cj));
      qr_(k, j) -= s;
      axpy(-s, v, cj);
    }
  }
}

Vec QrDecomposition::apply_qt(const Vec& b) const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  require(b.size() == m, "QrDecomposition::apply_qt: dimension mismatch");
  Vec y = b;
  const VecView yv(y);
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    const ConstVecView v = qr_.col_view(k).subvec(k + 1, m - k - 1);
    const VecView tail = yv.subvec(k + 1, m - k - 1);
    const double s = tau_[k] * (y[k] + dot(v, tail));
    y[k] -= s;
    axpy(-s, v, tail);
  }
  return y;
}

Vec QrDecomposition::solve(const Vec& b) const {
  const std::size_t n = cols();
  Vec y = apply_qt(b);
  // Back substitution on R.
  const double scale = std::max(qr_.max_abs(), 1.0);
  Vec x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n; ++j) s -= qr_(kk, j) * x[j];
    const double rkk = qr_(kk, kk);
    if (std::abs(rkk) <= 1e-12 * scale) {
      throw NumericalError("QrDecomposition::solve: rank-deficient system");
    }
    x[kk] = s / rkk;
  }
  return x;
}

Matrix QrDecomposition::r() const {
  const std::size_t n = cols();
  Matrix out(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

std::size_t QrDecomposition::rank(double rel_tol) const {
  const std::size_t n = cols();
  double largest = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    largest = std::max(largest, std::abs(qr_(i, i)));
  }
  if (largest == 0.0) return 0;
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(qr_(i, i)) > rel_tol * largest) ++r;
  }
  return r;
}

Vec solve_least_squares_qr(const Matrix& a, const Vec& b) {
  require(a.rows() == b.size(), "solve_least_squares_qr: dimension mismatch");
  return QrDecomposition(a).solve(b);
}

}  // namespace aspe::linalg
