// Singular value decomposition via one-sided Jacobi rotations.
//
// A (m x n, m >= n) = U S V^T with U m x n column-orthonormal, S diagonal
// (descending), V n x n orthogonal. Used for numerical rank diagnostics and
// for the NNDSVD initialization of the sparse-NMF solver.
#pragma once

#include "linalg/matrix.hpp"

namespace aspe::linalg {

struct SvdOptions {
  std::size_t max_sweeps = 60;
  double tol = 1e-12;  // off-diagonal convergence tolerance (relative)
};

class Svd {
 public:
  /// Factor an m x n matrix with m >= n. Throws InvalidArgument on shape.
  explicit Svd(Matrix a, const SvdOptions& options = {});

  /// Factor op(a) (op(a) must have rows >= cols). With Op::Transpose the
  /// input is read through the strided view straight into the working
  /// storage — no transposed Matrix temporary is materialized. Singular
  /// values are transpose-invariant, so rank callers can always pick the
  /// thin orientation this way.
  explicit Svd(ConstMatrixView a, Op op, const SvdOptions& options = {});

  [[nodiscard]] const Matrix& u() const { return u_; }
  [[nodiscard]] const Vec& singular_values() const { return s_; }
  [[nodiscard]] const Matrix& v() const { return v_; }

  /// Whether the Jacobi sweep loop reached the off-diagonal tolerance
  /// before SvdOptions::max_sweeps ran out. When false the factors are the
  /// best iterate so far, not a converged SVD — rank/gap decisions made on
  /// them are unreliable and callers should check this first.
  [[nodiscard]] bool converged() const { return converged_; }

  /// Numerical rank: singular values above rel_tol * s_max.
  [[nodiscard]] std::size_t rank(double rel_tol = 1e-10) const;

  /// s_max / s_min (infinity when singular).
  [[nodiscard]] double condition_number() const;

  /// Reconstruct U S V^T (tests / low-rank truncation).
  [[nodiscard]] Matrix reconstruct(std::size_t rank_limit = 0) const;

 private:
  void factor(const SvdOptions& options);

  Matrix u_;  // m x n
  Vec s_;     // n, descending
  Matrix v_;  // n x n
  bool converged_ = false;
};

}  // namespace aspe::linalg
