// Randomized truncated SVD (Halko, Martinsson & Tropp 2011).
//
// Computes the leading singular triplets of op(A) through a Gaussian range
// finder + subspace (power) iteration: sample Y = op(A) Omega with an
// n x l Gaussian test matrix, orthonormalize through the blocked
// Householder QR, optionally refine with re-orthonormalized power
// iterations, then solve the small l-column projected problem
// B = Q^T op(A) with the exact one-sided Jacobi SVD. Cost is
// O(m n l + (m + n) l^2) against the full Jacobi's O(m n^2) per sweep —
// the point of the exercise when only the leading spectrum gap is needed
// (core::estimate_latent_dimension).
//
// Determinism: column j of the test matrix is drawn from
// rng::Rng(seed).split(j) — an order-independent stream — and every dense
// step runs through kernels that are bit-identical at any thread count, so
// the factorization is a pure function of (A, op, options) regardless of
// `threads`.
//
// Certification: because Q has orthonormal columns,
//   ||op(A) - Q Q^T op(A)||_F^2 = ||A||_F^2 - ||B||_F^2
// exactly, and that residual bounds every singular value outside the
// captured subspace. certified_rank() uses it to decide whether the
// numerical rank at a tolerance is *provably* resolved by the sample; when
// it is not (flat spectrum, rank >= sample size, unconverged projected
// Jacobi), it returns nullopt and the caller falls back to the full SVD.
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace aspe::linalg {

struct TruncatedSvdOptions {
  std::size_t rank = 0;              // target rank k (required, >= 1)
  std::size_t oversample = 8;        // extra sample columns p; l = min(k + p, min(m, n))
  std::size_t power_iterations = 2;  // subspace-iteration refinements q
  std::uint64_t seed = 2017;         // Gaussian test-matrix stream
  std::size_t threads = 0;           // gemm/QR width (0 = process default)
  SvdOptions jacobi;                 // options of the projected Jacobi SVD
};

class TruncatedSvd {
 public:
  /// Factor op(a) ~= U S V^T with l = min(rank + oversample, min(m, n))
  /// computed triplets (callers truncate to the leading `rank`). As with
  /// Svd, the transposition is an op flag — never a materialized copy.
  explicit TruncatedSvd(ConstMatrixView a, Op op,
                        const TruncatedSvdOptions& options);

  [[nodiscard]] const Matrix& u() const { return u_; }  // m x l
  [[nodiscard]] const Vec& singular_values() const { return s_; }  // l, desc
  [[nodiscard]] const Matrix& v() const { return v_; }  // n x l

  /// l — how many triplets were actually computed.
  [[nodiscard]] std::size_t sample_size() const { return sample_; }

  /// ||op(A) - Q Q^T op(A)||_F, measured (not a probabilistic estimate): an
  /// upper bound on every singular value the sample missed. Computed from
  /// the Frobenius Pythagoras identity when the difference is well above
  /// its cancellation floor, and re-measured entrywise as ||A - Q B||_F
  /// when it is not — so near-exact captures read ~eps * ||A||_F instead of
  /// drowning at ~sqrt(eps) * ||A||_F.
  [[nodiscard]] double residual_fro() const { return residual_fro_; }

  /// Whether the projected Jacobi SVD converged (it essentially always
  /// does; false poisons the certificate below).
  [[nodiscard]] bool jacobi_converged() const { return jacobi_converged_; }

  /// Numerical rank at rel_tol — but only when the sample *proves* it:
  /// the residual must pin the uncaptured tail well below the threshold
  /// rel_tol * s_max, the count must not exhaust the sample, and the
  /// values straddling the threshold must clear it with a factor-4 margin
  /// (so the count matches what the full SVD computes despite O(eps)
  /// Rayleigh-Ritz perturbations). nullopt = not certified; run the full
  /// SVD instead.
  [[nodiscard]] std::optional<std::size_t> certified_rank(
      double rel_tol) const;

  /// Incrementally fold k new trailing rows of op(A) into the
  /// factorization: `e` is the k x n block appended below the rows already
  /// factored. The augmented basis blkdiag(U, I_k) captures both the old
  /// subspace and the new rows exactly, so the exact small SVD of
  /// [diag(s) V^T; E] re-diagonalizes it at cost O((l + k)^2 (m + n))
  /// instead of a fresh O(m n l) sample. The residual certificate is
  /// updated *exactly*: the old residual is orthogonal to range(U), hence
  /// orthogonal to every dropped Ritz direction, so the norms add in
  /// quadrature with the truncated tail. After the update u()/v() have
  /// m + k / n rows and updates compose.
  void update_rows(ConstMatrixView e);

  /// Same for c new trailing columns of op(A) (`c` is m x c_new). The new
  /// columns are split into their projection onto range(U) — folded into
  /// the small problem [diag(s) V^T, U^T C] — and the out-of-subspace part,
  /// whose Frobenius norm is measured entrywise (the Pythagoras difference
  /// cancels exactly when the columns are nearly captured) and added to the
  /// residual in quadrature.
  void update_cols(ConstMatrixView c);

 private:
  TruncatedSvdOptions options_;
  Matrix u_;
  Vec s_;
  Matrix v_;
  std::size_t sample_ = 0;
  double residual_fro_ = 0.0;
  bool jacobi_converged_ = true;
};

}  // namespace aspe::linalg
