// Cholesky factorization for symmetric positive definite systems.
//
// Used by the NNLS/NMF substrate to solve normal equations, and by the
// least-squares helper in solve.hpp.
#pragma once

#include "linalg/matrix.hpp"

namespace aspe::linalg {

class Cholesky {
 public:
  /// Factor A = L L^T. Throws NumericalError when A is not (numerically)
  /// positive definite.
  explicit Cholesky(const Matrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vec solve(const Vec& b) const;

  [[nodiscard]] std::size_t dim() const { return l_.rows(); }

  /// The lower-triangular factor.
  [[nodiscard]] const Matrix& factor() const { return l_; }

 private:
  Matrix l_;
};

}  // namespace aspe::linalg
