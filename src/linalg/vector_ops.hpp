// Free functions on dense vectors (aspe::Vec).
#pragma once

#include "common/types.hpp"

namespace aspe::linalg {

/// Inner product a . b (throws on length mismatch).
[[nodiscard]] double dot(const Vec& a, const Vec& b);

/// Euclidean norm ||v||.
[[nodiscard]] double norm(const Vec& v);

/// Squared Euclidean norm ||v||^2 (the paper's ||P_i||^2).
[[nodiscard]] double norm_squared(const Vec& v);

/// L1 norm.
[[nodiscard]] double norm1(const Vec& v);

/// Largest |v_i|.
[[nodiscard]] double max_abs(const Vec& v);

/// y += alpha * x.
void axpy(double alpha, const Vec& x, Vec& y);

/// Elementwise sum.
[[nodiscard]] Vec add(const Vec& a, const Vec& b);

/// Elementwise difference.
[[nodiscard]] Vec sub(const Vec& a, const Vec& b);

/// alpha * v.
[[nodiscard]] Vec scale(double alpha, const Vec& v);

/// Concatenate two vectors.
[[nodiscard]] Vec concat(const Vec& a, const Vec& b);

/// True when all |a_i - b_i| <= tol (and lengths match).
[[nodiscard]] bool approx_equal(const Vec& a, const Vec& b, double tol);

}  // namespace aspe::linalg
