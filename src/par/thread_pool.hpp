// Shared parallel-execution substrate (aspe::par).
//
// One process-wide pool of persistent worker threads serves every parallel
// section in the library: the dense matrix kernels, the SNMF restart loop,
// the score-matrix build and the per-instance attack sweeps. The design
// goals, in order:
//
//  * determinism — chunk boundaries depend only on (range, grain), never on
//    the thread count or on scheduling. A loop whose chunks write disjoint
//    state, or whose chunk results are combined in chunk order, produces
//    bit-identical output for 1 thread, N threads, or the serial fallback.
//  * robustness — an exception thrown inside a chunk is captured, the
//    remaining chunks are cancelled, and the exception is rethrown on the
//    calling thread. Nested parallel sections (a parallel_for issued from
//    inside a pool chunk) fall back to serial instead of deadlocking.
//  * zero configuration — the default pool is sized from
//    hardware_concurrency() on first use; set_default_threads() (the CLI's
//    global --threads flag) adjusts the effective width at runtime.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aspe::par {

class ThreadPool {
 public:
  /// Pool with `threads` worker threads (0 workers = always-serial pool).
  /// Callers of run_chunked participate too, so total width is workers + 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads owned by the pool.
  [[nodiscard]] std::size_t workers() const;

  /// Spawn additional workers until the pool owns at least `count`.
  void ensure_workers(std::size_t count);

  /// Invoke chunk_fn(lo, hi) over [begin, end) split into grain-sized
  /// chunks, using at most max_threads threads including the caller
  /// (0 = workers() + 1). Blocks until every chunk ran; rethrows the first
  /// chunk exception on the calling thread. Chunks are claimed dynamically,
  /// but chunk *boundaries* depend only on (begin, end, grain), so callers
  /// with disjoint chunk writes are bit-identical for any thread count.
  void run_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                   std::size_t max_threads = 0);

  /// True while the calling thread is executing inside a pool chunk; used
  /// by run_chunked to serialize nested parallel sections.
  [[nodiscard]] static bool in_parallel_region();

 private:
  struct Batch;

  void worker_loop();
  /// `helper` distinguishes pool workers from the dispatching caller: chunks
  /// a helper claims count as steals in the obs telemetry.
  static void work_on(Batch& batch, std::mutex& mu,
                      std::condition_variable& done_cv, bool helper);

  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  // workers wait here for a new batch
  std::condition_variable done_cv_;  // the caller waits here for completion
  std::vector<std::thread> workers_;
  Batch* current_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per batch so workers join once
  bool stop_ = false;
};

/// The process-wide pool shared by all parallel algorithms. Created on first
/// use with enough workers for hardware_concurrency() (at least 4-wide, so
/// thread-sweep tests exercise real concurrency even on small machines).
ThreadPool& default_pool();

/// Effective width used when a parallel section does not specify a thread
/// count: initially hardware_concurrency(). `n = 0` resets to that default;
/// n > the current pool size grows the pool.
void set_default_threads(std::size_t n);
[[nodiscard]] std::size_t default_threads();

}  // namespace aspe::par
