// parallel_for / parallel_reduce on top of the shared ThreadPool.
//
// Both primitives are deterministic by construction: chunk boundaries are a
// pure function of (range, grain), and parallel_reduce combines the chunk
// results in ascending chunk order. A body that writes disjoint state per
// index therefore produces bit-identical results for any thread count, and
// a reduction is bit-identical as long as the *chunking* stays fixed — the
// same (begin, end, grain) triple always sums in the same order.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"

namespace aspe::par {

/// Invoke fn(i) for every i in [begin, end), fanned out over the default
/// pool in grain-sized chunks. `threads` caps the width (0 = the process
/// default set by set_default_threads / --threads). Blocks until done;
/// rethrows the first exception thrown by fn on the calling thread.
template <class Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn, std::size_t threads = 0) {
  default_pool().run_chunked(
      begin, end, grain,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      threads);
}

/// Chunked reduction: map_chunk(lo, hi) -> T per grain-sized chunk of
/// [begin, end), then combine(acc, chunk_value) in ascending chunk order.
/// The combine order depends only on (begin, end, grain), so floating-point
/// reductions are reproducible across thread counts.
template <class T, class MapFn, class CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                std::size_t grain, T identity, MapFn&& map_chunk,
                                CombineFn&& combine, std::size_t threads = 0) {
  if (end <= begin) return identity;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(chunks, identity);
  default_pool().run_chunked(
      begin, end, grain,
      [&](std::size_t lo, std::size_t hi) {
        partial[(lo - begin) / grain] = map_chunk(lo, hi);
      },
      threads);
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace aspe::par
