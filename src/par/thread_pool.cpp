#include "par/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace aspe::par {

namespace {

thread_local bool t_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = false; }
};

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

}  // namespace

struct ThreadPool::Batch {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  std::size_t max_helpers = 0;       // workers allowed in (caller not counted)
  std::atomic<std::size_t> next{0};  // next chunk index to claim
  std::atomic<std::size_t> pending{0};  // chunks not yet finished
  std::atomic<bool> cancelled{false};
  std::size_t inside = 0;  // workers currently in work_on (guarded by mu_)
  std::exception_ptr error;  // first chunk exception (guarded by mu_)
  // Span open on the dispatching thread when the batch was issued; workers
  // adopt it as the parent of spans they open inside chunks, keeping the
  // trace a single tree across threads. 0 when no recording is active.
  std::uint64_t parent_span = 0;
};

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::ensure_workers(std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < count) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

bool ThreadPool::in_parallel_region() { return t_in_parallel_region; }

void ThreadPool::work_on(Batch& batch, std::mutex& mu,
                         std::condition_variable& done_cv, bool helper) {
  RegionGuard region;  // nested parallel sections inside chunks go serial
  obs::InheritedParentScope trace_parent(batch.parent_span);
  std::size_t claimed = 0;
  while (true) {
    const std::size_t c = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= batch.chunks) break;
    ++claimed;
    const std::size_t lo = batch.begin + c * batch.grain;
    const std::size_t hi = std::min(batch.end, lo + batch.grain);
    if (!batch.cancelled.load(std::memory_order_relaxed)) {
      try {
        (*batch.fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (batch.error == nullptr) batch.error = std::current_exception();
        batch.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (batch.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk done: wake the caller. Locking before notify pairs with
      // the caller's predicate check under the same mutex (no lost wakeup).
      std::lock_guard<std::mutex> lock(mu);
      done_cv.notify_all();
    }
  }
  if (helper && claimed > 0 && obs::enabled()) {
    obs::counter_add("par.steals", static_cast<double>(claimed));
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    wake_cv_.wait(lock, [&] {
      return stop_ || (current_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    seen_generation = generation_;
    Batch* batch = current_;
    if (batch->inside >= batch->max_helpers) continue;  // width cap reached
    ++batch->inside;
    lock.unlock();
    work_on(*batch, mu_, done_cv_, /*helper=*/true);
    lock.lock();
    --batch->inside;
    if (batch->inside == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn,
    std::size_t max_threads) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;

  std::size_t width = max_threads == 0 ? default_threads() : max_threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    width = std::min({width, chunks, workers_.size() + 1});
  }

  const auto run_serial = [&] {
    // Serial fallback (single thread requested, tiny range, a nested call,
    // or a batch already in flight from another thread): same chunk
    // boundaries, same order, exceptions propagate as-is.
    if (obs::enabled()) obs::counter_add("par.serial_batches", 1.0);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      chunk_fn(lo, std::min(end, lo + grain));
    }
  };
  if (width <= 1 || in_parallel_region()) {
    run_serial();
    return;
  }

  Batch batch;
  batch.fn = &chunk_fn;
  batch.begin = begin;
  batch.end = end;
  batch.grain = grain;
  batch.chunks = chunks;
  batch.max_helpers = width - 1;  // the caller participates too
  batch.pending.store(chunks, std::memory_order_relaxed);
  if (obs::enabled()) {
    batch.parent_span = obs::current_span_id();
    obs::counter_add("par.batches", 1.0);
    obs::counter_add("par.chunks", static_cast<double>(chunks));
    // Depth of the chunk queue at dispatch: how much parallelism the batch
    // exposed (claimed dynamically by caller + helpers).
    obs::gauge_set("par.queue_depth", static_cast<double>(chunks));
    obs::gauge_set("par.width", static_cast<double>(width));
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (current_ != nullptr) {
      // The pool runs one batch at a time; a second concurrent top-level
      // caller degrades to serial rather than corrupting the active batch.
      lock.unlock();
      run_serial();
      return;
    }
    current_ = &batch;
    ++generation_;
  }
  wake_cv_.notify_all();

  work_on(batch, mu_, done_cv_, /*helper=*/false);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return batch.pending.load(std::memory_order_acquire) == 0 &&
           batch.inside == 0;
  });
  current_ = nullptr;
  const std::exception_ptr error = batch.error;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

namespace {

std::atomic<std::size_t> g_default_threads{0};  // 0 = not yet resolved

}  // namespace

ThreadPool& default_pool() {
  // At least 4-wide so thread sweeps and the determinism tests exercise real
  // concurrency even on single-core machines (workers just timeslice there).
  static ThreadPool pool(std::max<std::size_t>(hardware_threads(), 4) - 1);
  return pool;
}

void set_default_threads(std::size_t n) {
  if (n == 0) n = hardware_threads();
  g_default_threads.store(n, std::memory_order_relaxed);
  if (n > 1) default_pool().ensure_workers(n - 1);
}

std::size_t default_threads() {
  const std::size_t n = g_default_threads.load(std::memory_order_relaxed);
  return n == 0 ? hardware_threads() : n;
}

}  // namespace aspe::par
