#include "text/prf.hpp"

#include "common/error.hpp"
#include "rng/rng.hpp"

namespace aspe::text {

KeyedPermutation::KeyedPermutation(std::size_t dim, std::uint64_t key) {
  require(dim > 0, "KeyedPermutation: dimension must be positive");
  rng::Rng rng(key ^ 0xa076bc9156befbadULL);
  forward_ = rng.permutation(dim);
  inverse_.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) inverse_[forward_[i]] = i;
}

BitVec KeyedPermutation::apply(const BitVec& v) const {
  require(v.size() == dim(), "KeyedPermutation::apply: dimension mismatch");
  BitVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[forward_[i]] = v[i];
  return out;
}

BitVec KeyedPermutation::invert(const BitVec& v) const {
  require(v.size() == dim(), "KeyedPermutation::invert: dimension mismatch");
  BitVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[inverse_[i]] = v[i];
  return out;
}

}  // namespace aspe::text
