#include "text/bigram.hpp"

#include <cctype>

#include "common/error.hpp"

namespace aspe::text {

BitVec bigram_vector(const std::string& keyword) {
  BitVec v(kBigramDim, 0);
  char prev = 0;
  for (char raw : keyword) {
    const auto uc = static_cast<unsigned char>(raw);
    if (std::isalpha(uc) == 0) {
      prev = 0;
      continue;
    }
    const char c = static_cast<char>(std::tolower(uc));
    if (prev != 0) {
      const std::size_t idx = static_cast<std::size_t>(prev - 'a') * 26 +
                              static_cast<std::size_t>(c - 'a');
      v[idx] = 1;
    }
    prev = c;
  }
  return v;
}

double bigram_similarity(const BitVec& a, const BitVec& b) {
  require(a.size() == b.size(), "bigram_similarity: length mismatch");
  std::size_t inter = 0;
  std::size_t uni = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool ai = a[i] != 0;
    const bool bi = b[i] != 0;
    inter += (ai && bi);
    uni += (ai || bi);
  }
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace aspe::text
