// Bigram vector encoding of keywords (the MKFSE fuzzy-matching primitive).
//
// MKFSE [22] transforms each keyword into a binary "bigram set" vector over
// the 26x26 letter-pair alphabet so that keywords within small edit distance
// have nearby vectors; LSH then maps nearby vectors to the same bloom-filter
// positions.
#pragma once

#include <string>

#include "common/types.hpp"

namespace aspe::text {

/// Dimension of the bigram space (26 letters squared).
inline constexpr std::size_t kBigramDim = 26 * 26;

/// Binary bigram-set vector of a keyword. Non-letter characters are ignored;
/// uppercase folds to lowercase. "network" -> {ne, et, tw, wo, or, rk}.
[[nodiscard]] BitVec bigram_vector(const std::string& keyword);

/// Jaccard similarity of two bigram vectors (1 when both empty).
[[nodiscard]] double bigram_similarity(const BitVec& a, const BitVec& b);

}  // namespace aspe::text
